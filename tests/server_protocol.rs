//! Wire-level contract of the revision service: golden response
//! lines, id echoing, graceful handling of malformed input, and the
//! LRU artifact cache's eviction/recompile behaviour.

use revkb::server::{Json, Server, ServerConfig};

fn call(server: &Server, line: &str) -> Json {
    let response = server.handle_line(line).expect("request line is not blank");
    Json::parse(&response).unwrap_or_else(|e| panic!("response not JSON ({e}): {response}"))
}

fn result(resp: &Json) -> &Json {
    assert_eq!(
        resp.get("ok").and_then(Json::as_bool),
        Some(true),
        "{resp:?}"
    );
    resp.get("result").expect("ok response carries a result")
}

fn err_code(resp: &Json) -> &str {
    assert_eq!(
        resp.get("ok").and_then(Json::as_bool),
        Some(false),
        "{resp:?}"
    );
    resp.get("code")
        .and_then(Json::as_str)
        .expect("error carries a code")
}

/// The exact bytes of the stable responses. These lines are the
/// protocol: scripts and foreign clients parse them, so any drift is
/// a breaking change and must show up here first. The `req` values
/// are deterministic because the server is fresh (the server-assigned
/// monotonic request id starts at 1); the trace ids are deterministic
/// because every request supplies one — a missing `trace` would be
/// answered with a server-minted id, which a golden line cannot pin.
#[test]
fn golden_response_lines() {
    let server = Server::new(ServerConfig::default());
    let golden = [
        (
            r#"{"id":1,"trace":"a1","cmd":"ping"}"#,
            r#"{"v":2,"id":1,"req":1,"trace":"00000000000000a1","ok":true,"result":{"pong":true}}"#,
        ),
        (
            r#"{"id":2,"trace":"a2","cmd":"load","kb":"k","t":"a & b; b -> c; c | d"}"#,
            r#"{"v":2,"id":2,"req":2,"trace":"00000000000000a2","ok":true,"result":{"kb":"k","formulas":3,"letters":4}}"#,
        ),
        (
            r#"{"id":3,"trace":"a3","cmd":"query","kb":"k","q":"a & c"}"#,
            r#"{"v":2,"id":3,"req":3,"trace":"00000000000000a3","ok":true,"result":{"kb":"k","entails":true}}"#,
        ),
        (
            r#"{"id":4,"trace":"a4","cmd":"query_batch","kb":"k","qs":["a","!a"]}"#,
            r#"{"v":2,"id":4,"req":4,"trace":"00000000000000a4","ok":true,"result":{"kb":"k","answers":[true,false]}}"#,
        ),
        (
            r#"{"id":5,"trace":"a5","cmd":"drop","kb":"k"}"#,
            r#"{"v":2,"id":5,"req":5,"trace":"00000000000000a5","ok":true,"result":{"kb":"k","dropped":true}}"#,
        ),
        (
            r#"{"id":6,"trace":"a6","cmd":"query","kb":"ghost","q":"a"}"#,
            r#"{"v":2,"id":6,"req":6,"trace":"00000000000000a6","ok":false,"code":"unknown_kb","error":"no knowledge base named \"ghost\""}"#,
        ),
        // A full 32-hex W3C trace-id keeps its low 64 bits.
        (
            r#"{"id":7,"trace":"0af7651916cd43dd8448eb211c80319c","cmd":"ping"}"#,
            r#"{"v":2,"id":7,"req":7,"trace":"8448eb211c80319c","ok":true,"result":{"pong":true}}"#,
        ),
    ];
    for (request, expected) in golden {
        let response = server.handle_line(request).expect("non-blank request");
        assert_eq!(response, expected, "for request {request}");
    }
}

#[test]
fn ids_echo_in_every_shape() {
    let server = Server::new(ServerConfig::default());
    let cases = [
        (r#"{"id":7,"cmd":"ping"}"#, Json::Num(7.0)),
        (r#"{"id":"alpha","cmd":"ping"}"#, Json::Str("alpha".into())),
        (r#"{"cmd":"ping"}"#, Json::Null),
    ];
    for (request, want) in cases {
        let resp = call(&server, request);
        assert_eq!(resp.get("id"), Some(&want), "for {request}");
    }
}

#[test]
fn malformed_requests_answer_instead_of_panicking() {
    let server = Server::new(ServerConfig::default());
    let garbage = [
        "not json at all",
        "{",
        "[1,2,3]",
        "42",
        r#""just a string""#,
        r#"{"cmd":"warp"}"#,
        r#"{"cmd":"load"}"#,
        r#"{"cmd":"load","kb":"k"}"#,
        r#"{"cmd":"revise","kb":"k","op":"dalal"}"#,
        r#"{"cmd":"revise","kb":"k","op":"nonsense","p":"a"}"#,
        r#"{"cmd":"query","kb":7,"q":"a"}"#,
        r#"{"cmd":"query_batch","kb":"k","qs":"a"}"#,
        r#"{"cmd":"ping","deadline_ms":"soon"}"#,
        "{\"cmd\":\"ping\"\u{0}}",
    ];
    for line in garbage {
        let resp = call(&server, line);
        assert_eq!(err_code(&resp), "bad_request", "for {line}");
    }
    // Blank lines are skipped, not answered.
    assert!(server.handle_line("").is_none());
    assert!(server.handle_line("   ").is_none());
    // Engine-level failures use the engine's own stable codes.
    call(&server, r#"{"cmd":"load","kb":"k","t":"a & b"}"#);
    let resp = call(&server, r#"{"cmd":"load","kb":"bad","t":"a &&& b"}"#);
    assert_eq!(err_code(&resp), "parse");
    let resp = call(&server, r#"{"cmd":"query","kb":"k","q":"z9"}"#);
    assert_eq!(err_code(&resp), "out_of_alphabet");
}

fn revise_cache_tag(server: &Server, kb: &str, p: &str) -> String {
    let load = format!(r#"{{"cmd":"load","kb":"{kb}","t":"a & b"}}"#);
    call(server, &load);
    let revise = format!(r#"{{"cmd":"revise","kb":"{kb}","op":"dalal","p":"{p}"}}"#);
    let resp = call(server, &revise);
    result(&resp)
        .get("cache")
        .and_then(Json::as_str)
        .expect("revise result carries a cache tag")
        .to_string()
}

/// Capacity-2 cache: the least-recently-used artifact is the one that
/// goes, a `get` refreshes recency, and a recompiled-after-eviction
/// KB still answers correctly.
#[test]
fn lru_eviction_and_recompile() {
    let server = Server::new(ServerConfig::default().with_cache_capacity(2));

    assert_eq!(revise_cache_tag(&server, "k1", "!a"), "miss"); // cache: [A]
    assert_eq!(revise_cache_tag(&server, "k2", "!b"), "miss"); // cache: [A,B]
    assert_eq!(revise_cache_tag(&server, "k1b", "!a"), "hit"); // refresh A: [B,A]
    assert_eq!(revise_cache_tag(&server, "k3", "!a | !b"), "miss"); // evict B: [A,C]
                                                                    // B was the victim, so replaying k2's session is a miss + recompile.
    assert_eq!(revise_cache_tag(&server, "k2b", "!b"), "miss"); // evict A: [C,B]

    // The recompiled KB answers exactly like the original semantics:
    // (a ∧ b) ∘dalal ¬b  ⊨  a ∧ ¬b.
    for (q, want) in [("a", true), ("!b", true), ("b", false)] {
        let line = format!(r#"{{"cmd":"query","kb":"k2b","q":"{q}"}}"#);
        let resp = call(&server, &line);
        assert_eq!(
            result(&resp).get("entails").and_then(Json::as_bool),
            Some(want),
            "query {q} after recompile"
        );
    }

    let stats = call(&server, r#"{"cmd":"stats"}"#);
    let cache = result(&stats)
        .get("cache")
        .expect("stats carries cache block");
    let field = |k: &str| cache.get(k).and_then(Json::as_u64).unwrap();
    assert_eq!(field("hits"), 1);
    assert_eq!(field("misses"), 4);
    assert_eq!(field("evictions"), 2);
    assert_eq!(field("entries"), 2);
    assert_eq!(field("capacity"), 2);
}

/// A revise response documents how the artifact was obtained and what
/// it produced; pin the field set so clients can rely on it.
#[test]
fn revise_response_shape() {
    let server = Server::new(ServerConfig::default());
    call(&server, r#"{"cmd":"load","kb":"k","t":"a & b; b -> c"}"#);
    let resp = call(
        &server,
        r#"{"cmd":"revise","kb":"k","op":"satoh","p":"!b"}"#,
    );
    let body = result(&resp);
    assert_eq!(body.get("kb").and_then(Json::as_str), Some("k"));
    assert_eq!(body.get("op").and_then(Json::as_str), Some("satoh"));
    assert_eq!(body.get("cache").and_then(Json::as_str), Some("miss"));
    assert_eq!(body.get("degraded").and_then(Json::as_bool), Some(false));
    assert_eq!(body.get("revisions").and_then(Json::as_u64), Some(1));
    assert!(body.get("compiled_size").and_then(Json::as_u64).is_some());
    assert!(body.get("engine").and_then(Json::as_str).is_some());
    assert!(body.get("backend").and_then(Json::as_str).is_some());
}
