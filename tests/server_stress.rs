//! Concurrency stress for the revision service: four TCP clients
//! drive every operator the paper analyses against one server, and
//! every answer must equal a single-threaded oracle computed by
//! direct `Engine` calls. Along the way the session must exhibit the
//! server's whole failure vocabulary — at least one artifact-cache
//! hit, one deadline-enforced timeout, an `overloaded` rejection, and
//! malformed requests answered rather than panicked on — and the
//! server must shut down cleanly with every thread joined.

use revkb::prelude::*;
use revkb::server::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::thread;

const OPS: [&str; 8] = [
    "winslett", "borgida", "forbus", "satoh", "dalal", "weber", "gfuv", "widtio",
];
const THEORY: &str = "a & b; b -> c; c | d";
const REVISION: &str = "!b | !c";
const QUERIES: [&str; 4] = ["a", "c | d", "b & c", "!(b & c)"];

/// What the server must answer, computed by direct Engine calls with
/// the same parse order the server uses (theory segments, then P,
/// then queries, one shared signature per KB).
fn oracle_answers(op: &str) -> Vec<bool> {
    let mut sig = Signature::new();
    let theory: Vec<Formula> = THEORY
        .split(';')
        .map(|s| parse(s.trim(), &mut sig).expect("theory parses"))
        .collect();
    let p = parse(REVISION, &mut sig).expect("revision parses");
    let queries: Vec<Formula> = QUERIES
        .iter()
        .map(|q| parse(q, &mut sig).expect("query parses"))
        .collect();
    let mut engine: Box<dyn Engine + Send> = match op {
        "gfuv" => {
            Box::new(GfuvEngine::compile(Theory::new(theory), p, 1 << 20).expect("gfuv compiles"))
        }
        "widtio" => Box::new(WidtioEngine::compile(&Theory::new(theory), &p)),
        name => {
            let m = ModelBasedOp::from_name(name).expect("operator name");
            let t = Formula::and_all(theory);
            ReviseBuilder::new(m)
                .engine(&t, std::slice::from_ref(&p))
                .expect("model-based compile")
        }
    };
    queries
        .iter()
        .map(|q| engine.try_entails(q).expect("oracle query"))
        .collect()
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let writer = TcpStream::connect(addr).expect("connect to server");
        let reader = BufReader::new(writer.try_clone().expect("clone stream"));
        Client { writer, reader }
    }

    fn call(&mut self, line: &str) -> Json {
        writeln!(self.writer, "{line}").expect("send request");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("read response");
        Json::parse(response.trim())
            .unwrap_or_else(|e| panic!("response not JSON ({e}): {response}"))
    }

    fn call_ok(&mut self, line: &str) -> Json {
        let resp = self.call(line);
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "request failed: {line} -> {resp:?}"
        );
        resp.get("result")
            .expect("ok response carries a result")
            .clone()
    }
}

/// One client's share of the stress run: two operators, two rounds
/// each (the second round replays the identical compile, so for the
/// model-based operators it must come from the artifact cache).
fn client_session(addr: std::net::SocketAddr, ops: &[&str], expected: &[Vec<bool>]) {
    let mut client = Client::connect(addr);
    for (op, oracle) in ops.iter().zip(expected) {
        for round in 0..2 {
            let kb = format!("{op}-r{round}");
            client.call_ok(&format!(r#"{{"cmd":"load","kb":"{kb}","t":"{THEORY}"}}"#));
            let revise = client.call_ok(&format!(
                r#"{{"cmd":"revise","kb":"{kb}","op":"{op}","p":"{REVISION}"}}"#
            ));
            let cache = revise.get("cache").and_then(Json::as_str).unwrap();
            match *op {
                "gfuv" | "widtio" => assert_eq!(cache, "bypass", "{kb}"),
                _ if round == 1 => assert_eq!(cache, "hit", "{kb}: warm compile must hit"),
                _ => assert!(cache == "miss" || cache == "hit", "{kb}: {cache}"),
            }
            // Single queries and a batch must both match the oracle.
            for (q, &want) in QUERIES.iter().zip(oracle) {
                let resp = client.call_ok(&format!(r#"{{"cmd":"query","kb":"{kb}","q":"{q}"}}"#));
                assert_eq!(
                    resp.get("entails").and_then(Json::as_bool),
                    Some(want),
                    "{op} diverges from oracle on {q}"
                );
            }
            let qs: Vec<String> = QUERIES.iter().map(|q| format!("\"{q}\"")).collect();
            let batch = client.call_ok(&format!(
                r#"{{"cmd":"query_batch","kb":"{kb}","qs":[{}]}}"#,
                qs.join(",")
            ));
            let answers: Vec<bool> = batch
                .get("answers")
                .and_then(Json::as_array)
                .unwrap()
                .iter()
                .map(|a| a.as_bool().unwrap())
                .collect();
            assert_eq!(&answers, oracle, "{op} batch diverges from oracle");
        }
        // A malformed line mid-session is answered, never fatal.
        let resp = client.call("this is not a request");
        assert_eq!(resp.get("code").and_then(Json::as_str), Some("bad_request"));
    }
}

#[test]
fn four_clients_match_single_threaded_oracle() {
    let oracle: Vec<Vec<bool>> = OPS.iter().map(|op| oracle_answers(op)).collect();

    let server = Server::new(ServerConfig::default());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let srv = server.clone();
    let server_thread = thread::spawn(move || srv.serve_tcp(listener));

    let clients: Vec<_> = (0..4usize)
        .map(|i| {
            let ops: Vec<&'static str> = OPS[2 * i..2 * i + 2].to_vec();
            let expected = oracle[2 * i..2 * i + 2].to_vec();
            thread::spawn(move || client_session(addr, &ops, &expected))
        })
        .collect();
    for client in clients {
        client.join().expect("client thread must not panic");
    }

    // One more client exercises the deadline path (deadline_ms: 0 is
    // always already expired) and reads the final statistics.
    let mut probe = Client::connect(addr);
    probe.call_ok(&format!(r#"{{"cmd":"load","kb":"probe","t":"{THEORY}"}}"#));
    let late = probe.call(r#"{"cmd":"query","kb":"probe","q":"a","deadline_ms":0}"#);
    assert_eq!(late.get("code").and_then(Json::as_str), Some("timeout"));

    let stats = probe.call_ok(r#"{"cmd":"stats"}"#);
    let cache = stats.get("cache").expect("cache block");
    let hits = cache.get("hits").and_then(Json::as_u64).unwrap();
    // Six model-based operators each replayed once: six guaranteed hits.
    assert!(
        hits >= 6,
        "expected cache hits from warm rounds, got {hits}"
    );
    assert!(stats.get("timeouts").and_then(Json::as_u64).unwrap() >= 1);
    assert_eq!(stats.get("in_flight").and_then(Json::as_u64), Some(0));

    // Clean shutdown: the accept loop and every connection thread join.
    let bye = probe.call(r#"{"cmd":"shutdown"}"#);
    assert_eq!(bye.get("ok").and_then(Json::as_bool), Some(true));
    drop(probe);
    server_thread
        .join()
        .expect("server thread join")
        .expect("serve_tcp exits cleanly");

    // The listener is gone once serve_tcp returns: a fresh connection
    // is refused outright, or at best reset without an answer.
    if let Ok(stream) = TcpStream::connect(addr) {
        let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
        let mut stream = stream;
        let _ = writeln!(stream, r#"{{"cmd":"ping"}}"#);
        let mut line = String::new();
        let answered = reader.read_line(&mut line).unwrap_or(0);
        assert_eq!(answered, 0, "shut-down server must not answer: {line}");
    }
}

/// With an admission queue of zero, every data-plane request is
/// rejected `overloaded` while the control plane stays reachable.
#[test]
fn zero_queue_server_sheds_load_over_tcp() {
    let server = Server::new(ServerConfig::default().with_queue(0));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let srv = server.clone();
    let server_thread = thread::spawn(move || srv.serve_tcp(listener));

    let mut client = Client::connect(addr);
    let resp = client.call(r#"{"cmd":"load","kb":"k","t":"a"}"#);
    assert_eq!(resp.get("code").and_then(Json::as_str), Some("overloaded"));
    let pong = client.call(r#"{"cmd":"ping"}"#);
    assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));
    let bye = client.call(r#"{"cmd":"shutdown"}"#);
    assert_eq!(bye.get("ok").and_then(Json::as_bool), Some(true));
    drop(client);
    server_thread
        .join()
        .expect("server thread join")
        .expect("serve_tcp exits cleanly");
}
