//! End-to-end contract of the sidecar metrics plane: a server started
//! with `--metrics-addr` serves all five HTTP endpoints concurrently
//! with data-plane traffic, the Prometheus page carries per-KB
//! labelled families with cumulative histogram buckets, and readiness
//! tracks replication health.

use revkb::server::{Json, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn call(server: &Server, line: &str) -> Json {
    let response = server.handle_line(line).expect("request line is not blank");
    Json::parse(&response).unwrap_or_else(|e| panic!("response not JSON ({e}): {response}"))
}

fn assert_ok(resp: &Json) {
    assert_eq!(
        resp.get("ok").and_then(Json::as_bool),
        Some(true),
        "{resp:?}"
    );
}

/// One HTTP/1.1 GET against the sidecar; returns (status, body).
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics listener");
    let timeout = Some(Duration::from_secs(5));
    stream.set_read_timeout(timeout).unwrap();
    stream.set_write_timeout(timeout).unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .expect("response has a header block");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line: {head}"));
    (status, body.to_string())
}

fn metrics_server() -> (Server, SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::new(
        ServerConfig::default()
            .with_queue(64)
            .with_threads(2)
            .with_metrics_addr(Some("127.0.0.1:0".to_string())),
    );
    let (addr, handle) = server
        .start_metrics_listener()
        .expect("bind metrics listener")
        .expect("metrics addr configured");
    (server, addr, handle)
}

#[test]
fn metrics_plane_serves_all_endpoints_under_live_traffic() {
    let (server, addr, handle) = metrics_server();

    // A live workload: two KBs, revisions across operators, queries.
    assert_ok(&call(
        &server,
        r#"{"cmd":"load","kb":"alpha","t":"a & b & c"}"#,
    ));
    assert_ok(&call(&server, r#"{"cmd":"load","kb":"beta","t":"x | y"}"#));
    assert_ok(&call(
        &server,
        r#"{"cmd":"revise","kb":"alpha","op":"dalal","p":"!a"}"#,
    ));
    assert_ok(&call(
        &server,
        r#"{"cmd":"revise","kb":"beta","op":"satoh","p":"!x"}"#,
    ));
    for _ in 0..5 {
        assert_ok(&call(&server, r#"{"cmd":"query","kb":"alpha","q":"c"}"#));
    }
    assert_ok(&call(&server, r#"{"cmd":"query","kb":"beta","q":"x | y"}"#));

    // Scrape while the data plane keeps answering: interleave HTTP
    // GETs with more requests on another thread.
    let churn = {
        let server = server.clone();
        std::thread::spawn(move || {
            for _ in 0..50 {
                assert_ok(&call(&server, r#"{"cmd":"query","kb":"alpha","q":"c"}"#));
            }
        })
    };

    // /metrics: Prometheus text exposition with per-KB labels.
    let (status, page) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        page.contains("# TYPE revkb_server_requests_total counter"),
        "missing requests family:\n{page}"
    );
    assert!(
        page.contains(r#"revkb_kb_queries_total{kb="alpha"}"#),
        "missing per-KB query counter:\n{page}"
    );
    assert!(
        page.contains(r#"revkb_kb_op_revises_total{kb="alpha",op="dalal"} 1"#),
        "missing per-operator revise counter:\n{page}"
    );
    assert!(
        page.contains(r#"revkb_kb_op_revises_total{kb="beta",op="satoh"} 1"#),
        "missing second operator:\n{page}"
    );
    assert!(
        page.contains(r#"revkb_kb_letters{kb="beta"}"#),
        "missing beta gauge:\n{page}"
    );
    // Histogram buckets are cumulative and close with +Inf == _count.
    let inf_line = page
        .lines()
        .find(|l| l.starts_with(r#"revkb_server_request_micros_bucket{cmd="query",le="+Inf"}"#))
        .expect("query +Inf bucket");
    let inf: u64 = inf_line.split_whitespace().last().unwrap().parse().unwrap();
    let count_line = page
        .lines()
        .find(|l| l.starts_with(r#"revkb_server_request_micros_count{cmd="query"}"#))
        .expect("query _count");
    let count: u64 = count_line
        .split_whitespace()
        .last()
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(inf, count, "+Inf bucket must equal _count");
    let mut last = 0u64;
    for line in page
        .lines()
        .filter(|l| l.starts_with(r#"revkb_server_request_micros_bucket{cmd="query""#))
    {
        let v: u64 = line.split_whitespace().last().unwrap().parse().unwrap();
        assert!(v >= last, "buckets must be cumulative:\n{page}");
        last = v;
    }

    // /stats.json: same payload as the wire `stats` command.
    let (status, body) = http_get(addr, "/stats.json");
    assert_eq!(status, 200);
    let stats = Json::parse(&body).expect("stats.json parses");
    assert!(stats.get("requests").and_then(Json::as_u64).unwrap() >= 10);
    let profiles = stats
        .get("kb_profiles")
        .and_then(Json::as_array)
        .expect("kb_profiles array");
    assert_eq!(profiles.len(), 2);
    assert_eq!(
        profiles[0].get("kb").and_then(Json::as_str),
        Some("alpha"),
        "profiles sort by name"
    );

    // /series.json: the sampler window (points may be empty this early
    // at the default 1 s interval; shape must hold regardless).
    let (status, body) = http_get(addr, "/series.json");
    assert_eq!(status, 200);
    let series = Json::parse(&body).expect("series.json parses");
    assert!(series.get("interval_ms").and_then(Json::as_u64).is_some());
    assert!(series.get("series").and_then(Json::as_array).is_some());

    // Probes.
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains(r#""ok":true"#), "{body}");
    let (status, body) = http_get(addr, "/readyz");
    assert_eq!(status, 200, "healthy primary must be ready: {body}");

    // Unknown paths and non-GET methods are rejected.
    let (status, _) = http_get(addr, "/flagrantly-missing");
    assert_eq!(status, 404);
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "POST /metrics HTTP/1.1\r\nHost: {addr}\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");

    churn.join().expect("churn thread");

    // Shutdown stops the listener thread.
    server.begin_shutdown();
    let deadline = Instant::now() + Duration::from_secs(10);
    while !handle.is_finished() {
        assert!(Instant::now() < deadline, "listener never exited");
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.join().expect("listener thread");
}

#[test]
fn readyz_reflects_replica_divergence_over_http() {
    let server = Server::new(
        ServerConfig::default()
            .with_queue(16)
            .with_threads(2)
            .with_replica_of(Some("127.0.0.1:1".to_string()))
            .with_metrics_addr(Some("127.0.0.1:0".to_string())),
    );
    let (addr, handle) = server
        .start_metrics_listener()
        .expect("bind metrics listener")
        .expect("metrics addr configured");

    // Never connected: not ready, but alive.
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    let (status, body) = http_get(addr, "/readyz");
    assert_eq!(status, 503);
    assert!(body.contains("never connected"), "{body}");

    // Diverged: still 503, with the divergence as the reason.
    server.mark_diverged("test: forced divergence");
    let (status, body) = http_get(addr, "/readyz");
    assert_eq!(status, 503);
    assert!(body.contains("diverged"), "{body}");

    // The Prometheus page reports the divergence too.
    let (status, page) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        page.contains("revkb_repl_diverged 1"),
        "missing diverged gauge:\n{page}"
    );

    server.begin_shutdown();
    let deadline = Instant::now() + Duration::from_secs(10);
    while !handle.is_finished() {
        assert!(Instant::now() < deadline, "listener never exited");
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.join().expect("listener thread");
}
