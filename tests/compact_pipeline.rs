//! Property tests (proptest) of the full compile-then-query pipeline:
//! for random revision scenarios, every operator's compiled
//! representation must be (query- or logically-) equivalent to the
//! semantic oracle, for single and iterated revision (E9–E13 in
//! DESIGN.md).

use proptest::prelude::*;
use revkb::logic::{Alphabet, Formula, Var};
use revkb::revision::{
    query_equivalent_enum, revise_iterated_on, revise_on, ModelBasedOp, ModelSet, RevisedKb,
};

/// Strategy: a random formula over `vars` letters with bounded depth.
fn formula_strategy(num_vars: u32, depth: u32) -> BoxedStrategy<Formula> {
    let leaf = (0..num_vars, any::<bool>())
        .prop_map(|(v, pos)| Formula::lit(Var(v), pos))
        .boxed();
    leaf.prop_recursive(depth, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.xor(b)),
            inner.prop_map(|a| a.not()),
        ]
        .boxed()
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 200,
        .. ProptestConfig::default()
    })]

    /// Single revision, all six operators: compiled representation ≍
    /// semantic oracle.
    #[test]
    fn compiled_matches_oracle_single(
        t in formula_strategy(5, 3),
        p in formula_strategy(2, 2),
    ) {
        prop_assume!(revkb::sat::satisfiable(&t));
        prop_assume!(revkb::sat::satisfiable(&p));
        for op in ModelBasedOp::ALL {
            let kb = RevisedKb::compile(op, &t, &p).unwrap();
            let rep = kb.representation();
            let alpha = Alphabet::new(rep.base.clone());
            let oracle = revise_on(op, &alpha, &t, &p);
            if rep.logical {
                // Logically equivalent: same model set over the base.
                let got = ModelSet::of_formula(alpha, &rep.formula);
                prop_assert_eq!(&got, &oracle, "{} logical mismatch", op.name());
            }
            prop_assert!(
                query_equivalent_enum(&rep.formula, &oracle.to_dnf(), &rep.base),
                "{} query mismatch for {:?} * {:?}", op.name(), t, p
            );
        }
    }

    /// Iterated revision (two bounded steps), all six operators.
    #[test]
    fn compiled_matches_oracle_iterated(
        t in formula_strategy(4, 3),
        p1 in formula_strategy(2, 2),
        p2 in formula_strategy(2, 2),
    ) {
        prop_assume!(revkb::sat::satisfiable(&t));
        prop_assume!(revkb::sat::satisfiable(&p1));
        prop_assume!(revkb::sat::satisfiable(&p2));
        let ps = vec![p1, p2];
        for op in ModelBasedOp::ALL {
            let kb = RevisedKb::compile_iterated(op, &t, &ps).unwrap();
            let rep = kb.representation();
            let alpha = Alphabet::new(rep.base.clone());
            let oracle = revise_iterated_on(op, &alpha, &t, &ps);
            prop_assert!(
                query_equivalent_enum(&rep.formula, &oracle.to_dnf(), &rep.base),
                "iterated {} mismatch for {:?} * {:?}", op.name(), t, ps
            );
        }
    }

    /// The success postulate `T * P ⊨ P` holds through the pipeline.
    #[test]
    fn success_postulate(
        t in formula_strategy(5, 3),
        p in formula_strategy(2, 2),
    ) {
        prop_assume!(revkb::sat::satisfiable(&t));
        prop_assume!(revkb::sat::satisfiable(&p));
        for op in ModelBasedOp::ALL {
            let kb = RevisedKb::compile(op, &t, &p).unwrap();
            prop_assert!(kb.entails(&p), "{} violates success", op.name());
        }
    }

    /// When `T ∧ P` is consistent, the revision-style operators
    /// (Borgida, Satoh, Dalal, Weber) coincide with the conjunction.
    #[test]
    fn consistent_revision_is_conjunction(
        t in formula_strategy(4, 3),
        p in formula_strategy(2, 2),
    ) {
        let conj = t.clone().and(p.clone());
        prop_assume!(revkb::sat::satisfiable(&conj));
        for op in [
            ModelBasedOp::Borgida,
            ModelBasedOp::Satoh,
            ModelBasedOp::Dalal,
            ModelBasedOp::Weber,
        ] {
            let kb = RevisedKb::compile(op, &t, &p).unwrap();
            let rep = kb.representation();
            prop_assert!(
                query_equivalent_enum(&rep.formula, &conj, &rep.base),
                "{} should equal T ∧ P when consistent", op.name()
            );
        }
    }
}
