//! Differential hardening of the batch/parallel query pipeline: for
//! generated `(T, P, Q)` triples across all eight operators, the four
//! independent answer paths must agree bit-for-bit —
//!
//! 1. `SessionPool::par_entails_batch` (forced parallel, 4 workers),
//! 2. `SessionPool::entails_batch` (sequential, single session),
//! 3. one-shot `revkb::sat::entails` (a fresh solver per query),
//! 4. a semantic oracle that enumerates models.
//!
//! The six model-based operators are compiled through
//! [`RevisedKb::compile`] and checked against [`revise_on`]; the two
//! formula-based operators (GFUV, WIDTIO) go through their explicit
//! representations and [`ModelSet`] enumeration. The generators are
//! deterministic (`pseudo_random_formula` with fixed seeds), so a
//! failure here reproduces on every run.

use revkb::logic::{Alphabet, Formula, Var};
use revkb::revision::{
    revise_on, revision_alphabet, GfuvKb, ModelBasedOp, ModelSet, RevisedKb, Theory, WidtioKb,
};
use revkb::sat::{pseudo_random_formula, PoolConfig, SessionPool};

/// Variables both the theories and the queries range over.
const NUM_VARS: u32 = 5;

/// Queries per compiled base — every query is one `(T, P, Q)` triple.
const QUERIES_PER_PAIR: usize = 8;

/// `(T, P)` pairs per operator.
const PAIRS_PER_OP: usize = 6;

/// A pool that shards even tiny batches across 4 workers, regardless
/// of `REVKB_THREADS` and of the machine's core count.
fn forced_parallel() -> PoolConfig {
    PoolConfig {
        threads: 4,
        sequential_threshold: 0,
    }
}

/// `⋀ᵢ (vᵢ ∨ ¬vᵢ)`: conjoining this to `T` pins the revision
/// alphabet to all of `0..NUM_VARS` without changing `T`'s models, so
/// queries over any of those letters are legal on every answer path.
fn alphabet_anchor() -> Formula {
    Formula::and_all((0..NUM_VARS).map(|i| {
        let v = Formula::var(Var(i));
        v.clone().or(v.not())
    }))
}

/// Check one compiled base along all four paths; `oracle` is the
/// semantic ground truth for `T * P ⊨ Q`. Returns the number of
/// triples checked.
fn check_all_paths(
    label: &str,
    compiled: &Formula,
    queries: &[Formula],
    oracle: impl Fn(&Formula) -> bool,
) -> usize {
    let mut pool = SessionPool::with_query_alphabet(compiled, NUM_VARS, forced_parallel());
    assert_eq!(
        pool.threads(),
        4,
        "{label}: pool must be forced to 4 workers"
    );
    let sequential = pool.entails_batch(queries);
    let parallel = pool.par_entails_batch(queries);
    for (i, q) in queries.iter().enumerate() {
        let one_shot = revkb::sat::entails(compiled, q);
        let semantic = oracle(q);
        assert_eq!(
            parallel[i], sequential[i],
            "{label}, query #{i}: parallel != sequential for {q:?}"
        );
        assert_eq!(
            sequential[i], one_shot,
            "{label}, query #{i}: pooled session != one-shot solver for {q:?}"
        );
        assert_eq!(
            one_shot, semantic,
            "{label}, query #{i}: solver != model-enumeration oracle for {q:?}"
        );
    }
    queries.len()
}

/// The six model-based operators: `RevisedKb::compile` vs the
/// `revise_on` model-set oracle, 6 × 6 pairs × 8 queries = 288
/// triples.
#[test]
fn model_based_operators_agree_on_all_paths() {
    let anchor = alphabet_anchor();
    let mut triples = 0;
    for (op_index, op) in ModelBasedOp::ALL.into_iter().enumerate() {
        let mut seed = 0xD1FF_5EED ^ ((op_index as u64) << 32);
        for pair in 0..PAIRS_PER_OP {
            let t = pseudo_random_formula(&mut seed, 3, NUM_VARS).and(anchor.clone());
            let p = pseudo_random_formula(&mut seed, 3, NUM_VARS);
            let kb = RevisedKb::compile(op, &t, &p)
                .unwrap_or_else(|e| panic!("{} pair {pair}: compile failed: {e:?}", op.name()));
            let alpha = revision_alphabet(&t, &p);
            let oracle = revise_on(op, &alpha, &t, &p);
            let queries: Vec<Formula> = (0..QUERIES_PER_PAIR)
                .map(|_| pseudo_random_formula(&mut seed, 3, NUM_VARS))
                .collect();
            let label = format!("{} pair {pair}", op.name());
            triples += check_all_paths(&label, &kb.representation().formula, &queries, |q| {
                oracle.entails(q)
            });
            // The KB's own (memoised, single-session) path must agree
            // with everything above too.
            for q in &queries {
                assert_eq!(
                    kb.entails(q),
                    oracle.entails(q),
                    "{label}: RevisedKb::entails disagrees on {q:?}"
                );
            }
        }
    }
    assert!(triples >= 200, "only {triples} model-based triples checked");
}

/// GFUV: the explicit representation `(⋁ ⋀T') ∧ P` answered through
/// the pool vs per-world entailment vs model enumeration.
#[test]
fn gfuv_agrees_on_all_paths() {
    let mut seed = 0x6F07_6F07;
    let alpha = Alphabet::new((0..NUM_VARS).map(Var).collect());
    let mut triples = 0;
    for pair in 0..PAIRS_PER_OP {
        let theory = Theory::new((0..3).map(|_| pseudo_random_formula(&mut seed, 2, NUM_VARS)));
        let p = pseudo_random_formula(&mut seed, 2, NUM_VARS);
        let kb = GfuvKb::compile(theory.clone(), p.clone(), 1 << 12)
            .unwrap_or_else(|e| panic!("gfuv pair {pair}: {e:?}"));
        let explicit = kb.explicit_representation();
        let oracle = ModelSet::of_formula(alpha.clone(), &explicit);
        let queries: Vec<Formula> = (0..QUERIES_PER_PAIR)
            .map(|_| pseudo_random_formula(&mut seed, 2, NUM_VARS))
            .collect();
        let label = format!("gfuv pair {pair} ({} worlds)", kb.world_count());
        triples += check_all_paths(&label, &explicit, &queries, |q| oracle.entails(q));
        // Per-world entailment (the compiled KB's own query path) is a
        // fourth independent oracle.
        for q in &queries {
            assert_eq!(
                kb.entails(q),
                oracle.entails(q),
                "{label}: GfuvKb::entails disagrees on {q:?}"
            );
        }
    }
    assert!(triples >= PAIRS_PER_OP * QUERIES_PER_PAIR);
}

/// WIDTIO: the kept sub-theory's conjunction answered through the
/// pool vs the compiled KB vs model enumeration.
#[test]
fn widtio_agrees_on_all_paths() {
    let mut seed = 0x71D7_1071;
    let alpha = Alphabet::new((0..NUM_VARS).map(Var).collect());
    let mut triples = 0;
    for pair in 0..PAIRS_PER_OP {
        let theory = Theory::new((0..3).map(|_| pseudo_random_formula(&mut seed, 2, NUM_VARS)));
        let p = pseudo_random_formula(&mut seed, 2, NUM_VARS);
        let kb = WidtioKb::compile(&theory, &p);
        let compiled = kb.theory().conjunction();
        let oracle = ModelSet::of_formula(alpha.clone(), &compiled);
        let queries: Vec<Formula> = (0..QUERIES_PER_PAIR)
            .map(|_| pseudo_random_formula(&mut seed, 2, NUM_VARS))
            .collect();
        let label = format!("widtio pair {pair}");
        triples += check_all_paths(&label, &compiled, &queries, |q| oracle.entails(q));
        for q in &queries {
            assert_eq!(
                kb.entails(q),
                oracle.entails(q),
                "{label}: WidtioKb::entails disagrees on {q:?}"
            );
        }
    }
    assert!(triples >= PAIRS_PER_OP * QUERIES_PER_PAIR);
}

/// Determinism: two pools built independently from the same base, and
/// repeated batches on the same pool, return identical answer vectors
/// on a 60-query batch (the acceptance bar is ≥ 50), all equal to the
/// sequential pass.
#[test]
fn parallel_batches_are_deterministic() {
    let mut seed = 0xDE7E_2417;
    let t = pseudo_random_formula(&mut seed, 4, NUM_VARS).and(alphabet_anchor());
    let p = pseudo_random_formula(&mut seed, 3, NUM_VARS);
    let kb = RevisedKb::compile(ModelBasedOp::Dalal, &t, &p).expect("dalal always compiles");
    let base = &kb.representation().formula;
    let queries: Vec<Formula> = (0..60)
        .map(|_| pseudo_random_formula(&mut seed, 3, NUM_VARS))
        .collect();

    let mut pool_a = SessionPool::with_query_alphabet(base, NUM_VARS, forced_parallel());
    let mut pool_b = SessionPool::with_query_alphabet(base, NUM_VARS, forced_parallel());
    let first = pool_a.par_entails_batch(&queries);
    let second = pool_b.par_entails_batch(&queries);
    let repeat = pool_a.par_entails_batch(&queries);
    let sequential = pool_b.entails_batch(&queries);

    assert_eq!(first, second, "independently built pools must agree");
    assert_eq!(
        first, repeat,
        "re-running a batch on the same pool must agree"
    );
    assert_eq!(
        first, sequential,
        "parallel must be bit-identical to sequential"
    );
    assert!(first.iter().any(|&b| b) || first.iter().any(|&b| !b));

    let stats = pool_a.stats();
    assert_eq!(stats.threads, 4);
    assert_eq!(stats.queries, 120);
    assert_eq!(stats.parallel_batches, 2);
}
