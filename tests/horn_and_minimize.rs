//! Cross-crate property tests for the measurement machinery: exact
//! two-level minimisation and Horn upper bounds against the semantic
//! oracle and the SAT solver.

use proptest::prelude::*;
use revkb::logic::{Alphabet, Formula, Var};
use revkb::revision::minimize::{minimum_cnf_literals, minimum_dnf_of, prime_implicants};
use revkb::revision::{
    horn_formula, horn_lub, is_horn_definable, revise_on, ModelBasedOp, ModelSet,
};

fn formula_strategy(num_vars: u32, depth: u32) -> BoxedStrategy<Formula> {
    let leaf = (0..num_vars, any::<bool>())
        .prop_map(|(v, pos)| Formula::lit(Var(v), pos))
        .boxed();
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.xor(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
        ]
        .boxed()
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    /// The exact minimum DNF of a revised base is equivalent to the
    /// base and no larger than the canonical minterm DNF.
    #[test]
    fn minimum_dnf_of_revised_bases(
        t in formula_strategy(4, 3),
        p in formula_strategy(3, 2),
    ) {
        prop_assume!(revkb::sat::satisfiable(&t));
        prop_assume!(revkb::sat::satisfiable(&p));
        let alpha = Alphabet::of_formulas([&t, &p]);
        for op in [ModelBasedOp::Dalal, ModelBasedOp::Winslett] {
            let revised = revise_on(op, &alpha, &t, &p);
            let two_level = minimum_dnf_of(&revised);
            let vars = revised.alphabet().vars().to_vec();
            let dnf = two_level.to_dnf(&vars);
            let back = ModelSet::of_formula(revised.alphabet().clone(), &dnf);
            prop_assert_eq!(&back, &revised, "{} min-DNF wrong", op.name());
            prop_assert!(
                two_level.literal_count() <= revised.len() * vars.len(),
                "larger than the minterm DNF"
            );
        }
    }

    /// Prime implicants never cover off-set points, and every minterm
    /// is covered by some prime.
    #[test]
    fn primes_are_sound_and_complete(onset_mask in 0u64..65536) {
        let n = 4usize;
        let minterms: Vec<u64> = (0..16u64).filter(|&m| onset_mask >> m & 1 == 1).collect();
        let primes = prime_implicants(&minterms, n);
        let on: std::collections::HashSet<u64> = minterms.iter().copied().collect();
        for p in &primes {
            for m in 0..16u64 {
                if p.covers(m) {
                    prop_assert!(on.contains(&m));
                }
            }
        }
        for &m in &minterms {
            prop_assert!(primes.iter().any(|p| p.covers(m)));
        }
    }

    /// Min-CNF and min-DNF agree through complementation.
    #[test]
    fn cnf_dnf_duality(onset_mask in 0u64..65536) {
        let n = 4usize;
        let minterms: Vec<u64> = (0..16u64).filter(|&m| onset_mask >> m & 1 == 1).collect();
        let offset: Vec<u64> = (0..16u64).filter(|&m| onset_mask >> m & 1 == 0).collect();
        prop_assert_eq!(
            minimum_cnf_literals(&minterms, n),
            revkb::revision::minimize::minimum_dnf(&offset, n).literal_count()
        );
    }

    /// The Horn LUB is a sound upper bound: the original entails the
    /// LUB's formula, and the LUB is the *least* closed superset.
    #[test]
    fn horn_lub_soundness(f in formula_strategy(4, 3)) {
        let alpha = Alphabet::new((0..4).map(Var).collect());
        let ms = ModelSet::of_formula(alpha.clone(), &f);
        let lub = horn_lub(&ms);
        prop_assert!(ms.is_subset_of(&lub));
        prop_assert!(is_horn_definable(&lub));
        let g = horn_formula(&lub);
        prop_assert!(revkb::sat::entails(&f, &g));
        // Least: any Horn-definable superset of ms contains the LUB.
        // (Witnessed by the closure construction itself.)
        let back = ModelSet::of_formula(alpha, &g);
        prop_assert_eq!(back, lub);
    }
}
