//! Replication contract of the revision service: a replica following
//! a primary's WAL stream is, at every moment the stream is cut,
//! byte-for-byte a committed prefix of the primary — and once the
//! stream drains it answers exactly like the primary and like a
//! single-node oracle that ran the same workload. Faults are injected
//! deterministically (see `support::FaultProxy`), seeded by
//! `REVKB_FAULT_SEED`, so every kill point and corruption offset
//! reproduces bit-for-bit.

mod support;

use revkb::server::wal::{decode_records, LOG_FILE, LOG_MAGIC};
use revkb::server::{Json, OpName, Server, ServerConfig, SyncMode, WalOp};
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use support::{fault_seed, Fault, FaultProxy, Lcg};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("revkb-repl-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(dir: &Path) -> ServerConfig {
    ServerConfig::default()
        .with_data_dir(Some(dir.to_path_buf()))
        .with_wal_sync(SyncMode::Off)
}

fn call(server: &Server, line: &str) -> Json {
    let response = server.handle_line(line).expect("request line is not blank");
    Json::parse(&response).unwrap_or_else(|e| panic!("response not JSON ({e}): {response}"))
}

fn result(resp: &Json) -> &Json {
    assert_eq!(
        resp.get("ok").and_then(Json::as_bool),
        Some(true),
        "{resp:?}"
    );
    resp.get("result").expect("ok response carries a result")
}

/// The answer signature of a server: for every named KB, the verdict
/// (entailed / not / error code) on a fixed battery of queries. Two
/// servers with equal signatures are indistinguishable to clients.
fn answer_signature(server: &Server, kbs: &[&str]) -> Vec<String> {
    let queries = ["a", "!a", "b", "!b", "a & b", "a | b", "a -> b"];
    let mut sig = Vec::new();
    for kb in kbs {
        for q in queries {
            let resp = call(
                server,
                &format!(r#"{{"cmd":"query","kb":"{kb}","q":"{q}"}}"#),
            );
            let verdict = match resp.get("ok").and_then(Json::as_bool) {
                Some(true) => resp
                    .get("result")
                    .and_then(|r| r.get("entails"))
                    .and_then(Json::as_bool)
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "?".into()),
                _ => resp
                    .get("code")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
            };
            sig.push(format!("{kb}|{q}|{verdict}"));
        }
    }
    sig
}

/// The mixed workload: one KB per operator (all eight), an iterated
/// model-based chain, and a KB that is dropped again — 19 committed
/// records.
fn run_workload(server: &Server) {
    for op in OpName::ALL {
        let kb = format!("kb-{}", op.tag());
        call(
            server,
            &format!(r#"{{"cmd":"load","kb":"{kb}","t":"a; a -> b"}}"#),
        );
        result(&call(
            server,
            &format!(
                r#"{{"cmd":"revise","kb":"{kb}","op":"{}","p":"!b"}}"#,
                op.tag()
            ),
        ));
    }
    result(&call(
        server,
        r#"{"cmd":"revise","kb":"kb-dalal","op":"dalal","p":"a & b"}"#,
    ));
    call(server, r#"{"cmd":"load","kb":"doomed","t":"a"}"#);
    result(&call(server, r#"{"cmd":"drop","kb":"doomed"}"#));
}

fn workload_kbs() -> Vec<String> {
    let mut kbs: Vec<String> = OpName::ALL
        .iter()
        .map(|op| format!("kb-{}", op.tag()))
        .collect();
    kbs.push("doomed".into());
    kbs
}

/// Boot a durable primary serving TCP on an ephemeral port.
fn start_primary(dir: &Path) -> (Server, SocketAddr, JoinHandle<std::io::Result<()>>) {
    let primary = Server::open(durable_config(dir)).expect("open primary");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind primary");
    let addr = listener.local_addr().expect("primary addr");
    let srv = primary.clone();
    let thread = std::thread::spawn(move || srv.serve_tcp(listener));
    (primary, addr, thread)
}

fn shutdown_primary(primary: &Server, thread: JoinHandle<std::io::Result<()>>) {
    result(&call(primary, r#"{"cmd":"shutdown"}"#));
    thread
        .join()
        .expect("primary thread join")
        .expect("serve_tcp exits cleanly");
}

fn stop_replica(replica: &Server, thread: JoinHandle<()>) {
    replica.begin_shutdown();
    thread.join().expect("replication thread join");
}

fn wait_until(what: &str, timeout: Duration, mut check: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if check() {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("timed out waiting for {what}");
}

/// Absolute offsets (including the 8-byte magic) of every record
/// boundary in a log file's bytes — `[8, ..., bytes.len()]`.
fn record_boundaries(log: &[u8]) -> Vec<u64> {
    let mut boundaries = vec![LOG_MAGIC.len() as u64];
    let mut pos = LOG_MAGIC.len();
    while pos + 8 <= log.len() {
        let len = u32::from_le_bytes(log[pos..pos + 4].try_into().unwrap()) as usize;
        if pos + 8 + len > log.len() {
            break;
        }
        pos += 8 + len;
        boundaries.push(pos as u64);
    }
    assert_eq!(pos, log.len(), "the primary log must have no torn tail");
    boundaries
}

/// Replay committed WAL ops into a fresh in-memory server — the
/// single-node oracle for a given log prefix.
fn oracle_for(ops: &[WalOp]) -> Server {
    let oracle = Server::new(ServerConfig::default());
    for op in ops {
        let line = match op {
            WalOp::Load { kb, t } => format!(r#"{{"cmd":"load","kb":"{kb}","t":"{t}"}}"#),
            WalOp::Revise { kb, op, p, backend } => format!(
                r#"{{"cmd":"revise","kb":"{kb}","op":"{op}","p":"{p}","backend":"{backend}"}}"#
            ),
            WalOp::Drop { kb } => format!(r#"{{"cmd":"drop","kb":"{kb}"}}"#),
        };
        result(&call(&oracle, &line));
    }
    oracle
}

/// Kill the replica at *every* record boundary of the mixed workload:
/// for each boundary, a fresh replica streams exactly that prefix
/// (the proxy cuts the stream there and every reconnect ships zero
/// bytes), is shut down, and must answer exactly like an oracle that
/// ran only the committed prefix. Restarted against the real primary
/// it must resume from its durable offset — passing the checksum
/// handshake — and converge to the primary, byte-for-byte.
#[test]
fn replica_killed_at_every_record_boundary_recovers_and_converges() {
    let dir = tmpdir("kill-primary");
    let (primary, addr, primary_thread) = start_primary(&dir);
    run_workload(&primary);
    let log = std::fs::read(dir.join(LOG_FILE)).expect("read primary log");
    let boundaries = record_boundaries(&log);
    assert_eq!(boundaries.len(), 20, "19 records + the log head");
    let (all_ops, good) = decode_records(&log[LOG_MAGIC.len()..]);
    assert_eq!(good + LOG_MAGIC.len(), log.len());

    let kbs = workload_kbs();
    let kb_refs: Vec<&str> = kbs.iter().map(String::as_str).collect();
    let full_oracle = oracle_for(&all_ops);
    let full_sig = answer_signature(&full_oracle, &kb_refs);
    assert_eq!(full_sig, answer_signature(&primary, &kb_refs));

    let rdir = tmpdir("kill-replica");
    for (i, &boundary) in boundaries.iter().enumerate() {
        let _ = std::fs::remove_dir_all(&rdir);
        let proxy = FaultProxy::start(addr);
        proxy.push_fault(Fault::CutAfter(boundary - LOG_MAGIC.len() as u64));
        // Every reconnect handshakes fine but ships nothing, so the
        // replica deterministically cannot progress past the boundary
        // no matter how the poll below races the cut.
        for _ in 0..10_000 {
            proxy.push_fault(Fault::CutAfter(0));
        }
        let replica =
            Server::open(durable_config(&rdir).with_replica_of(Some(proxy.addr().to_string())))
                .expect("open replica");
        let thread = replica.start_replication().expect("replica replicates");
        wait_until(
            &format!("replica to reach boundary {i} (offset {boundary})"),
            Duration::from_secs(30),
            || replica.replication_status().expect("status").offset == boundary,
        );
        proxy.block_new(true);
        stop_replica(&replica, thread);
        drop(replica);
        drop(proxy);

        // Restarted from its own directory, the replica is exactly
        // the committed prefix...
        let prefix_ops = &all_ops[..{
            let body = &log[LOG_MAGIC.len()..boundary as usize];
            decode_records(body).0.len()
        }];
        let replica = Server::open(durable_config(&rdir).with_replica_of(Some(addr.to_string())))
            .expect("reopen replica");
        let report = replica.recovery_report().expect("durable replica");
        assert_eq!(report.replay_errors, 0, "boundary {i}: {report:?}");
        assert_eq!(report.replayed, prefix_ops.len() as u64, "boundary {i}");
        let prefix_oracle = oracle_for(prefix_ops);
        assert_eq!(
            answer_signature(&replica, &kb_refs),
            answer_signature(&prefix_oracle, &kb_refs),
            "boundary {i}: prefix state diverges from the oracle"
        );

        // ...and resuming against the real primary it converges fully.
        let thread = replica.start_replication().expect("replica resumes");
        wait_until(
            &format!("replica to catch up from boundary {i}"),
            Duration::from_secs(30),
            || replica.replication_status().expect("status").offset == log.len() as u64,
        );
        let status = replica.replication_status().expect("status");
        assert!(!status.diverged, "boundary {i}: {status:?}");
        assert_eq!(status.lag_bytes, 0, "boundary {i}");
        assert_eq!(
            answer_signature(&replica, &kb_refs),
            full_sig,
            "boundary {i}: converged replica diverges from the oracle"
        );
        let replica_log = std::fs::read(rdir.join(LOG_FILE)).expect("read replica log");
        assert_eq!(
            replica_log, log,
            "boundary {i}: replica log is not byte-identical to the primary's"
        );
        stop_replica(&replica, thread);
    }
    shutdown_primary(&primary, primary_thread);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&rdir);
}

/// Two seeded mid-record cuts: each severs the stream inside a
/// record, the replica reconnects with backoff, resumes from its last
/// complete record, and still converges to the primary.
#[test]
fn seeded_mid_record_cuts_reconnect_and_resume() {
    let dir = tmpdir("resume-primary");
    let (primary, addr, primary_thread) = start_primary(&dir);
    run_workload(&primary);
    let log = std::fs::read(dir.join(LOG_FILE)).expect("read primary log");
    let boundaries = record_boundaries(&log);
    let total = log.len() as u64 - LOG_MAGIC.len() as u64;

    let mut lcg = Lcg::new(fault_seed());
    // First cut: anywhere strictly inside session 1's stream.
    let c1 = lcg.in_range(1, total);
    // The resume offset after cut 1 is the last boundary the replica
    // fully received — deterministic given the seed.
    let resume = *boundaries
        .iter()
        .rfind(|&&b| b <= LOG_MAGIC.len() as u64 + c1)
        .unwrap();
    let remaining = log.len() as u64 - resume;
    let c2 = lcg.in_range(1, remaining.max(2));
    let proxy = FaultProxy::start(addr);
    proxy.push_fault(Fault::CutAfter(c1));
    proxy.push_fault(Fault::CutAfter(c2));
    // Third session: clean by default — the replica drains the rest.

    let replica =
        Server::new(ServerConfig::default().with_replica_of(Some(proxy.addr().to_string())));
    let thread = replica.start_replication().expect("replica replicates");
    wait_until(
        "replica to converge through two cuts",
        Duration::from_secs(30),
        || replica.replication_status().expect("status").offset == log.len() as u64,
    );
    let status = replica.replication_status().expect("status");
    assert!(
        status.sessions >= 3,
        "two cuts force at least three sessions (seed {}): {status:?}",
        fault_seed()
    );
    assert!(!status.diverged, "{status:?}");
    let kbs = workload_kbs();
    let kb_refs: Vec<&str> = kbs.iter().map(String::as_str).collect();
    assert_eq!(
        answer_signature(&replica, &kb_refs),
        answer_signature(&primary, &kb_refs),
        "seed {}",
        fault_seed()
    );
    stop_replica(&replica, thread);
    drop(proxy);
    shutdown_primary(&primary, primary_thread);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corrupt one seeded byte inside *every* record of the shipped
/// stream, one replica per record: the divergence detector must trip
/// on the checksum every time, the records before the corruption must
/// have applied, and the diverged replica must refuse queries.
#[test]
fn every_corrupted_shipped_record_triggers_divergence() {
    let dir = tmpdir("corrupt-primary");
    let (primary, addr, primary_thread) = start_primary(&dir);
    run_workload(&primary);
    let log = std::fs::read(dir.join(LOG_FILE)).expect("read primary log");
    let boundaries = record_boundaries(&log);

    let mut lcg = Lcg::new(fault_seed());
    for (i, window) in boundaries.windows(2).enumerate() {
        let (start, end) = (window[0], window[1]);
        let payload_len = end - start - 8;
        // A seeded byte inside the record's payload (past the header,
        // so the frame still parses and the CRC is what trips).
        let victim = (start - LOG_MAGIC.len() as u64) + 8 + lcg.in_range(0, payload_len);
        let proxy = FaultProxy::start(addr);
        proxy.push_fault(Fault::CorruptAt(victim));
        let replica =
            Server::new(ServerConfig::default().with_replica_of(Some(proxy.addr().to_string())));
        let thread = replica.start_replication().expect("replica replicates");
        wait_until(
            &format!("divergence on record {i} (seed {})", fault_seed()),
            Duration::from_secs(30),
            || replica.replication_status().expect("status").diverged,
        );
        let status = replica.replication_status().expect("status");
        assert_eq!(
            status.records_applied, i as u64,
            "record {i}: everything before the corruption applies"
        );
        let resp = call(&replica, r#"{"cmd":"query","kb":"kb-dalal","q":"a"}"#);
        assert_eq!(
            resp.get("code").and_then(Json::as_str),
            Some("diverged"),
            "record {i}: a diverged replica must refuse to serve"
        );
        stop_replica(&replica, thread);
        drop(proxy);
    }
    shutdown_primary(&primary, primary_thread);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A replica that followed primary A must be refused by primary B
/// whose log has the same length but different contents: the resume
/// handshake cross-checks the record checksum at the resume offset.
#[test]
fn resume_handshake_refuses_a_foreign_primary() {
    let dir_a = tmpdir("foreign-a");
    let dir_b = tmpdir("foreign-b");
    let (primary_a, addr_a, thread_a) = start_primary(&dir_a);
    let (primary_b, addr_b, thread_b) = start_primary(&dir_b);
    // Same shape, same record length, different bytes → different CRC.
    result(&call(&primary_a, r#"{"cmd":"load","kb":"k","t":"aaaa"}"#));
    result(&call(&primary_b, r#"{"cmd":"load","kb":"k","t":"bbbb"}"#));
    assert_eq!(
        std::fs::read(dir_a.join(LOG_FILE)).unwrap().len(),
        std::fs::read(dir_b.join(LOG_FILE)).unwrap().len()
    );

    let rdir = tmpdir("foreign-replica");
    let replica = Server::open(durable_config(&rdir).with_replica_of(Some(addr_a.to_string())))
        .expect("open replica");
    let thread = replica.start_replication().expect("replica replicates");
    let target = std::fs::read(dir_a.join(LOG_FILE)).unwrap().len() as u64;
    wait_until(
        "replica to follow primary A",
        Duration::from_secs(30),
        || replica.replication_status().expect("status").offset == target,
    );
    stop_replica(&replica, thread);
    drop(replica);

    // Repointed at B, the handshake must be refused as diverged.
    let replica = Server::open(durable_config(&rdir).with_replica_of(Some(addr_b.to_string())))
        .expect("reopen replica");
    let thread = replica.start_replication().expect("replica replicates");
    wait_until(
        "primary B to refuse the foreign resume",
        Duration::from_secs(30),
        || replica.replication_status().expect("status").diverged,
    );
    let stats = call(&primary_b, r#"{"cmd":"stats"}"#);
    let repl = result(&stats).get("repl").expect("repl block").clone();
    assert!(
        repl.get("refusals").and_then(Json::as_u64).unwrap_or(0) >= 1,
        "{repl:?}"
    );
    stop_replica(&replica, thread);
    shutdown_primary(&primary_a, thread_a);
    shutdown_primary(&primary_b, thread_b);
    for dir in [&dir_a, &dir_b, &rdir] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// Replicas reject writes with the stable `read_only` code while
/// reads and the control plane keep answering.
#[test]
fn replica_write_rejection_is_read_only() {
    let replica =
        Server::new(ServerConfig::default().with_replica_of(Some("127.0.0.1:1".to_string())));
    for line in [
        r#"{"cmd":"load","kb":"k","t":"a"}"#,
        r#"{"cmd":"revise","kb":"k","op":"dalal","p":"!a"}"#,
        r#"{"cmd":"drop","kb":"k"}"#,
    ] {
        let resp = call(&replica, line);
        assert_eq!(
            resp.get("code").and_then(Json::as_str),
            Some("read_only"),
            "{line} -> {resp:?}"
        );
    }
    result(&call(&replica, r#"{"cmd":"ping"}"#));
    result(&call(&replica, r#"{"cmd":"list"}"#));
}

// --------------------------------------------------------- property

use proptest::prelude::*;

static PROP_CASE: AtomicUsize = AtomicUsize::new(0);

/// One scripted step of the convergence property: a primary mutation
/// or a replica-side connection cut.
fn apply_event(primary: &Server, proxy: &FaultProxy, step: usize, event: u8) {
    let kb = format!("kb{}", step % 3);
    match event % 6 {
        0 => {
            call(
                primary,
                &format!(r#"{{"cmd":"load","kb":"{kb}","t":"a; a -> b"}}"#),
            );
        }
        1 => {
            call(
                primary,
                &format!(r#"{{"cmd":"revise","kb":"{kb}","op":"dalal","p":"!b"}}"#),
            );
        }
        2 => {
            call(
                primary,
                &format!(r#"{{"cmd":"revise","kb":"{kb}","op":"widtio","p":"b | c"}}"#),
            );
        }
        3 => {
            call(
                primary,
                &format!(r#"{{"cmd":"revise","kb":"{kb}","op":"weber","p":"a & c"}}"#),
            );
        }
        4 => {
            call(primary, &format!(r#"{{"cmd":"drop","kb":"{kb}"}}"#));
        }
        _ => proxy.cut_all(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    /// Arbitrary interleavings of load / revise / drop with replica
    /// disconnects converge: once the replica's offset reaches the
    /// primary's committed bytes, its KB list and every query answer
    /// equal the primary's — and both equal a single-node oracle that
    /// replays the primary's log.
    #[test]
    fn interleaved_writes_and_cuts_converge(events in proptest::collection::vec(0u8..6, 4..14)) {
        let case = PROP_CASE.fetch_add(1, Ordering::Relaxed);
        let dir = tmpdir(&format!("prop-{case}"));
        let (primary, addr, primary_thread) = start_primary(&dir);
        let proxy = FaultProxy::start(addr);
        let replica = Server::new(
            ServerConfig::default().with_replica_of(Some(proxy.addr().to_string())),
        );
        let thread = replica.start_replication().expect("replica replicates");

        for (step, &event) in events.iter().enumerate() {
            apply_event(&primary, &proxy, step, event);
        }
        let committed = primary.wal_committed_bytes().expect("durable primary");
        wait_until("replica to drain the interleaving", Duration::from_secs(30), || {
            replica.replication_status().expect("status").offset == committed
        });
        let status = replica.replication_status().expect("status");
        prop_assert!(!status.diverged, "{status:?}");
        prop_assert_eq!(status.lag_bytes, 0);

        // Identical KB lists...
        let names = |server: &Server| -> Vec<String> {
            let resp = call(server, r#"{"cmd":"list"}"#);
            let mut names: Vec<String> = result(&resp)
                .get("kbs")
                .and_then(Json::as_array)
                .expect("kbs array")
                .iter()
                .filter_map(|kb| kb.get("name").and_then(Json::as_str).map(String::from))
                .collect();
            names.sort();
            names
        };
        prop_assert_eq!(names(&replica), names(&primary));

        // ...and identical answers, both matching the log's oracle.
        let log = std::fs::read(dir.join(LOG_FILE)).expect("read primary log");
        let (ops, _) = decode_records(&log[LOG_MAGIC.len()..]);
        let oracle = oracle_for(&ops);
        let kbs = ["kb0", "kb1", "kb2"];
        let primary_sig = answer_signature(&primary, &kbs);
        prop_assert_eq!(&answer_signature(&replica, &kbs), &primary_sig);
        prop_assert_eq!(&answer_signature(&oracle, &kbs), &primary_sig);

        stop_replica(&replica, thread);
        drop(proxy);
        shutdown_primary(&primary, primary_thread);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
