//! Metatheoretic properties of the operators that the paper uses
//! implicitly (mostly via Eiter–Gottlob [8]): collapses over complete
//! theories, idempotence, and the pointwise/global relationships.

use proptest::prelude::*;
use revkb::logic::{Alphabet, Formula, Var};
use revkb::revision::{revise_masks, revise_on, ModelBasedOp};

fn formula_strategy(num_vars: u32, depth: u32) -> BoxedStrategy<Formula> {
    let leaf = (0..num_vars, any::<bool>())
        .prop_map(|(v, pos)| Formula::lit(Var(v), pos))
        .boxed();
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.xor(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
        ]
        .boxed()
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Over a complete theory (one model), the proofs' key collapse
    /// holds: Satoh = Winslett and Dalal = Forbus (global and
    /// pointwise proximity coincide when there is only one reference
    /// model). This is the Eiter–Gottlob observation behind Thm 3.2.
    #[test]
    fn complete_theory_collapses(
        state in 0u64..32,
        p in formula_strategy(5, 3),
    ) {
        prop_assume!(revkb::sat::satisfiable(&p));
        let t = Formula::and_all(
            (0..5u32).map(|i| Formula::lit(Var(i), state >> i & 1 == 1)),
        );
        let alpha = Alphabet::of_formulas([&t, &p]);
        prop_assert_eq!(
            revise_on(ModelBasedOp::Satoh, &alpha, &t, &p),
            revise_on(ModelBasedOp::Winslett, &alpha, &t, &p),
            "Satoh ≠ Winslett over a complete theory"
        );
        prop_assert_eq!(
            revise_on(ModelBasedOp::Dalal, &alpha, &t, &p),
            revise_on(ModelBasedOp::Forbus, &alpha, &t, &p),
            "Dalal ≠ Forbus over a complete theory"
        );
    }

    /// Idempotence: revising a second time with the same formula
    /// changes nothing (the result already satisfies P, so every model
    /// is at distance zero from itself).
    #[test]
    fn revision_is_idempotent(
        t in formula_strategy(5, 3),
        p in formula_strategy(4, 3),
    ) {
        prop_assume!(revkb::sat::satisfiable(&t));
        prop_assume!(revkb::sat::satisfiable(&p));
        let alpha = Alphabet::of_formulas([&t, &p]);
        let p_models = alpha.models(&p);
        for op in ModelBasedOp::ALL {
            let once = revise_on(op, &alpha, &t, &p);
            let twice = revise_masks(op, once.masks(), &p_models);
            let mut twice = twice;
            twice.sort_unstable();
            twice.dedup();
            prop_assert_eq!(once.masks(), &twice[..], "{} not idempotent", op.name());
        }
    }

    /// Revising with a tautology over the same alphabet is the
    /// identity for every operator (distance 0 to every model).
    #[test]
    fn tautology_revision_is_identity(t in formula_strategy(4, 3)) {
        prop_assume!(revkb::sat::satisfiable(&t));
        let taut = Formula::var(Var(0)).or(Formula::var(Var(0)).not());
        let alpha = Alphabet::of_formulas([&t, &taut]);
        let t_models = revkb::revision::ModelSet::of_formula(alpha.clone(), &t);
        for op in ModelBasedOp::ALL {
            let got = revise_on(op, &alpha, &t, &taut);
            prop_assert_eq!(&got, &t_models, "{} changed T on a tautology", op.name());
        }
    }

    /// AGM/KM success (K*1 / U1): every model of `T * P` satisfies
    /// `P`, for all six model-based operators.
    #[test]
    fn success_postulate(
        t in formula_strategy(5, 3),
        p in formula_strategy(4, 3),
    ) {
        prop_assume!(revkb::sat::satisfiable(&t));
        prop_assume!(revkb::sat::satisfiable(&p));
        let alpha = Alphabet::of_formulas([&t, &p]);
        for op in ModelBasedOp::ALL {
            let got = revise_on(op, &alpha, &t, &p);
            prop_assert!(got.entails(&p), "{} violates success", op.name());
        }
    }

    /// AGM consistency preservation (K*5): a satisfiable `P` yields a
    /// satisfiable revised base, for all six model-based operators —
    /// even when `T` itself is inconsistent.
    #[test]
    fn consistency_preservation_postulate(
        t in formula_strategy(5, 3),
        p in formula_strategy(4, 3),
    ) {
        prop_assume!(revkb::sat::satisfiable(&p));
        let alpha = Alphabet::of_formulas([&t, &p]);
        for op in ModelBasedOp::ALL {
            let got = revise_on(op, &alpha, &t, &p);
            prop_assert!(
                !got.is_empty(),
                "{} returned an inconsistent base for satisfiable P",
                op.name()
            );
        }
    }

    /// AGM vacuity (K*3 + K*4): when `T ∧ P` is consistent, the
    /// revision *is* `Mod(T ∧ P)` — for the revision-style operators.
    /// The update-style operators (Winslett, Forbus) deliberately
    /// violate this (their pointwise semantics keeps models of `P`
    /// close to *every* model of `T`), which is why they are excluded.
    #[test]
    fn vacuity_postulate(
        t in formula_strategy(5, 3),
        p in formula_strategy(4, 3),
    ) {
        let both = t.clone().and(p.clone());
        prop_assume!(revkb::sat::satisfiable(&both));
        let alpha = Alphabet::of_formulas([&t, &p]);
        let expected = revkb::revision::ModelSet::of_formula(alpha.clone(), &both);
        for op in [
            ModelBasedOp::Borgida,
            ModelBasedOp::Satoh,
            ModelBasedOp::Dalal,
            ModelBasedOp::Weber,
        ] {
            let got = revise_on(op, &alpha, &t, &p);
            prop_assert_eq!(&got, &expected, "{} violates vacuity", op.name());
        }
    }

    /// Revising with an already-entailed formula: for revision-style
    /// operators the result is exactly T (vacuity + success combined).
    #[test]
    fn entailed_update_preserves_t(
        t in formula_strategy(4, 3),
        q in formula_strategy(3, 2),
    ) {
        prop_assume!(revkb::sat::satisfiable(&t));
        let p = t.clone().or(q); // weaker than T, so T ⊨ P
        let alpha = Alphabet::of_formulas([&t, &p]);
        let t_models = revkb::revision::ModelSet::of_formula(alpha.clone(), &t);
        for op in [
            ModelBasedOp::Borgida,
            ModelBasedOp::Satoh,
            ModelBasedOp::Dalal,
            ModelBasedOp::Weber,
            ModelBasedOp::Winslett, // KM U2 holds for the PMA too
        ] {
            let got = revise_on(op, &alpha, &t, &p);
            prop_assert_eq!(&got, &t_models, "{} violates inertia", op.name());
        }
    }
}
