//! Machine-checks of the non-compactability reductions (E6–E8 and E14
//! in DESIGN.md), run across crates through the public API, including
//! random sampling beyond the exhaustive universes covered by the
//! in-crate unit tests.

use rand::rngs::StdRng;
use rand::SeedableRng;
use revkb::instances::{
    all_instances, gamma_max, random_instance, thm41_bounded_transform, Thm31Family, Thm33Family,
    Thm36Family,
};
use revkb::logic::Alphabet;
use revkb::revision::{gfuv_entails, revise_iterated_on, revise_on, ModelBasedOp};

/// Theorem 3.1 (GFUV): exhaustive over a 4-clause universe plus random
/// instances over a larger universe.
#[test]
fn thm31_gfuv_reduction() {
    let universe: Vec<_> = gamma_max(3).into_iter().take(4).collect();
    let family = Thm31Family::new(3, universe.clone());
    for pi in all_instances(3, &universe) {
        assert_eq!(
            gfuv_entails(&family.t, &family.p, &family.query(&pi)),
            pi.satisfiable()
        );
    }
    // Random π over the full γ₃ᵐᵃˣ (8 clauses).
    let full = gamma_max(3);
    let family = Thm31Family::new(3, full.clone());
    let mut rng = StdRng::seed_from_u64(31);
    for _ in 0..10 {
        let pi = random_instance(3, &full, 0.5, &mut rng);
        assert_eq!(
            gfuv_entails(&family.t, &family.p, &family.query(&pi)),
            pi.satisfiable(),
            "random π failed: {pi:?}"
        );
    }
}

/// Theorem 4.1: the bounded transform preserves GFUV consequence with
/// `|P'| = 1`.
#[test]
fn thm41_bounded_transform_preserves() {
    let universe: Vec<_> = gamma_max(3).into_iter().take(3).collect();
    let family = Thm31Family::new(3, universe.clone());
    let (t2, p2, _) = thm41_bounded_transform(&family);
    assert_eq!(p2.size(), 1);
    for pi in all_instances(3, &universe) {
        let q = family.query(&pi);
        assert_eq!(
            gfuv_entails(&t2, &p2, &q),
            pi.satisfiable(),
            "transformed family diverges on {pi:?}"
        );
    }
}

/// Theorem 3.3 (Forbus): the guard-column family, exhaustive over a
/// 2-clause universe.
#[test]
fn thm33_forbus_reduction() {
    let universe: Vec<_> = gamma_max(3).into_iter().take(2).collect();
    let family = Thm33Family::new(3, universe.clone());
    let alpha = Alphabet::of_formulas([&family.t, &family.p]);
    let revised = revise_on(ModelBasedOp::Forbus, &alpha, &family.t, &family.p);
    for pi in all_instances(3, &universe) {
        assert_eq!(revised.contains(&family.m_pi(&pi)), !pi.satisfiable());
        assert_eq!(revised.entails(&family.query(&pi)), pi.satisfiable());
    }
}

/// Theorem 3.6 (Dalal/Weber): a *different* clause-universe slice than
/// the in-crate test, plus the distance invariant `k_{T,P} = n`.
#[test]
fn thm36_dalal_weber_reduction() {
    let universe: Vec<_> = gamma_max(3).into_iter().skip(2).take(4).collect();
    let family = Thm36Family::new(3, universe.clone());
    let alpha = Alphabet::new(
        family
            .b
            .iter()
            .chain(&family.y)
            .chain(&family.c)
            .copied()
            .collect(),
    );
    assert_eq!(
        revkb::revision::distance::min_distance(&family.t, &family.p_single),
        Some(3)
    );
    let dalal = revise_on(ModelBasedOp::Dalal, &alpha, &family.t, &family.p_single);
    let weber = revise_on(ModelBasedOp::Weber, &alpha, &family.t, &family.p_single);
    for pi in all_instances(3, &universe) {
        let c = family.c_pi(&pi);
        assert_eq!(dalal.contains(&c), pi.satisfiable(), "Dalal on {pi:?}");
        assert_eq!(weber.contains(&c), pi.satisfiable(), "Weber on {pi:?}");
    }
}

/// Theorem 6.5 (iterated): all six operators coincide on the family
/// and encode satisfiability; checked on a fresh universe slice.
#[test]
fn thm65_iterated_reduction() {
    let universe: Vec<_> = gamma_max(3).into_iter().skip(4).take(3).collect();
    let family = Thm36Family::new(3, universe.clone());
    let alpha = Alphabet::new(
        family
            .b
            .iter()
            .chain(&family.y)
            .chain(&family.c)
            .copied()
            .collect(),
    );
    let reference = revise_iterated_on(ModelBasedOp::Dalal, &alpha, &family.t, &family.p_sequence);
    for op in ModelBasedOp::ALL {
        let got = revise_iterated_on(op, &alpha, &family.t, &family.p_sequence);
        assert_eq!(
            got,
            reference,
            "{} diverges on the Thm 6.5 family",
            op.name()
        );
    }
    for pi in all_instances(3, &universe) {
        assert_eq!(reference.contains(&family.c_pi(&pi)), pi.satisfiable());
    }
}
