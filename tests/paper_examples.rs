//! End-to-end checks of every worked example in the paper (E16 in
//! DESIGN.md), driven through the public API of the root crate.

use revkb::instances::{
    office_example, running_example, section4_example, section5_example, section6_example,
    syntax_example,
};
use revkb::logic::{Formula, Interpretation};
use revkb::revision::{
    gfuv_entails, gfuv_explicit, query_equivalent_enum, revise, revise_iterated_on, ModelBasedOp,
    RevisedKb,
};

/// §1 office example: revision concludes Bill; update stays agnostic.
#[test]
fn office_example_revision_vs_update() {
    let s = office_example();
    let bill = Formula::var(s.sig.lookup("bill").unwrap());
    for op in [
        ModelBasedOp::Dalal,
        ModelBasedOp::Satoh,
        ModelBasedOp::Weber,
        ModelBasedOp::Borgida,
    ] {
        let kb = RevisedKb::compile(op, &s.t, &s.p).unwrap();
        assert!(kb.entails(&bill), "{} should conclude bill", op.name());
    }
    for op in [ModelBasedOp::Winslett, ModelBasedOp::Forbus] {
        let kb = RevisedKb::compile(op, &s.t, &s.p).unwrap();
        assert!(!kb.entails(&bill), "{} should stay agnostic", op.name());
        assert!(kb.entails(&s.p), "success postulate");
    }
}

/// §2.2.1: `T₁ = {a,b}` and `T₂ = {a, a→b}` are logically equivalent
/// but revise differently under GFUV (and WIDTIO).
#[test]
fn syntax_sensitivity() {
    let (sig, t1, t2, p) = syntax_example();
    let a = Formula::var(sig.lookup("a").unwrap());
    assert!(revkb::sat::equivalent(&t1.conjunction(), &t2.conjunction()));
    assert!(gfuv_entails(&t1, &p, &a));
    assert!(!gfuv_entails(&t2, &p, &a));
    let e1 = gfuv_explicit(&t1, &p, 100).unwrap();
    let e2 = gfuv_explicit(&t2, &p, 100).unwrap();
    assert!(!revkb::sat::equivalent(&e1, &e2));
}

/// §2.2.2 running example: the exact per-operator model sets from the
/// paper's tables of symmetric differences.
#[test]
fn running_example_model_sets() {
    let s = running_example();
    let name = |n: &str| s.sig.lookup(n).unwrap();
    let interp = |names: &[&str]| -> Interpretation { names.iter().map(|n| name(n)).collect() };
    let n1 = interp(&["a", "b"]);
    let n2 = interp(&["c"]);
    let n3 = interp(&["b", "d"]);
    let n4 = interp(&[]);

    let expectations: Vec<(ModelBasedOp, Vec<&Interpretation>)> = vec![
        (ModelBasedOp::Winslett, vec![&n1, &n2, &n3]),
        (ModelBasedOp::Borgida, vec![&n1, &n2, &n3]),
        (ModelBasedOp::Forbus, vec![&n1, &n3]),
        (ModelBasedOp::Satoh, vec![&n1, &n2]),
        (ModelBasedOp::Dalal, vec![&n1]),
        (ModelBasedOp::Weber, vec![&n1, &n2, &n3, &n4]),
    ];
    for (op, expected) in expectations {
        let got = revise(op, &s.t, &s.p);
        assert_eq!(got.len(), expected.len(), "{} count", op.name());
        for m in expected {
            assert!(got.contains(m), "{} misses {m:?}", op.name());
        }
    }
}

/// §4 example: `T = a∧b∧c∧d∧e`, `P = ¬a ∨ ¬b` — Forbus/Satoh/Dalal
/// give two models, Weber three.
#[test]
fn section4_example_counts() {
    let s = section4_example();
    assert_eq!(revise(ModelBasedOp::Forbus, &s.t, &s.p).len(), 2);
    assert_eq!(revise(ModelBasedOp::Satoh, &s.t, &s.p).len(), 2);
    assert_eq!(revise(ModelBasedOp::Dalal, &s.t, &s.p).len(), 2);
    assert_eq!(revise(ModelBasedOp::Weber, &s.t, &s.p).len(), 3);
    // Dalal and Satoh coincide here, as the paper notes.
    assert_eq!(
        revise(ModelBasedOp::Dalal, &s.t, &s.p),
        revise(ModelBasedOp::Satoh, &s.t, &s.p)
    );
}

/// §5 example: iterated Weber over `P¹ = ¬x₁∨¬x₂`, `P² = ¬x₅` has
/// exactly the three models the paper lists, and the compiled formula
/// (10) is query-equivalent to them.
#[test]
fn section5_iterated_weber() {
    let (sig, t, ps) = section5_example();
    let kb = RevisedKb::compile_iterated(ModelBasedOp::Weber, &t, &ps).unwrap();
    let alpha = revkb::revision::revision_alphabet_seq(&t, &ps);
    let oracle = revise_iterated_on(ModelBasedOp::Weber, &alpha, &t, &ps);
    assert_eq!(oracle.len(), 3);
    let name = |n: &str| sig.lookup(n).unwrap();
    for names in [
        vec!["x1", "x3", "x4"],
        vec!["x2", "x3", "x4"],
        vec!["x3", "x4"],
    ] {
        let m: Interpretation = names.iter().map(|n| name(n)).collect();
        assert!(oracle.contains(&m), "missing {names:?}");
    }
    assert!(query_equivalent_enum(
        &kb.representation().formula,
        &oracle.to_dnf(),
        &kb.representation().base
    ));
}

/// §6 example: `T = x₁∧…∧x₅ *Win ¬x₁` has the single model
/// `{x₂,x₃,x₄,x₅}`, reproduced by the formula (12)/(16) pipeline.
#[test]
fn section6_winslett_single_model() {
    let s = section6_example();
    let kb = RevisedKb::compile_iterated(ModelBasedOp::Winslett, &s.t, std::slice::from_ref(&s.p))
        .unwrap();
    let x = |n: &str| Formula::var(s.sig.lookup(n).unwrap());
    assert!(kb.entails(&x("x2").and(x("x3")).and(x("x4")).and(x("x5"))));
    assert!(kb.entails(&x("x1").not()));
}
