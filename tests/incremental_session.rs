//! End-to-end acceptance of the incremental query pipeline: one
//! compiled [`RevisedKb`] answers a large query batch through a single
//! solver session, with every answer matching both the one-shot SAT
//! path and the semantic oracle.
//!
//! This file holds exactly one test because it measures exact deltas
//! of the process-wide solver-construction counter.

use revkb::logic::{Formula, Var};
use revkb::revision::{revise_on, ModelBasedOp, RevisedKb};
use revkb::sat;

fn v(i: u32) -> Formula {
    Formula::var(Var(i))
}

#[test]
fn fifty_queries_one_solver() {
    let t = v(0).and(v(1)).and(v(2)).and(v(3));
    let p = v(0).not().or(v(1).not());
    let kb = RevisedKb::compile(ModelBasedOp::Dalal, &t, &p).unwrap();
    let alpha = revkb::revision::revision_alphabet_seq(&t, std::slice::from_ref(&p));
    let oracle = revise_on(ModelBasedOp::Dalal, &alpha, &t, &p);

    let mut seed = 0xACCE97u64;
    let queries: Vec<Formula> = (0..50)
        .map(|_| sat::pseudo_random_formula(&mut seed, 3, 4))
        .collect();

    // Incremental path: the whole batch through the compiled KB.
    let before = sat::constructions();
    let incremental: Vec<bool> = queries.iter().map(|q| kb.entails(q)).collect();
    let incremental_solvers = sat::constructions() - before;

    // One-shot path: a fresh Tseitin transform + solver per query.
    let rep = kb.representation();
    let before = sat::constructions();
    let one_shot: Vec<bool> = queries
        .iter()
        .map(|q| sat::entails(&rep.formula, q))
        .collect();
    let one_shot_solvers = sat::constructions() - before;

    // Semantic ground truth, computed by model enumeration.
    let semantic: Vec<bool> = queries.iter().map(|q| oracle.entails(q)).collect();

    assert_eq!(incremental, one_shot, "incremental vs one-shot SAT");
    assert_eq!(incremental, semantic, "incremental vs semantic oracle");
    assert_eq!(
        incremental_solvers, 1,
        "the session must build exactly one solver for the batch"
    );
    assert_eq!(
        one_shot_solvers, 50,
        "the one-shot path builds one solver per query"
    );

    let stats = kb.query_stats().expect("session ran");
    assert_eq!(stats.base_loads, 1, "T' is Tseitin-loaded exactly once");
    assert_eq!(stats.solver_constructions, 1);
    assert_eq!(stats.queries, 50);
    assert_eq!(
        stats.cache_hits + stats.cache_misses,
        50,
        "every query is either a hit or a miss"
    );
    assert!(
        stats.cache_hits > 0,
        "a 50-query batch over 4 letters at depth 3 must repeat some queries"
    );
}
