//! Cross-substrate consistency: the CDCL solver, the ROBDD engine and
//! the truth-table evaluator must agree on satisfiability,
//! equivalence, model counts and model checking for random formulas;
//! Tseitin projection and the distance circuits must agree with
//! brute-force semantics.

use proptest::prelude::*;
use revkb::bdd::BddManager;
use revkb::circuits::{evaluate_circuit_mask, exa, exa_direct};
use revkb::logic::{
    tseitin_auto, tt_entails, tt_equivalent, tt_satisfiable, Alphabet, CountingSupply, Formula, Var,
};
use revkb::qbf::Qbf;

fn formula_strategy(num_vars: u32, depth: u32) -> BoxedStrategy<Formula> {
    let leaf = prop_oneof![
        (0..num_vars, any::<bool>()).prop_map(|(v, pos)| Formula::lit(Var(v), pos)),
        Just(Formula::True),
        Just(Formula::False),
    ]
    .boxed();
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.iff(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.xor(b)),
            inner.prop_map(|a| a.not()),
        ]
        .boxed()
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// SAT solver ⟺ truth table ⟺ BDD on satisfiability.
    #[test]
    fn sat_bdd_tt_agree(f in formula_strategy(6, 4)) {
        let tt = tt_satisfiable(&f);
        prop_assert_eq!(revkb::sat::satisfiable(&f), tt);
        let mut mgr = BddManager::new();
        let node = mgr.from_formula(&f);
        prop_assert_eq!(node != revkb::bdd::FALSE, tt);
    }

    /// Entailment and equivalence agree between solver and tables.
    #[test]
    fn entailment_agrees(a in formula_strategy(5, 3), b in formula_strategy(5, 3)) {
        prop_assert_eq!(revkb::sat::entails(&a, &b), tt_entails(&a, &b));
        prop_assert_eq!(revkb::sat::equivalent(&a, &b), tt_equivalent(&a, &b));
    }

    /// BDD model counting matches enumeration.
    #[test]
    fn bdd_count_matches_enumeration(f in formula_strategy(6, 4)) {
        let vars: Vec<Var> = (0..6).map(Var).collect();
        let alpha = Alphabet::new(vars.clone());
        let mut mgr = BddManager::with_order(vars);
        let node = mgr.from_formula(&f);
        prop_assert_eq!(mgr.count_models(node), alpha.models(&f).len() as u128);
    }

    /// Tseitin projection: the CNF's models project exactly onto the
    /// formula's models.
    #[test]
    fn tseitin_projection(f in formula_strategy(4, 3)) {
        let cnf = tseitin_auto(&f);
        let g = cnf.to_formula();
        let fvars: Vec<Var> = f.vars().into_iter().collect();
        let projected = revkb::sat::models_projected(&g, &fvars, 1 << 16)
            .expect("within limit");
        let direct = revkb::sat::models_projected(&f, &fvars, 1 << 16)
            .expect("within limit");
        let set_a: std::collections::BTreeSet<_> = projected.into_iter().collect();
        let set_b: std::collections::BTreeSet<_> = direct.into_iter().collect();
        prop_assert_eq!(set_a, set_b);
    }

    /// QBF expansion agrees with direct quantifier evaluation.
    #[test]
    fn qbf_expand_agrees_with_eval(f in formula_strategy(4, 3)) {
        let q = Qbf::forall(vec![Var(0)], Qbf::exists(vec![Var(1)], Qbf::prop(f)));
        let expanded = q.expand();
        let free: Vec<Var> = q.free_vars().into_iter().collect();
        for mask in 0..1u64 << free.len() {
            let m: revkb::logic::Interpretation = free
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &v)| v)
                .collect();
            prop_assert_eq!(q.eval(&m), expanded.eval(&m));
        }
    }

    /// The EXA circuit and the gate-free direct form agree with the
    /// Hamming distance for every input.
    #[test]
    fn exa_agrees_with_hamming(k in 0usize..5) {
        let n = 3usize;
        let xs: Vec<Var> = (0..n as u32).map(Var).collect();
        let ys: Vec<Var> = (n as u32..2 * n as u32).map(Var).collect();
        let inputs: Vec<Var> = xs.iter().chain(&ys).copied().collect();
        let mut supply = CountingSupply::new(100);
        let circuit = exa(k, &xs, &ys, &mut supply);
        let direct = exa_direct(k, &xs, &ys);
        let alpha = Alphabet::new(inputs.clone());
        for m in 0..1u64 << (2 * n) {
            let expected = ((m & 7) ^ (m >> 3)).count_ones() as usize == k;
            prop_assert_eq!(evaluate_circuit_mask(&circuit, &inputs, m), expected);
            prop_assert_eq!(alpha.eval_mask(&direct, m), expected);
        }
    }
}

/// The solver survives heavy incremental use: repeated solving with
/// blocking clauses enumerates exactly the truth-table models.
#[test]
fn incremental_enumeration_is_exact() {
    let f = Formula::var(Var(0))
        .xor(Formula::var(Var(1)))
        .or(Formula::var(Var(2)).and(Formula::var(Var(3))));
    let models = revkb::sat::all_models(&f, 1 << 10).unwrap();
    let alpha = Alphabet::of_formula(&f);
    assert_eq!(models.len(), alpha.models(&f).len());
    for m in &models {
        assert!(f.eval(m));
    }
}
