//! Failure-injection coverage: every advertised error path across the
//! workspace fires correctly and leaves the system usable.

use revkb::logic::{parse, parse_dimacs, Formula, Signature, Var};
use revkb::revision::{
    model_check, CompileError, GfuvKb, ModelBasedOp, ModelCheckError, RevisedKb, Theory,
};

#[test]
fn parse_errors_carry_positions() {
    let mut sig = Signature::new();
    let err = parse("a & (b |", &mut sig).unwrap_err();
    assert!(err.position > 0);
    assert!(!err.message.is_empty());
    // The signature is still usable after a failed parse.
    assert!(parse("a & b", &mut sig).is_ok());
}

#[test]
fn dimacs_errors_carry_line_numbers() {
    let err = parse_dimacs("p cnf 2 1\n1 oops 0\n").unwrap_err();
    assert_eq!(err.line, 2);
    assert!(err.to_string().contains("line 2"));
}

#[test]
fn compile_refuses_unbounded_pointwise() {
    let t = Formula::var(Var(0));
    let wide = Formula::or_all((0..30).map(|i| Formula::var(Var(i))));
    for op in [
        ModelBasedOp::Winslett,
        ModelBasedOp::Borgida,
        ModelBasedOp::Forbus,
        ModelBasedOp::Satoh,
    ] {
        let err = RevisedKb::compile(op, &t, &wide).unwrap_err();
        match err {
            CompileError::UpdateAlphabetTooLarge { op: eop, got, .. } => {
                assert_eq!(eop, op);
                assert_eq!(got, 30);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // The error message names the operator and the width.
        let msg = RevisedKb::compile(op, &t, &wide).unwrap_err().to_string();
        assert!(msg.contains(op.name()));
        assert!(msg.contains("30"));
    }
}

#[test]
fn compile_iterated_refuses_wide_steps() {
    let t = Formula::var(Var(0));
    let ps = vec![
        Formula::var(Var(1)).not(),
        Formula::or_all((0..30).map(|i| Formula::var(Var(i)))),
    ];
    assert!(RevisedKb::compile_iterated(ModelBasedOp::Forbus, &t, &ps).is_err());
    // Dalal's iterated construction handles any width.
    assert!(RevisedKb::compile_iterated(ModelBasedOp::Dalal, &t, &ps).is_ok());
}

#[test]
fn gfuv_budget_error_is_recoverable() {
    // Nebel's family with m = 6: 64 worlds.
    let ex = revkb::instances::NebelExample::new(6);
    let err = GfuvKb::compile(ex.t.clone(), ex.p.clone(), 10).unwrap_err();
    assert_eq!(err.budget, 10);
    // Raising the budget succeeds on the same inputs.
    let kb = GfuvKb::compile(ex.t, ex.p, 100).unwrap();
    assert_eq!(kb.world_count(), 64);
}

#[test]
fn model_check_errors_for_wide_pointwise() {
    let t = Formula::var(Var(0));
    let wide = Formula::or_all((0..30).map(|i| Formula::var(Var(i))));
    let m: revkb::logic::Interpretation = [Var(0)].into_iter().collect();
    match model_check(ModelBasedOp::Winslett, &m, &t, &wide) {
        Err(ModelCheckError::UpdateAlphabetTooLarge { got, max }) => {
            assert_eq!(got, 30);
            assert!(max < 30);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn solver_survives_contradiction_then_rejects_everything() {
    use revkb::logic::Lit;
    let mut s = revkb::sat::Solver::new();
    s.add_clause(&[Lit::pos(Var(0))]);
    assert!(!s.add_clause(&[Lit::neg(Var(0))]));
    // Once contradictory, all further operations stay consistent.
    assert!(!s.add_clause(&[Lit::pos(Var(1))]));
    assert!(!s.solve());
    assert!(!s.solve_with_assumptions(&[Lit::pos(Var(2))]));
}

#[test]
fn empty_theory_and_constants() {
    // Revising an empty (⊤) theory: everything collapses to P.
    let t = Formula::True;
    let p = Formula::var(Var(0)).not();
    for op in ModelBasedOp::ALL {
        let result = revkb::revision::revise(op, &t, &p);
        assert!(result.entails(&p));
        assert!(!result.is_empty());
    }
    // GFUV with the empty set of formulas.
    let empty = Theory::new([]);
    assert!(revkb::revision::gfuv_entails(&empty, &p, &p));
    assert!(!revkb::revision::gfuv_entails(
        &empty,
        &p,
        &Formula::var(Var(1))
    ));
}

#[test]
fn widtio_with_unsat_p_keeps_only_p() {
    let t = Theory::new([Formula::var(Var(0))]);
    let unsat = Formula::var(Var(1)).and(Formula::var(Var(1)).not());
    let kept = revkb::revision::widtio(&t, &unsat);
    // No worlds exist; convention keeps nothing but P itself.
    assert_eq!(kept.len(), 1);
    assert!(!revkb::sat::satisfiable(&kept.conjunction()));
}

#[test]
fn query_outside_base_is_caught_in_debug() {
    // CompactRep::entails debug-asserts the query alphabet; in release
    // it still answers soundly for in-base queries.
    let t = Formula::var(Var(0)).and(Formula::var(Var(1)));
    let p = Formula::var(Var(0)).not();
    let kb = RevisedKb::compile(ModelBasedOp::Dalal, &t, &p).unwrap();
    assert!(kb.entails(&Formula::var(Var(1))));
}
