//! Crash-safety contract of the durable KB store: a server reopened
//! from its data directory answers exactly like an uninterrupted
//! oracle, for every prefix the crash could have left behind — and the
//! on-disk record format is pinned by a golden file so it cannot drift
//! silently.

use revkb::server::wal::{decode_records, encode_record, LOG_FILE, LOG_MAGIC, SNAPSHOT_FILE};
use revkb::server::{Json, OpName, Server, ServerConfig, SyncMode, WalOp};
use std::path::{Path, PathBuf};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("revkb-persist-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(dir: &Path) -> ServerConfig {
    // Sync off: these tests simulate crashes by truncating the file
    // themselves, so fsyncs only slow the suite down.
    ServerConfig::default()
        .with_data_dir(Some(dir.to_path_buf()))
        .with_wal_sync(SyncMode::Off)
}

fn call(server: &Server, line: &str) -> Json {
    let response = server.handle_line(line).expect("request line is not blank");
    Json::parse(&response).unwrap_or_else(|e| panic!("response not JSON ({e}): {response}"))
}

fn result(resp: &Json) -> &Json {
    assert_eq!(
        resp.get("ok").and_then(Json::as_bool),
        Some(true),
        "{resp:?}"
    );
    resp.get("result").expect("ok response carries a result")
}

/// The answer signature of a server: for every named KB, the verdict
/// (entailed / not / error code) on a fixed battery of queries. Two
/// servers with equal signatures are indistinguishable to clients.
fn answer_signature(server: &Server, kbs: &[&str]) -> Vec<String> {
    let queries = ["a", "!a", "b", "!b", "a & b", "a | b", "a -> b"];
    let mut sig = Vec::new();
    for kb in kbs {
        for q in queries {
            let resp = call(
                server,
                &format!(r#"{{"cmd":"query","kb":"{kb}","q":"{q}"}}"#),
            );
            let verdict = match resp.get("ok").and_then(Json::as_bool) {
                Some(true) => resp
                    .get("result")
                    .and_then(|r| r.get("entails"))
                    .and_then(Json::as_bool)
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "?".into()),
                _ => resp
                    .get("code")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
            };
            sig.push(format!("{kb}|{q}|{verdict}"));
        }
    }
    sig
}

/// The workload every test replays: one KB per operator (all eight),
/// an iterated model-based chain, and a KB that is dropped again.
fn run_workload(server: &Server) {
    for op in OpName::ALL {
        let kb = format!("kb-{}", op.tag());
        call(
            server,
            &format!(r#"{{"cmd":"load","kb":"{kb}","t":"a; a -> b"}}"#),
        );
        let resp = call(
            server,
            &format!(
                r#"{{"cmd":"revise","kb":"{kb}","op":"{}","p":"!b"}}"#,
                op.tag()
            ),
        );
        result(&resp);
    }
    // A second Dalal step: iterated chains must replay too.
    result(&call(
        server,
        r#"{"cmd":"revise","kb":"kb-dalal","op":"dalal","p":"a & b"}"#,
    ));
    // Loaded then dropped: must stay dropped after recovery.
    call(server, r#"{"cmd":"load","kb":"doomed","t":"a"}"#);
    result(&call(server, r#"{"cmd":"drop","kb":"doomed"}"#));
}

fn workload_kbs() -> Vec<String> {
    let mut kbs: Vec<String> = OpName::ALL
        .iter()
        .map(|op| format!("kb-{}", op.tag()))
        .collect();
    kbs.push("doomed".into());
    kbs
}

#[test]
fn recovered_server_matches_oracle_across_all_operators() {
    let dir = tmpdir("all-ops");
    {
        let server = Server::open(durable_config(&dir)).unwrap();
        run_workload(&server);
    }
    let recovered = Server::open(durable_config(&dir)).unwrap();
    let report = recovered.recovery_report().expect("durable server");
    assert_eq!(report.replay_errors, 0, "{report:?}");
    // 8 loads + 9 revises + 1 load + 1 drop = 19 committed records.
    assert_eq!(report.replayed, 19);
    assert_eq!(report.truncated_bytes, 0);

    let oracle = Server::new(ServerConfig::default());
    run_workload(&oracle);
    let kbs = workload_kbs();
    let kb_refs: Vec<&str> = kbs.iter().map(String::as_str).collect();
    assert_eq!(
        answer_signature(&recovered, &kb_refs),
        answer_signature(&oracle, &kb_refs)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_boot_answers_without_recompiling() {
    let dir = tmpdir("warm");
    {
        // Snapshot after every revise: the artifact is on disk when
        // the process dies.
        let server = Server::open(durable_config(&dir).with_snapshot_every(1)).unwrap();
        call(&server, r#"{"cmd":"load","kb":"k","t":"a & b"}"#);
        let resp = call(
            &server,
            r#"{"cmd":"revise","kb":"k","op":"dalal","p":"!a"}"#,
        );
        assert_eq!(
            result(&resp).get("cache").and_then(Json::as_str),
            Some("miss")
        );
    }
    assert!(dir.join(SNAPSHOT_FILE).exists());
    let recovered = Server::open(durable_config(&dir).with_snapshot_every(1)).unwrap();
    let report = recovered.recovery_report().unwrap();
    assert_eq!(report.snapshot_artifacts, 1, "{report:?}");
    assert_eq!(report.replayed, 2);
    // The replayed revise hit the pre-warmed cache: recovery compiled
    // nothing, which is the whole point of snapshots.
    let resp = call(&recovered, r#"{"cmd":"stats"}"#);
    let stats = result(&resp);
    let cache = stats.get("cache").unwrap();
    assert_eq!(
        cache.get("hits").and_then(Json::as_u64),
        Some(1),
        "{cache:?}"
    );
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(0));
    let wal = stats.get("wal").unwrap();
    assert_eq!(wal.get("enabled").and_then(Json::as_bool), Some(true));
    let recovery = wal.get("recovery").unwrap();
    assert_eq!(recovery.get("replayed").and_then(Json::as_u64), Some(2));
    // A fresh KB with the identical theory and revision is a pure
    // cache hit — the first warm answer never recompiles.
    call(&recovered, r#"{"cmd":"load","kb":"k2","t":"a & b"}"#);
    let resp = call(
        &recovered,
        r#"{"cmd":"revise","kb":"k2","op":"dalal","p":"!a"}"#,
    );
    assert_eq!(
        result(&resp).get("cache").and_then(Json::as_str),
        Some("hit")
    );
    // And the recovered KB still answers the revised theory.
    let resp = call(&recovered, r#"{"cmd":"query","kb":"k","q":"b"}"#);
    assert_eq!(
        result(&resp).get("entails").and_then(Json::as_bool),
        Some(true)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill the writer at *every byte offset* of the log: for each
/// truncation point, a server booted from the torn log must answer
/// exactly like an oracle that ran only the fully committed records.
#[test]
fn every_torn_tail_recovers_the_committed_prefix() {
    let dir = tmpdir("torn-build");
    {
        let server = Server::open(durable_config(&dir)).unwrap();
        // Small workload (compiles are tiny) — but covering load,
        // iterated revise, and drop.
        call(&server, r#"{"cmd":"load","kb":"k1","t":"a; a -> b"}"#);
        call(
            &server,
            r#"{"cmd":"revise","kb":"k1","op":"dalal","p":"!b"}"#,
        );
        call(
            &server,
            r#"{"cmd":"revise","kb":"k1","op":"dalal","p":"b"}"#,
        );
        call(&server, r#"{"cmd":"load","kb":"k2","t":"a & b"}"#);
        call(
            &server,
            r#"{"cmd":"revise","kb":"k2","op":"widtio","p":"!a"}"#,
        );
        call(&server, r#"{"cmd":"drop","kb":"k1"}"#);
    }
    let full = std::fs::read(dir.join(LOG_FILE)).unwrap();
    let body = &full[LOG_MAGIC.len()..];
    let (all_ops, good) = decode_records(body);
    assert_eq!(good, body.len(), "the intact log has no bad tail");
    assert_eq!(all_ops.len(), 6);

    let kbs = ["k1", "k2"];
    let cut_dir = tmpdir("torn-cut");
    for cut in 0..=body.len() {
        let _ = std::fs::remove_dir_all(&cut_dir);
        std::fs::create_dir_all(&cut_dir).unwrap();
        let mut torn = LOG_MAGIC.to_vec();
        torn.extend_from_slice(&body[..cut]);
        std::fs::write(cut_dir.join(LOG_FILE), &torn).unwrap();

        let recovered = Server::open(durable_config(&cut_dir)).unwrap();
        let (committed, _) = decode_records(&body[..cut]);
        let report = recovered.recovery_report().unwrap();
        assert_eq!(report.replayed, committed.len() as u64, "cut at {cut}");
        assert_eq!(report.replay_errors, 0, "cut at {cut}");

        let oracle = Server::new(ServerConfig::default());
        for op in &committed {
            let line = match op {
                WalOp::Load { kb, t } => {
                    format!(r#"{{"cmd":"load","kb":"{kb}","t":"{t}"}}"#)
                }
                WalOp::Revise { kb, op, p, backend } => format!(
                    r#"{{"cmd":"revise","kb":"{kb}","op":"{op}","p":"{p}","backend":"{backend}"}}"#
                ),
                WalOp::Drop { kb } => format!(r#"{{"cmd":"drop","kb":"{kb}"}}"#),
            };
            result(&call(&oracle, &line));
        }
        assert_eq!(
            answer_signature(&recovered, &kbs),
            answer_signature(&oracle, &kbs),
            "cut at {cut}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&cut_dir);
}

#[test]
fn corrupt_byte_truncates_and_recovery_reports_it() {
    let dir = tmpdir("flip");
    {
        let server = Server::open(durable_config(&dir)).unwrap();
        call(&server, r#"{"cmd":"load","kb":"k","t":"a & b"}"#);
        call(
            &server,
            r#"{"cmd":"revise","kb":"k","op":"satoh","p":"!a"}"#,
        );
    }
    let log_path = dir.join(LOG_FILE);
    let mut bytes = std::fs::read(&log_path).unwrap();
    // Flip one byte inside the second record's payload.
    let first_len = {
        let body = &bytes[LOG_MAGIC.len()..];
        8 + u32::from_le_bytes(body[..4].try_into().unwrap()) as usize
    };
    let victim = LOG_MAGIC.len() + first_len + 12;
    bytes[victim] ^= 0x20;
    std::fs::write(&log_path, &bytes).unwrap();

    let recovered = Server::open(durable_config(&dir)).unwrap();
    let report = recovered.recovery_report().unwrap();
    assert_eq!(report.replayed, 1, "{report:?}");
    assert!(report.truncated_bytes > 0);
    // Only the load survived: the KB exists, unrevised.
    let resp = call(&recovered, r#"{"cmd":"query","kb":"k","q":"a"}"#);
    assert_eq!(
        result(&resp).get("entails").and_then(Json::as_bool),
        Some(true)
    );
    // The truncated log is persisted: a second reopen sees a clean log.
    drop(recovered);
    let again = Server::open(durable_config(&dir)).unwrap();
    let report = again.recovery_report().unwrap();
    assert_eq!(report.truncated_bytes, 0, "{report:?}");
    assert_eq!(report.replayed, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshot_is_ignored_not_fatal() {
    let dir = tmpdir("bad-snap");
    {
        let server = Server::open(durable_config(&dir).with_snapshot_every(1)).unwrap();
        call(&server, r#"{"cmd":"load","kb":"k","t":"a & b"}"#);
        call(
            &server,
            r#"{"cmd":"revise","kb":"k","op":"dalal","p":"!a"}"#,
        );
    }
    std::fs::write(dir.join(SNAPSHOT_FILE), b"garbage, not a snapshot").unwrap();
    let recovered = Server::open(durable_config(&dir).with_snapshot_every(1)).unwrap();
    let report = recovered.recovery_report().unwrap();
    assert_eq!(report.snapshot_artifacts, 0, "{report:?}");
    assert_eq!(report.replayed, 2);
    // Replay recompiled instead — slower, never wrong.
    let resp = call(&recovered, r#"{"cmd":"query","kb":"k","q":"b"}"#);
    assert_eq!(
        result(&resp).get("entails").and_then(Json::as_bool),
        Some(true)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The golden ops pinned in `tests/golden/wal_v1.log`. Any change to
/// the on-disk encoding breaks this test — which is the point: bump
/// the magic's version digit and write a new golden file instead of
/// silently orphaning existing data directories.
fn golden_ops() -> Vec<WalOp> {
    vec![
        WalOp::Load {
            kb: "alpha".into(),
            t: "a & b; b -> c".into(),
        },
        WalOp::Revise {
            kb: "alpha".into(),
            op: "dalal".into(),
            p: "!a".into(),
            backend: "direct".into(),
        },
        WalOp::Revise {
            kb: "alpha".into(),
            op: "gfuv".into(),
            p: "c | d".into(),
            backend: "bdd".into(),
        },
        WalOp::Drop { kb: "alpha".into() },
    ]
}

#[test]
fn on_disk_record_format_matches_golden_file() {
    let mut encoded = LOG_MAGIC.to_vec();
    for op in golden_ops() {
        encoded.extend_from_slice(&encode_record(&op));
    }
    let golden_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/wal_v1.log");
    let golden = std::fs::read(&golden_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", golden_path.display()));
    assert_eq!(
        encoded, golden,
        "wal record encoding drifted from tests/golden/wal_v1.log"
    );
    // And the golden bytes decode back to exactly the golden ops.
    let (ops, good) = decode_records(&golden[LOG_MAGIC.len()..]);
    assert_eq!(good, golden.len() - LOG_MAGIC.len());
    assert_eq!(ops, golden_ops());
}
