//! A long end-to-end scenario exercising the whole public surface in
//! one narrative: a monitoring agent maintains a knowledge base about
//! a small cluster through observations, queries, counterfactuals,
//! contraction and approximate compilation.
//!
//! Note the classic belief-revision subtlety the scenario leans on:
//! integrity constraints stored in `T` are themselves revisable
//! beliefs — a minimal-change revision happily drops them. Robust
//! observations therefore *conjoin the constraints into `P`* (the
//! standard "update under integrity constraints" pattern), and the
//! first test below demonstrates both behaviours.

use revkb::logic::{parse, Formula, Signature};
use revkb::revision::{
    contract, counterfactual::holds_compiled, horn_lub, is_horn_definable, revise, Counterfactual,
    DelayedKb, GfuvKb, ModelBasedOp, Theory, WidtioKb,
};

struct Cluster {
    sig: Signature,
    base: Formula,
    ic: Formula,
}

fn cluster() -> Cluster {
    let mut sig = Signature::new();
    // Three nodes; node 1 is primary; invariants: some node holds the
    // primary role and primaries must be up.
    let ic = parse(
        "(prim1 | prim2 | prim3) & (prim1 -> up1) & (prim2 -> up2) & (prim3 -> up3)",
        &mut sig,
    )
    .expect("parse invariants");
    let base = parse("up1 & up2 & up3 & prim1 & !prim2 & !prim3", &mut sig)
        .expect("parse facts")
        .and(ic.clone());
    Cluster { sig, base, ic }
}

#[test]
fn naive_observation_drops_the_invariants() {
    // Revising with the bare fact ¬up1 minimally flips one bit — and
    // keeps node 1 as primary, violating the (revised-away) invariant.
    let mut c = cluster();
    let bare = parse("!up1", &mut c.sig).unwrap();
    let revised = revise(ModelBasedOp::Dalal, &c.base, &bare);
    let prim1 = parse("prim1", &mut c.sig).unwrap();
    assert!(revised.entails(&prim1), "minimal change keeps prim1");
    // Conjoining the invariants into P restores the intended reading.
    let guarded = bare.and(c.ic.clone());
    let revised = revise(ModelBasedOp::Dalal, &c.base, &guarded);
    assert!(revised.entails(&prim1.not()), "primary must move");
}

#[test]
fn monitoring_agent_full_workflow() {
    let mut c = cluster();
    let mut kb = DelayedKb::new(ModelBasedOp::Dalal, c.base.clone());

    // Observation 1: node 1 went down (invariants conjoined).
    let node1_down = parse("!up1", &mut c.sig).unwrap().and(c.ic.clone());
    kb.revise(node1_down.clone());
    let prim1 = parse("prim1", &mut c.sig).unwrap();
    assert!(kb.entails(&prim1.clone().not()).unwrap());
    let some_primary = parse("prim1 | prim2 | prim3", &mut c.sig).unwrap();
    assert!(kb.entails(&some_primary).unwrap());

    // Observation 2: node 2 is NOT the new primary.
    let not_prim2 = parse("!prim2", &mut c.sig).unwrap().and(c.ic.clone());
    kb.revise(not_prim2);
    let prim3 = parse("prim3", &mut c.sig).unwrap();
    assert!(kb.entails(&prim3).unwrap(), "primary must be node 3 now");

    // Counterfactual against the *original* base, via the compiled
    // iterated pipeline: "if node 1 went down and then node 3 too,
    // would node 2 be primary?"
    let node3_down = parse("!up3", &mut c.sig).unwrap().and(c.ic.clone());
    let prim2 = parse("prim2", &mut c.sig).unwrap();
    let cf = Counterfactual::chain([node1_down.clone(), node3_down], prim2.clone());
    assert!(holds_compiled(ModelBasedOp::Dalal, &c.base, &cf).unwrap());

    // Contraction: retract the belief that node 1 is the primary; the
    // factual node states survive (inclusion only weakens).
    let contracted = contract(ModelBasedOp::Dalal, &c.base, &prim1);
    assert!(!contracted.entails(&prim1));
    let all_up = parse("up1 & up2 & up3", &mut c.sig).unwrap();
    assert!(contracted.entails(&all_up));

    // Formula-based view of the first observation: possible worlds and
    // WIDTIO on the base as a *set* of formulas.
    let bare_down = parse("!up1", &mut c.sig).unwrap();
    let theory = Theory::new([
        parse("up1 & up2 & up3", &mut c.sig).unwrap(),
        parse("prim1", &mut c.sig).unwrap(),
        parse("prim1 -> up1", &mut c.sig).unwrap(),
    ]);
    let gfuv = GfuvKb::compile(theory.clone(), bare_down.clone(), 64).unwrap();
    assert!(gfuv.world_count() >= 2, "conflict splits the theory");
    let widtio = WidtioKb::compile(&theory, &bare_down);
    assert!(widtio.entails(&bare_down));

    // Approximate compilation: the revised base, Horn-approximated,
    // stays sound on a Horn query.
    let revised = revise(ModelBasedOp::Dalal, &c.base, &node1_down);
    let lub = horn_lub(&revised);
    let up2 = parse("up2", &mut c.sig).unwrap();
    if lub.entails(&up2) {
        assert!(revised.entails(&up2), "Horn LUB must stay sound");
    }
    let _ = is_horn_definable(&revised);
}

#[test]
fn revision_and_update_agree_on_guarded_failover() {
    // With the invariants carried in P, both revision (Dalal) and
    // update (Winslett) fail over cleanly — and both leave the choice
    // of new primary open.
    let mut c = cluster();
    let node1_down = parse("!up1", &mut c.sig).unwrap().and(c.ic.clone());
    let up2 = parse("up2", &mut c.sig).unwrap();
    let prim2 = parse("prim2", &mut c.sig).unwrap();
    let prim3 = parse("prim3", &mut c.sig).unwrap();
    for op in [ModelBasedOp::Dalal, ModelBasedOp::Winslett] {
        let result = revise(op, &c.base, &node1_down);
        assert!(result.entails(&up2), "{} loses up2", op.name());
        assert!(!result.entails(&prim2), "{} invents prim2", op.name());
        assert!(!result.entails(&prim3), "{} invents prim3", op.name());
        assert!(
            result.entails(&prim2.clone().or(prim3.clone())),
            "{} loses the failover disjunction",
            op.name()
        );
    }
}
