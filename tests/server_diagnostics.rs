//! Diagnostics-plane contract of the revision service: trace ids
//! flow from the wire envelope (or a W3C `traceparent` header)
//! through every `server.*` span into the always-on flight recorder,
//! the `/debug/*` routes expose traces, logs, and in-flight requests
//! without a restart or `REVKB_TRACE`, the slow log carries per-phase
//! timings joined by trace id, and replica replay spans are joinable
//! to the primary's WAL appends by byte offset.

use revkb::obs;
use revkb::server::{Json, Server, ServerConfig, SyncMode};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The flight recorder and log ring are process-global; tests that
/// inspect or reset them must not interleave.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn call(server: &Server, line: &str) -> Json {
    let response = server.handle_line(line).expect("request line is not blank");
    Json::parse(&response).unwrap_or_else(|e| panic!("response not JSON ({e}): {response}"))
}

fn trace_of(resp: &Json) -> String {
    resp.get("trace")
        .and_then(Json::as_str)
        .expect("every response envelope carries a trace id")
        .to_string()
}

fn spawn_evloop() -> (SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::new(ServerConfig::default());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || {
        server.serve_event_loop(listener).expect("event loop");
    });
    (addr, handle)
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect loopback");
    stream.set_nodelay(true).expect("set TCP_NODELAY");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("set read timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone stream"));
    (stream, reader)
}

fn send_line(stream: &mut TcpStream, line: &str) {
    let framed = format!("{line}\n");
    stream.write_all(framed.as_bytes()).expect("loopback write");
}

fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    let n = reader.read_line(&mut line).expect("loopback read");
    assert!(n > 0, "server closed the connection early");
    line.trim_end().to_string()
}

fn shutdown(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>) {
    send_line(stream, r#"{"cmd":"shutdown"}"#);
    let resp = read_line(reader);
    assert!(resp.contains("shutting_down"), "bad shutdown ack: {resp}");
}

/// A client-chosen trace id is echoed verbatim in the envelope and
/// every flight-recorded `server.*` span of that request carries it —
/// with `REVKB_TRACE` disabled, over the plain stdio path.
#[test]
fn stdio_echoes_the_client_trace_and_records_it_in_flight() {
    let _guard = OBS_LOCK.lock().unwrap();
    let prev = obs::mode();
    obs::set_mode(obs::TraceMode::Off);
    obs::flight_reset();

    let server = Server::new(ServerConfig::default());
    call(&server, r#"{"cmd":"load","kb":"k","t":"a & b; b -> c"}"#);
    let resp = call(
        &server,
        r#"{"cmd":"revise","kb":"k","op":"dalal","p":"!b","trace":"00000000000000ff"}"#,
    );
    assert_eq!(trace_of(&resp), "00000000000000ff", "client id echoed");

    // No client id: the server mints a nonzero 16-hex id.
    let minted = trace_of(&call(&server, r#"{"cmd":"query","kb":"k","q":"a"}"#));
    assert_eq!(minted.len(), 16, "{minted}");
    let minted_id = obs::parse_trace_id(&minted).expect("well-formed id");
    assert_ne!(minted_id, 0);

    // The flight recorder (mode Off, no restart) holds the request's
    // span tree tagged with the client's id.
    let spans = obs::flight_snapshot();
    let tagged: Vec<&str> = spans
        .iter()
        .filter(|s| s.attr(obs::TRACE_ATTR) == Some(0xff))
        .map(|s| s.name)
        .collect();
    assert!(
        tagged.contains(&"server.request"),
        "revise request span tagged with the client trace: {tagged:?}"
    );
    assert!(
        tagged.contains(&"server.cmd.revise") && tagged.contains(&"server.compile"),
        "command and compile layers share the trace id: {tagged:?}"
    );
    obs::set_mode(prev);
}

/// A malformed `trace` field is a `bad_request` whose error envelope
/// still carries a (server-minted) trace id.
#[test]
fn malformed_trace_field_is_rejected_with_a_minted_id() {
    let server = Server::new(ServerConfig::default());
    for bad in [r#""""#, r#""xyz""#, r#""0""#, "17", r#""00fg""#] {
        let resp = call(&server, &format!(r#"{{"cmd":"ping","trace":{bad}}}"#));
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(false),
            "trace {bad} accepted: {resp:?}"
        );
        assert_eq!(resp.get("code").and_then(Json::as_str), Some("bad_request"));
        let minted = trace_of(&resp);
        assert!(obs::parse_trace_id(&minted).is_some(), "{minted}");
    }
}

/// Over the event loop, a pipelined burst echoes each request's own
/// trace id even when completions are reordered.
#[test]
fn pipelined_burst_keeps_traces_with_their_requests() {
    let (addr, handle) = spawn_evloop();
    let (mut stream, mut reader) = connect(addr);
    let mut burst = String::new();
    for i in 1u64..=24 {
        let trace = obs::format_trace_id(0xD000 + i);
        burst.push_str(&format!(
            "{{\"id\":\"r{i}\",\"cmd\":\"load\",\"kb\":\"kb{i}\",\"t\":\"a\",\"trace\":\"{trace}\"}}\n"
        ));
    }
    stream.write_all(burst.as_bytes()).expect("burst write");
    for _ in 0..24 {
        let resp = Json::parse(&read_line(&mut reader)).expect("response JSON");
        let id = resp.get("id").and_then(Json::as_str).expect("echoed id");
        let i: u64 = id[1..].parse().expect("numeric id suffix");
        assert_eq!(
            trace_of(&resp),
            obs::format_trace_id(0xD000 + i),
            "response {id} carries another request's trace"
        );
    }
    shutdown(&mut stream, &mut reader);
    handle.join().expect("serve thread");
}

/// The blocking TCP front end echoes traces exactly like the event
/// loop (the differential pins both to the stdio behaviour above).
#[test]
fn blocking_front_end_echoes_the_trace() {
    let server = Server::new(ServerConfig::default());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || {
        server.serve_tcp(listener).expect("blocking loop");
    });
    let (mut stream, mut reader) = connect(addr);
    send_line(
        &mut stream,
        r#"{"cmd":"load","kb":"k","t":"a","trace":"00000000000000ab"}"#,
    );
    let resp = Json::parse(&read_line(&mut reader)).expect("response JSON");
    assert_eq!(trace_of(&resp), "00000000000000ab");
    shutdown(&mut stream, &mut reader);
    handle.join().expect("serve thread");
}

/// Slow-log entries are joinable to traces and broken into phases:
/// with `slow_ms` zero every request qualifies, and the entry for a
/// degraded revise carries the client's trace id plus queue / compile
/// / solve micros that sum to at most the total.
#[test]
fn slow_log_entries_carry_trace_and_phase_breakdown() {
    let server = Server::new(
        ServerConfig::default()
            .with_compile_timeout_ms(Some(0))
            .with_slow_ms(0)
            .with_slow_log_cap(8),
    );
    call(&server, r#"{"cmd":"load","kb":"k","t":"a & b"}"#);
    let resp = call(
        &server,
        r#"{"cmd":"revise","kb":"k","op":"satoh","p":"!a","trace":"00000000000004d2"}"#,
    );
    assert_eq!(trace_of(&resp), "00000000000004d2");

    let stats = call(&server, r#"{"cmd":"stats"}"#);
    let result = stats.get("result").expect("stats result");
    assert!(
        result.get("uptime_millis").and_then(Json::as_u64).is_some(),
        "stats reports uptime_millis"
    );
    let slow_log = result
        .get("slow_log")
        .and_then(Json::as_array)
        .expect("stats carries slow_log");
    let entry = slow_log
        .iter()
        .find(|e| e.get("trace").and_then(Json::as_str) == Some("00000000000004d2"))
        .expect("the traced revise is in the slow_log");
    assert_eq!(entry.get("cmd").and_then(Json::as_str), Some("revise"));
    let micros = |k: &str| {
        entry
            .get(k)
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("slow_log entry missing {k}: {entry:?}"))
    };
    let total = micros("micros");
    assert!(
        micros("queue_micros") + micros("compile_micros") + micros("solve_micros") <= total,
        "phases exceed the total: {entry:?}"
    );
}

/// The log ring is bounded and level-filtered: overfilling it keeps
/// only the newest `LOG_RING_CAPACITY` records, and records below the
/// configured level are never recorded.
#[test]
fn log_ring_is_bounded_and_filters_by_level() {
    let _guard = OBS_LOCK.lock().unwrap();
    let prev = obs::log_level();
    obs::set_log_level(obs::Level::Debug);
    obs::log_ring_reset();

    let n = obs::LOG_RING_CAPACITY + 50;
    for i in 0..n {
        obs::debug("diag-test", Some(i as u64 + 1), || format!("record {i}"));
    }
    let ring = obs::log_ring_snapshot();
    assert_eq!(ring.len(), obs::LOG_RING_CAPACITY, "ring is bounded");
    assert_eq!(
        ring.last().map(|r| r.msg.as_str()),
        Some(format!("record {}", n - 1).as_str()),
        "newest record survives"
    );
    assert_eq!(
        ring.first().map(|r| r.msg.as_str()),
        Some(format!("record {}", n - obs::LOG_RING_CAPACITY).as_str()),
        "oldest records are evicted in order"
    );
    for r in &ring {
        assert!(
            obs::validate_json(&r.render_json()),
            "{:?}",
            r.render_json()
        );
    }

    // Below-level records are dropped at the gate.
    obs::log_ring_reset();
    obs::set_log_level(obs::Level::Warn);
    assert!(!obs::log_enabled(obs::Level::Debug));
    obs::debug("diag-test", None, || "suppressed".to_string());
    obs::warn("diag-test", None, || "kept".to_string());
    let ring = obs::log_ring_snapshot();
    assert_eq!(ring.len(), 1, "{ring:?}");
    assert_eq!(ring[0].msg, "kept");
    obs::set_log_level(prev);
}

/// The three `/debug/*` routes answer valid JSON while the server is
/// under churn, with `REVKB_TRACE` disabled: the flight recorder
/// renders as a loadable Chrome trace, the log tail honours `level`
/// and `trace` filters, and the requests view exposes the slow log.
#[test]
fn debug_routes_answer_valid_json_under_churn() {
    let _guard = OBS_LOCK.lock().unwrap();
    let prev_mode = obs::mode();
    let prev_level = obs::log_level();
    obs::set_mode(obs::TraceMode::Off);
    obs::set_log_level(obs::Level::Debug);
    obs::flight_reset();
    obs::log_ring_reset();

    let server = Server::new(
        ServerConfig::default()
            .with_slow_ms(0)
            .with_slow_log_cap(64),
    );
    call(&server, r#"{"cmd":"load","kb":"k","t":"a & b; b -> c"}"#);
    for i in 0..40 {
        let trace = obs::format_trace_id(0xE00 + i);
        call(
            &server,
            &format!(r#"{{"cmd":"query","kb":"k","q":"a","trace":"{trace}"}}"#),
        );
    }
    obs::warn("diag-churn", Some(0xE05), || "traced warning".to_string());
    obs::debug("diag-churn", None, || "untraced debug".to_string());

    // /debug/trace.json: a valid Chrome trace with the query spans.
    let resp = server.metrics_route("/debug/trace.json", "");
    assert_eq!(resp.status, 200);
    assert!(obs::validate_json(&resp.body), "{}", resp.body);
    let doc = Json::parse(&resp.body).expect("chrome trace parses");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    let traced = events
        .iter()
        .filter(|e| {
            e.get("args")
                .and_then(|a| a.get("trace"))
                .and_then(Json::as_u64)
                == Some(0xE05)
        })
        .count();
    assert!(traced >= 1, "query 0xE05 missing from the flight recorder");

    // /debug/logs.json: full tail, then level- and trace-filtered.
    let resp = server.metrics_route("/debug/logs.json", "");
    assert_eq!(resp.status, 200);
    let doc = Json::parse(&resp.body).expect("logs JSON parses");
    let count = doc.get("count").and_then(Json::as_u64).expect("count");
    assert!(count >= 2, "{}", resp.body);

    let resp = server.metrics_route("/debug/logs.json", "level=warn");
    let doc = Json::parse(&resp.body).expect("filtered logs parse");
    let logs = doc.get("logs").and_then(Json::as_array).expect("logs");
    assert!(!logs.is_empty());
    for r in logs {
        let level = r.get("level").and_then(Json::as_str).expect("level");
        assert!(
            level == "error" || level == "warn",
            "level filter leaked {level}"
        );
    }

    let resp = server.metrics_route("/debug/logs.json", "trace=0000000000000e05");
    let doc = Json::parse(&resp.body).expect("trace-filtered logs parse");
    let logs = doc.get("logs").and_then(Json::as_array).expect("logs");
    assert_eq!(logs.len(), 1, "{}", resp.body);
    assert_eq!(
        logs[0].get("msg").and_then(Json::as_str),
        Some("traced warning")
    );

    // /debug/requests.json: slow log (slow_ms 0 ⇒ everything) with
    // trace ids, plus the (empty at rest) in-flight table.
    let resp = server.metrics_route("/debug/requests.json", "");
    assert_eq!(resp.status, 200);
    let doc = Json::parse(&resp.body).expect("requests JSON parses");
    assert_eq!(doc.get("slow_ms").and_then(Json::as_u64), Some(0));
    let slow = doc
        .get("slow_log")
        .and_then(Json::as_array)
        .expect("slow_log");
    assert!(!slow.is_empty());
    assert!(slow
        .iter()
        .any(|e| e.get("trace").and_then(Json::as_str) == Some("0000000000000e05")));
    assert!(doc
        .get("in_flight")
        .and_then(Json::as_array)
        .expect("in_flight")
        .is_empty());

    // Unknown debug paths stay 404.
    assert_eq!(server.metrics_route("/debug/nope.json", "").status, 404);

    obs::log_ring_reset();
    obs::set_log_level(prev_level);
    obs::set_mode(prev_mode);
}

/// Replica replay is joinable to the primary's WAL by byte offset:
/// every `repl.replay` span on the replica names a `wal_offset` at
/// which the primary recorded a `wal.append` span.
#[test]
fn replica_replay_spans_join_primary_appends_by_wal_offset() {
    let _guard = OBS_LOCK.lock().unwrap();
    obs::flight_reset();

    let dir = std::env::temp_dir().join(format!("revkb-diag-repl-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let pdir = dir.join("primary");
    let rdir = dir.join("replica");
    let config = |d: &std::path::Path| {
        ServerConfig::default()
            .with_data_dir(Some(d.to_path_buf()))
            .with_wal_sync(SyncMode::Off)
    };

    let primary = Server::open(config(&pdir)).expect("open primary");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind primary");
    let addr = listener.local_addr().expect("primary addr");
    let srv = primary.clone();
    let serve = std::thread::spawn(move || srv.serve_tcp(listener));

    call(&primary, r#"{"cmd":"load","kb":"k","t":"a; a -> b"}"#);
    call(
        &primary,
        r#"{"cmd":"revise","kb":"k","op":"dalal","p":"!b"}"#,
    );
    call(&primary, r#"{"cmd":"load","kb":"doomed","t":"a"}"#);
    call(&primary, r#"{"cmd":"drop","kb":"doomed"}"#);

    let appended: Vec<u64> = obs::flight_snapshot()
        .iter()
        .filter(|s| s.name == "wal.append")
        .map(|s| s.attr("wal_offset").expect("wal.append has wal_offset"))
        .collect();
    assert_eq!(appended.len(), 4, "one append per committed op");

    let committed = primary
        .wal_committed_bytes()
        .expect("durable primary reports its log length");
    let replica =
        Server::open(config(&rdir).with_replica_of(Some(addr.to_string()))).expect("open replica");
    let repl_thread = replica.start_replication().expect("replica replicates");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let status = replica.replication_status().expect("status");
        if status.offset == committed {
            break;
        }
        assert!(Instant::now() < deadline, "replica never caught up");
        std::thread::sleep(Duration::from_millis(2));
    }

    let replayed: Vec<u64> = obs::flight_snapshot()
        .iter()
        .filter(|s| s.name == "repl.replay")
        .map(|s| s.attr("wal_offset").expect("repl.replay has wal_offset"))
        .collect();
    assert_eq!(
        replayed.len(),
        appended.len(),
        "every shipped record replays exactly once"
    );
    for offset in &replayed {
        assert!(
            appended.contains(offset),
            "replayed offset {offset} matches no primary append in {appended:?}"
        );
    }

    replica.begin_shutdown();
    repl_thread.join().expect("replication thread");
    call(&primary, r#"{"cmd":"shutdown"}"#);
    serve
        .join()
        .expect("primary thread")
        .expect("serve_tcp exits cleanly");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------
// HTTP gateway (Linux: the gateway lives on the epoll front end).
// ---------------------------------------------------------------

#[cfg(target_os = "linux")]
mod http_gateway {
    use super::*;

    fn read_http(reader: &mut BufReader<TcpStream>) -> (u16, String) {
        let mut status_line = String::new();
        let n = reader.read_line(&mut status_line).expect("status line");
        assert!(n > 0, "server closed before a response");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            reader.read_line(&mut header).expect("header line");
            let header = header.trim();
            if header.is_empty() {
                break;
            }
            if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().expect("content-length");
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).expect("body");
        (status, String::from_utf8_lossy(&body).into_owned())
    }

    fn post_with_headers(stream: &mut TcpStream, path: &str, extra: &str, body: &str) {
        let request = format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\n{extra}Content-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes()).expect("http write");
    }

    /// A W3C `traceparent` header is honoured: the envelope echoes
    /// the low 64 bits of its trace-id, and with `REVKB_TRACE` unset
    /// the flight recorder still holds that request's span tree.
    #[test]
    fn traceparent_joins_the_envelope_and_the_flight_recorder() {
        let _guard = OBS_LOCK.lock().unwrap();
        obs::flight_reset();

        let (addr, handle) = spawn_evloop();
        let (mut stream, mut reader) = connect(addr);
        post_with_headers(
            &mut stream,
            "/v1/load",
            "traceparent: 00-0123456789abcdef00000000deadbeef-00f067aa0ba902b7-01\r\n",
            r#"{"kb":"h","t":"a & b"}"#,
        );
        let (status, body) = read_http(&mut reader);
        assert_eq!(status, 200, "{body}");
        let json = Json::parse(body.trim()).expect("envelope JSON");
        assert_eq!(
            trace_of(&json),
            "00000000deadbeef",
            "low 64 bits of the traceparent trace-id"
        );

        // An explicit body trace beats the header.
        post_with_headers(
            &mut stream,
            "/v1/query",
            "traceparent: 00-0123456789abcdef00000000deadbeef-00f067aa0ba902b7-01\r\n",
            r#"{"kb":"h","q":"a","trace":"0000000000000bad"}"#,
        );
        let (status, body) = read_http(&mut reader);
        assert_eq!(status, 200);
        let json = Json::parse(body.trim()).expect("envelope JSON");
        assert_eq!(trace_of(&json), "0000000000000bad");

        // /debug/trace.json over the same gateway shows the header's
        // trace with REVKB_TRACE unset.
        stream
            .write_all(b"GET /debug/trace.json HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("GET write");
        let (status, body) = read_http(&mut reader);
        assert_eq!(status, 200);
        let doc = Json::parse(body.trim()).expect("chrome trace parses");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents");
        assert!(
            events.iter().any(|e| e
                .get("args")
                .and_then(|a| a.get("trace"))
                .and_then(Json::as_u64)
                == Some(0xDEAD_BEEF)),
            "traceparent request missing from the flight recorder"
        );

        let (mut ctl, mut ctl_reader) = connect(addr);
        shutdown(&mut ctl, &mut ctl_reader);
        handle.join().expect("serve thread");
    }

    /// A malformed `traceparent` is refused with 400 — and the
    /// keep-alive connection survives to answer the next request.
    #[test]
    fn malformed_traceparent_is_a_400_that_spares_the_connection() {
        let (addr, handle) = spawn_evloop();
        let (mut stream, mut reader) = connect(addr);
        for bad in [
            "zz-0123456789abcdef00000000deadbeef-00f067aa0ba902b7-01",
            "00-short-00f067aa0ba902b7-01",
            "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
            "ff-0123456789abcdef00000000deadbeef-00f067aa0ba902b7-01",
            "not a traceparent at all",
        ] {
            post_with_headers(
                &mut stream,
                "/v1/ping",
                &format!("traceparent: {bad}\r\n"),
                "{}",
            );
            let (status, body) = read_http(&mut reader);
            assert_eq!(status, 400, "traceparent {bad:?} accepted: {body}");
            assert!(body.contains("malformed traceparent"), "{body}");
        }
        // Same connection, well-formed request: still served.
        post_with_headers(&mut stream, "/v1/ping", "", "{}");
        let (status, body) = read_http(&mut reader);
        assert_eq!(status, 200, "connection died after the 400s: {body}");

        let (mut ctl, mut ctl_reader) = connect(addr);
        shutdown(&mut ctl, &mut ctl_reader);
        handle.join().expect("serve thread");
    }

    /// `/metrics` exposes the build-info gauge and the uptime counter
    /// next to the existing request counters.
    #[test]
    fn metrics_carry_build_info_and_uptime() {
        let (addr, handle) = spawn_evloop();
        let (mut stream, mut reader) = connect(addr);
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("GET write");
        let (status, body) = read_http(&mut reader);
        assert_eq!(status, 200);
        assert!(
            body.contains("revkb_build_info{") && body.contains("version=\""),
            "{body}"
        );
        assert!(body.contains("revkb_uptime_seconds"), "{body}");
        let (mut ctl, mut ctl_reader) = connect(addr);
        shutdown(&mut ctl, &mut ctl_reader);
        handle.join().expect("serve thread");
    }
}
