//! The epoll event loop front end: pipelining against a sequential
//! oracle, byte-identical behaviour versus the blocking TCP path
//! across all eight revision operators, protocol version negotiation,
//! and the HTTP/1.1 gateway (data-plane routes, keep-alive, and a
//! malformed-request battery).
//!
//! Every test talks to a real listener over loopback TCP — the same
//! bytes a foreign client would send — so the serialization boundary
//! is part of what is under test.

use revkb::server::{Json, Server, ServerConfig, PROTOCOL_VERSION};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

/// The eight revision operators, as on the wire.
const OPERATORS: [&str; 8] = [
    "winslett", "borgida", "forbus", "satoh", "dalal", "weber", "gfuv", "widtio",
];

enum Front {
    EventLoop,
    Blocking,
}

/// Serve a fresh server on a loopback listener; returns the address
/// and the join handle (the loop exits after `shutdown`).
fn spawn_front(front: Front) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::new(ServerConfig::default());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || match front {
        Front::EventLoop => {
            server.serve_event_loop(listener).expect("event loop");
        }
        Front::Blocking => {
            server.serve_tcp(listener).expect("blocking loop");
        }
    });
    (addr, handle)
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect loopback");
    stream.set_nodelay(true).expect("set TCP_NODELAY");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .expect("set read timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone stream"));
    (stream, reader)
}

fn send_line(stream: &mut TcpStream, line: &str) {
    let mut framed = String::with_capacity(line.len() + 1);
    framed.push_str(line);
    framed.push('\n');
    stream.write_all(framed.as_bytes()).expect("loopback write");
}

fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    let n = reader.read_line(&mut line).expect("loopback read");
    assert!(n > 0, "server closed the connection early");
    line.trim_end().to_string()
}

fn shutdown(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>) {
    send_line(stream, r#"{"cmd":"shutdown"}"#);
    let resp = read_line(reader);
    assert!(resp.contains("shutting_down"), "bad shutdown ack: {resp}");
}

/// The differential script: every revision operator compiled, queried
/// and batch-queried, plus the list/drop bookkeeping around them.
/// Responses carry no wall-clock fields, and every line supplies an
/// explicit trace id (a server-minted one would differ run to run —
/// even on the rejected `warp` line, whose trace must be salvaged),
/// so a fresh server answers the script deterministically.
fn differential_script() -> Vec<String> {
    let mut script = Vec::new();
    for (i, op) in OPERATORS.iter().enumerate() {
        script.push(format!(
            r#"{{"id":"load-{op}","trace":"1{i}","cmd":"load","kb":"kb-{op}","t":"a & b; b -> c"}}"#
        ));
        script.push(format!(
            r#"{{"id":"revise-{op}","trace":"2{i}","cmd":"revise","kb":"kb-{op}","op":"{op}","p":"!b | !c"}}"#
        ));
        script.push(format!(
            r#"{{"id":"query-{op}","trace":"3{i}","cmd":"query","kb":"kb-{op}","q":"a"}}"#
        ));
        script.push(format!(
            r#"{{"id":"batch-{op}","trace":"4{i}","cmd":"query_batch","kb":"kb-{op}","qs":["a","!a","b -> a"]}}"#
        ));
        if i % 2 == 0 {
            script.push(format!(
                r#"{{"id":"drop-{op}","trace":"5{i}","cmd":"drop","kb":"kb-{op}"}}"#
            ));
        }
    }
    script.push(r#"{"id":"list","trace":"91","cmd":"list"}"#.to_string());
    script.push(r#"{"id":"bad","trace":"92","cmd":"warp"}"#.to_string());
    script.push(r#"{"id":"hello","trace":"93","cmd":"hello"}"#.to_string());
    script
}

/// The event loop and the blocking path answer the differential
/// script byte-for-byte identically — same envelopes, same `req`
/// numbering, same error text — across all eight operators.
#[test]
fn event_loop_matches_blocking_front_end() {
    let mut transcripts = Vec::new();
    for front in [Front::EventLoop, Front::Blocking] {
        let (addr, handle) = spawn_front(front);
        let (mut stream, mut reader) = connect(addr);
        let mut transcript = Vec::new();
        for line in differential_script() {
            send_line(&mut stream, &line);
            transcript.push(read_line(&mut reader));
        }
        shutdown(&mut stream, &mut reader);
        handle.join().expect("serve thread");
        transcripts.push(transcript);
    }
    let (evloop, blocking) = (&transcripts[0], &transcripts[1]);
    assert_eq!(evloop.len(), blocking.len());
    for (e, b) in evloop.iter().zip(blocking) {
        assert_eq!(e, b, "front ends diverged");
    }
}

/// Pipelining oracle: the whole script sent in ONE write, answers
/// collected and matched by echoed id against the one-at-a-time
/// transcript. The event loop may answer out of order (responses are
/// written in completion order), so the comparison keys on `id` and
/// checks the `req` ordering is a permutation of 1..=n.
#[test]
fn pipelined_burst_matches_sequential_oracle() {
    let script = differential_script();

    // Sequential oracle.
    let (addr, handle) = spawn_front(Front::EventLoop);
    let (mut stream, mut reader) = connect(addr);
    let mut oracle = std::collections::HashMap::new();
    for line in &script {
        send_line(&mut stream, line);
        let resp = read_line(&mut reader);
        let json = Json::parse(&resp).expect("response is JSON");
        let id = json
            .get("id")
            .and_then(Json::as_str)
            .expect("echoed id")
            .to_string();
        oracle.insert(id, json);
    }
    shutdown(&mut stream, &mut reader);
    handle.join().expect("serve thread");

    // One burst, same script, fresh server.
    let (addr, handle) = spawn_front(Front::EventLoop);
    let (mut stream, mut reader) = connect(addr);
    let burst: String = script.iter().map(|l| format!("{l}\n")).collect();
    stream.write_all(burst.as_bytes()).expect("burst write");
    let mut reqs = Vec::new();
    for _ in 0..script.len() {
        let resp = read_line(&mut reader);
        let json = Json::parse(&resp).expect("response is JSON");
        let id = json
            .get("id")
            .and_then(Json::as_str)
            .expect("echoed id")
            .to_string();
        reqs.push(json.get("req").and_then(Json::as_u64).expect("req field"));
        let expected = oracle.get(&id).unwrap_or_else(|| panic!("unknown id {id}"));
        // `req` numbering depends on completion order; everything else
        // must match the sequential answer exactly.
        let strip = |j: &Json| {
            let Json::Obj(pairs) = j.clone() else {
                panic!("envelope is an object")
            };
            Json::Obj(pairs.into_iter().filter(|(k, _)| k != "req").collect())
        };
        assert_eq!(strip(&json), strip(expected), "for id {id}");
    }
    // Each request was counted exactly once.
    reqs.sort_unstable();
    assert_eq!(reqs, (1..=script.len() as u64).collect::<Vec<_>>());
    shutdown(&mut stream, &mut reader);
    handle.join().expect("serve thread");
}

/// `hello` negotiation and the `v` field: in-range versions answered,
/// out-of-range versions rejected with a stable error, every envelope
/// stamped with the current protocol version.
#[test]
fn version_negotiation() {
    let (addr, handle) = spawn_front(Front::EventLoop);
    let (mut stream, mut reader) = connect(addr);

    send_line(&mut stream, r#"{"id":1,"cmd":"hello"}"#);
    let hello = Json::parse(&read_line(&mut reader)).expect("hello JSON");
    assert_eq!(hello.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        hello.get("v").and_then(Json::as_u64),
        Some(PROTOCOL_VERSION)
    );
    let result = hello.get("result").expect("hello result");
    assert_eq!(
        result.get("server").and_then(Json::as_str),
        Some("revkb-server")
    );
    assert_eq!(
        result.get("protocol").and_then(Json::as_u64),
        Some(PROTOCOL_VERSION)
    );
    assert_eq!(result.get("min_protocol").and_then(Json::as_u64), Some(1));
    let features = result
        .get("features")
        .and_then(Json::as_array)
        .expect("features array");
    assert!(features.iter().any(|f| f.as_str() == Some("pipelining")));

    // Both supported versions answer; the future one is refused.
    for (v, ok) in [(1, true), (2, true), (99, false)] {
        send_line(&mut stream, &format!(r#"{{"id":2,"cmd":"ping","v":{v}}}"#));
        let resp = Json::parse(&read_line(&mut reader)).expect("ping JSON");
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(ok),
            "version {v}"
        );
        if !ok {
            assert_eq!(resp.get("code").and_then(Json::as_str), Some("bad_request"));
            let error = resp.get("error").and_then(Json::as_str).expect("error");
            assert!(error.contains("unsupported protocol version"), "{error}");
        }
    }
    shutdown(&mut stream, &mut reader);
    handle.join().expect("serve thread");
}

/// The transport-agnostic entry point answers exactly like the line
/// protocol: one `execute` call per parsed request, same envelope.
#[test]
fn execute_matches_line_transport() {
    use revkb::server::protocol::parse_request;
    let by_line = Server::new(ServerConfig::default());
    let by_call = Server::new(ServerConfig::default());
    for line in differential_script() {
        let over_line = by_line.handle_line(&line).expect("non-blank line");
        match parse_request(&line) {
            Ok(request) => {
                assert_eq!(by_call.execute(&request).render(), over_line);
            }
            Err(_) => {
                // `execute` takes parsed requests only; the reject path
                // stays behind `handle_line`. Keep the req counters in
                // step for the remaining lines.
                assert_eq!(by_call.handle_line(&line).expect("non-blank"), over_line);
            }
        }
    }
}

// ---------------------------------------------------------------
// HTTP gateway (Linux: the gateway lives on the epoll front end).
// ---------------------------------------------------------------

#[cfg(target_os = "linux")]
mod http_gateway {
    use super::*;

    /// Read one HTTP/1.1 response; returns (status, body).
    fn read_http(reader: &mut BufReader<TcpStream>) -> (u16, String) {
        let mut status_line = String::new();
        let n = reader.read_line(&mut status_line).expect("status line");
        assert!(n > 0, "server closed before a response");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            reader.read_line(&mut header).expect("header line");
            let header = header.trim();
            if header.is_empty() {
                break;
            }
            if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().expect("content-length");
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).expect("body");
        (status, String::from_utf8_lossy(&body).into_owned())
    }

    fn post(stream: &mut TcpStream, path: &str, body: &str) {
        let request = format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes()).expect("http write");
    }

    /// The full data plane over `POST /v1/<cmd>` and `POST /v1`, on
    /// one keep-alive connection, with GET metrics routes served by
    /// the same listener.
    #[test]
    fn gateway_routes_answer_the_data_plane() {
        let (addr, handle) = spawn_front(Front::EventLoop);
        let (mut stream, mut reader) = connect(addr);

        post(&mut stream, "/v1/load", r#"{"kb":"k","t":"a & b; b -> c"}"#);
        let (status, body) = read_http(&mut reader);
        assert_eq!(status, 200, "{body}");
        let json = Json::parse(body.trim()).expect("envelope JSON");
        assert_eq!(json.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(json.get("v").and_then(Json::as_u64), Some(PROTOCOL_VERSION));

        // Same keep-alive connection: the path names the command, the
        // body carries the arguments; a `cmd` in the body loses to the
        // path.
        post(
            &mut stream,
            "/v1/query",
            r#"{"cmd":"drop","kb":"k","q":"a"}"#,
        );
        let (status, body) = read_http(&mut reader);
        assert_eq!(status, 200);
        let json = Json::parse(body.trim()).expect("envelope JSON");
        assert_eq!(
            json.get("result")
                .and_then(|r| r.get("entails"))
                .and_then(Json::as_bool),
            Some(true),
            "path must win over the body cmd: {body}"
        );

        // The whole-request form.
        post(&mut stream, "/v1", r#"{"cmd":"query","kb":"k","q":"!a"}"#);
        let (status, body) = read_http(&mut reader);
        assert_eq!(status, 200);
        let json = Json::parse(body.trim()).expect("envelope JSON");
        assert_eq!(
            json.get("result")
                .and_then(|r| r.get("entails"))
                .and_then(Json::as_bool),
            Some(false)
        );

        // Bad body → protocol-level bad_request envelope, still 200
        // transport-wise (the command failed, not the gateway).
        post(
            &mut stream,
            "/v1/revise",
            r#"{"kb":"k","op":"nonsense","p":"a"}"#,
        );
        let (status, body) = read_http(&mut reader);
        assert_eq!(status, 200);
        let json = Json::parse(body.trim()).expect("envelope JSON");
        assert_eq!(json.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(json.get("code").and_then(Json::as_str), Some("bad_request"));

        // Metrics plane on the same socket.
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("GET write");
        let (status, body) = read_http(&mut reader);
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\":true"), "{body}");

        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("GET write");
        let (status, body) = read_http(&mut reader);
        assert_eq!(status, 200);
        assert!(body.contains("revkb_server_requests_total"), "{body}");

        // A line-protocol shutdown on a second connection stops the loop.
        let (mut ctl, mut ctl_reader) = connect(addr);
        shutdown(&mut ctl, &mut ctl_reader);
        handle.join().expect("serve thread");
    }

    /// Malformed-HTTP battery: every deformity gets the documented
    /// status code and the connection survives the process (no panic,
    /// no hang).
    #[test]
    fn malformed_http_battery() {
        let cases: &[(&[u8], u16)] = &[
            // Unknown command path.
            (
                b"POST /v1/warp HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}",
                404,
            ),
            // Data-plane path with the wrong method.
            (b"GET /v1/query HTTP/1.1\r\n\r\n", 405),
            // Unknown path entirely.
            (b"POST /nope HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}", 404),
            // Mangled request line.
            (b"NONSENSE\r\n\r\n", 400),
            // Not HTTP at a version the parser accepts.
            (b"POST /v1 SMTP/1.0\r\n\r\n", 400),
            // Transfer-Encoding and Content-Length together: the
            // request-smuggling shape is refused outright.
            (
                b"POST /v1 HTTP/1.1\r\nContent-Length: 2\r\nTransfer-Encoding: chunked\r\n\r\n{}",
                400,
            ),
            // Chunked body with a garbage chunk-size line.
            (
                b"POST /v1 HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n{}\r\n0\r\n\r\n",
                400,
            ),
            // Declared body over the 1 MiB cap.
            (
                b"POST /v1 HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n",
                413,
            ),
        ];
        let (addr, handle) = spawn_front(Front::EventLoop);
        for (bytes, expected) in cases {
            let (mut stream, mut reader) = connect(addr);
            stream.write_all(bytes).expect("malformed write");
            let (status, _) = read_http(&mut reader);
            assert_eq!(
                status,
                *expected,
                "for request {:?}",
                String::from_utf8_lossy(bytes)
            );
        }

        // Oversized head: 8 KiB of headers with no terminating blank
        // line must be cut off with 431, not buffered forever.
        let (mut stream, mut reader) = connect(addr);
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\n")
            .expect("head write");
        let filler = format!("X-Filler: {}\r\n", "y".repeat(120));
        for _ in 0..80 {
            stream.write_all(filler.as_bytes()).expect("filler write");
        }
        let (status, _) = read_http(&mut reader);
        assert_eq!(status, 431);

        let (mut ctl, mut ctl_reader) = connect(addr);
        shutdown(&mut ctl, &mut ctl_reader);
        handle.join().expect("serve thread");
    }

    /// Protocol sniffing: the first byte decides NDJSON vs HTTP per
    /// connection, and both kinds run concurrently on one listener.
    #[test]
    fn line_and_http_clients_share_the_listener() {
        let (addr, handle) = spawn_front(Front::EventLoop);

        let (mut line_conn, mut line_reader) = connect(addr);
        send_line(&mut line_conn, r#"{"cmd":"load","kb":"s","t":"a"}"#);
        let resp = read_line(&mut line_reader);
        assert!(resp.contains(r#""ok":true"#), "{resp}");

        let (mut http_conn, mut http_reader) = connect(addr);
        post(&mut http_conn, "/v1/query", r#"{"kb":"s","q":"a"}"#);
        let (status, body) = read_http(&mut http_reader);
        assert_eq!(status, 200);
        assert!(body.contains(r#""entails":true"#), "{body}");

        // The line connection is still alive after HTTP traffic.
        send_line(&mut line_conn, r#"{"cmd":"query","kb":"s","q":"a"}"#);
        let resp = read_line(&mut line_reader);
        assert!(resp.contains(r#""entails":true"#), "{resp}");

        shutdown(&mut line_conn, &mut line_reader);
        handle.join().expect("serve thread");
    }
}
