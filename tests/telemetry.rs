//! Integration tests for the `revkb-obs` telemetry subsystem as wired
//! through the real pipeline: counters stay exact under concurrency,
//! deterministic counters are invariant under the pool's thread count,
//! span nesting is physically consistent, the Chrome trace export is
//! valid JSON, and all three engines expose the same `stats()` shape.
//!
//! The obs registry is process-global, so every test here serialises
//! on [`LOCK`] and starts from `reset()`.

use revkb::logic::{Formula, Var};
use revkb::obs::{self, Counter, TraceMode};
use revkb::revision::{compact::CompactRep, DelayedKb, ModelBasedOp, RevisedKb};
use revkb::sat::{PoolConfig, SessionPool};
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn v(i: u32) -> Formula {
    Formula::var(Var(i))
}

/// 60 syntactically distinct queries over 6 letters: the cube that
/// spells `i` in binary. Distinctness matters — a repeated query hits
/// the per-worker answer cache, and which worker sees the repeat
/// depends on the shard layout, which would make cache counters
/// thread-count-dependent.
fn distinct_queries() -> Vec<Formula> {
    (0u32..60)
        .map(|i| {
            Formula::and_all((0..6).map(|b| if (i >> b) & 1 == 1 { v(b) } else { v(b).not() }))
        })
        .collect()
}

#[test]
fn concurrent_counter_increments_are_exact() {
    let _g = serial();
    static HAMMERED: Counter = Counter::new("test.telemetry.hammered");
    obs::set_mode(TraceMode::Summary);
    obs::reset();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for _ in 0..100_000 {
                    HAMMERED.inc();
                }
            });
        }
    });
    let snap = obs::drain();
    obs::set_mode(TraceMode::Off);
    assert_eq!(snap.counter("test.telemetry.hammered"), Some(400_000));
}

#[test]
fn deterministic_counters_invariant_under_thread_count() {
    let _g = serial();
    let base = Formula::and_all((0..12u32).map(v));
    let queries = distinct_queries();

    let run = |config: PoolConfig| {
        obs::set_mode(TraceMode::Summary);
        obs::reset();
        let mut pool = SessionPool::with_config(&base, config);
        let answers = pool.par_entails_batch(&queries);
        let snap = obs::drain();
        obs::set_mode(TraceMode::Off);
        (answers, snap)
    };

    let (seq_answers, seq) = run(PoolConfig {
        threads: 1,
        ..PoolConfig::default()
    });
    let (par_answers, par) = run(PoolConfig {
        threads: 4,
        sequential_threshold: 1,
    });

    assert_eq!(seq_answers, par_answers);
    // Work counters are determined by the query list, not by how it
    // was sharded. (Search-effort counters — decisions, conflicts,
    // propagations — legitimately differ per solver instance and are
    // deliberately not compared.)
    for name in [
        "sat.session.queries",
        "sat.session.cache_hits",
        "sat.session.cache_misses",
        "logic.tseitin.runs",
        "logic.tseitin.clauses",
    ] {
        assert_eq!(
            seq.counter(name),
            par.counter(name),
            "counter {name} differs between 1-thread and 4-thread runs"
        );
    }
    assert_eq!(seq.counter("sat.session.queries"), Some(60));
    let seq_hist = seq.histogram("sat.session.query_micros").unwrap();
    let par_hist = par.histogram("sat.session.query_micros").unwrap();
    assert_eq!(seq_hist.count, 60);
    assert_eq!(par_hist.count, 60);
}

#[test]
fn span_nesting_is_physically_consistent() {
    let _g = serial();
    obs::set_mode(TraceMode::Spans);
    obs::reset();
    let t = v(0).or(v(1));
    let p = v(0).not();
    let kb = RevisedKb::compile(ModelBasedOp::Dalal, &t, &p).unwrap();
    assert!(kb.entails(&v(1)));
    let snap = obs::drain();
    obs::set_mode(TraceMode::Off);

    assert!(
        snap.span_aggregate("revision.compile").is_some(),
        "compile span missing"
    );
    assert!(
        snap.span_aggregate("sat.query").is_some(),
        "solver query span missing"
    );
    assert!(!snap.spans.is_empty());
    // Every child span lies within its parent: starts no earlier,
    // lasts no longer.
    for child in snap.spans.iter().filter(|s| s.parent.is_some()) {
        let parent = snap
            .spans
            .iter()
            .find(|p| p.thread == child.thread && Some(p.id) == child.parent)
            .expect("parent event present for every child");
        assert!(child.dur_ns <= parent.dur_ns, "child outlives parent");
        assert!(child.start_ns >= parent.start_ns, "child precedes parent");
        assert_eq!(child.depth, parent.depth + 1);
    }
    let json = snap.to_json();
    assert!(obs::validate_json(&json), "snapshot JSON invalid: {json}");
}

#[test]
fn chrome_trace_export_is_valid_json() {
    let _g = serial();
    obs::set_mode(TraceMode::Chrome);
    obs::reset();
    let t = Formula::and_all((0..6u32).map(v));
    let p = v(0).not().or(v(1).not());
    let kb = RevisedKb::compile(ModelBasedOp::Satoh, &t, &p).unwrap();
    let _ = kb.entails_batch(&distinct_queries());
    let snap = obs::drain();
    obs::set_mode(TraceMode::Off);

    let trace = obs::chrome_trace(&snap);
    assert!(obs::validate_json(&trace), "chrome trace invalid: {trace}");
    assert!(trace.contains("\"traceEvents\""));
    assert!(trace.contains("\"ph\":\"X\""));
    assert!(trace.contains("sat.query"));
}

#[test]
fn stats_shape_is_uniform_across_engines() {
    let _g = serial();
    let t = v(0).or(v(1));
    let p = v(0).not();

    let rep = CompactRep::logical(v(0).and(v(1)), vec![Var(0), Var(1)]);
    assert!(rep.stats().is_empty());
    assert!(rep.entails(&v(0)));
    let rep_stats = rep.stats();
    assert_eq!(rep_stats.session.as_ref().map(|s| s.queries), Some(1));
    assert!(rep_stats.pool.is_none());

    let kb = RevisedKb::compile(ModelBasedOp::Dalal, &t, &p).unwrap();
    assert!(kb.stats().is_empty());
    assert!(kb.entails(&v(1)));
    assert_eq!(kb.stats().session.as_ref().map(|s| s.queries), Some(1));

    let mut delayed = DelayedKb::new(ModelBasedOp::Dalal, t.clone());
    delayed.revise(p);
    // Uniform shape: empty stats before any compilation, not a panic
    // or a different type.
    assert!(delayed.stats().is_empty());
    assert!(delayed.entails(&v(1)).unwrap());
    assert_eq!(delayed.stats().session.as_ref().map(|s| s.queries), Some(1));

    // All three merge the same way.
    for stats in [rep.stats(), kb.stats(), delayed.stats()] {
        assert_eq!(stats.merged().queries, 1);
        assert!(stats.to_json().starts_with("{\"session\":"));
    }
}
