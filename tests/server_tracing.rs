//! Per-request observability contract of the revision service: every
//! `server.*` span carries the same monotonic request id that the wire
//! response reports (so a Chrome trace can be joined against a client
//! log), the `slow_log` ring buffer captures slow degraded compiles,
//! and reading `stats` never perturbs the telemetry it reports.

use revkb::obs;
use revkb::server::{Json, Server, ServerConfig};
use std::sync::Mutex;

/// The trace mode and span buffers are process-global; tests that
/// touch them must not interleave.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn call(server: &Server, line: &str) -> Json {
    let response = server.handle_line(line).expect("request line is not blank");
    Json::parse(&response).unwrap_or_else(|e| panic!("response not JSON ({e}): {response}"))
}

fn req_of(resp: &Json) -> u64 {
    resp.get("req")
        .and_then(Json::as_u64)
        .expect("every response envelope carries a req id")
}

/// A scripted session under `chrome` mode: every `server.*` span must
/// carry a `req` attribute naming a request the wire log actually
/// answered, and the rendered Chrome trace must expose the same ids
/// under `args` so the export stays correlatable in a trace viewer.
#[test]
fn chrome_spans_correlate_with_wire_request_ids() {
    let _guard = OBS_LOCK.lock().unwrap();
    let prev = obs::mode();
    obs::set_mode(obs::TraceMode::Chrome);
    obs::reset();

    let server = Server::new(ServerConfig::default());
    let script = [
        r#"{"cmd":"load","kb":"k","t":"a & b; b -> c"}"#,
        r#"{"cmd":"revise","kb":"k","op":"dalal","p":"!b"}"#,
        r#"{"cmd":"query","kb":"k","q":"a"}"#,
        r#"{"cmd":"query_batch","kb":"k","qs":["a","!b"]}"#,
        "definitely not json",
        r#"{"cmd":"stats"}"#,
        r#"{"cmd":"ping"}"#,
    ];
    let mut wire_reqs = Vec::new();
    for line in script {
        wire_reqs.push(req_of(&call(&server, line)));
    }
    assert_eq!(wire_reqs, vec![1, 2, 3, 4, 5, 6, 7], "fresh server ids");

    let snap = obs::drain();
    obs::set_mode(prev);

    let server_spans: Vec<&obs::SpanEvent> = snap
        .spans
        .iter()
        .filter(|s| s.name.starts_with("server."))
        .collect();
    assert_eq!(
        server_spans
            .iter()
            .filter(|s| s.name == "server.request")
            .count(),
        script.len(),
        "one server.request span per answered line"
    );
    for span in &server_spans {
        let req = span
            .attr("req")
            .unwrap_or_else(|| panic!("span {} has no req attribute", span.name));
        assert!(
            wire_reqs.contains(&req),
            "span {} carries req {req}, which no wire response reported",
            span.name
        );
    }
    // The command and compile layers are annotated too, not just the
    // envelope: the revise (req 2) must show up in all three.
    for name in ["server.request", "server.cmd.revise", "server.compile"] {
        assert!(
            server_spans
                .iter()
                .any(|s| s.name == name && s.attr("req") == Some(2)),
            "no {name} span for the revise request"
        );
    }

    // The Chrome export keeps the correlation: every server.* trace
    // event exposes the id under args.req.
    let trace = obs::chrome_trace(&snap);
    assert!(obs::validate_json(&trace), "chrome trace is valid JSON");
    let parsed = Json::parse(&trace).expect("chrome trace parses");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    let mut correlated = 0usize;
    for event in events {
        let name = event.get("name").and_then(Json::as_str).unwrap_or("");
        if !name.starts_with("server.") {
            continue;
        }
        let req = event
            .get("args")
            .and_then(|a| a.get("req"))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("chrome event {name} has no args.req"));
        assert!(wire_reqs.contains(&req), "chrome event {name} req {req}");
        correlated += 1;
    }
    assert_eq!(correlated, server_spans.len());
}

/// With the compile budget forced to zero, a revise degrades to
/// delayed incorporation; with `slow_ms` at zero every request
/// qualifies as slow, so the degraded compile must land in the
/// `slow_log` with its request id and command tag.
#[test]
fn slow_log_captures_a_degraded_compile() {
    let server = Server::new(
        ServerConfig::default()
            .with_compile_timeout_ms(Some(0))
            .with_slow_ms(0)
            .with_slow_log_cap(8),
    );
    call(&server, r#"{"cmd":"load","kb":"k","t":"a & b"}"#);
    let resp = call(
        &server,
        r#"{"cmd":"revise","kb":"k","op":"satoh","p":"!a"}"#,
    );
    let revise_req = req_of(&resp);
    let result = resp.get("result").expect("revise succeeds");
    assert_eq!(
        result.get("degraded").and_then(Json::as_bool),
        Some(true),
        "zero budget must degrade the compile"
    );

    let stats = call(&server, r#"{"cmd":"stats"}"#);
    let slow_log = stats
        .get("result")
        .and_then(|r| r.get("slow_log"))
        .and_then(Json::as_array)
        .expect("stats carries slow_log");
    let entry = slow_log
        .iter()
        .find(|e| e.get("req").and_then(Json::as_u64) == Some(revise_req))
        .expect("degraded revise is in the slow_log");
    assert_eq!(entry.get("cmd").and_then(Json::as_str), Some("revise"));
    assert!(entry.get("micros").and_then(Json::as_u64).is_some());
}

/// `stats` is a read-only probe: asking twice reports the same
/// request-latency counts (the stats request itself is only recorded
/// after its response is rendered), and the global telemetry registry
/// is left exactly as it was — no drain, no reset.
#[test]
fn stats_does_not_perturb_telemetry() {
    let _guard = OBS_LOCK.lock().unwrap();
    let prev = obs::mode();
    obs::set_mode(obs::TraceMode::Summary);
    obs::reset();

    let server = Server::new(ServerConfig::default());
    call(&server, r#"{"cmd":"load","kb":"k","t":"a & b"}"#);
    call(&server, r#"{"cmd":"query","kb":"k","q":"a"}"#);
    call(&server, r#"{"cmd":"query","kb":"k","q":"b"}"#);

    let before = obs::snapshot();
    let query_count = |stats: &Json| {
        stats
            .get("result")
            .and_then(|r| r.get("request_latency"))
            .and_then(|l| l.get("query"))
            .and_then(|q| q.get("count"))
            .and_then(Json::as_u64)
            .expect("stats reports query latency")
    };
    let first = call(&server, r#"{"cmd":"stats"}"#);
    let second = call(&server, r#"{"cmd":"stats"}"#);
    assert_eq!(query_count(&first), 2);
    assert_eq!(
        query_count(&first),
        query_count(&second),
        "a stats read must not consume the latency histograms"
    );
    // Percentile fields are present and ordered.
    let latency = first
        .get("result")
        .and_then(|r| r.get("request_latency"))
        .and_then(|l| l.get("query"))
        .expect("query latency block");
    let pct = |k: &str| latency.get(k).and_then(Json::as_u64).unwrap();
    assert!(pct("p50") <= pct("p95"));
    assert!(pct("p95") <= pct("p99"));
    assert!(pct("p99") <= pct("max"));

    // The process-global registry was not drained by stats: every
    // aggregate that existed before is still there afterwards (the
    // stats requests themselves may bump counters, never reset them).
    let after = obs::snapshot();
    for (name, value) in &before.counters {
        let now = after
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("stats dropped counter {name}"));
        assert!(now >= *value, "stats rewound counter {name}");
    }
    for h in &before.histograms {
        let now = after
            .histograms
            .iter()
            .find(|a| a.name == h.name)
            .unwrap_or_else(|| panic!("stats dropped histogram {}", h.name));
        assert!(now.count >= h.count, "stats rewound histogram {}", h.name);
    }
    assert!(
        after.span_aggregates.len() >= before.span_aggregates.len(),
        "span aggregates reset by stats"
    );

    obs::reset();
    obs::set_mode(prev);
}
