//! Deterministic fault injection for replication tests.
//!
//! [`FaultProxy`] is a loopback TCP relay that sits between a replica
//! and its primary and misbehaves on cue: it can cut a connection
//! after relaying an exact number of shipped bytes, or flip one bit
//! at an exact stream offset. Offsets are counted on the
//! upstream→downstream direction starting *after* the first newline —
//! i.e. after the `replicate` handshake response — so a fault offset
//! maps 1:1 onto a position in the raw record stream regardless of
//! how the kernel chunks the bytes.
//!
//! Faults are queued per connection: the first accepted connection
//! pops the first fault, the second the next, and connections beyond
//! the queue relay cleanly. That makes a scripted
//! cut/reconnect/converge sequence fully deterministic.
//!
//! Extra fault offsets in tests come from [`Lcg`], seeded by
//! `REVKB_FAULT_SEED` (pinned in CI), so a failing run reproduces
//! with the seed it prints.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Environment variable overriding the fault-offset seed.
pub const FAULT_SEED_ENV: &str = "REVKB_FAULT_SEED";

/// Seed used when `REVKB_FAULT_SEED` is unset (CI pins it explicitly).
pub const DEFAULT_FAULT_SEED: u64 = 0x5EED_CAFE;

/// The seed for this run: `REVKB_FAULT_SEED` or the default.
pub fn fault_seed() -> u64 {
    std::env::var(FAULT_SEED_ENV)
        .ok()
        .and_then(|raw| raw.trim().parse().ok())
        .unwrap_or(DEFAULT_FAULT_SEED)
}

/// A tiny deterministic generator (Knuth's MMIX LCG) for picking
/// fault offsets. Not statistical quality — just reproducible.
pub struct Lcg(u64);

impl Lcg {
    pub fn new(seed: u64) -> Lcg {
        Lcg(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    /// A value in `[lo, hi)`; `lo` when the range is empty.
    pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_u64() % (hi - lo)
    }
}

/// One scripted misbehaviour for one proxied connection.
#[derive(Debug, Clone, Copy)]
pub enum Fault {
    /// Relay everything faithfully.
    Clean,
    /// Sever the connection (both directions) once `n` post-handshake
    /// upstream→downstream bytes have been relayed.
    CutAfter(u64),
    /// Flip one bit in post-handshake byte `n`, keep relaying.
    CorruptAt(u64),
}

struct Shared {
    upstream: SocketAddr,
    stop: AtomicBool,
    block_new: AtomicBool,
    faults: Mutex<VecDeque<Fault>>,
    conns: Mutex<Vec<TcpStream>>,
}

/// The relay. Dropping it stops the accept loop and severs every
/// tracked connection.
pub struct FaultProxy {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Bind an ephemeral loopback port relaying to `upstream`.
    pub fn start(upstream: SocketAddr) -> FaultProxy {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy port");
        listener.set_nonblocking(true).expect("nonblocking accept");
        let addr = listener.local_addr().expect("proxy addr");
        let shared = Arc::new(Shared {
            upstream,
            stop: AtomicBool::new(false),
            block_new: AtomicBool::new(false),
            faults: Mutex::new(VecDeque::new()),
            conns: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        FaultProxy {
            addr,
            shared,
            accept: Some(accept),
        }
    }

    /// Where the replica should connect.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Queue the fault for the next yet-unscripted connection.
    pub fn push_fault(&self, fault: Fault) {
        self.shared
            .faults
            .lock()
            .expect("faults poisoned")
            .push_back(fault);
    }

    /// When `true`, accepted connections are closed immediately —
    /// the primary becomes unreachable without touching it.
    pub fn block_new(&self, block: bool) {
        self.shared.block_new.store(block, Ordering::SeqCst);
    }

    /// Sever every live proxied connection right now (both ways).
    pub fn cut_all(&self) {
        let mut conns = self.shared.conns.lock().expect("conns poisoned");
        for conn in conns.drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.cut_all();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                if shared.block_new.load(Ordering::SeqCst) {
                    drop(client); // refused: close without a byte
                    continue;
                }
                let fault = shared
                    .faults
                    .lock()
                    .expect("faults poisoned")
                    .pop_front()
                    .unwrap_or(Fault::Clean);
                let Ok(upstream) = TcpStream::connect(shared.upstream) else {
                    drop(client);
                    continue;
                };
                spawn_relay(client, upstream, fault, shared);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return,
        }
    }
}

fn track(shared: &Arc<Shared>, stream: &TcpStream) {
    if let Ok(clone) = stream.try_clone() {
        shared.conns.lock().expect("conns poisoned").push(clone);
    }
}

fn spawn_relay(client: TcpStream, upstream: TcpStream, fault: Fault, shared: &Arc<Shared>) {
    track(shared, &client);
    track(shared, &upstream);
    // Downstream (replica → primary): requests relay untouched.
    {
        let (from, to) = (
            client.try_clone().expect("clone client"),
            upstream.try_clone().expect("clone upstream"),
        );
        let shared = Arc::clone(shared);
        std::thread::spawn(move || relay_plain(from, to, &shared));
    }
    // Upstream (primary → replica): the shipped stream, where the
    // scripted fault applies.
    let shared = Arc::clone(shared);
    std::thread::spawn(move || relay_faulty(upstream, client, fault, &shared));
}

fn sever(a: &TcpStream, b: &TcpStream) {
    let _ = a.shutdown(Shutdown::Both);
    let _ = b.shutdown(Shutdown::Both);
}

fn relay_plain(mut from: TcpStream, mut to: TcpStream, shared: &Arc<Shared>) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(50)));
    let mut chunk = [0u8; 4096];
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return sever(&from, &to);
        }
        match from.read(&mut chunk) {
            Ok(0) => return sever(&from, &to),
            Ok(n) => {
                if to.write_all(&chunk[..n]).is_err() {
                    return sever(&from, &to);
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return sever(&from, &to),
        }
    }
}

fn relay_faulty(mut from: TcpStream, mut to: TcpStream, fault: Fault, shared: &Arc<Shared>) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(50)));
    let mut chunk = [0u8; 4096];
    // Post-handshake bytes relayed so far; `None` until the
    // handshake's terminating newline has passed through.
    let mut counted: Option<u64> = None;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return sever(&from, &to);
        }
        let n = match from.read(&mut chunk) {
            Ok(0) => return sever(&from, &to),
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return sever(&from, &to),
        };
        let buf = &mut chunk[..n];
        // Split the chunk at the handshake newline if it is in here.
        let stream_start = match counted {
            Some(_) => 0,
            None => match buf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    counted = Some(0);
                    pos + 1
                }
                None => buf.len(), // all handshake bytes
            },
        };
        let already = counted.unwrap_or(0);
        let stream_len = (buf.len() - stream_start) as u64;
        let mut send_to = buf.len();
        let mut cut = false;
        match fault {
            Fault::Clean => {}
            Fault::CutAfter(limit) if counted.is_some() && already + stream_len >= limit => {
                send_to = stream_start + usize::try_from(limit - already).unwrap();
                cut = true;
            }
            Fault::CorruptAt(target)
                if counted.is_some() && target >= already && target < already + stream_len =>
            {
                let victim = stream_start + usize::try_from(target - already).unwrap();
                buf[victim] ^= 0x01;
            }
            _ => {}
        }
        if let Some(c) = counted.as_mut() {
            *c += (send_to - stream_start) as u64;
        }
        if to.write_all(&buf[..send_to]).is_err() || cut {
            return sever(&from, &to);
        }
    }
}
