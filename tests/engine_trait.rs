//! The unified `Engine` trait is a faithful façade: trait-object
//! dispatch must answer exactly like the concrete engines it wraps,
//! for every operator the paper analyses, and the unified error type
//! must keep the stable codes the server protocol re-exports verbatim.

use revkb::prelude::*;
use revkb::revision::{gfuv_entails, widtio};
use revkb::sat::entails as sat_entails;

fn v(i: u32) -> Formula {
    Formula::var(Var(i))
}

/// The shared scenario: T = a ∧ b ∧ (b → c), P = ¬b ∨ ¬c.
fn scenario() -> (Formula, Formula, Vec<Formula>) {
    let t = v(0).and(v(1)).and(v(1).implies(v(2)));
    let p = v(1).not().or(v(2).not());
    let queries = vec![
        v(0),
        v(1),
        v(2),
        v(0).or(v(1)),
        v(1).and(v(2)),
        v(1).implies(v(2)),
        v(0).xor(v(1)),
    ];
    (t, p, queries)
}

#[test]
fn boxed_engines_match_concrete_for_all_model_based_ops() {
    let (t, p, queries) = scenario();
    for op in ModelBasedOp::ALL {
        let concrete = RevisedKb::compile(op, &t, &p).unwrap();
        let mut boxed: Box<dyn Engine + Send> = ReviseBuilder::new(op)
            .engine(&t, std::slice::from_ref(&p))
            .unwrap();
        let batch = boxed.try_entails_batch(&queries).unwrap();
        let parallel = boxed.par_entails_batch(&queries).unwrap();
        assert_eq!(batch, parallel, "{}", op.name());
        for (q, &answer) in queries.iter().zip(&batch) {
            assert_eq!(answer, concrete.entails(q), "{} on {q:?}", op.name());
            assert_eq!(answer, boxed.try_entails(q).unwrap(), "{}", op.name());
        }
    }
}

#[test]
fn delayed_engine_matches_eager_compilation() {
    let (t, p, queries) = scenario();
    for op in ModelBasedOp::ALL {
        let eager = RevisedKb::compile(op, &t, &p).unwrap();
        let mut delayed = ReviseBuilder::new(op).delayed(t.clone());
        delayed.revise(p.clone());
        let engine: &mut dyn Engine = &mut delayed;
        assert_eq!(engine.compiled_size(), None, "not compiled before query");
        for q in &queries {
            assert_eq!(
                engine.try_entails(q).unwrap(),
                eager.entails(q),
                "{} on {q:?}",
                op.name()
            );
        }
        assert!(engine.compiled_size().is_some(), "compiled after query");
    }
}

#[test]
fn gfuv_engine_matches_direct_entailment() {
    let theory = Theory::new([v(0), v(0).implies(v(1)), v(2)]);
    let p = v(1).not();
    let mut engine: Box<dyn Engine + Send> =
        Box::new(GfuvEngine::compile(theory.clone(), p.clone(), 1024).unwrap());
    for q in [v(0), v(1), v(2), v(0).or(v(2)), v(2).and(v(1).not())] {
        assert_eq!(
            engine.try_entails(&q).unwrap(),
            gfuv_entails(&theory, &p, &q),
            "gfuv diverges on {q:?}"
        );
    }
}

#[test]
fn widtio_engine_matches_direct_entailment() {
    let theory = Theory::new([v(0), v(0).implies(v(1)), v(2)]);
    let p = v(1).not();
    let mut engine: Box<dyn Engine + Send> = Box::new(WidtioEngine::compile(&theory, &p));
    let kept = widtio(&theory, &p).conjunction();
    for q in [v(0), v(1), v(2), v(1).not(), v(2).or(v(0))] {
        assert_eq!(
            engine.try_entails(&q).unwrap(),
            sat_entails(&kept, &q),
            "widtio diverges on {q:?}"
        );
    }
}

#[test]
fn unrevised_engine_is_the_base_theory() {
    let (t, _, _) = scenario();
    let mut engine = ReviseBuilder::new(ModelBasedOp::Dalal)
        .engine(&t, &[])
        .unwrap();
    assert!(engine.try_entails(&v(2)).unwrap());
    assert!(!engine.try_entails(&v(2).not()).unwrap());
    assert_eq!(engine.describe(), "compact-rep(logical)");
}

#[test]
fn error_codes_are_stable_across_the_api() {
    // The server protocol forwards `Error::code` verbatim; these
    // strings are wire format and must never drift.
    let (t, p, _) = scenario();
    let mut engine = ReviseBuilder::new(ModelBasedOp::Dalal)
        .engine(&t, std::slice::from_ref(&p))
        .unwrap();
    assert_eq!(
        engine.try_entails(&v(40)).unwrap_err().code(),
        "out_of_alphabet"
    );

    let mut sig = Signature::new();
    let parse_err: Error = parse("a &&& b", &mut sig).unwrap_err().into();
    assert_eq!(parse_err.code(), "parse");

    let hopeless = Profile {
        bounded_p: false,
        allow_new_letters: false,
        iterated: false,
    };
    let err = ReviseBuilder::new(ModelBasedOp::Winslett)
        .profile(hopeless)
        .compile(&t, &p)
        .unwrap_err();
    assert_eq!(err.code(), "not_compactable");

    let big = Theory::new((0..8u32).map(v));
    let p8 = Formula::and_all((0..4u32).map(|i| v(i).xor(v(4 + i))));
    let budget_err: Error = GfuvEngine::compile(big, p8, 2).unwrap_err().into();
    assert_eq!(budget_err.code(), "world_budget_exceeded");
}

#[test]
fn engines_are_send() {
    // The server registry moves engines across threads; losing the
    // Send bound would break it at a distance. Compile-time check.
    fn assert_send<T: Send>(_: &T) {}
    let (t, p, _) = scenario();
    let engine = ReviseBuilder::new(ModelBasedOp::Weber)
        .engine(&t, std::slice::from_ref(&p))
        .unwrap();
    assert_send(&engine);
}
