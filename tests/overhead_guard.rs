//! Guard on the cost of *disabled* telemetry: with `REVKB_TRACE=off`,
//! every instrument hook must reduce to a single relaxed atomic load,
//! so the instrumented pipeline stays within 5% of its
//! pre-instrumentation wall time.
//!
//! Rather than pinning an absolute wall time (flaky across machines),
//! the test pins the *ratio*: it measures a table1-sized batch
//! workload through the pool's own `wall_time_micros` stat, measures
//! the real per-hook cost of a disabled instrument, and checks that
//! the hooks the pipeline executes for that workload (~24 sites per
//! query: span open/close, counters, histogram) cannot account for 5%
//! of the batch.

use revkb::logic::{Formula, Var};
use revkb::obs::{self, Counter, TraceMode};
use revkb::revision::compact::winslett_bounded;
use revkb::sat::{pseudo_random_formula, PoolConfig, SessionPool};
use std::time::Instant;

/// Hook sites executed per query in the instrumented pipeline,
/// rounded up (session counters + histogram + span open/close on both
/// the query and batch paths).
const HOOKS_PER_QUERY: f64 = 24.0;

/// Wall-time floor so a machine fast enough to finish the batch in
/// microseconds doesn't turn the 5% bound into noise-chasing.
const FLOOR_MICROS: u64 = 2_000;

static PROBE: Counter = Counter::new("test.overhead.probe");

#[test]
fn disabled_telemetry_stays_under_five_percent() {
    obs::set_mode(TraceMode::Off);
    obs::reset();

    // The table1 batch workload: a bounded Winslett representation
    // over 12 letters answering 60 pseudo-random queries.
    let t = Formula::and_all((0..12u32).map(|i| Formula::var(Var(i))));
    let p = Formula::var(Var(0)).not().or(Formula::var(Var(1)).not());
    let rep = winslett_bounded(&t, &p);
    let mut seed = 0x7AB1E1u64;
    let queries: Vec<Formula> = (0..60)
        .map(|_| pseudo_random_formula(&mut seed, 3, 12))
        .collect();
    let mut pool = SessionPool::with_config(&rep.formula, PoolConfig::default());
    let answers = pool.par_entails_batch(&queries);
    assert_eq!(answers.len(), 60);
    let wall_micros = pool.stats().wall_time_micros.max(FLOOR_MICROS);

    // Real cost of one disabled hook, amortised over a million calls.
    const CALLS: u64 = 1_000_000;
    let start = Instant::now();
    for i in 0..CALLS {
        PROBE.add(std::hint::black_box(i) & 1);
    }
    std::hint::black_box(&PROBE);
    let per_hook_nanos = start.elapsed().as_nanos() as f64 / CALLS as f64;

    let added_micros = per_hook_nanos * HOOKS_PER_QUERY * queries.len() as f64 / 1_000.0;
    let budget_micros = 0.05 * wall_micros as f64;
    assert!(
        added_micros <= budget_micros,
        "disabled hooks would add {added_micros:.1}µs to a {wall_micros}µs batch \
         ({per_hook_nanos:.2}ns/hook); budget is {budget_micros:.1}µs"
    );

    // Disabled means *disabled*: a million calls left no trace — the
    // probe never even registered itself.
    assert_eq!(obs::snapshot().counter("test.overhead.probe"), None);
}

/// Guard on the diagnostics plane's quiet path: with `REVKB_TRACE`
/// off and the flight recorder disabled, a `span_with` reduces to the
/// unarmed guard; with the log level at its default (`info`), a
/// `debug!`-style call is gate-only and its message closure never
/// runs. Charged at realistic per-query site counts, both together
/// must stay inside the same 5% budget as the metric hooks.
#[test]
fn flight_and_log_quiet_paths_stay_under_five_percent() {
    // The same batch workload as above sets the wall-time yardstick.
    let t = Formula::and_all((0..12u32).map(|i| Formula::var(Var(i))));
    let p = Formula::var(Var(0)).not().or(Formula::var(Var(1)).not());
    let rep = winslett_bounded(&t, &p);
    let mut seed = 0x7AB1E3u64;
    let queries: Vec<Formula> = (0..60)
        .map(|_| pseudo_random_formula(&mut seed, 3, 12))
        .collect();
    let mut pool = SessionPool::with_config(&rep.formula, PoolConfig::default());
    let answers = pool.par_entails_batch(&queries);
    assert_eq!(answers.len(), 60);
    let wall_micros = pool.stats().wall_time_micros.max(FLOOR_MICROS);

    // Span and log sites the server path executes per query: the
    // request / command / compile spans and the error/warn gates on
    // the WAL and reply paths, rounded up.
    const SPANS_PER_QUERY: f64 = 4.0;
    const LOGS_PER_QUERY: f64 = 4.0;
    const CALLS: u64 = 200_000;

    obs::set_mode(TraceMode::Off);
    let prev_flight = obs::flight_enabled();
    obs::set_flight_enabled(false);
    let flight_before = obs::flight_len();
    let start = Instant::now();
    for i in 0..CALLS {
        let _span = obs::span_with("test.overhead.span", &[("i", std::hint::black_box(i))]);
    }
    let per_span_nanos = start.elapsed().as_nanos() as f64 / CALLS as f64;
    assert_eq!(
        obs::flight_len(),
        flight_before,
        "a disabled flight recorder must not record"
    );
    obs::set_flight_enabled(prev_flight);

    let prev_level = obs::log_level();
    obs::set_log_level(obs::Level::Info);
    let start = Instant::now();
    for i in 0..CALLS {
        obs::debug("overhead-guard", Some(std::hint::black_box(i)), || {
            panic!("a suppressed log message must never be rendered")
        });
    }
    let per_log_nanos = start.elapsed().as_nanos() as f64 / CALLS as f64;
    obs::set_log_level(prev_level);

    let added_micros = (per_span_nanos * SPANS_PER_QUERY + per_log_nanos * LOGS_PER_QUERY)
        * queries.len() as f64
        / 1_000.0;
    let budget_micros = 0.05 * wall_micros as f64;
    assert!(
        added_micros <= budget_micros,
        "quiet diagnostics would add {added_micros:.1}µs to a {wall_micros}µs batch \
         ({per_span_nanos:.2}ns/span, {per_log_nanos:.2}ns/log); budget is {budget_micros:.1}µs"
    );
}

/// Guard on the cost of the *enabled* time-series sampler: one tick
/// folds every server observation into the ring buffers, and at the
/// default 1 s interval that work must stay far inside 5% of a
/// table1-sized batch's wall time. The store is clock-free, so the
/// test drives a realistic observation set through it directly and
/// measures the real per-tick cost — no sleeping, no background
/// thread, deterministic across machines.
#[test]
fn sampler_tick_stays_under_five_percent() {
    use revkb::obs::timeseries::{Observation, SeriesStore, DEFAULT_SERIES_CAPACITY};

    // The same batch workload as above sets the wall-time yardstick.
    let t = Formula::and_all((0..12u32).map(|i| Formula::var(Var(i))));
    let p = Formula::var(Var(0)).not().or(Formula::var(Var(1)).not());
    let rep = winslett_bounded(&t, &p);
    let mut seed = 0x7AB1E2u64;
    let queries: Vec<Formula> = (0..60)
        .map(|_| pseudo_random_formula(&mut seed, 3, 12))
        .collect();
    let mut pool = SessionPool::with_config(&rep.formula, PoolConfig::default());
    let answers = pool.par_entails_batch(&queries);
    assert_eq!(answers.len(), 60);
    let wall_micros = pool.stats().wall_time_micros.max(FLOOR_MICROS);

    // A server-sized observation set: more series than the server's
    // source actually emits, so the bound is conservative.
    let observations: Vec<Observation> = (0..32)
        .map(|i| Observation::counter(format!("guard.counter.{i}"), 0))
        .chain((0..8).map(|i| Observation::gauge(format!("guard.gauge.{i}"), 0)))
        .collect();
    let mut store = SeriesStore::new(DEFAULT_SERIES_CAPACITY);
    // Warm tick so ring creation (a one-time cost) is off the clock.
    store.tick(0, &observations);

    const TICKS: u64 = 10_000;
    let start = Instant::now();
    for i in 1..=TICKS {
        store.tick(i, std::hint::black_box(&observations));
    }
    std::hint::black_box(&store);
    let per_tick_micros = start.elapsed().as_micros() as f64 / TICKS as f64;

    // At the default interval the sampler ticks once per second; over
    // the window it would take to run the batch, that is at most
    // ceil(wall/1s) ticks — but even charging one *full* tick against
    // every batch keeps the bound strict and timing-free.
    let budget_micros = 0.05 * wall_micros as f64;
    assert!(
        per_tick_micros <= budget_micros,
        "one sampler tick costs {per_tick_micros:.1}µs against a {wall_micros}µs batch; \
         budget is {budget_micros:.1}µs"
    );
}
