//! The advisor's promises are kept: whenever `advise` says
//! *compactable* for a profile, the engine actually compiles
//! conforming inputs — and the result matches the semantic oracle.

use proptest::prelude::*;
use revkb::logic::{Alphabet, Formula, Var};
use revkb::revision::{
    advise, query_equivalent_enum, revise_iterated_on, revise_on, Advice, ModelBasedOp,
    OperatorKind, Profile, RevisedKb,
};

fn formula_strategy(num_vars: u32, depth: u32) -> BoxedStrategy<Formula> {
    let leaf = (0..num_vars, any::<bool>())
        .prop_map(|(v, pos)| Formula::lit(Var(v), pos))
        .boxed();
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.xor(b)),
        ]
        .boxed()
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Bounded single revision: advised compactable for all operators;
    /// the engine compiles and matches the oracle.
    #[test]
    fn bounded_single_promise(
        t in formula_strategy(5, 3),
        p in formula_strategy(2, 2),
    ) {
        prop_assume!(revkb::sat::satisfiable(&t));
        prop_assume!(revkb::sat::satisfiable(&p));
        let profile = Profile { bounded_p: true, allow_new_letters: false, iterated: false };
        for op in ModelBasedOp::ALL {
            let advice = advise(OperatorKind::ModelBased(op), profile);
            prop_assert!(advice.is_compactable(), "{} should be compactable", op.name());
            let kb = RevisedKb::compile(op, &t, &p).expect("promised compilable");
            let rep = kb.representation();
            let alpha = Alphabet::new(rep.base.clone());
            let oracle = revise_on(op, &alpha, &t, &p);
            prop_assert!(query_equivalent_enum(&rep.formula, &oracle.to_dnf(), &rep.base));
        }
    }

    /// Unbounded + new letters: only Dalal/Weber are promised; the
    /// engine honours exactly that set for wide updates.
    #[test]
    fn unbounded_promise(seed in 0u64..1000) {
        let _ = seed;
        let profile = Profile { bounded_p: false, allow_new_letters: true, iterated: false };
        let wide_p = Formula::or_all((0..20u32).map(|i| Formula::var(Var(i))));
        let t = Formula::var(Var(0)).and(Formula::var(Var(1)));
        for op in ModelBasedOp::ALL {
            let advice = advise(OperatorKind::ModelBased(op), profile);
            let compiles = RevisedKb::compile(op, &t, &wide_p).is_ok();
            prop_assert_eq!(
                advice.is_compactable(),
                compiles,
                "advice and engine disagree for {}", op.name()
            );
        }
    }

    /// Iterated bounded with new letters: every operator promised and
    /// delivered.
    #[test]
    fn iterated_bounded_promise(
        t in formula_strategy(4, 3),
        p1 in formula_strategy(2, 2),
        p2 in formula_strategy(2, 2),
    ) {
        prop_assume!(revkb::sat::satisfiable(&t));
        prop_assume!(revkb::sat::satisfiable(&p1));
        prop_assume!(revkb::sat::satisfiable(&p2));
        let profile = Profile { bounded_p: true, allow_new_letters: true, iterated: true };
        let ps = vec![p1, p2];
        for op in ModelBasedOp::ALL {
            prop_assert!(advise(OperatorKind::ModelBased(op), profile).is_compactable());
            let kb = RevisedKb::compile_iterated(op, &t, &ps).expect("promised compilable");
            let rep = kb.representation();
            let alpha = Alphabet::new(rep.base.clone());
            let oracle = revise_iterated_on(op, &alpha, &t, &ps);
            prop_assert!(query_equivalent_enum(&rep.formula, &oracle.to_dnf(), &rep.base));
        }
    }
}

/// NO cells carry the right collapse consequence.
#[test]
fn collapse_consequences_match_theorems() {
    // Logical-equivalence NOs cite NP ⊆ P/poly (Thm 2.3 route);
    // query-equivalence NOs cite NP ⊆ coNP/poly (Thm 2.2 route).
    let logical_no = advise(
        OperatorKind::ModelBased(ModelBasedOp::Dalal),
        Profile {
            bounded_p: false,
            allow_new_letters: false,
            iterated: false,
        },
    );
    match logical_no {
        Advice::NotCompactable { consequence, .. } => {
            assert!(consequence.contains("P/poly"));
            assert!(!consequence.contains("coNP"));
        }
        _ => panic!("expected NO"),
    }
    let query_no = advise(
        OperatorKind::ModelBased(ModelBasedOp::Forbus),
        Profile {
            bounded_p: false,
            allow_new_letters: true,
            iterated: false,
        },
    );
    match query_no {
        Advice::NotCompactable { consequence, .. } => {
            assert!(consequence.contains("coNP/poly"));
        }
        _ => panic!("expected NO"),
    }
}
