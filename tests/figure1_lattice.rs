//! Property test of Figure 1's containment lattice (E1 in DESIGN.md)
//! plus the paper's structural invariants (Proposition 2.1, success,
//! and the pointwise/global relationships).

use proptest::prelude::*;
use revkb::logic::{Alphabet, Formula, Var};
use revkb::revision::{check_containments, revise_on, ModelBasedOp, ModelSet};

fn formula_strategy(num_vars: u32, depth: u32) -> BoxedStrategy<Formula> {
    let leaf = (0..num_vars, any::<bool>())
        .prop_map(|(v, pos)| Formula::lit(Var(v), pos))
        .boxed();
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.xor(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
        ]
        .boxed()
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Every Figure 1 edge holds on random instances.
    #[test]
    fn lattice_edges_hold(t in formula_strategy(5, 3), p in formula_strategy(5, 3)) {
        let violations = check_containments(&t, &p);
        prop_assert!(violations.is_empty(), "violated: {:?}", violations);
    }

    /// All operators produce subsets of M(P), and nonempty results for
    /// satisfiable inputs.
    #[test]
    fn results_are_p_models(t in formula_strategy(5, 3), p in formula_strategy(5, 3)) {
        prop_assume!(revkb::sat::satisfiable(&t));
        prop_assume!(revkb::sat::satisfiable(&p));
        let alpha = Alphabet::of_formulas([&t, &p]);
        let p_models = ModelSet::of_formula(alpha.clone(), &p);
        for op in ModelBasedOp::ALL {
            let got = revise_on(op, &alpha, &t, &p);
            prop_assert!(!got.is_empty(), "{} empty", op.name());
            prop_assert!(got.is_subset_of(&p_models), "{} ⊄ M(P)", op.name());
        }
    }

    /// Vacuity: when T ∧ P is consistent, the global operators give
    /// exactly M(T ∧ P), and Winslett includes it.
    #[test]
    fn vacuity(t in formula_strategy(5, 3), p in formula_strategy(5, 3)) {
        let conj = t.clone().and(p.clone());
        prop_assume!(revkb::sat::satisfiable(&conj));
        let alpha = Alphabet::of_formulas([&t, &p]);
        let conj_models = ModelSet::of_formula(alpha.clone(), &conj);
        for op in [ModelBasedOp::Borgida, ModelBasedOp::Satoh, ModelBasedOp::Dalal, ModelBasedOp::Weber] {
            let got = revise_on(op, &alpha, &t, &p);
            prop_assert_eq!(&got, &conj_models, "{} ≠ T∧P when consistent", op.name());
        }
        let win = revise_on(ModelBasedOp::Winslett, &alpha, &t, &p);
        prop_assert!(conj_models.is_subset_of(&win));
    }

    /// Proposition 2.1 for complete theories: every operator leaves a
    /// model within V(P) of the single T-model.
    #[test]
    fn prop_2_1_complete_theories(
        state in 0u64..32,
        p in formula_strategy(3, 3),
    ) {
        prop_assume!(revkb::sat::satisfiable(&p));
        let t = Formula::and_all(
            (0..5u32).map(|i| Formula::lit(Var(i), state >> i & 1 == 1)),
        );
        let alpha = Alphabet::of_formulas([&t, &p]);
        let t_mask = alpha.models(&t)[0];
        let pvars: Vec<Var> = p.vars().into_iter().collect();
        let pmask = alpha.subset_mask(&pvars);
        for op in ModelBasedOp::ALL {
            let got = revise_on(op, &alpha, &t, &p);
            prop_assert!(
                got.masks().iter().any(|&n| (n ^ t_mask) & !pmask == 0),
                "Prop 2.1 fails for {}", op.name()
            );
        }
    }
}
