#!/usr/bin/env sh
# Full verification flow: build, tests, lints, formatting.
# Run from the repository root. Fails on the first broken step.
set -eu

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: all checks passed"
