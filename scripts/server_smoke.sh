#!/usr/bin/env bash
# Smoke-test the revision service end to end, the way CI runs it:
#
#   1. a scripted stdio session across all eight operators, replayed so
#      the artifact cache must report hits, including one forced
#      deadline timeout (deadline_ms: 0) and a malformed line;
#   2. a REVKB_SERVER_QUEUE=0 run, where every data-plane request must
#      be shed with `overloaded` while the control plane stays up;
#   3. a TCP session against `revkb-server --listen 127.0.0.1:0`,
#      ending in a clean shutdown.
#
# Usage: scripts/server_smoke.sh  (from the repo root; builds the
# release binary if target/release/revkb-server is missing).
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${REVKB_SERVER_BIN:-target/release/revkb-server}"
if [[ ! -x "$BIN" ]]; then
    cargo build --release -p revkb-server --bin revkb-server
fi

BIN="$BIN" python3 - <<'EOF'
import json, os, socket, subprocess, sys

BIN = os.environ["BIN"]
OPS = ["winslett", "borgida", "forbus", "satoh", "dalal", "weber",
       "gfuv", "widtio"]
THEORY = "a & b; b -> c; c | d"
REVISION = "!b | !c"

def run_stdio(lines, env=None):
    """Feed request lines to a fresh --stdio server, return responses."""
    full_env = dict(os.environ)
    if env:
        full_env.update(env)
    proc = subprocess.run(
        [BIN, "--stdio"], input="\n".join(lines) + "\n",
        capture_output=True, text=True, timeout=120, env=full_env)
    if proc.returncode != 0:
        sys.exit(f"server exited with {proc.returncode}: {proc.stderr}")
    return [json.loads(line) for line in proc.stdout.splitlines() if line]

def ok(resp, context):
    if resp.get("ok") is not True:
        sys.exit(f"{context}: expected ok, got {resp}")
    return resp["result"]

def err(resp, code, context):
    if resp.get("ok") is not False or resp.get("code") != code:
        sys.exit(f"{context}: expected code {code!r}, got {resp}")

# -- 1. scripted session: all eight operators, replayed for cache hits.
lines, checks = [], []
for op in OPS:
    for kb in (f"{op}-cold", f"{op}-warm"):
        lines.append(json.dumps(
            {"cmd": "load", "kb": kb, "t": THEORY}))
        checks.append(("ok", f"load {kb}"))
        lines.append(json.dumps(
            {"cmd": "revise", "kb": kb, "op": op, "p": REVISION}))
        checks.append(("revise", (op, kb)))
        lines.append(json.dumps(
            {"cmd": "query_batch", "kb": kb, "qs": ["a", "c | d"]}))
        checks.append(("ok", f"query_batch {kb}"))
lines.append('{"cmd":"query","kb":"dalal-warm","q":"a","deadline_ms":0}')
checks.append(("err", ("timeout", "forced deadline")))
lines.append("this line is not a request")
checks.append(("err", ("bad_request", "malformed line")))
lines.append('{"cmd":"stats"}')
checks.append(("stats", None))
lines.append('{"cmd":"shutdown"}')
checks.append(("ok", "shutdown"))

responses = run_stdio(lines)
assert len(responses) == len(checks), (len(responses), len(checks))
for resp, (kind, detail) in zip(responses, checks):
    if kind == "ok":
        ok(resp, detail)
    elif kind == "err":
        code, context = detail
        err(resp, code, context)
    elif kind == "revise":
        op, kb = detail
        result = ok(resp, f"revise {kb}")
        cache = result["cache"]
        if op in ("gfuv", "widtio"):
            assert cache == "bypass", (kb, cache)
        elif kb.endswith("-warm"):
            assert cache == "hit", f"{kb}: warm compile must hit, got {cache}"
    elif kind == "stats":
        stats = ok(resp, "stats")
        hits = stats["cache"]["hits"]
        assert hits >= 6, f"expected >= 6 cache hits, got {hits}"
        assert stats["timeouts"] >= 1, stats
print(f"stdio session ok: {len(responses)} responses, "
      f"cache hits {stats['cache']['hits']}, timeouts {stats['timeouts']}")

# -- 2. zero admission queue: data plane shed, control plane alive.
responses = run_stdio(
    ['{"cmd":"load","kb":"k","t":"a"}', '{"cmd":"ping"}',
     '{"cmd":"shutdown"}'],
    env={"REVKB_SERVER_QUEUE": "0"})
err(responses[0], "overloaded", "load under queue=0")
ok(responses[1], "ping under queue=0")
ok(responses[2], "shutdown under queue=0")
print("zero-queue session ok: overloaded shed, control plane answered")

# -- 3. TCP round trip with a clean shutdown.
proc = subprocess.Popen(
    [BIN, "--listen", "127.0.0.1:0"],
    stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
banner = proc.stdout.readline().strip()
assert banner.startswith("listening "), banner
host, port = banner.split()[1].rsplit(":", 1)

with socket.create_connection((host, int(port)), timeout=30) as sock:
    stream = sock.makefile("rw", encoding="utf-8", newline="\n")
    def call(request):
        stream.write(json.dumps(request) + "\n")
        stream.flush()
        return json.loads(stream.readline())
    ok(call({"cmd": "load", "kb": "tcp", "t": THEORY}), "tcp load")
    ok(call({"cmd": "revise", "kb": "tcp", "op": "dalal",
             "p": REVISION}), "tcp revise")
    result = ok(call({"cmd": "query", "kb": "tcp", "q": "a"}), "tcp query")
    assert result["entails"] is True, result
    ok(call({"cmd": "shutdown"}), "tcp shutdown")

if proc.wait(timeout=30) != 0:
    sys.exit(f"TCP server exited with {proc.returncode}: "
             f"{proc.stderr.read()}")
print(f"tcp session ok: {banner}, server exited cleanly")
print("server smoke: all three phases passed")
EOF
