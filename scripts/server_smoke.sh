#!/usr/bin/env bash
# Smoke-test the revision service end to end, the way CI runs it:
#
#   1. a scripted stdio session across all eight operators, replayed so
#      the artifact cache must report hits, including one forced
#      deadline timeout (deadline_ms: 0) and a malformed line;
#   2. a REVKB_SERVER_QUEUE=0 run, where every data-plane request must
#      be shed with `overloaded` while the control plane stays up;
#   3. a TCP session against `revkb-server --listen 127.0.0.1:0`,
#      ending in a clean shutdown;
#   4. a restart-recovery round: a `--data-dir` server is SIGKILLed
#      mid-workload, restarted on the same directory, and must serve
#      the revised KB warm (replayed log, artifact-cache hit);
#   5. a replication round: a `--replica-of` follower streams the
#      primary's WAL, serves read-only queries, survives a SIGKILL of
#      the primary (which restarts from its own log on the same port),
#      reconnects, catches up, and applies replicated revises warm
#      (artifact-cache hits on the replica);
#   6. a metrics round: a `--metrics-addr` sidecar listener is scraped
#      (Prometheus /metrics with per-KB labels, /healthz, /readyz)
#      while the data plane keeps serving the same TCP session;
#   7. an event-loop round: the HTTP/1.1 gateway answers the data
#      plane (POST /v1, POST /v1/<cmd>, GET /metrics on the data
#      port, 404/405 for bad routes) on the same listener as a
#      pipelined NDJSON burst, then `revkb-bench --load-only` holds
#      >= 1000 concurrent connections against a 4-thread server;
#   8. a diagnostics round: with `REVKB_TRACE` unset, a
#      `--metrics-addr --log-file` server echoes client trace ids,
#      serves all three /debug routes (flight-recorder Chrome trace,
#      NDJSON log tail, slow/in-flight requests), and is SIGKILLed
#      mid-load — the surviving log file must be a parseable NDJSON
#      prefix and the fetched trace a valid Chrome trace.
#
# Usage: scripts/server_smoke.sh  (from the repo root; builds the
# release binaries if target/release/revkb-server is missing).
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${REVKB_SERVER_BIN:-target/release/revkb-server}"
if [[ ! -x "$BIN" ]]; then
    cargo build --release -p revkb-server --bin revkb-server
fi

BIN="$BIN" python3 - <<'EOF'
import json, os, shutil, socket, subprocess, sys, tempfile

BIN = os.environ["BIN"]
OPS = ["winslett", "borgida", "forbus", "satoh", "dalal", "weber",
       "gfuv", "widtio"]
THEORY = "a & b; b -> c; c | d"
REVISION = "!b | !c"

def run_stdio(lines, env=None):
    """Feed request lines to a fresh --stdio server, return responses."""
    full_env = dict(os.environ)
    if env:
        full_env.update(env)
    proc = subprocess.run(
        [BIN, "--stdio"], input="\n".join(lines) + "\n",
        capture_output=True, text=True, timeout=120, env=full_env)
    if proc.returncode != 0:
        sys.exit(f"server exited with {proc.returncode}: {proc.stderr}")
    return [json.loads(line) for line in proc.stdout.splitlines() if line]

def ok(resp, context):
    if resp.get("ok") is not True:
        sys.exit(f"{context}: expected ok, got {resp}")
    return resp["result"]

def err(resp, code, context):
    if resp.get("ok") is not False or resp.get("code") != code:
        sys.exit(f"{context}: expected code {code!r}, got {resp}")

# -- 1. scripted session: all eight operators, replayed for cache hits.
lines, checks = [], []
for op in OPS:
    for kb in (f"{op}-cold", f"{op}-warm"):
        lines.append(json.dumps(
            {"cmd": "load", "kb": kb, "t": THEORY}))
        checks.append(("ok", f"load {kb}"))
        lines.append(json.dumps(
            {"cmd": "revise", "kb": kb, "op": op, "p": REVISION}))
        checks.append(("revise", (op, kb)))
        lines.append(json.dumps(
            {"cmd": "query_batch", "kb": kb, "qs": ["a", "c | d"]}))
        checks.append(("ok", f"query_batch {kb}"))
lines.append('{"cmd":"query","kb":"dalal-warm","q":"a","deadline_ms":0}')
checks.append(("err", ("timeout", "forced deadline")))
lines.append("this line is not a request")
checks.append(("err", ("bad_request", "malformed line")))
lines.append('{"cmd":"stats"}')
checks.append(("stats", None))
lines.append('{"cmd":"shutdown"}')
checks.append(("ok", "shutdown"))

responses = run_stdio(lines)
assert len(responses) == len(checks), (len(responses), len(checks))
for resp, (kind, detail) in zip(responses, checks):
    if kind == "ok":
        ok(resp, detail)
    elif kind == "err":
        code, context = detail
        err(resp, code, context)
    elif kind == "revise":
        op, kb = detail
        result = ok(resp, f"revise {kb}")
        cache = result["cache"]
        if op in ("gfuv", "widtio"):
            assert cache == "bypass", (kb, cache)
        elif kb.endswith("-warm"):
            assert cache == "hit", f"{kb}: warm compile must hit, got {cache}"
    elif kind == "stats":
        stats = ok(resp, "stats")
        hits = stats["cache"]["hits"]
        assert hits >= 6, f"expected >= 6 cache hits, got {hits}"
        assert stats["timeouts"] >= 1, stats
print(f"stdio session ok: {len(responses)} responses, "
      f"cache hits {stats['cache']['hits']}, timeouts {stats['timeouts']}")

# -- 2. zero admission queue: data plane shed, control plane alive.
responses = run_stdio(
    ['{"cmd":"load","kb":"k","t":"a"}', '{"cmd":"ping"}',
     '{"cmd":"shutdown"}'],
    env={"REVKB_SERVER_QUEUE": "0"})
err(responses[0], "overloaded", "load under queue=0")
ok(responses[1], "ping under queue=0")
ok(responses[2], "shutdown under queue=0")
print("zero-queue session ok: overloaded shed, control plane answered")

# -- 3. TCP round trip with a clean shutdown.
proc = subprocess.Popen(
    [BIN, "--listen", "127.0.0.1:0"],
    stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
banner = proc.stdout.readline().strip()
assert banner.startswith("listening "), banner
host, port = banner.split()[1].rsplit(":", 1)

with socket.create_connection((host, int(port)), timeout=30) as sock:
    stream = sock.makefile("rw", encoding="utf-8", newline="\n")
    def call(request):
        stream.write(json.dumps(request) + "\n")
        stream.flush()
        return json.loads(stream.readline())
    ok(call({"cmd": "load", "kb": "tcp", "t": THEORY}), "tcp load")
    ok(call({"cmd": "revise", "kb": "tcp", "op": "dalal",
             "p": REVISION}), "tcp revise")
    result = ok(call({"cmd": "query", "kb": "tcp", "q": "a"}), "tcp query")
    assert result["entails"] is True, result
    ok(call({"cmd": "shutdown"}), "tcp shutdown")

if proc.wait(timeout=30) != 0:
    sys.exit(f"TCP server exited with {proc.returncode}: "
             f"{proc.stderr.read()}")
print(f"tcp session ok: {banner}, server exited cleanly")

# -- 4. restart recovery: SIGKILL a --data-dir server mid-workload,
#       restart it on the same directory, and demand warm answers.
data_dir = tempfile.mkdtemp(prefix="revkb-smoke-wal-")

def start_durable():
    p = subprocess.Popen(
        [BIN, "--listen", "127.0.0.1:0", "--data-dir", data_dir,
         "--snapshot-every", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    b = p.stdout.readline().strip()
    assert b.startswith("listening "), b
    h, pt = b.split()[1].rsplit(":", 1)
    return p, h, int(pt)

def session(host, port):
    sock = socket.create_connection((host, port), timeout=30)
    stream = sock.makefile("rw", encoding="utf-8", newline="\n")
    def call(request):
        stream.write(json.dumps(request) + "\n")
        stream.flush()
        return json.loads(stream.readline())
    return sock, call

proc, host, port = start_durable()
sock, call = session(host, port)
ok(call({"cmd": "load", "kb": "wal", "t": THEORY}), "durable load")
ok(call({"cmd": "revise", "kb": "wal", "op": "dalal", "p": REVISION}),
   "durable revise")
result = ok(call({"cmd": "query", "kb": "wal", "q": "a"}), "durable query")
assert result["entails"] is True, result
sock.close()
proc.kill()          # SIGKILL: no shutdown handshake, no flush
proc.wait(timeout=30)

proc, host, port = start_durable()
sock, call = session(host, port)
stats = ok(call({"cmd": "stats"}), "post-restart stats")
wal = stats["wal"]
assert wal["enabled"] is True, wal
recovery = wal["recovery"]
assert recovery["replayed"] >= 2, recovery
assert recovery["replay_errors"] == 0, recovery
# The snapshot pre-warmed the cache, so replay itself hit it:
# recovery recompiled nothing.
assert stats["cache"]["hits"] >= 1, stats["cache"]
# The KB survived the SIGKILL with its revision intact…
result = ok(call({"cmd": "query", "kb": "wal", "q": "a"}),
            "post-restart query")
assert result["entails"] is True, result
# …and the compiled artifact is warm: an identical revise on a fresh
# KB is a pure cache hit, no recompilation.
ok(call({"cmd": "load", "kb": "wal2", "t": THEORY}), "post-restart load")
result = ok(call({"cmd": "revise", "kb": "wal2", "op": "dalal",
                  "p": REVISION}), "post-restart revise")
assert result["cache"] == "hit", result
ok(call({"cmd": "shutdown"}), "durable shutdown")
sock.close()
if proc.wait(timeout=30) != 0:
    sys.exit(f"durable server exited with {proc.returncode}: "
             f"{proc.stderr.read()}")
shutil.rmtree(data_dir, ignore_errors=True)
print(f"restart-recovery ok: replayed {recovery['replayed']} op(s), "
      f"cache hits {stats['cache']['hits']}, warm revise hit")

# -- 5. replication: primary + replica, SIGKILL the primary
#       mid-stream, restart it on the same port, demand catch-up and
#       warm replicated reads.
import time

primary_dir = tempfile.mkdtemp(prefix="revkb-smoke-repl-p-")
replica_dir = tempfile.mkdtemp(prefix="revkb-smoke-repl-r-")

def start_server(args):
    p = subprocess.Popen(
        [BIN] + args,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    b = p.stdout.readline().strip()
    assert b.startswith("listening "), b
    h, pt = b.split()[1].rsplit(":", 1)
    return p, h, int(pt)

primary, phost, pport = start_server(
    ["--listen", "127.0.0.1:0", "--data-dir", primary_dir,
     "--snapshot-every", "1"])
psock, pcall = session(phost, pport)
ok(pcall({"cmd": "load", "kb": "repl", "t": THEORY}), "primary load")
ok(pcall({"cmd": "revise", "kb": "repl", "op": "dalal", "p": REVISION}),
   "primary revise")

replica, rhost, rport = start_server(
    ["--listen", "127.0.0.1:0", "--data-dir", replica_dir,
     "--replica-of", f"{phost}:{pport}"])
rsock, rcall = session(rhost, rport)

def wait_replica(predicate, context, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        repl = ok(rcall({"cmd": "stats"}), "replica stats")["repl"]
        if predicate(repl):
            return repl
        time.sleep(0.05)
    sys.exit(f"{context}: timed out; last repl stats {repl}")

repl = wait_replica(
    lambda r: r["connected"] and r["lag_bytes"] == 0 and r["offset"] > 8,
    "replica catch-up")
result = ok(rcall({"cmd": "query", "kb": "repl", "q": "a"}),
            "replicated query")
assert result["entails"] is True, result
err(rcall({"cmd": "load", "kb": "nope", "t": "a"}), "read_only",
    "write on replica")

primary.kill()       # SIGKILL mid-stream: no handshake, no flush
primary.wait(timeout=30)
primary, phost2, pport2 = start_server(
    ["--listen", f"{phost}:{pport}", "--data-dir", primary_dir,
     "--snapshot-every", "1"])
assert pport2 == pport, (pport2, pport)
psock, pcall = session(phost, pport)
# A fresh KB revised with the already-compiled revision: the replica
# must apply it from its pre-warmed artifact cache — a hit, not a
# recompile.
ok(pcall({"cmd": "load", "kb": "repl2", "t": THEORY}), "post-kill load")
ok(pcall({"cmd": "revise", "kb": "repl2", "op": "dalal", "p": REVISION}),
   "post-kill revise")

repl = wait_replica(
    lambda r: r["connected"] and r["lag_bytes"] == 0 and r["sessions"] >= 2,
    "replica reconnect")
assert repl["diverged"] is False, repl
result = ok(rcall({"cmd": "query", "kb": "repl2", "q": "a"}),
            "post-reconnect replicated query")
assert result["entails"] is True, result
rstats = ok(rcall({"cmd": "stats"}), "replica stats")
assert rstats["cache"]["hits"] >= 1, rstats["cache"]

ok(rcall({"cmd": "shutdown"}), "replica shutdown")
rsock.close()
if replica.wait(timeout=30) != 0:
    sys.exit(f"replica exited with {replica.returncode}: "
             f"{replica.stderr.read()}")
ok(pcall({"cmd": "shutdown"}), "primary shutdown")
psock.close()
if primary.wait(timeout=30) != 0:
    sys.exit(f"primary exited with {primary.returncode}: "
             f"{primary.stderr.read()}")
shutil.rmtree(primary_dir, ignore_errors=True)
shutil.rmtree(replica_dir, ignore_errors=True)
print(f"replication ok: offset {repl['offset']}, "
      f"{repl['sessions']} session(s), replica cache hits "
      f"{rstats['cache']['hits']}")

# -- 6. metrics plane: scrape the sidecar listener while the data
#       plane keeps answering on its own port.
proc = subprocess.Popen(
    [BIN, "--listen", "127.0.0.1:0", "--metrics-addr", "127.0.0.1:0"],
    stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
# The metrics banner goes to stderr (stdout belongs to the data
# plane); the data banner stays on stdout.
maddr = None
for _ in range(20):
    line = proc.stderr.readline().strip()
    if "metrics listening " in line:
        maddr = line.rsplit(" ", 1)[1]
        break
assert maddr, "no metrics banner on stderr"
banner = proc.stdout.readline().strip()
assert banner.startswith("listening "), banner
host, port = banner.split()[1].rsplit(":", 1)
mhost, mport = maddr.rsplit(":", 1)

def scrape(path):
    with socket.create_connection((mhost, int(mport)), timeout=30) as s:
        s.sendall(f"GET {path} HTTP/1.1\r\nHost: {maddr}\r\n"
                  "Connection: close\r\n\r\n".encode())
        raw = b""
        while chunk := s.recv(65536):
            raw += chunk
    head, _, body = raw.decode().partition("\r\n\r\n")
    return int(head.split()[1]), body

sock, call = session(host, int(port))
ok(call({"cmd": "load", "kb": "scraped", "t": THEORY}), "metrics load")
ok(call({"cmd": "revise", "kb": "scraped", "op": "dalal",
         "p": REVISION}), "metrics revise")
for i in range(5):
    ok(call({"cmd": "query", "kb": "scraped", "q": "a"}),
       f"metrics query {i}")
    status, page = scrape("/metrics")
    assert status == 200, (status, page)
assert "# TYPE revkb_server_requests_total counter" in page, page
assert 'revkb_kb_queries_total{kb="scraped"}' in page, page
assert 'revkb_kb_op_revises_total{kb="scraped",op="dalal"} 1' in page, page
status, body = scrape("/healthz")
assert status == 200 and '"ok":true' in body, (status, body)
status, body = scrape("/readyz")
assert status == 200, (status, body)
status, body = scrape("/stats.json")
assert status == 200 and "kb_profiles" in body, (status, body)
status, body = scrape("/series.json")
assert status == 200 and "interval_ms" in body, (status, body)
ok(call({"cmd": "shutdown"}), "metrics shutdown")
sock.close()
if proc.wait(timeout=30) != 0:
    sys.exit(f"metrics server exited with {proc.returncode}: "
             f"{proc.stderr.read()}")
print(f"metrics plane ok: scraped {maddr} under live traffic")

# -- 7a. HTTP gateway on the event-loop listener: the data plane over
#        POST /v1 routes, GET metrics on the same port, and a
#        pipelined NDJSON burst on a sibling connection.
proc = subprocess.Popen(
    [BIN, "--listen", "127.0.0.1:0"],
    stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
banner = proc.stdout.readline().strip()
assert banner.startswith("listening "), banner
host, port = banner.split()[1].rsplit(":", 1)

def http(method, path, body=None):
    payload = (body or "").encode()
    head = (f"{method} {path} HTTP/1.1\r\nHost: smoke\r\n"
            f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n")
    with socket.create_connection((host, int(port)), timeout=30) as s:
        s.sendall(head.encode() + payload)
        raw = b""
        while chunk := s.recv(65536):
            raw += chunk
    header, _, content = raw.decode().partition("\r\n\r\n")
    return int(header.split()[1]), content

status, body = http("POST", "/v1/load",
                    json.dumps({"kb": "gw", "t": THEORY}))
assert status == 200, (status, body)
ok(json.loads(body), "gateway load")

status, body = http("POST", "/v1",
                    json.dumps({"cmd": "query", "kb": "gw", "q": "a"}))
assert status == 200, (status, body)
assert ok(json.loads(body), "gateway query")["entails"] is True

status, page = http("GET", "/metrics")
assert status == 200 and "revkb_server_requests_total" in page, status
status, _ = http("POST", "/v1/warp", "{}")
assert status == 404, status
status, _ = http("GET", "/v1/query")
assert status == 405, status

# A pipelined burst on a plain TCP connection of the same listener:
# one write, every response answered and correlated by id.
with socket.create_connection((host, int(port)), timeout=30) as sock:
    burst = "".join(
        json.dumps({"id": i, "cmd": "query", "kb": "gw", "q": "a"}) + "\n"
        for i in range(32))
    sock.sendall(burst.encode())
    stream = sock.makefile("r", encoding="utf-8", newline="\n")
    seen = set()
    for _ in range(32):
        resp = json.loads(stream.readline())
        ok(resp, "pipelined query")
        seen.add(resp["id"])
    assert seen == set(range(32)), seen
    stream = sock.makefile("rw", encoding="utf-8", newline="\n")
    stream.write('{"cmd":"shutdown"}\n')
    stream.flush()
    ok(json.loads(stream.readline()), "gateway shutdown")
if proc.wait(timeout=30) != 0:
    sys.exit(f"gateway server exited with {proc.returncode}: "
             f"{proc.stderr.read()}")
print(f"http gateway ok: {banner}, 32-deep pipelined burst answered")

# -- 8. diagnostics plane: trace echo, the /debug routes, and a
#       SIGKILL mid-load that must leave a parseable NDJSON log.
diag_dir = tempfile.mkdtemp(prefix="revkb-smoke-diag-")
log_file = os.path.join(diag_dir, "server.ndjson")
diag_env = dict(os.environ)
diag_env.pop("REVKB_TRACE", None)   # the flight recorder needs no mode
diag_env["REVKB_LOG"] = "debug"
proc = subprocess.Popen(
    [BIN, "--listen", "127.0.0.1:0", "--metrics-addr", "127.0.0.1:0",
     "--log-file", log_file],
    stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    env=diag_env)
maddr = None
for _ in range(20):
    line = proc.stderr.readline().strip()
    if "metrics listening " in line:
        maddr = line.rsplit(" ", 1)[1]
        break
assert maddr, "no metrics banner on stderr"
banner = proc.stdout.readline().strip()
assert banner.startswith("listening "), banner
host, port = banner.split()[1].rsplit(":", 1)
mhost, mport = maddr.rsplit(":", 1)

def diag_get(path):
    with socket.create_connection((mhost, int(mport)), timeout=30) as s:
        s.sendall(f"GET {path} HTTP/1.1\r\nHost: {maddr}\r\n"
                  "Connection: close\r\n\r\n".encode())
        raw = b""
        while chunk := s.recv(65536):
            raw += chunk
    head, _, body = raw.decode().partition("\r\n\r\n")
    return int(head.split()[1]), body

sock, call = session(host, int(port))
ok(call({"cmd": "load", "kb": "diag", "t": THEORY}), "diag load")
resp = call({"cmd": "revise", "kb": "diag", "op": "dalal", "p": REVISION,
             "trace": "000000000000beef"})
ok(resp, "diag revise")
assert resp["trace"] == "000000000000beef", resp
for i in range(10):
    ok(call({"cmd": "query", "kb": "diag", "q": "a"}), f"diag query {i}")

status, body = diag_get("/debug/trace.json")
assert status == 200, (status, body)
trace_doc = json.loads(body)
events = trace_doc["traceEvents"]
assert any(e["name"] == "server.request" for e in events), events[:3]
assert any(e.get("args", {}).get("trace") == 0xBEEF for e in events), \
    "client trace id missing from the flight recorder"

status, body = diag_get("/debug/logs.json")
assert status == 200, (status, body)
logs_doc = json.loads(body)
assert logs_doc["count"] == len(logs_doc["logs"]), logs_doc["count"]
for line in logs_doc["logs"]:
    assert "level" in line and "msg" in line, line

status, body = diag_get("/debug/requests.json")
assert status == 200, (status, body)
req_doc = json.loads(body)
assert "slow_log" in req_doc and "in_flight" in req_doc, req_doc

# SIGKILL mid-load: a pipelined burst is in flight when the process
# dies. The unbuffered log file must still be a valid NDJSON prefix.
burst = "".join(
    json.dumps({"cmd": "query", "kb": "diag", "q": "a | e"}) + "\n"
    for _ in range(64))
sock.sendall(burst.encode())
proc.kill()
proc.wait(timeout=30)
sock.close()
with open(log_file, encoding="utf-8") as f:
    log_lines = f.read().splitlines()
assert log_lines, "log file is empty"
for line in log_lines:
    parsed = json.loads(line)          # every surviving line parses
    assert {"ts", "level", "target", "msg"} <= set(parsed), parsed
json.loads(json.dumps(trace_doc))      # fetched trace stays a valid doc
shutil.rmtree(diag_dir, ignore_errors=True)
print(f"diagnostics ok: trace echoed, 3 /debug routes served, "
      f"{len(log_lines)} NDJSON log line(s) survived SIGKILL")

print("server smoke: python phases passed")
EOF

# -- 7b. connection-count smoke: >= 1000 concurrent connections held
#        open against a 4-thread event-loop server while an open-loop
#        schedule drives queries through it. The bench spawns the
#        server binary it finds next to itself.
BENCH="${REVKB_BENCH_BIN:-target/release/revkb-bench}"
if [[ ! -x "$BENCH" ]]; then
    cargo build --release -p revkb-bench --bin revkb-bench
fi
LOAD_OUT=$(REVKB_SERVER_THREADS=4 REVKB_BENCH_CONNS=1000 \
    REVKB_BENCH_QPS=500 REVKB_BENCH_LOAD_MS=1000 "$BENCH" --load-only)
echo "$LOAD_OUT" | grep "open-loop:"
CONNS=$(echo "$LOAD_OUT" | sed -n 's/^open-loop: connections=\([0-9]*\).*/\1/p')
if [[ -z "$CONNS" || "$CONNS" -lt 1000 ]]; then
    echo "load smoke: expected >= 1000 concurrent connections, got '${CONNS:-none}'" >&2
    exit 1
fi
ERRS=$(echo "$LOAD_OUT" | sed -n 's/.* errors=\([0-9]*\).*/\1/p')
if [[ "${ERRS:-0}" -ne 0 ]]; then
    echo "load smoke: open-loop reported $ERRS error(s)" >&2
    exit 1
fi
echo "load smoke ok: $CONNS concurrent connections, 0 errors"
echo "server smoke: all eight phases passed"
