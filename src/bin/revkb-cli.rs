//! `revkb-cli` — command-line front end to the revision engine.
//!
//! ```text
//! revkb-cli revise  --op dalal -t "a & b & c" -p "!a | !b" [--models]
//! revkb-cli compile --op weber -t "a & b" -p "!a" -q "b"
//! revkb-cli worlds  -t "a ; a -> b" -p "!b"
//! revkb-cli check   --op forbus -t "a & b" -p "!a" -m "b"
//! revkb-cli postulates --op winslett [--cases 100]
//! ```
//!
//! Formulas use the `revkb` concrete syntax (`& | ! -> <-> <+>`);
//! theories for `worlds` are `;`-separated formula lists. Exits with
//! a nonzero status and a message on bad input.

use revkb::logic::{parse, render, Formula, Signature};
use revkb::revision::{
    advise, model_check, possible_worlds, postulate_report, revise, widtio, Advice, ModelBasedOp,
    OperatorKind, Postulate, Profile, RevisedKb, Theory,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `serve` is a long-running loop writing to stdout as it goes; it
    // cannot go through `run`'s collect-then-print contract.
    if args.first().map(String::as_str) == Some("serve") {
        return serve(&args[1..]);
    }
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  revkb-cli revise  --op <operator> -t <formula> -p <formula> [--models]\n  revkb-cli compile --op <operator> -t <formula> -p <formula> -q <query>\n  revkb-cli compile-seq --op <operator> -t <formula> --ps <p1 ; p2 ; …> -q <query>\n  revkb-cli worlds  -t <f1 ; f2 ; …> -p <formula>\n  revkb-cli widtio  -t <f1 ; f2 ; …> -p <formula>\n  revkb-cli check   --op <operator> -t <formula> -p <formula> -m <letters,comma,separated>\n  revkb-cli postulates --op <operator> [--cases <n>]\n  revkb-cli advise  --op <operator|gfuv|widtio> [--bounded] [--new-letters] [--iterated]\n  revkb-cli serve   [--stdio | --listen ADDR]\n\noperators: winslett borgida forbus satoh dalal weber"
}

/// Parsed flag map: `--key value` and `-k value` pairs.
fn parse_flags(args: &[String]) -> Result<std::collections::HashMap<String, String>, String> {
    let mut flags = std::collections::HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .or_else(|| args[i].strip_prefix('-'))
            .ok_or_else(|| format!("expected a flag, found {:?}", args[i]))?;
        if ["models", "bounded", "new-letters", "iterated"].contains(&key) {
            flags.insert(key.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn operator(name: &str) -> Result<ModelBasedOp, String> {
    ModelBasedOp::from_name(name).ok_or_else(|| format!("unknown operator {name:?}"))
}

/// `revkb-cli serve`: run the NDJSON revision service (stdio by
/// default, TCP with `--listen ADDR`). Tuning comes from the
/// `REVKB_SERVER_*` environment variables.
fn serve(args: &[String]) -> ExitCode {
    use revkb::server::{Server, ServerConfig};
    // `Server::open` honours REVKB_SERVER_DATA_DIR; without it this is
    // exactly the old in-memory `Server::new`.
    let server = match Server::open(ServerConfig::from_env()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("revkb: cannot open server data dir: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match args {
        [] => serve_stdio(&server),
        [flag] if flag == "--stdio" => serve_stdio(&server),
        [flag, addr] if flag == "--listen" => match std::net::TcpListener::bind(addr) {
            Ok(listener) => {
                if let Ok(local) = listener.local_addr() {
                    println!("listening {local}");
                }
                server.serve_tcp(listener)
            }
            Err(e) => {
                eprintln!("error: cannot bind {addr}: {e}");
                return ExitCode::FAILURE;
            }
        },
        _ => {
            eprintln!("usage: revkb-cli serve [--stdio | --listen ADDR]");
            return ExitCode::FAILURE;
        }
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn serve_stdio(server: &revkb::server::Server) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    server.serve_stdio(std::io::BufReader::new(stdin.lock()), stdout.lock())
}

fn required<'a>(
    flags: &'a std::collections::HashMap<String, String>,
    key: &str,
) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("missing required flag --{key}"))
}

fn parse_theory(input: &str, sig: &mut Signature) -> Result<Theory, String> {
    let formulas: Result<Vec<Formula>, String> = input
        .split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| parse(s, sig).map_err(|e| e.to_string()))
        .collect();
    Ok(Theory::new(formulas?))
}

/// Dispatch and render output (separated from `main` for testing).
pub fn run(args: &[String]) -> Result<String, String> {
    let (command, rest) = args
        .split_first()
        .ok_or_else(|| "missing command".to_string())?;
    let flags = parse_flags(rest)?;
    let mut sig = Signature::new();
    let mut out = String::new();
    use std::fmt::Write;

    match command.as_str() {
        "revise" => {
            let op = operator(required(&flags, "op")?)?;
            let t = parse(required(&flags, "t")?, &mut sig).map_err(|e| e.to_string())?;
            let p = parse(required(&flags, "p")?, &mut sig).map_err(|e| e.to_string())?;
            let result = revise(op, &t, &p);
            writeln!(out, "operator: {}", op.name()).unwrap();
            writeln!(out, "models of T * P: {}", result.len()).unwrap();
            if flags.contains_key("models") {
                for m in result.interpretations() {
                    let names: Vec<String> = m.iter().map(|&v| sig.name_or_default(v)).collect();
                    writeln!(out, "  {{{}}}", names.join(", ")).unwrap();
                }
            }
        }
        "compile" => {
            let op = operator(required(&flags, "op")?)?;
            let t = parse(required(&flags, "t")?, &mut sig).map_err(|e| e.to_string())?;
            let p = parse(required(&flags, "p")?, &mut sig).map_err(|e| e.to_string())?;
            let q = parse(required(&flags, "q")?, &mut sig).map_err(|e| e.to_string())?;
            let kb = RevisedKb::compile(op, &t, &p).map_err(|e| e.to_string())?;
            writeln!(out, "operator: {}", op.name()).unwrap();
            writeln!(out, "|T'| = {} variable occurrences", kb.size()).unwrap();
            writeln!(
                out,
                "T * P ⊨ {} : {}",
                render(&q, &sig),
                if kb.entails(&q) { "yes" } else { "no" }
            )
            .unwrap();
        }
        "worlds" => {
            let t = parse_theory(required(&flags, "t")?, &mut sig)?;
            let p = parse(required(&flags, "p")?, &mut sig).map_err(|e| e.to_string())?;
            let worlds = possible_worlds(&t, &p, 1 << 16)
                .ok_or_else(|| "more than 65536 possible worlds".to_string())?;
            writeln!(out, "|W(T,P)| = {}", worlds.len()).unwrap();
            for w in worlds {
                let members: Vec<String> =
                    w.iter().map(|&i| render(&t.formulas[i], &sig)).collect();
                writeln!(out, "  {{ {} }}", members.join(" ; ")).unwrap();
            }
        }
        "widtio" => {
            let t = parse_theory(required(&flags, "t")?, &mut sig)?;
            let p = parse(required(&flags, "p")?, &mut sig).map_err(|e| e.to_string())?;
            let kept = widtio(&t, &p);
            writeln!(out, "T *wid P keeps {} formula(s):", kept.len()).unwrap();
            for f in &kept.formulas {
                writeln!(out, "  {}", render(f, &sig)).unwrap();
            }
        }
        "check" => {
            let op = operator(required(&flags, "op")?)?;
            let t = parse(required(&flags, "t")?, &mut sig).map_err(|e| e.to_string())?;
            let p = parse(required(&flags, "p")?, &mut sig).map_err(|e| e.to_string())?;
            let m: revkb::logic::Interpretation = required(&flags, "m")?
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|name| sig.var(name))
                .collect();
            let holds = model_check(op, &m, &t, &p).map_err(|e| format!("{e:?}"))?;
            writeln!(
                out,
                "M ⊨ T *{} P : {}",
                op.name(),
                if holds { "yes" } else { "no" }
            )
            .unwrap();
        }
        "compile-seq" => {
            let op = operator(required(&flags, "op")?)?;
            let t = parse(required(&flags, "t")?, &mut sig).map_err(|e| e.to_string())?;
            let ps: Result<Vec<Formula>, String> = required(&flags, "ps")?
                .split(';')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|s| parse(s, &mut sig).map_err(|e| e.to_string()))
                .collect();
            let ps = ps?;
            let q = parse(required(&flags, "q")?, &mut sig).map_err(|e| e.to_string())?;
            let kb = RevisedKb::compile_iterated(op, &t, &ps).map_err(|e| e.to_string())?;
            writeln!(out, "operator: {}, {} revision(s)", op.name(), ps.len()).unwrap();
            writeln!(out, "|T'| = {} variable occurrences", kb.size()).unwrap();
            writeln!(
                out,
                "T * P¹ * … ⊨ {} : {}",
                render(&q, &sig),
                if kb.entails(&q) { "yes" } else { "no" }
            )
            .unwrap();
        }
        "advise" => {
            let kind = match required(&flags, "op")?.to_ascii_lowercase().as_str() {
                "gfuv" | "nebel" => OperatorKind::Gfuv,
                "widtio" => OperatorKind::Widtio,
                name => OperatorKind::ModelBased(operator(name)?),
            };
            let profile = Profile {
                bounded_p: flags.contains_key("bounded"),
                allow_new_letters: flags.contains_key("new-letters"),
                iterated: flags.contains_key("iterated"),
            };
            writeln!(
                out,
                "profile: |P| {}, new letters {}, {} revision",
                if profile.bounded_p {
                    "bounded"
                } else {
                    "unbounded"
                },
                if profile.allow_new_letters {
                    "allowed"
                } else {
                    "forbidden"
                },
                if profile.iterated {
                    "iterated"
                } else {
                    "single"
                },
            )
            .unwrap();
            match advise(kind, profile) {
                Advice::Compactable {
                    construction,
                    reference,
                } => {
                    writeln!(out, "COMPACTABLE ({reference})").unwrap();
                    writeln!(out, "  construction: {construction}").unwrap();
                }
                Advice::NotCompactable {
                    reference,
                    consequence,
                } => {
                    writeln!(out, "NOT COMPACTABLE ({reference})").unwrap();
                    writeln!(
                        out,
                        "  a polynomial representation would imply {consequence}"
                    )
                    .unwrap();
                }
            }
        }
        "postulates" => {
            let op = operator(required(&flags, "op")?)?;
            let cases: usize = flags
                .get("cases")
                .map(|s| s.parse().map_err(|_| "bad --cases".to_string()))
                .transpose()?
                .unwrap_or(60);
            let all: Vec<Postulate> = Postulate::REVISION
                .iter()
                .chain(Postulate::UPDATE.iter())
                .copied()
                .collect();
            writeln!(out, "operator: {}, {cases} sampled instances", op.name()).unwrap();
            for (p, held, failed, _) in postulate_report(op, &all, cases, 0xC11) {
                writeln!(
                    out,
                    "  {p:?}: held {held}, failed {failed}{}",
                    if failed == 0 { "" } else { "  ← violated" }
                )
                .unwrap();
            }
        }
        other => return Err(format!("unknown command {other:?}")),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn revise_command() {
        let out = run(&args(&[
            "revise", "--op", "dalal", "-t", "g | b", "-p", "!g", "--models",
        ]))
        .unwrap();
        assert!(out.contains("models of T * P: 1"));
        assert!(out.contains("{b}"));
    }

    #[test]
    fn compile_command() {
        let out = run(&args(&[
            "compile", "--op", "weber", "-t", "a & b", "-p", "!a", "-q", "b",
        ]))
        .unwrap();
        assert!(out.contains(": yes"));
    }

    #[test]
    fn worlds_command() {
        let out = run(&args(&["worlds", "-t", "a ; a -> b", "-p", "!b"])).unwrap();
        assert!(out.contains("|W(T,P)| = 2"));
    }

    #[test]
    fn widtio_command() {
        let out = run(&args(&["widtio", "-t", "a ; a -> b", "-p", "!b"])).unwrap();
        assert!(out.contains("keeps 1 formula"));
    }

    #[test]
    fn check_command() {
        let out = run(&args(&[
            "check", "--op", "winslett", "-t", "a & b", "-p", "!a", "-m", "b",
        ]))
        .unwrap();
        assert!(out.contains(": yes"));
        let out2 = run(&args(&[
            "check", "--op", "winslett", "-t", "a & b", "-p", "!a", "-m", "a,b",
        ]))
        .unwrap();
        assert!(out2.contains(": no"));
    }

    #[test]
    fn postulates_command() {
        let out = run(&args(&["postulates", "--op", "dalal", "--cases", "10"])).unwrap();
        assert!(out.contains("R1"));
        assert!(out.contains("U8"));
    }

    #[test]
    fn compile_seq_command() {
        let out = run(&args(&[
            "compile-seq",
            "--op",
            "dalal",
            "-t",
            "a & b & c",
            "--ps",
            "!a ; !b",
            "-q",
            "c",
        ]))
        .unwrap();
        assert!(out.contains("2 revision(s)"));
        assert!(out.contains(": yes"));
    }

    #[test]
    fn advise_command() {
        let out = run(&args(&["advise", "--op", "dalal", "--new-letters"])).unwrap();
        assert!(out.contains("COMPACTABLE"));
        assert!(out.contains("Th.3.4"));
        let out2 = run(&args(&["advise", "--op", "gfuv"])).unwrap();
        assert!(out2.contains("NOT COMPACTABLE"));
        let out3 = run(&args(&[
            "advise",
            "--op",
            "winslett",
            "--iterated",
            "--bounded",
        ]))
        .unwrap();
        assert!(out3.contains("NOT COMPACTABLE"));
        let out4 = run(&args(&[
            "advise",
            "--op",
            "winslett",
            "--iterated",
            "--bounded",
            "--new-letters",
        ]))
        .unwrap();
        assert!(out4.contains("COMPACTABLE"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&args(&["revise", "--op", "nope", "-t", "a", "-p", "b"])).is_err());
        assert!(run(&args(&["revise", "--op", "dalal", "-t", "a"])).is_err());
        assert!(run(&args(&["bogus"])).is_err());
        assert!(run(&[]).is_err());
        assert!(run(&args(&["revise", "--op", "dalal", "-t", "a &", "-p", "b"])).is_err());
    }
}
