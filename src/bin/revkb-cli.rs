//! `revkb-cli` — command-line front end to the revision engine.
//!
//! ```text
//! revkb-cli revise  --op dalal -t "a & b & c" -p "!a | !b" [--models]
//! revkb-cli compile --op weber -t "a & b" -p "!a" -q "b"
//! revkb-cli worlds  -t "a ; a -> b" -p "!b"
//! revkb-cli check   --op forbus -t "a & b" -p "!a" -m "b"
//! revkb-cli postulates --op winslett [--cases 100]
//! revkb-cli trace   127.0.0.1:9100 4fd0aeccc9f1bb2a
//! ```
//!
//! Formulas use the `revkb` concrete syntax (`& | ! -> <-> <+>`);
//! theories for `worlds` are `;`-separated formula lists. Exits with
//! a nonzero status and a message on bad input.

use revkb::logic::{parse, render, Formula, Signature};
use revkb::revision::{
    advise, model_check, possible_worlds, postulate_report, revise, widtio, Advice, ModelBasedOp,
    OperatorKind, Postulate, Profile, RevisedKb, Theory,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `serve` and `top` are long-running loops writing to stdout as
    // they go; they cannot go through `run`'s collect-then-print
    // contract.
    if args.first().map(String::as_str) == Some("serve") {
        return serve(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("top") {
        return top(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("trace") {
        return trace_cmd(&args[1..]);
    }
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  revkb-cli revise  --op <operator> -t <formula> -p <formula> [--models]\n  revkb-cli compile --op <operator> -t <formula> -p <formula> -q <query>\n  revkb-cli compile-seq --op <operator> -t <formula> --ps <p1 ; p2 ; …> -q <query>\n  revkb-cli worlds  -t <f1 ; f2 ; …> -p <formula>\n  revkb-cli widtio  -t <f1 ; f2 ; …> -p <formula>\n  revkb-cli check   --op <operator> -t <formula> -p <formula> -m <letters,comma,separated>\n  revkb-cli postulates --op <operator> [--cases <n>]\n  revkb-cli advise  --op <operator|gfuv|widtio> [--bounded] [--new-letters] [--iterated]\n  revkb-cli serve   [--stdio | --listen ADDR [--io evloop|blocking]]\n  revkb-cli top     ADDR [--interval-ms N] [--iterations N] [--no-clear]\n  revkb-cli trace   ADDR TRACE_ID\n\noperators: winslett borgida forbus satoh dalal weber"
}

/// Parsed flag map: `--key value` and `-k value` pairs.
fn parse_flags(args: &[String]) -> Result<std::collections::HashMap<String, String>, String> {
    let mut flags = std::collections::HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .or_else(|| args[i].strip_prefix('-'))
            .ok_or_else(|| format!("expected a flag, found {:?}", args[i]))?;
        if ["models", "bounded", "new-letters", "iterated"].contains(&key) {
            flags.insert(key.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn operator(name: &str) -> Result<ModelBasedOp, String> {
    ModelBasedOp::from_name(name).ok_or_else(|| format!("unknown operator {name:?}"))
}

/// `revkb-cli serve`: run the NDJSON revision service (stdio by
/// default, TCP with `--listen ADDR`). TCP uses the epoll event loop
/// (with the HTTP gateway) unless `--io blocking` or
/// `REVKB_SERVER_IO=blocking` picks the thread-per-connection front
/// end. Tuning comes from the `REVKB_SERVER_*` environment variables.
fn serve(args: &[String]) -> ExitCode {
    use revkb::server::{Server, ServerConfig};
    // `Server::open` honours REVKB_SERVER_DATA_DIR; without it this is
    // exactly the old in-memory `Server::new`.
    let server = match Server::open(ServerConfig::from_env()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("revkb: cannot open server data dir: {e}");
            return ExitCode::FAILURE;
        }
    };
    let env_io = std::env::var("REVKB_SERVER_IO").unwrap_or_default();
    let serve_tcp = |addr: &str, io: &str| -> std::io::Result<()> {
        let listener = std::net::TcpListener::bind(addr)
            .map_err(|e| std::io::Error::new(e.kind(), format!("cannot bind {addr}: {e}")))?;
        if let Ok(local) = listener.local_addr() {
            println!("listening {local}");
        }
        if io == "blocking" {
            server.serve_tcp(listener)
        } else {
            server.serve_event_loop(listener)
        }
    };
    let outcome = match args {
        [] => serve_stdio(&server),
        [flag] if flag == "--stdio" => serve_stdio(&server),
        [flag, addr] if flag == "--listen" => serve_tcp(addr, &env_io),
        [flag, addr, io_flag, io] if flag == "--listen" && io_flag == "--io" => {
            if io != "evloop" && io != "blocking" {
                eprintln!("error: --io needs evloop|blocking");
                return ExitCode::FAILURE;
            }
            serve_tcp(addr, io)
        }
        _ => {
            eprintln!("usage: revkb-cli serve [--stdio | --listen ADDR [--io evloop|blocking]]");
            return ExitCode::FAILURE;
        }
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn serve_stdio(server: &revkb::server::Server) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    server.serve_stdio(std::io::BufReader::new(stdin.lock()), stdout.lock())
}

/// `revkb-cli top ADDR`: a live terminal dashboard over a server's
/// metrics plane. Polls `/stats.json` and `/series.json` on the
/// sidecar listener (`revkb-server --metrics-addr HOST:PORT`) and
/// renders request rates, latency percentiles, the cache hit rate,
/// WAL throughput, and replication lag as unicode sparklines.
fn top(args: &[String]) -> ExitCode {
    match run_top(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: revkb-cli top ADDR [--interval-ms N] [--iterations N] [--no-clear]");
            ExitCode::FAILURE
        }
    }
}

fn run_top(args: &[String]) -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut interval_ms: u64 = 1000;
    let mut iterations: u64 = 0; // 0 = run until interrupted
    let mut clear = true;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--interval-ms" => {
                interval_ms = iter
                    .next()
                    .ok_or("--interval-ms needs a value")?
                    .parse()
                    .map_err(|_| "--interval-ms needs an integer".to_string())?;
            }
            "--iterations" => {
                iterations = iter
                    .next()
                    .ok_or("--iterations needs a value")?
                    .parse()
                    .map_err(|_| "--iterations needs an integer".to_string())?;
            }
            "--no-clear" => clear = false,
            other if addr.is_none() && !other.starts_with('-') => addr = Some(other.to_string()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let addr = addr.ok_or("missing metrics ADDR (the server's --metrics-addr)")?;
    let mut frame_no = 0u64;
    loop {
        let stats = http_get_json(&addr, "/stats.json")?;
        let series = http_get_json(&addr, "/series.json")?;
        let frame = render_top(&addr, &stats, &series);
        if clear {
            // Clear and home: cheap, flicker-free enough at 1 Hz, and
            // keeps the binary free of any terminal library.
            print!("\x1b[2J\x1b[H");
        }
        print!("{frame}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        frame_no += 1;
        if iterations != 0 && frame_no >= iterations {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(10)));
    }
}

/// One blocking HTTP/1.1 GET against the metrics sidecar, parsed as
/// JSON. Hand-rolled over `TcpStream` — the whole workspace builds
/// offline, so no HTTP client crate.
fn http_get_json(addr: &str, path: &str) -> Result<revkb::server::Json, String> {
    use std::io::{Read as _, Write as _};
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let timeout = Some(std::time::Duration::from_secs(5));
    let _ = stream.set_read_timeout(timeout);
    let _ = stream.set_write_timeout(timeout);
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("cannot send request to {addr}: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("cannot read response from {addr}: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("{path}: malformed HTTP response"))?;
    let status = head.split_whitespace().nth(1).unwrap_or("?");
    if status != "200" {
        return Err(format!("{path}: HTTP {status}"));
    }
    revkb::server::Json::parse(body).map_err(|e| format!("{path}: {e}"))
}

/// `revkb-cli trace ADDR ID`: fetch the server's flight recorder
/// (`/debug/trace.json` on the metrics listener) and print the span
/// tree recorded for one trace id — no restart, no `REVKB_TRACE`.
fn trace_cmd(args: &[String]) -> ExitCode {
    match run_trace(args) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: revkb-cli trace ADDR TRACE_ID");
            ExitCode::FAILURE
        }
    }
}

fn run_trace(args: &[String]) -> Result<String, String> {
    let [addr, id] = args else {
        return Err("expected the metrics ADDR and a trace id".to_string());
    };
    let want = revkb::obs::parse_trace_id(id).ok_or_else(|| format!("bad trace id {id:?}"))?;
    let doc = http_get_json(addr, "/debug/trace.json")?;
    Ok(render_trace(id, want, &doc))
}

/// Render the spans of one trace from a Chrome-trace document, oldest
/// first, indented by recorded depth. Pure — unit tests drive it with
/// synthetic documents.
fn render_trace(id: &str, want: u64, doc: &revkb::server::Json) -> String {
    use revkb::server::Json;
    use std::fmt::Write as _;
    let mut events: Vec<(&Json, u64, u64)> = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .into_iter()
        .flatten()
        .filter(|e| {
            e.get("args")
                .and_then(|a| a.get("trace"))
                .and_then(Json::as_u64)
                == Some(want)
        })
        .map(|e| {
            let ts = e.get("ts").and_then(Json::as_u64).unwrap_or(0);
            let depth = e
                .get("args")
                .and_then(|a| a.get("depth"))
                .and_then(Json::as_u64)
                .unwrap_or(0);
            (e, ts, depth)
        })
        .collect();
    events.sort_by_key(|&(_, ts, _)| ts);
    let mut out = String::new();
    writeln!(out, "trace {id}: {} span(s)", events.len()).unwrap();
    let base_depth = events.iter().map(|&(_, _, d)| d).min().unwrap_or(0);
    for (e, _, depth) in events {
        let name = e.get("name").and_then(Json::as_str).unwrap_or("?");
        let dur = e.get("dur").and_then(Json::as_u64).unwrap_or(0);
        let indent = "  ".repeat(1 + (depth.saturating_sub(base_depth)) as usize);
        write!(out, "{indent}{name}  {dur} us").unwrap();
        if let Some(Json::Obj(attrs)) = e.get("args") {
            for (k, v) in attrs {
                if k == "depth" || k == "trace" {
                    continue;
                }
                if let Some(v) = v.as_u64() {
                    write!(out, "  {k}={v}").unwrap();
                }
            }
        }
        writeln!(out).unwrap();
    }
    out
}

const SPARK_LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// The last `width` values as a bar-per-sample sparkline, scaled to
/// the window's maximum.
fn sparkline(points: &[u64], width: usize) -> String {
    let tail = &points[points.len().saturating_sub(width)..];
    let max = tail.iter().copied().max().unwrap_or(0);
    tail.iter()
        .map(|&v| {
            let level = (v * 7).checked_div(max).unwrap_or(0) as usize;
            SPARK_LEVELS[level]
        })
        .collect()
}

/// The value column of one named series from a `/series.json` payload.
fn series_points(series: &revkb::server::Json, name: &str) -> Vec<u64> {
    use revkb::server::Json;
    series
        .get("series")
        .and_then(Json::as_array)
        .into_iter()
        .flatten()
        .find(|s| s.get("name").and_then(Json::as_str) == Some(name))
        .and_then(|s| s.get("points")?.as_array())
        .map(|pts| {
            pts.iter()
                .filter_map(|p| p.as_array()?.get(1)?.as_u64())
                .collect()
        })
        .unwrap_or_default()
}

/// Render one dashboard frame from the two JSON payloads. Pure — unit
/// tests drive it with synthetic documents.
fn render_top(addr: &str, stats: &revkb::server::Json, series: &revkb::server::Json) -> String {
    use revkb::server::Json;
    use std::fmt::Write as _;
    const WIDTH: usize = 48;
    let u = |json: &Json, key: &str| json.get(key).and_then(Json::as_u64).unwrap_or(0);
    let interval_ms = series
        .get("interval_ms")
        .and_then(Json::as_u64)
        .unwrap_or(1000)
        .max(1);
    // Counter series hold per-interval deltas: the newest point over
    // the interval is the current rate.
    let per_sec = |points: &[u64]| {
        points
            .last()
            .map_or(0.0, |&v| v as f64 * 1000.0 / interval_ms as f64)
    };

    let mut out = String::new();
    writeln!(
        out,
        "revkb top — {addr} — {} request(s), {} in flight, {} kb(s), sampled every {interval_ms} ms",
        u(stats, "requests"),
        u(stats, "in_flight"),
        u(stats, "kbs"),
    )
    .unwrap();

    let req = series_points(series, "server.requests");
    writeln!(
        out,
        "  req/s    {:>9.1}  {}",
        per_sec(&req),
        sparkline(&req, WIDTH)
    )
    .unwrap();
    let queries = series_points(series, "server.requests.query");
    if !queries.is_empty() {
        writeln!(
            out,
            "  query/s  {:>9.1}  {}",
            per_sec(&queries),
            sparkline(&queries, WIDTH)
        )
        .unwrap();
    }
    let revises = series_points(series, "server.requests.revise");
    if !revises.is_empty() {
        writeln!(
            out,
            "  revise/s {:>9.1}  {}",
            per_sec(&revises),
            sparkline(&revises, WIDTH)
        )
        .unwrap();
    }

    let cache = stats.get("cache").cloned().unwrap_or(Json::Null);
    let (hits, misses) = (u(&cache, "hits"), u(&cache, "misses"));
    let ratio = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };
    let hit_series = series_points(series, "server.cache.hits");
    writeln!(
        out,
        "  cache    {:>8.1}%  {}",
        ratio * 100.0,
        sparkline(&hit_series, WIDTH)
    )
    .unwrap();

    let wal_bytes = series_points(series, "wal.bytes");
    if !wal_bytes.is_empty() {
        writeln!(
            out,
            "  wal B/s  {:>9.0}  {}",
            per_sec(&wal_bytes),
            sparkline(&wal_bytes, WIDTH)
        )
        .unwrap();
    }

    let repl = stats.get("repl").cloned().unwrap_or(Json::Null);
    match repl.get("role").and_then(Json::as_str) {
        Some("replica") => {
            let lag = series_points(series, "repl.lag.millis");
            writeln!(
                out,
                "  lag ms   {:>9}  {}  ({}connected{})",
                repl.get("lag_millis")
                    .and_then(Json::as_u64)
                    .map_or("?".to_string(), |v| v.to_string()),
                sparkline(&lag, WIDTH),
                if repl.get("connected").and_then(Json::as_bool) == Some(true) {
                    ""
                } else {
                    "dis"
                },
                if repl.get("diverged").and_then(Json::as_bool) == Some(true) {
                    ", DIVERGED"
                } else {
                    ""
                },
            )
            .unwrap();
        }
        _ => {
            let shipped = series_points(series, "repl.shipped.bytes");
            if !shipped.is_empty() {
                writeln!(
                    out,
                    "  ship B/s {:>9.0}  {}",
                    per_sec(&shipped),
                    sparkline(&shipped, WIDTH)
                )
                .unwrap();
            }
        }
    }

    writeln!(out).unwrap();
    writeln!(
        out,
        "  {:<14}{:>10}{:>10}{:>10}{:>10}",
        "command", "count", "p50 us", "p95 us", "p99 us"
    )
    .unwrap();
    if let Json::Obj(kinds) = stats.get("request_latency").unwrap_or(&Json::Null) {
        for (kind, h) in kinds {
            writeln!(
                out,
                "  {:<14}{:>10}{:>10}{:>10}{:>10}",
                kind,
                u(h, "count"),
                u(h, "p50"),
                u(h, "p95"),
                u(h, "p99"),
            )
            .unwrap();
        }
    }
    out
}

fn required<'a>(
    flags: &'a std::collections::HashMap<String, String>,
    key: &str,
) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("missing required flag --{key}"))
}

fn parse_theory(input: &str, sig: &mut Signature) -> Result<Theory, String> {
    let formulas: Result<Vec<Formula>, String> = input
        .split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| parse(s, sig).map_err(|e| e.to_string()))
        .collect();
    Ok(Theory::new(formulas?))
}

/// Dispatch and render output (separated from `main` for testing).
pub fn run(args: &[String]) -> Result<String, String> {
    let (command, rest) = args
        .split_first()
        .ok_or_else(|| "missing command".to_string())?;
    let flags = parse_flags(rest)?;
    let mut sig = Signature::new();
    let mut out = String::new();
    use std::fmt::Write;

    match command.as_str() {
        "revise" => {
            let op = operator(required(&flags, "op")?)?;
            let t = parse(required(&flags, "t")?, &mut sig).map_err(|e| e.to_string())?;
            let p = parse(required(&flags, "p")?, &mut sig).map_err(|e| e.to_string())?;
            let result = revise(op, &t, &p);
            writeln!(out, "operator: {}", op.name()).unwrap();
            writeln!(out, "models of T * P: {}", result.len()).unwrap();
            if flags.contains_key("models") {
                for m in result.interpretations() {
                    let names: Vec<String> = m.iter().map(|&v| sig.name_or_default(v)).collect();
                    writeln!(out, "  {{{}}}", names.join(", ")).unwrap();
                }
            }
        }
        "compile" => {
            let op = operator(required(&flags, "op")?)?;
            let t = parse(required(&flags, "t")?, &mut sig).map_err(|e| e.to_string())?;
            let p = parse(required(&flags, "p")?, &mut sig).map_err(|e| e.to_string())?;
            let q = parse(required(&flags, "q")?, &mut sig).map_err(|e| e.to_string())?;
            let kb = RevisedKb::compile(op, &t, &p).map_err(|e| e.to_string())?;
            writeln!(out, "operator: {}", op.name()).unwrap();
            writeln!(out, "|T'| = {} variable occurrences", kb.size()).unwrap();
            writeln!(
                out,
                "T * P ⊨ {} : {}",
                render(&q, &sig),
                if kb.entails(&q) { "yes" } else { "no" }
            )
            .unwrap();
        }
        "worlds" => {
            let t = parse_theory(required(&flags, "t")?, &mut sig)?;
            let p = parse(required(&flags, "p")?, &mut sig).map_err(|e| e.to_string())?;
            let worlds = possible_worlds(&t, &p, 1 << 16)
                .ok_or_else(|| "more than 65536 possible worlds".to_string())?;
            writeln!(out, "|W(T,P)| = {}", worlds.len()).unwrap();
            for w in worlds {
                let members: Vec<String> =
                    w.iter().map(|&i| render(&t.formulas[i], &sig)).collect();
                writeln!(out, "  {{ {} }}", members.join(" ; ")).unwrap();
            }
        }
        "widtio" => {
            let t = parse_theory(required(&flags, "t")?, &mut sig)?;
            let p = parse(required(&flags, "p")?, &mut sig).map_err(|e| e.to_string())?;
            let kept = widtio(&t, &p);
            writeln!(out, "T *wid P keeps {} formula(s):", kept.len()).unwrap();
            for f in &kept.formulas {
                writeln!(out, "  {}", render(f, &sig)).unwrap();
            }
        }
        "check" => {
            let op = operator(required(&flags, "op")?)?;
            let t = parse(required(&flags, "t")?, &mut sig).map_err(|e| e.to_string())?;
            let p = parse(required(&flags, "p")?, &mut sig).map_err(|e| e.to_string())?;
            let m: revkb::logic::Interpretation = required(&flags, "m")?
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|name| sig.var(name))
                .collect();
            let holds = model_check(op, &m, &t, &p).map_err(|e| format!("{e:?}"))?;
            writeln!(
                out,
                "M ⊨ T *{} P : {}",
                op.name(),
                if holds { "yes" } else { "no" }
            )
            .unwrap();
        }
        "compile-seq" => {
            let op = operator(required(&flags, "op")?)?;
            let t = parse(required(&flags, "t")?, &mut sig).map_err(|e| e.to_string())?;
            let ps: Result<Vec<Formula>, String> = required(&flags, "ps")?
                .split(';')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|s| parse(s, &mut sig).map_err(|e| e.to_string()))
                .collect();
            let ps = ps?;
            let q = parse(required(&flags, "q")?, &mut sig).map_err(|e| e.to_string())?;
            let kb = RevisedKb::compile_iterated(op, &t, &ps).map_err(|e| e.to_string())?;
            writeln!(out, "operator: {}, {} revision(s)", op.name(), ps.len()).unwrap();
            writeln!(out, "|T'| = {} variable occurrences", kb.size()).unwrap();
            writeln!(
                out,
                "T * P¹ * … ⊨ {} : {}",
                render(&q, &sig),
                if kb.entails(&q) { "yes" } else { "no" }
            )
            .unwrap();
        }
        "advise" => {
            let kind = match required(&flags, "op")?.to_ascii_lowercase().as_str() {
                "gfuv" | "nebel" => OperatorKind::Gfuv,
                "widtio" => OperatorKind::Widtio,
                name => OperatorKind::ModelBased(operator(name)?),
            };
            let profile = Profile {
                bounded_p: flags.contains_key("bounded"),
                allow_new_letters: flags.contains_key("new-letters"),
                iterated: flags.contains_key("iterated"),
            };
            writeln!(
                out,
                "profile: |P| {}, new letters {}, {} revision",
                if profile.bounded_p {
                    "bounded"
                } else {
                    "unbounded"
                },
                if profile.allow_new_letters {
                    "allowed"
                } else {
                    "forbidden"
                },
                if profile.iterated {
                    "iterated"
                } else {
                    "single"
                },
            )
            .unwrap();
            match advise(kind, profile) {
                Advice::Compactable {
                    construction,
                    reference,
                } => {
                    writeln!(out, "COMPACTABLE ({reference})").unwrap();
                    writeln!(out, "  construction: {construction}").unwrap();
                }
                Advice::NotCompactable {
                    reference,
                    consequence,
                } => {
                    writeln!(out, "NOT COMPACTABLE ({reference})").unwrap();
                    writeln!(
                        out,
                        "  a polynomial representation would imply {consequence}"
                    )
                    .unwrap();
                }
            }
        }
        "postulates" => {
            let op = operator(required(&flags, "op")?)?;
            let cases: usize = flags
                .get("cases")
                .map(|s| s.parse().map_err(|_| "bad --cases".to_string()))
                .transpose()?
                .unwrap_or(60);
            let all: Vec<Postulate> = Postulate::REVISION
                .iter()
                .chain(Postulate::UPDATE.iter())
                .copied()
                .collect();
            writeln!(out, "operator: {}, {cases} sampled instances", op.name()).unwrap();
            for (p, held, failed, _) in postulate_report(op, &all, cases, 0xC11) {
                writeln!(
                    out,
                    "  {p:?}: held {held}, failed {failed}{}",
                    if failed == 0 { "" } else { "  ← violated" }
                )
                .unwrap();
            }
        }
        other => return Err(format!("unknown command {other:?}")),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn revise_command() {
        let out = run(&args(&[
            "revise", "--op", "dalal", "-t", "g | b", "-p", "!g", "--models",
        ]))
        .unwrap();
        assert!(out.contains("models of T * P: 1"));
        assert!(out.contains("{b}"));
    }

    #[test]
    fn compile_command() {
        let out = run(&args(&[
            "compile", "--op", "weber", "-t", "a & b", "-p", "!a", "-q", "b",
        ]))
        .unwrap();
        assert!(out.contains(": yes"));
    }

    #[test]
    fn worlds_command() {
        let out = run(&args(&["worlds", "-t", "a ; a -> b", "-p", "!b"])).unwrap();
        assert!(out.contains("|W(T,P)| = 2"));
    }

    #[test]
    fn widtio_command() {
        let out = run(&args(&["widtio", "-t", "a ; a -> b", "-p", "!b"])).unwrap();
        assert!(out.contains("keeps 1 formula"));
    }

    #[test]
    fn check_command() {
        let out = run(&args(&[
            "check", "--op", "winslett", "-t", "a & b", "-p", "!a", "-m", "b",
        ]))
        .unwrap();
        assert!(out.contains(": yes"));
        let out2 = run(&args(&[
            "check", "--op", "winslett", "-t", "a & b", "-p", "!a", "-m", "a,b",
        ]))
        .unwrap();
        assert!(out2.contains(": no"));
    }

    #[test]
    fn postulates_command() {
        let out = run(&args(&["postulates", "--op", "dalal", "--cases", "10"])).unwrap();
        assert!(out.contains("R1"));
        assert!(out.contains("U8"));
    }

    #[test]
    fn compile_seq_command() {
        let out = run(&args(&[
            "compile-seq",
            "--op",
            "dalal",
            "-t",
            "a & b & c",
            "--ps",
            "!a ; !b",
            "-q",
            "c",
        ]))
        .unwrap();
        assert!(out.contains("2 revision(s)"));
        assert!(out.contains(": yes"));
    }

    #[test]
    fn advise_command() {
        let out = run(&args(&["advise", "--op", "dalal", "--new-letters"])).unwrap();
        assert!(out.contains("COMPACTABLE"));
        assert!(out.contains("Th.3.4"));
        let out2 = run(&args(&["advise", "--op", "gfuv"])).unwrap();
        assert!(out2.contains("NOT COMPACTABLE"));
        let out3 = run(&args(&[
            "advise",
            "--op",
            "winslett",
            "--iterated",
            "--bounded",
        ]))
        .unwrap();
        assert!(out3.contains("NOT COMPACTABLE"));
        let out4 = run(&args(&[
            "advise",
            "--op",
            "winslett",
            "--iterated",
            "--bounded",
            "--new-letters",
        ]))
        .unwrap();
        assert!(out4.contains("COMPACTABLE"));
    }

    #[test]
    fn top_sparkline_scales_to_the_window_maximum() {
        assert_eq!(sparkline(&[], 8), "");
        assert_eq!(sparkline(&[0, 0], 8), "▁▁");
        let line = sparkline(&[1, 4, 8], 8);
        assert_eq!(line.chars().count(), 3);
        assert!(line.ends_with('█'));
        // Only the last `width` samples are drawn.
        assert_eq!(sparkline(&[9, 9, 9, 1], 2).chars().count(), 2);
    }

    #[test]
    fn top_renders_a_frame_from_synthetic_payloads() {
        use revkb::server::Json;
        let stats = Json::parse(
            r#"{"requests":42,"in_flight":1,"kbs":2,
                "cache":{"hits":3,"misses":1},
                "request_latency":{"query":{"count":10,"p50":5,"p95":9,"p99":12}},
                "repl":{"role":"primary"}}"#,
        )
        .unwrap();
        let series = Json::parse(
            r#"{"interval_ms":1000,"capacity":300,"series":[
                {"name":"server.requests","kind":"counter","points":[[1000,5],[2000,10]]},
                {"name":"server.cache.hits","kind":"counter","points":[[1000,1],[2000,2]]}]}"#,
        )
        .unwrap();
        assert_eq!(series_points(&series, "server.requests"), vec![5, 10]);
        assert_eq!(series_points(&series, "no.such.series"), Vec::<u64>::new());
        let frame = render_top("127.0.0.1:9", &stats, &series);
        assert!(frame.contains("42 request(s)"), "{frame}");
        assert!(frame.contains("req/s"), "{frame}");
        assert!(frame.contains("10.0"), "{frame}"); // newest delta over 1 s
        assert!(frame.contains("75.0%"), "{frame}"); // 3 hits / 4 lookups
        assert!(frame.contains("query"), "{frame}");
        assert!(frame.contains("p95"), "{frame}");
    }

    #[test]
    fn trace_renders_only_the_requested_trace() {
        use revkb::server::Json;
        let doc = Json::parse(
            r#"{"traceEvents":[
                {"name":"server.request.query","ph":"X","pid":1,"tid":1,"ts":10,"dur":120,
                 "args":{"depth":0,"req":7,"trace":99}},
                {"name":"server.compile","ph":"X","pid":1,"tid":1,"ts":20,"dur":80,
                 "args":{"depth":1,"trace":99}},
                {"name":"server.request.load","ph":"X","pid":1,"tid":2,"ts":5,"dur":30,
                 "args":{"depth":0,"req":6,"trace":42}}],
                "displayTimeUnit":"ms"}"#,
        )
        .unwrap();
        let out = render_trace("0000000000000063", 99, &doc);
        assert!(out.contains("2 span(s)"), "{out}");
        assert!(out.contains("server.request.query  120 us  req=7"), "{out}");
        assert!(out.contains("    server.compile  80 us"), "{out}");
        assert!(!out.contains("load"), "{out}");
        let none = render_trace("1", 1, &doc);
        assert!(none.contains("0 span(s)"), "{none}");
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&args(&["revise", "--op", "nope", "-t", "a", "-p", "b"])).is_err());
        assert!(run(&args(&["revise", "--op", "dalal", "-t", "a"])).is_err());
        assert!(run(&args(&["bogus"])).is_err());
        assert!(run(&[]).is_err());
        assert!(run(&args(&["revise", "--op", "dalal", "-t", "a &", "-p", "b"])).is_err());
    }
}
