//! # revkb — The Size of a Revised Knowledge Base
//!
//! A full reproduction of Cadoli, Donini, Liberatore & Schaerf,
//! *The Size of a Revised Knowledge Base* (PODS 1995): every belief
//! revision / knowledge update operator the paper analyses, the
//! compact-representation constructions behind its compactability
//! results, the hard instance families behind its non-compactability
//! results, and the substrates they run on (a CDCL SAT solver, an
//! ROBDD engine, Hamming-distance circuits, QBF expansion).
//!
//! Start with [`revision::RevisedKb`] for the paper's two-step
//! query-answering pipeline, or the `examples/` directory for
//! runnable scenarios.
//!
//! ```
//! use revkb::logic::{parse, Signature};
//! use revkb::revision::{revise, ModelBasedOp};
//!
//! // The paper's office example: T = george ∨ bill, P = ¬george.
//! let mut sig = Signature::new();
//! let t = parse("george | bill", &mut sig).unwrap();
//! let p = parse("!george", &mut sig).unwrap();
//! let bill = parse("bill", &mut sig).unwrap();
//!
//! // Revision (Dalal) concludes Bill is in; update (Winslett) does not.
//! assert!(revise(ModelBasedOp::Dalal, &t, &p).entails(&bill));
//! assert!(!revise(ModelBasedOp::Winslett, &t, &p).entails(&bill));
//! ```

#![forbid(unsafe_code)]

pub use revkb_bdd as bdd;
pub use revkb_circuits as circuits;
pub use revkb_instances as instances;
pub use revkb_logic as logic;
pub use revkb_obs as obs;
pub use revkb_qbf as qbf;
pub use revkb_revision as revision;
pub use revkb_sat as sat;
pub use revkb_server as server;

// The unified front door, re-exported at the crate root: one error
// type, one engine trait, one typed builder — the API the server, the
// benches, and new callers are expected to use.
pub use revkb_revision::{Backend, Engine, Error, ReviseBuilder};

/// Everything a typical caller needs, importable in one line:
///
/// ```
/// use revkb::prelude::*;
///
/// let mut sig = Signature::new();
/// let t = parse("george | bill", &mut sig).unwrap();
/// let p = parse("!george", &mut sig).unwrap();
/// let kb = ReviseBuilder::new(ModelBasedOp::Dalal).compile(&t, &p).unwrap();
/// assert!(kb.entails(&parse("bill", &mut sig).unwrap()));
/// ```
pub mod prelude {
    pub use revkb_logic::{parse, render, Formula, Signature, Var};
    pub use revkb_revision::{
        Backend, DelayedKb, Engine, Error, GfuvEngine, ModelBasedOp, Profile, ReviseBuilder,
        RevisedKb, Theory, WidtioEngine,
    };
    pub use revkb_server::{Server, ServerConfig};
}
