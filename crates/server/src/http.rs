//! The sidecar metrics plane: a hand-rolled, zero-dependency HTTP/1.1
//! responder plus the Prometheus text-exposition renderer behind
//! `revkb-server --metrics-addr`.
//!
//! Deliberately **out of band** from the data plane: the NDJSON
//! protocol keeps its own listener, admission control, and deadlines,
//! while this listener is GET-only, unauthenticated, answers every
//! request from in-memory state (no engine work, no KB locks held
//! across I/O), and closes the connection after one response. A stuck
//! scraper can therefore never wedge a revision.
//!
//! The exposition format is Prometheus text v0.0.4: `# HELP` /
//! `# TYPE` headers once per metric family, label values escaped
//! (`\\`, `\"`, `\n`), histograms as cumulative `le` buckets derived
//! from the workspace's log₂ buckets (bucket *b* ≥ 1 covers
//! `[2^(b-1), 2^b)`, so its inclusive upper bound is `2^b − 1`).

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Environment variable giving the metrics listener address
/// (equivalent to `--metrics-addr HOST:PORT`).
pub const METRICS_ADDR_ENV: &str = "REVKB_SERVER_METRICS_ADDR";

/// Content type of `/metrics` responses.
pub const PROM_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Content type of the JSON endpoints.
pub const JSON_CONTENT_TYPE: &str = "application/json";

/// Prefix every exported metric name carries.
pub const METRIC_PREFIX: &str = "revkb_";

/// One HTTP response, ready to serialise. Every response closes the
/// connection (`Connection: close`), so there is no keep-alive state
/// to manage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code (200, 404, 405, 503, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A `200 OK` response.
    pub fn ok(content_type: &'static str, body: String) -> Self {
        Response {
            status: 200,
            content_type,
            body,
        }
    }

    /// A `404 Not Found` for an unknown path.
    pub fn not_found(path: &str) -> Self {
        Response {
            status: 404,
            content_type: "text/plain; charset=utf-8",
            body: format!(
                "no such endpoint {path}\ntry /metrics /stats.json /series.json /healthz /readyz\n"
            ),
        }
    }

    /// A `405 Method Not Allowed` — this listener is GET-only.
    pub fn method_not_allowed() -> Self {
        Response {
            status: 405,
            content_type: "text/plain; charset=utf-8",
            body: "metrics listener is GET-only\n".to_string(),
        }
    }

    /// A `400 Bad Request` for an unparseable request line.
    pub fn bad_request() -> Self {
        Response {
            status: 400,
            content_type: "text/plain; charset=utf-8",
            body: "malformed HTTP request\n".to_string(),
        }
    }

    /// The full wire form: status line, headers, blank line, body.
    pub fn to_bytes(&self) -> Vec<u8> {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            503 => "Service Unavailable",
            _ => "Unknown",
        };
        let mut out = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len()
        )
        .into_bytes();
        out.extend_from_slice(self.body.as_bytes());
        out
    }
}

/// Parse an HTTP request head down to the path this listener routes
/// on: GET-only, query strings stripped. `Err` carries the error
/// response to send instead.
pub fn parse_request_head(head: &str) -> Result<String, Response> {
    let line = head.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(Response::bad_request());
    };
    if !version.starts_with("HTTP/") {
        return Err(Response::bad_request());
    }
    if method != "GET" {
        return Err(Response::method_not_allowed());
    }
    let path = target
        .split(['?', '#'])
        .next()
        .unwrap_or_default()
        .to_string();
    if !path.starts_with('/') {
        return Err(Response::bad_request());
    }
    Ok(path)
}

/// Serve HTTP on `listener` until `stop` returns true: accept
/// nonblocking, one thread per connection (scrapes are cheap, but a
/// slow reader must not block the next one), every thread joined on
/// the way out. Mirrors the data plane's accept loop so shutdown
/// semantics match.
pub fn serve<S, H>(listener: TcpListener, stop: S, handler: H) -> io::Result<()>
where
    S: Fn() -> bool + Clone + Send + Sync + 'static,
    H: Fn(&str) -> Response + Clone + Send + Sync + 'static,
{
    listener.set_nonblocking(true)?;
    let mut handles = Vec::new();
    while !stop() {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let stop = stop.clone();
                let handler = handler.clone();
                handles.push(std::thread::spawn(move || {
                    serve_conn(stream, &stop, &handler);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(e),
        }
    }
    for handle in handles {
        let _ = handle.join();
    }
    Ok(())
}

/// One connection: read the request head (2 s budget, 8 KiB cap),
/// route, answer, close.
fn serve_conn(mut stream: TcpStream, stop: &dyn Fn() -> bool, handler: &dyn Fn(&str) -> Response) {
    if stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    let deadline = Instant::now() + Duration::from_secs(2);
    let complete = loop {
        if stop() || Instant::now() > deadline || head.len() > 8 * 1024 {
            break false;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break false,
            Ok(n) => {
                head.extend_from_slice(&chunk[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n")
                    || head.windows(2).any(|w| w == b"\n\n")
                {
                    break true;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => break false,
        }
    };
    if !complete {
        return;
    }
    let head = String::from_utf8_lossy(&head);
    let response = match parse_request_head(&head) {
        Ok(path) => handler(&path),
        Err(error) => error,
    };
    let _ = stream.write_all(&response.to_bytes());
    let _ = stream.flush();
}

// ------------------------------------------------------- exposition

/// Map an internal dotted instrument name onto a Prometheus metric
/// name: `revkb_` prefix, every character outside `[a-zA-Z0-9_:]`
/// replaced with `_`.
pub fn metric_name(raw: &str) -> String {
    let mut out = String::with_capacity(METRIC_PREFIX.len() + raw.len());
    out.push_str(METRIC_PREFIX);
    for c in raw.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escape a label value per the text format: backslash, double quote,
/// and newline.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// The inclusive upper bound (`le` label) of log₂ bucket `b`: bucket 0
/// holds only the value 0; bucket `b` ≥ 1 holds `[2^(b-1), 2^b)`,
/// whose largest integer is `2^b − 1`.
pub fn le_bound(bucket: usize) -> String {
    if bucket == 0 {
        "0".to_string()
    } else {
        ((1u128 << bucket) - 1).to_string()
    }
}

/// Incremental builder for a Prometheus text-exposition page.
///
/// The caller drives family order: one [`PromText::header`] per
/// family, then any number of [`PromText::sample`] /
/// [`PromText::histogram`] lines for it.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// An empty page.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write the `# HELP` / `# TYPE` pair for a family. `raw` is the
    /// internal name ([`metric_name`] maps it); `kind` is `counter`,
    /// `gauge`, or `histogram`.
    pub fn header(&mut self, raw: &str, kind: &str, help: &str) {
        let name = metric_name(raw);
        self.out.push_str("# HELP ");
        self.out.push_str(&name);
        self.out.push(' ');
        self.out.push_str(help);
        self.out.push_str("\n# TYPE ");
        self.out.push_str(&name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    /// One sample line: `name{labels} value`.
    pub fn sample(&mut self, raw: &str, labels: &[(&str, &str)], value: u64) {
        self.sample_line(&metric_name(raw), labels, &value.to_string());
    }

    fn sample_line(&mut self, name: &str, labels: &[(&str, &str)], value: &str) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                self.out.push_str(&escape_label_value(v));
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(value);
        self.out.push('\n');
    }

    /// Render one histogram series (sparse log₂ `buckets`, ascending
    /// bucket index) as cumulative `le` buckets plus `+Inf`, `_sum`,
    /// and `_count`. The caller writes the family header once;
    /// `labels` distinguish series within the family.
    pub fn histogram(
        &mut self,
        raw: &str,
        labels: &[(&str, &str)],
        count: u64,
        sum: u64,
        buckets: &[(usize, u64)],
    ) {
        let name = metric_name(raw);
        let bucket_name = format!("{name}_bucket");
        let mut cumulative = 0u64;
        for (b, c) in buckets {
            cumulative += c;
            let le = le_bound(*b);
            let mut with_le: Vec<(&str, &str)> = Vec::with_capacity(labels.len() + 1);
            with_le.extend_from_slice(labels);
            with_le.push(("le", &le));
            self.sample_line(&bucket_name, &with_le, &cumulative.to_string());
        }
        let mut with_le: Vec<(&str, &str)> = Vec::with_capacity(labels.len() + 1);
        with_le.extend_from_slice(labels);
        with_le.push(("le", "+Inf"));
        self.sample_line(&bucket_name, &with_le, &count.to_string());
        self.sample_line(&format!("{name}_sum"), labels, &sum.to_string());
        self.sample_line(&format!("{name}_count"), labels, &count.to_string());
    }

    /// The finished page.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_names_are_prefixed_and_sanitised() {
        assert_eq!(metric_name("server.cache.hits"), "revkb_server_cache_hits");
        assert_eq!(metric_name("wal.append.bytes"), "revkb_wal_append_bytes");
        assert_eq!(metric_name("weird-name +x"), "revkb_weird_name__x");
        assert_eq!(metric_name("ok_name:sub"), "revkb_ok_name:sub");
    }

    #[test]
    fn label_values_escape_backslash_quote_newline() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_label_value(r"a\b"), r"a\\b");
        assert_eq!(escape_label_value("a\nb"), r"a\nb");
    }

    #[test]
    fn le_bounds_follow_log2_buckets() {
        assert_eq!(le_bound(0), "0");
        assert_eq!(le_bound(1), "1");
        assert_eq!(le_bound(2), "3");
        assert_eq!(le_bound(3), "7");
        assert_eq!(le_bound(10), "1023");
        assert_eq!(le_bound(64), u64::MAX.to_string());
    }

    /// The golden pin for the text format: fixed synthetic input,
    /// exact expected page.
    #[test]
    fn golden_exposition_page() {
        let mut page = PromText::new();
        page.header("server.requests", "counter", "Requests fully processed.");
        page.sample("server.requests", &[], 42);
        page.header("server.kbs", "gauge", "Knowledge bases registered.");
        page.sample("server.kbs", &[], 3);
        page.header("kb.queries", "counter", "Queries answered per KB.");
        page.sample("kb.queries", &[("kb", "plain")], 7);
        page.sample("kb.queries", &[("kb", "we\"ird\\kb\n")], 1);
        page.header("server.request.micros", "histogram", "Request latency.");
        page.histogram(
            "server.request.micros",
            &[("cmd", "query")],
            6,
            900,
            &[(0, 1), (3, 2), (8, 3)],
        );
        let expected = "\
# HELP revkb_server_requests Requests fully processed.
# TYPE revkb_server_requests counter
revkb_server_requests 42
# HELP revkb_server_kbs Knowledge bases registered.
# TYPE revkb_server_kbs gauge
revkb_server_kbs 3
# HELP revkb_kb_queries Queries answered per KB.
# TYPE revkb_kb_queries counter
revkb_kb_queries{kb=\"plain\"} 7
revkb_kb_queries{kb=\"we\\\"ird\\\\kb\\n\"} 1
# HELP revkb_server_request_micros Request latency.
# TYPE revkb_server_request_micros histogram
revkb_server_request_micros_bucket{cmd=\"query\",le=\"0\"} 1
revkb_server_request_micros_bucket{cmd=\"query\",le=\"7\"} 3
revkb_server_request_micros_bucket{cmd=\"query\",le=\"255\"} 6
revkb_server_request_micros_bucket{cmd=\"query\",le=\"+Inf\"} 6
revkb_server_request_micros_sum{cmd=\"query\"} 900
revkb_server_request_micros_count{cmd=\"query\"} 6
";
        assert_eq!(page.finish(), expected);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_bounded_by_count() {
        let mut page = PromText::new();
        page.header("h", "histogram", "x");
        page.histogram("h", &[], 10, 123, &[(1, 4), (2, 3), (5, 3)]);
        let text = page.finish();
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in text.lines().filter(|l| l.starts_with("revkb_h_bucket")) {
            bucket_lines += 1;
            let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(value >= last, "bucket counts must be cumulative: {text}");
            assert!(value <= 10, "no bucket may exceed the count: {text}");
            last = value;
        }
        assert_eq!(bucket_lines, 4); // 3 finite + +Inf
        assert_eq!(last, 10, "+Inf bucket equals the count");
    }

    #[test]
    fn request_head_routing() {
        assert_eq!(
            parse_request_head("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"),
            Ok("/metrics".to_string())
        );
        assert_eq!(
            parse_request_head("GET /stats.json?pretty=1 HTTP/1.0\r\n\r\n"),
            Ok("/stats.json".to_string())
        );
        assert_eq!(
            parse_request_head("POST /metrics HTTP/1.1\r\n\r\n")
                .unwrap_err()
                .status,
            405
        );
        assert_eq!(parse_request_head("garbage").unwrap_err().status, 400);
        assert_eq!(
            parse_request_head("GET metrics HTTP/1.1")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse_request_head("GET /x NOTHTTP").unwrap_err().status,
            400
        );
    }

    #[test]
    fn responses_serialise_with_content_length_and_close() {
        let bytes = Response::ok(PROM_CONTENT_TYPE, "abc\n".to_string()).to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 4\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.contains("version=0.0.4"), "{text}");
        assert!(text.ends_with("\r\n\r\nabc\n"), "{text}");
        let nf = Response::not_found("/nope").to_bytes();
        assert!(String::from_utf8(nf).unwrap().starts_with("HTTP/1.1 404"));
    }
}
