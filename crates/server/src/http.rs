//! The repo's one hand-rolled, zero-dependency HTTP/1.1
//! implementation, plus the Prometheus text-exposition renderer.
//!
//! Two consumers share this layer:
//!
//! - the **metrics sidecar** behind `revkb-server --metrics-addr`
//!   (deliberately out of band from the data plane: GET-only,
//!   unauthenticated, answers from in-memory state, closes the
//!   connection after one response — a stuck scraper can never wedge
//!   a revision), and
//! - the **event-loop HTTP/JSON gateway** on the data port
//!   (`POST /v1`, keep-alive, request bodies via `Content-Length` or
//!   chunked transfer coding).
//!
//! [`HttpParser`] is the shared incremental parser: feed it bytes as
//! they arrive, take complete [`HttpRequest`]s out. Limits are fixed:
//! 8 KiB of head, 1 MiB of body; beyond them the parser fails the
//! connection with a ready-to-send error [`Response`].
//!
//! The exposition format is Prometheus text v0.0.4: `# HELP` /
//! `# TYPE` headers once per metric family, label values escaped
//! (`\\`, `\"`, `\n`), histograms as cumulative `le` buckets derived
//! from the workspace's log₂ buckets (bucket *b* ≥ 1 covers
//! `[2^(b-1), 2^b)`, so its inclusive upper bound is `2^b − 1`).

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Environment variable giving the metrics listener address
/// (equivalent to `--metrics-addr HOST:PORT`).
pub const METRICS_ADDR_ENV: &str = "REVKB_SERVER_METRICS_ADDR";

/// Content type of `/metrics` responses.
pub const PROM_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Content type of the JSON endpoints.
pub const JSON_CONTENT_TYPE: &str = "application/json";

/// Prefix every exported metric name carries.
pub const METRIC_PREFIX: &str = "revkb_";

/// Largest accepted request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Largest accepted request body (either framing).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One HTTP response, ready to serialise. [`Response::to_bytes`]
/// closes the connection (`Connection: close`, the sidecar's
/// one-shot semantics); [`Response::to_bytes_with`] lets the gateway
/// keep the connection alive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code (200, 404, 405, 503, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A `200 OK` response.
    pub fn ok(content_type: &'static str, body: String) -> Self {
        Response {
            status: 200,
            content_type,
            body,
        }
    }

    /// A `404 Not Found` for an unknown path.
    pub fn not_found(path: &str) -> Self {
        Response {
            status: 404,
            content_type: "text/plain; charset=utf-8",
            body: format!(
                "no such endpoint {path}\ntry /metrics /stats.json /series.json /healthz /readyz\n"
            ),
        }
    }

    /// A plain-text response with an arbitrary status.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    /// A `405 Method Not Allowed` — this listener is GET-only.
    pub fn method_not_allowed() -> Self {
        Response::text(405, "metrics listener is GET-only\n")
    }

    /// A `400 Bad Request` for an unparseable request line.
    pub fn bad_request() -> Self {
        Response::text(400, "malformed HTTP request\n")
    }

    /// A `431` for a request head beyond [`MAX_HEAD_BYTES`].
    pub fn head_too_large() -> Self {
        Response::text(431, "request head too large\n")
    }

    /// A `413` for a request body beyond [`MAX_BODY_BYTES`].
    pub fn body_too_large() -> Self {
        Response::text(413, "request body too large\n")
    }

    /// The full wire form with `Connection: close` (the sidecar's
    /// one-response-per-connection semantics).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_bytes_with(false)
    }

    /// The full wire form: status line, headers, blank line, body.
    pub fn to_bytes_with(&self, keep_alive: bool) -> Vec<u8> {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            431 => "Request Header Fields Too Large",
            503 => "Service Unavailable",
            _ => "Unknown",
        };
        let connection = if keep_alive { "keep-alive" } else { "close" };
        let mut out = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len(),
            connection
        )
        .into_bytes();
        out.extend_from_slice(self.body.as_bytes());
        out
    }
}

/// One parsed HTTP request: the routing fields plus the raw body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method, verbatim (`GET`, `POST`, …).
    pub method: String,
    /// Request path with any query string or fragment stripped.
    pub path: String,
    /// Raw query string (between `?` and any `#`), without the `?`;
    /// empty when the target carried none.
    pub query: String,
    /// Header `(name, value)` pairs in arrival order, trimmed.
    pub headers: Vec<(String, String)>,
    /// Decoded request body (chunked bodies arrive de-chunked).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open
    /// (HTTP/1.1 default, overridable with `Connection:` either way).
    pub keep_alive: bool,
}

impl HttpRequest {
    /// Case-insensitive header lookup (first match wins).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Incremental HTTP/1.1 request parser: [`HttpParser::feed`] bytes as
/// they arrive, [`HttpParser::take`] complete requests out. Multiple
/// pipelined requests in one buffer come out one `take` at a time.
///
/// A `take` error is fatal for the connection: send the carried
/// [`Response`] and close.
#[derive(Debug, Default)]
pub struct HttpParser {
    buf: Vec<u8>,
}

/// Find the end of the request head: the index just past the first
/// blank line (`\r\n\r\n` or the tolerant `\n\n`).
fn head_end(buf: &[u8]) -> Option<usize> {
    let crlf = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4);
    let lf = buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2);
    match (crlf, lf) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

impl HttpParser {
    /// A parser with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append bytes read from the connection.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether any unconsumed bytes are buffered.
    pub fn has_buffered(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Try to take one complete request off the front of the buffer.
    /// `Ok(None)` means feed more bytes; `Err` carries the error
    /// response to send before closing the connection.
    pub fn take(&mut self) -> Result<Option<HttpRequest>, Response> {
        let Some(head_len) = head_end(&self.buf) else {
            if self.buf.len() > MAX_HEAD_BYTES {
                return Err(Response::head_too_large());
            }
            return Ok(None);
        };
        if head_len > MAX_HEAD_BYTES {
            return Err(Response::head_too_large());
        }
        let head = String::from_utf8_lossy(&self.buf[..head_len]).into_owned();
        let mut lines = head.lines();
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split_whitespace();
        let (Some(method), Some(target), Some(version)) =
            (parts.next(), parts.next(), parts.next())
        else {
            return Err(Response::bad_request());
        };
        if !version.starts_with("HTTP/") || parts.next().is_some() {
            return Err(Response::bad_request());
        }
        let path = target
            .split(['?', '#'])
            .next()
            .unwrap_or_default()
            .to_string();
        let query = target
            .split_once('?')
            .map(|(_, rest)| rest.split('#').next().unwrap_or_default())
            .unwrap_or_default()
            .to_string();
        if !path.starts_with('/') {
            return Err(Response::bad_request());
        }
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() || line == "\r" {
                break;
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(Response::bad_request());
            };
            headers.push((name.trim().to_string(), value.trim().to_string()));
        }
        let header = |name: &str| {
            headers
                .iter()
                .find(|(k, _)| k.eq_ignore_ascii_case(name))
                .map(|(_, v)| v.as_str())
        };
        let keep_alive = match header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => version != "HTTP/1.0",
        };
        // Body framing: exactly one of Content-Length and chunked
        // (both at once is a request-smuggling vector — refuse it).
        let (body, end) = match (header("transfer-encoding"), header("content-length")) {
            (Some(_), Some(_)) => return Err(Response::bad_request()),
            (Some(te), None) => {
                if !te.eq_ignore_ascii_case("chunked") {
                    return Err(Response::bad_request());
                }
                match decode_chunked(&self.buf[head_len..])? {
                    None => return Ok(None),
                    Some((body, used)) => (body, head_len + used),
                }
            }
            (None, Some(cl)) => {
                let len: usize = cl.parse().map_err(|_| Response::bad_request())?;
                if len > MAX_BODY_BYTES {
                    return Err(Response::body_too_large());
                }
                if self.buf.len() < head_len + len {
                    return Ok(None);
                }
                (self.buf[head_len..head_len + len].to_vec(), head_len + len)
            }
            (None, None) => (Vec::new(), head_len),
        };
        let method = method.to_string();
        self.buf.drain(..end);
        Ok(Some(HttpRequest {
            method,
            path,
            query,
            headers,
            body,
            keep_alive,
        }))
    }
}

/// Decode a chunked body from `buf`. `Ok(None)` means incomplete;
/// `Ok(Some((body, bytes_consumed)))` on success.
fn decode_chunked(buf: &[u8]) -> Result<Option<(Vec<u8>, usize)>, Response> {
    let mut body = Vec::new();
    let mut at = 0usize;
    loop {
        // The chunk-size line, strictly CRLF-terminated.
        let Some(nl) = buf[at..].windows(2).position(|w| w == b"\r\n") else {
            if buf.len() - at > 18 {
                // Longer than any valid hex size + extension start.
                return Err(Response::bad_request());
            }
            return Ok(None);
        };
        let line = std::str::from_utf8(&buf[at..at + nl]).map_err(|_| Response::bad_request())?;
        let size_str = line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_str, 16).map_err(|_| Response::bad_request())?;
        at += nl + 2;
        if size == 0 {
            // Trailer section: zero or more header lines, then CRLF.
            loop {
                let Some(nl) = buf[at..].windows(2).position(|w| w == b"\r\n") else {
                    return Ok(None);
                };
                let end = at + nl + 2;
                if nl == 0 {
                    return Ok(Some((body, end)));
                }
                at = end;
            }
        }
        if body.len() + size > MAX_BODY_BYTES {
            return Err(Response::body_too_large());
        }
        if buf.len() < at + size + 2 {
            return Ok(None);
        }
        if &buf[at + size..at + size + 2] != b"\r\n" {
            return Err(Response::bad_request());
        }
        body.extend_from_slice(&buf[at..at + size]);
        at += size + 2;
    }
}

/// Serve HTTP on `listener` until `stop` returns true: accept
/// nonblocking, one thread per connection (scrapes are cheap, but a
/// slow reader must not block the next one), every thread joined on
/// the way out. Mirrors the data plane's accept loop so shutdown
/// semantics match.
pub fn serve<S, H>(listener: TcpListener, stop: S, handler: H) -> io::Result<()>
where
    S: Fn() -> bool + Clone + Send + Sync + 'static,
    H: Fn(&HttpRequest) -> Response + Clone + Send + Sync + 'static,
{
    listener.set_nonblocking(true)?;
    let mut handles = Vec::new();
    while !stop() {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let stop = stop.clone();
                let handler = handler.clone();
                handles.push(std::thread::spawn(move || {
                    serve_conn(stream, &stop, &handler);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(e),
        }
    }
    for handle in handles {
        let _ = handle.join();
    }
    Ok(())
}

/// One connection: read one full request (2 s budget, [`HttpParser`]
/// limits), route, answer, close. One response per connection — the
/// sidecar never keeps a scraper attached.
fn serve_conn(
    mut stream: TcpStream,
    stop: &dyn Fn() -> bool,
    handler: &dyn Fn(&HttpRequest) -> Response,
) {
    if stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut parser = HttpParser::new();
    let mut chunk = [0u8; 1024];
    let deadline = Instant::now() + Duration::from_secs(2);
    let response = loop {
        match parser.take() {
            Ok(Some(request)) => break handler(&request),
            Ok(None) => {}
            Err(error) => break error,
        }
        if stop() || Instant::now() > deadline {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => parser.feed(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => return,
        }
    };
    let _ = stream.write_all(&response.to_bytes());
    let _ = stream.flush();
}

// ------------------------------------------------------- exposition

/// Map an internal dotted instrument name onto a Prometheus metric
/// name: `revkb_` prefix, every character outside `[a-zA-Z0-9_:]`
/// replaced with `_`.
pub fn metric_name(raw: &str) -> String {
    let mut out = String::with_capacity(METRIC_PREFIX.len() + raw.len());
    out.push_str(METRIC_PREFIX);
    for c in raw.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escape a label value per the text format: backslash, double quote,
/// and newline.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// The inclusive upper bound (`le` label) of log₂ bucket `b`: bucket 0
/// holds only the value 0; bucket `b` ≥ 1 holds `[2^(b-1), 2^b)`,
/// whose largest integer is `2^b − 1`.
pub fn le_bound(bucket: usize) -> String {
    if bucket == 0 {
        "0".to_string()
    } else {
        ((1u128 << bucket) - 1).to_string()
    }
}

/// Incremental builder for a Prometheus text-exposition page.
///
/// The caller drives family order: one [`PromText::header`] per
/// family, then any number of [`PromText::sample`] /
/// [`PromText::histogram`] lines for it.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// An empty page.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write the `# HELP` / `# TYPE` pair for a family. `raw` is the
    /// internal name ([`metric_name`] maps it); `kind` is `counter`,
    /// `gauge`, or `histogram`.
    pub fn header(&mut self, raw: &str, kind: &str, help: &str) {
        let name = metric_name(raw);
        self.out.push_str("# HELP ");
        self.out.push_str(&name);
        self.out.push(' ');
        self.out.push_str(help);
        self.out.push_str("\n# TYPE ");
        self.out.push_str(&name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    /// One sample line: `name{labels} value`.
    pub fn sample(&mut self, raw: &str, labels: &[(&str, &str)], value: u64) {
        self.sample_line(&metric_name(raw), labels, &value.to_string());
    }

    fn sample_line(&mut self, name: &str, labels: &[(&str, &str)], value: &str) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                self.out.push_str(&escape_label_value(v));
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(value);
        self.out.push('\n');
    }

    /// Render one histogram series (sparse log₂ `buckets`, ascending
    /// bucket index) as cumulative `le` buckets plus `+Inf`, `_sum`,
    /// and `_count`. The caller writes the family header once;
    /// `labels` distinguish series within the family.
    pub fn histogram(
        &mut self,
        raw: &str,
        labels: &[(&str, &str)],
        count: u64,
        sum: u64,
        buckets: &[(usize, u64)],
    ) {
        let name = metric_name(raw);
        let bucket_name = format!("{name}_bucket");
        let mut cumulative = 0u64;
        for (b, c) in buckets {
            cumulative += c;
            let le = le_bound(*b);
            let mut with_le: Vec<(&str, &str)> = Vec::with_capacity(labels.len() + 1);
            with_le.extend_from_slice(labels);
            with_le.push(("le", &le));
            self.sample_line(&bucket_name, &with_le, &cumulative.to_string());
        }
        let mut with_le: Vec<(&str, &str)> = Vec::with_capacity(labels.len() + 1);
        with_le.extend_from_slice(labels);
        with_le.push(("le", "+Inf"));
        self.sample_line(&bucket_name, &with_le, &count.to_string());
        self.sample_line(&format!("{name}_sum"), labels, &sum.to_string());
        self.sample_line(&format!("{name}_count"), labels, &count.to_string());
    }

    /// The finished page.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_names_are_prefixed_and_sanitised() {
        assert_eq!(metric_name("server.cache.hits"), "revkb_server_cache_hits");
        assert_eq!(metric_name("wal.append.bytes"), "revkb_wal_append_bytes");
        assert_eq!(metric_name("weird-name +x"), "revkb_weird_name__x");
        assert_eq!(metric_name("ok_name:sub"), "revkb_ok_name:sub");
    }

    #[test]
    fn label_values_escape_backslash_quote_newline() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_label_value(r"a\b"), r"a\\b");
        assert_eq!(escape_label_value("a\nb"), r"a\nb");
    }

    #[test]
    fn le_bounds_follow_log2_buckets() {
        assert_eq!(le_bound(0), "0");
        assert_eq!(le_bound(1), "1");
        assert_eq!(le_bound(2), "3");
        assert_eq!(le_bound(3), "7");
        assert_eq!(le_bound(10), "1023");
        assert_eq!(le_bound(64), u64::MAX.to_string());
    }

    /// The golden pin for the text format: fixed synthetic input,
    /// exact expected page.
    #[test]
    fn golden_exposition_page() {
        let mut page = PromText::new();
        page.header("server.requests", "counter", "Requests fully processed.");
        page.sample("server.requests", &[], 42);
        page.header("server.kbs", "gauge", "Knowledge bases registered.");
        page.sample("server.kbs", &[], 3);
        page.header("kb.queries", "counter", "Queries answered per KB.");
        page.sample("kb.queries", &[("kb", "plain")], 7);
        page.sample("kb.queries", &[("kb", "we\"ird\\kb\n")], 1);
        page.header("server.request.micros", "histogram", "Request latency.");
        page.histogram(
            "server.request.micros",
            &[("cmd", "query")],
            6,
            900,
            &[(0, 1), (3, 2), (8, 3)],
        );
        let expected = "\
# HELP revkb_server_requests Requests fully processed.
# TYPE revkb_server_requests counter
revkb_server_requests 42
# HELP revkb_server_kbs Knowledge bases registered.
# TYPE revkb_server_kbs gauge
revkb_server_kbs 3
# HELP revkb_kb_queries Queries answered per KB.
# TYPE revkb_kb_queries counter
revkb_kb_queries{kb=\"plain\"} 7
revkb_kb_queries{kb=\"we\\\"ird\\\\kb\\n\"} 1
# HELP revkb_server_request_micros Request latency.
# TYPE revkb_server_request_micros histogram
revkb_server_request_micros_bucket{cmd=\"query\",le=\"0\"} 1
revkb_server_request_micros_bucket{cmd=\"query\",le=\"7\"} 3
revkb_server_request_micros_bucket{cmd=\"query\",le=\"255\"} 6
revkb_server_request_micros_bucket{cmd=\"query\",le=\"+Inf\"} 6
revkb_server_request_micros_sum{cmd=\"query\"} 900
revkb_server_request_micros_count{cmd=\"query\"} 6
";
        assert_eq!(page.finish(), expected);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_bounded_by_count() {
        let mut page = PromText::new();
        page.header("h", "histogram", "x");
        page.histogram("h", &[], 10, 123, &[(1, 4), (2, 3), (5, 3)]);
        let text = page.finish();
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in text.lines().filter(|l| l.starts_with("revkb_h_bucket")) {
            bucket_lines += 1;
            let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(value >= last, "bucket counts must be cumulative: {text}");
            assert!(value <= 10, "no bucket may exceed the count: {text}");
            last = value;
        }
        assert_eq!(bucket_lines, 4); // 3 finite + +Inf
        assert_eq!(last, 10, "+Inf bucket equals the count");
    }

    fn take_one(raw: &str) -> Result<Option<HttpRequest>, Response> {
        let mut parser = HttpParser::new();
        parser.feed(raw.as_bytes());
        parser.take()
    }

    #[test]
    fn parses_a_simple_get() {
        let req = take_one("GET /metrics?pretty=1 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.query, "pretty=1");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn keep_alive_follows_version_and_connection_header() {
        let close11 = take_one("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!close11.unwrap().unwrap().keep_alive);
        let plain10 = take_one("GET / HTTP/1.0\r\n\r\n");
        assert!(!plain10.unwrap().unwrap().keep_alive);
        let keep10 = take_one("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(keep10.unwrap().unwrap().keep_alive);
    }

    #[test]
    fn parses_post_bodies_and_pipelines() {
        let mut parser = HttpParser::new();
        parser.feed(
            b"POST /v1 HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcdGET /healthz HTTP/1.1\r\n\r\n",
        );
        let first = parser.take().unwrap().unwrap();
        assert_eq!(first.method, "POST");
        assert_eq!(first.body, b"abcd");
        let second = parser.take().unwrap().unwrap();
        assert_eq!(second.path, "/healthz");
        assert!(parser.take().unwrap().is_none());
        assert!(!parser.has_buffered());
    }

    #[test]
    fn incomplete_requests_wait_for_more_bytes() {
        let mut parser = HttpParser::new();
        parser.feed(b"POST /v1 HTTP/1.1\r\nContent-Length: 8\r\n\r\nabc");
        assert!(parser.take().unwrap().is_none());
        parser.feed(b"defgh");
        assert_eq!(parser.take().unwrap().unwrap().body, b"abcdefgh");
    }

    #[test]
    fn decodes_chunked_bodies() {
        let req = take_one(
            "POST /v1 HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nabcd\r\n3\r\nefg\r\n0\r\n\r\n",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.body, b"abcdefg");
        // Trailers after the last chunk are consumed.
        let req = take_one(
            "POST /v1 HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n2\r\nhi\r\n0\r\nX-Sum: 1\r\n\r\n",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.body, b"hi");
    }

    #[test]
    fn malformed_requests_fail_with_the_right_status() {
        let cases: [(&str, u16); 7] = [
            ("garbage\r\n\r\n", 400),
            ("GET metrics HTTP/1.1\r\n\r\n", 400),
            ("GET /x NOTHTTP\r\n\r\n", 400),
            ("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n", 400),
            ("POST /v1 HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
            (
                "POST /v1 HTTP/1.1\r\nContent-Length: 4\r\nTransfer-Encoding: chunked\r\n\r\n",
                400,
            ),
            ("POST /v1 HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n", 413),
        ];
        for (raw, status) in cases {
            assert_eq!(take_one(raw).unwrap_err().status, status, "{raw:?}");
        }
        // Bad chunking: non-hex size, and a chunk that overruns its
        // declared length.
        for raw in [
            "POST /v1 HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\nabcd\r\n0\r\n\r\n",
            "POST /v1 HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n2\r\nabcd\r\n0\r\n\r\n",
        ] {
            assert_eq!(take_one(raw).unwrap_err().status, 400, "{raw:?}");
        }
    }

    #[test]
    fn oversized_heads_are_rejected() {
        let mut parser = HttpParser::new();
        parser.feed(b"GET / HTTP/1.1\r\n");
        parser.feed(format!("X-Filler: {}\r\n", "y".repeat(MAX_HEAD_BYTES)).as_bytes());
        assert_eq!(parser.take().unwrap_err().status, 431);
    }

    #[test]
    fn responses_serialise_with_content_length_and_close() {
        let bytes = Response::ok(PROM_CONTENT_TYPE, "abc\n".to_string()).to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 4\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.contains("version=0.0.4"), "{text}");
        assert!(text.ends_with("\r\n\r\nabc\n"), "{text}");
        let nf = Response::not_found("/nope").to_bytes();
        assert!(String::from_utf8(nf).unwrap().starts_with("HTTP/1.1 404"));
        let keep = Response::ok(JSON_CONTENT_TYPE, "{}\n".to_string()).to_bytes_with(true);
        assert!(String::from_utf8(keep)
            .unwrap()
            .contains("Connection: keep-alive\r\n"));
    }
}
