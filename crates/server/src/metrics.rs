//! Server instrumentation.
//!
//! Two layers, on purpose:
//!
//! - **`obs` instruments** (this module's statics) feed the workspace
//!   telemetry registry and show up in `revkb_obs::snapshot()` /
//!   `drain()` like every other subsystem's — but they are gated on
//!   `REVKB_TRACE` and silently no-op when tracing is off.
//! - **[`ServerCounters`]** are plain atomics owned by the server and
//!   always on, because the wire protocol's `stats` command must
//!   return real numbers regardless of the trace mode.
//!
//! [`ServerCounters`] mirrors every event into the matching `obs`
//! instrument so the two layers never disagree when tracing *is* on.

use revkb_obs as obs;
use std::sync::atomic::{AtomicU64, Ordering};

/// Requests fully processed (any outcome).
pub static REQUESTS: obs::Counter = obs::Counter::new("server.requests");
/// Requests rejected by admission control.
pub static OVERLOADED: obs::Counter = obs::Counter::new("server.overloaded");
/// Requests that exceeded their deadline.
pub static TIMEOUTS: obs::Counter = obs::Counter::new("server.timeouts");
/// Requests answered with a protocol-level error.
pub static ERRORS: obs::Counter = obs::Counter::new("server.errors");
/// Artifact-cache hits.
pub static CACHE_HITS: obs::Counter = obs::Counter::new("server.cache.hits");
/// Artifact-cache misses.
pub static CACHE_MISSES: obs::Counter = obs::Counter::new("server.cache.misses");
/// Artifact-cache evictions.
pub static CACHE_EVICTIONS: obs::Counter = obs::Counter::new("server.cache.evictions");
/// Compilations that fell back to the degraded profile.
pub static DEGRADED: obs::Counter = obs::Counter::new("server.degraded");
/// Knowledge bases currently registered.
pub static KBS: obs::Gauge = obs::Gauge::new("server.kbs");
/// High-watermark of concurrently in-flight requests.
pub static IN_FLIGHT_PEAK: obs::Gauge = obs::Gauge::new("server.in_flight.peak");
/// End-to-end request latency in microseconds.
pub static REQUEST_MICROS: obs::Histogram = obs::Histogram::new("server.request.micros");
/// Compile time (cache misses only) in microseconds.
pub static COMPILE_MICROS: obs::Histogram = obs::Histogram::new("server.compile.micros");
/// WAL records appended.
pub static WAL_APPENDS: obs::Counter = obs::Counter::new("wal.appends");
/// WAL bytes appended.
pub static WAL_APPEND_BYTES: obs::Counter = obs::Counter::new("wal.append.bytes");
/// WAL appends that failed with an I/O error.
pub static WAL_APPEND_ERRORS: obs::Counter = obs::Counter::new("wal.append.errors");
/// `sync_all` calls issued on the WAL.
pub static WAL_FSYNCS: obs::Counter = obs::Counter::new("wal.fsyncs");
/// Artifact snapshots written.
pub static WAL_SNAPSHOTS: obs::Counter = obs::Counter::new("wal.snapshots");
/// Log records replayed at boot.
pub static WAL_REPLAYED: obs::Counter = obs::Counter::new("wal.replayed");
/// Log records that failed to re-apply at boot.
pub static WAL_REPLAY_ERRORS: obs::Counter = obs::Counter::new("wal.replay.errors");
/// Torn-tail bytes truncated from the log at boot.
pub static WAL_TRUNCATED_BYTES: obs::Counter = obs::Counter::new("wal.truncated.bytes");
/// Per-append latency in microseconds (write + any fsync).
pub static WAL_APPEND_MICROS: obs::Histogram = obs::Histogram::new("wal.append.micros");
/// Replication streams served by this primary (lifetime).
pub static REPL_STREAMS: obs::Counter = obs::Counter::new("repl.streams");
/// Raw WAL bytes shipped to replicas.
pub static REPL_SHIPPED_BYTES: obs::Counter = obs::Counter::new("repl.shipped.bytes");
/// Replication handshakes accepted by this primary.
pub static REPL_HANDSHAKES: obs::Counter = obs::Counter::new("repl.handshakes");
/// Handshakes refused because the resume checksums diverged.
pub static REPL_REFUSALS: obs::Counter = obs::Counter::new("repl.refusals");
/// Shipped records applied by this replica.
pub static REPL_APPLIED: obs::Counter = obs::Counter::new("repl.applied");
/// Shipped records that failed to re-apply and were skipped.
pub static REPL_APPLY_ERRORS: obs::Counter = obs::Counter::new("repl.apply.errors");
/// Replication sessions established by this replica.
pub static REPL_SESSIONS: obs::Counter = obs::Counter::new("repl.sessions");
/// Divergence detections (replica side; the stream stops).
pub static REPL_DIVERGENCE: obs::Counter = obs::Counter::new("repl.divergence");
/// Replication lag in bytes (replica side; 0 when caught up).
pub static REPL_LAG_BYTES: obs::Gauge = obs::Gauge::new("repl.lag.bytes");
/// Primary wall-clock heartbeats received (replica side).
pub static REPL_HEARTBEATS: obs::Counter = obs::Counter::new("repl.heartbeats");
/// Time-based replication lag in milliseconds (replica side): local
/// clock minus the newest primary clock seen. Keeps growing while
/// disconnected.
pub static REPL_LAG_MILLIS: obs::Gauge = obs::Gauge::new("repl.lag.millis");

/// Connections currently open on the event-loop front end.
pub static CONNECTIONS: obs::Gauge = obs::Gauge::new("server.connections");

/// Request-type buckets for per-type latency in `stats`: the eleven
/// command tags ([`crate::protocol::Command::tag`]) plus a catch-all
/// for lines that never parsed into a command (`bad_request` must stay
/// last: it doubles as the fallback bucket).
pub const REQUEST_KINDS: [&str; 12] = [
    "load",
    "revise",
    "query",
    "query_batch",
    "list",
    "stats",
    "drop",
    "ping",
    "hello",
    "shutdown",
    "replicate",
    "bad_request",
];

fn kind_index(kind: &str) -> usize {
    REQUEST_KINDS
        .iter()
        .position(|k| *k == kind)
        .unwrap_or(REQUEST_KINDS.len() - 1)
}

/// Always-on request accounting backing the `stats` command.
///
/// Every increment also feeds the corresponding `obs` instrument, so
/// `REVKB_TRACE=summary` output and `stats` responses agree. The
/// per-type latency histograms are [`obs::LocalHistogram`]s — owned,
/// always-on, and *not* part of the global registry — so reading them
/// for a `stats` response never resets or perturbs the telemetry
/// other consumers drain.
#[derive(Debug)]
pub struct ServerCounters {
    requests: AtomicU64,
    overloaded: AtomicU64,
    timeouts: AtomicU64,
    errors: AtomicU64,
    degraded: AtomicU64,
    latency: [obs::LocalHistogram; REQUEST_KINDS.len()],
}

impl Default for ServerCounters {
    fn default() -> Self {
        ServerCounters {
            requests: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            latency: std::array::from_fn(|_| obs::LocalHistogram::new()),
        }
    }
}

impl ServerCounters {
    /// One request fully processed, taking `micros` end to end.
    /// `kind` is the command tag (or `"bad_request"`).
    pub fn request(&self, kind: &str, micros: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.latency[kind_index(kind)].record(micros);
        REQUESTS.inc();
        REQUEST_MICROS.record(micros);
    }

    /// One request rejected by admission control.
    pub fn overloaded(&self) {
        self.overloaded.fetch_add(1, Ordering::Relaxed);
        OVERLOADED.inc();
    }

    /// One request that blew its deadline.
    pub fn timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
        TIMEOUTS.inc();
    }

    /// One request answered with an error response.
    pub fn error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
        ERRORS.inc();
    }

    /// One compilation that fell back to the degraded profile.
    pub fn degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
        DEGRADED.inc();
    }

    /// Requests processed so far.
    pub fn requests_total(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Admission rejections so far.
    pub fn overloaded_total(&self) -> u64 {
        self.overloaded.load(Ordering::Relaxed)
    }

    /// Deadline misses so far.
    pub fn timeouts_total(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Error responses so far.
    pub fn errors_total(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Degraded compiles so far.
    pub fn degraded_total(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// The latency histogram for one request kind (read-only view;
    /// reading never resets anything).
    pub fn latency(&self, kind: &str) -> &obs::LocalHistogram {
        &self.latency[kind_index(kind)]
    }

    /// Iterate `(kind, histogram)` over the kinds that have recorded
    /// at least one request, in [`REQUEST_KINDS`] order.
    pub fn latencies(&self) -> impl Iterator<Item = (&'static str, &obs::LocalHistogram)> {
        REQUEST_KINDS
            .iter()
            .zip(self.latency.iter())
            .filter(|(_, h)| h.count() > 0)
            .map(|(k, h)| (*k, h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count_without_tracing() {
        // REVKB_TRACE is off in tests: obs instruments no-op, the
        // plain counters must still move.
        let c = ServerCounters::default();
        c.request("ping", 10);
        c.request("query", 20);
        c.overloaded();
        c.timeout();
        c.error();
        c.degraded();
        assert_eq!(c.requests_total(), 2);
        assert_eq!(c.overloaded_total(), 1);
        assert_eq!(c.timeouts_total(), 1);
        assert_eq!(c.errors_total(), 1);
        assert_eq!(c.degraded_total(), 1);
    }

    #[test]
    fn per_kind_latency_is_bucketed_and_nondestructive() {
        let c = ServerCounters::default();
        c.request("query", 10);
        c.request("query", 30);
        c.request("revise", 1000);
        c.request("no-such-kind", 7); // falls into the bad_request bucket
        assert_eq!(c.latency("query").count(), 2);
        assert_eq!(c.latency("query").max(), 30);
        assert_eq!(c.latency("revise").count(), 1);
        assert_eq!(c.latency("bad_request").count(), 1);
        assert_eq!(c.latency("ping").count(), 0);
        // Reading twice gives identical answers: snapshots don't drain.
        let first: Vec<_> = c.latencies().map(|(k, h)| (k, h.count())).collect();
        let second: Vec<_> = c.latencies().map(|(k, h)| (k, h.count())).collect();
        assert_eq!(first, second);
        assert_eq!(first, vec![("revise", 1), ("query", 2), ("bad_request", 1)]);
    }
}
