//! A minimal JSON reader/writer for the wire protocol.
//!
//! The workspace builds fully offline (no serde); the bench crate
//! already hand-rolls an *emitter*, but the server also needs to
//! **parse** untrusted request lines without panicking. This module is
//! both halves: a strict recursive-descent parser producing a
//! [`Json`] tree, and a compact single-line renderer whose object key
//! order is exactly insertion order (the golden protocol tests pin
//! response bytes, so determinism is part of the contract).

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Where and why parsing a request line failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub position: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid JSON at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse one JSON document; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after the JSON value"));
        }
        Ok(value)
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object from `(key, value)` pairs, preserving order.
    pub fn obj<'a>(pairs: impl IntoIterator<Item = (&'a str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render compactly on one line (no spaces, insertion-order keys).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    out.push_str(&x.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nesting depth bound: a hostile request cannot blow the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            position: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(what))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let second = self.hex4()?;
                                    let combined = 0x10000
                                        + ((first - 0xD800) << 10)
                                        + (second.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(first).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so the
                    // byte sequence is valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex digit in \\u escape"))?;
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for text in [
            r#"{"id":1,"cmd":"query","kb":"office","q":"b"}"#,
            r#"[1,2.5,-3,true,false,null,"x"]"#,
            r#"{"nested":{"a":[{"b":[]}]},"s":"\"quoted\"\n"}"#,
            "{}",
            "[]",
        ] {
            let parsed = Json::parse(text).unwrap();
            let rendered = parsed.render();
            assert_eq!(Json::parse(&rendered).unwrap(), parsed, "{text}");
        }
    }

    #[test]
    fn rejects_malformed() {
        for text in [
            "",
            "{",
            "}",
            r#"{"a"}"#,
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            "[1,",
            "nul",
            r#""unterminated"#,
            "1 2",
            "\u{1}",
            r#"{"a":1} trailing"#,
            "NaN",
        ] {
            assert!(Json::parse(text).is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded_not_fatal() {
        let hostile = "[".repeat(100_000);
        assert!(Json::parse(&hostile).is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::Str("Aé".to_string()));
        // Surrogate pair for 😀 (U+1F600).
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".to_string()));
        // A lone high surrogate degrades to U+FFFD instead of failing.
        assert_eq!(
            Json::parse(r#""\ud83dx""#).unwrap(),
            Json::Str("\u{FFFD}x".to_string())
        );
        // Raw multi-byte characters pass through.
        assert_eq!(Json::parse(r#""日本""#).unwrap(), Json::Str("日本".into()));
    }

    #[test]
    fn accessors() {
        let j = Json::parse(r#"{"n":3,"s":"x","b":true,"a":[1],"neg":-1,"f":1.5}"#).unwrap();
        assert_eq!(j.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(j.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            j.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(j.get("neg").and_then(Json::as_u64), None);
        assert_eq!(j.get("f").and_then(Json::as_u64), None);
        assert_eq!(j.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn control_chars_escaped_on_render() {
        let s = Json::Str("a\u{1}b".to_string());
        assert_eq!(s.render(), "\"a\\u0001b\"");
    }
}
