//! Replication machinery shared by the primary's streaming side and
//! the replica's apply loop: an incremental splitter that cuts the
//! shipped byte stream back into verified WAL records, the replica's
//! state block surfaced by `stats`, reconnect backoff, and the hex
//! codec the handshake uses to ship the artifact snapshot.
//!
//! The design premise comes straight from the paper: the *revised* KB
//! is the artifact that can blow up in size, while the revision
//! history — the raw `load`/`revise`/`drop` texts the WAL already
//! stores — stays small. So replication ships the log, never the
//! compiled bases: a replica replays the same records through the
//! same handlers recovery uses and re-derives every compiled artifact
//! locally (warm, when the bootstrap snapshot pre-warmed its cache).
//!
//! Stream framing is exactly the on-disk v1 record format
//! (`len:u32le crc:u32le payload`, pinned by `tests/golden/wal_v1.log`)
//! — a replica's log is therefore byte-for-byte a prefix of the
//! primary's, which is what makes resume offsets directly comparable
//! across nodes and lets the divergence check reuse the torn-tail CRC
//! machinery verbatim.

use crate::wal::{crc32, MAX_RECORD_LEN};

/// One step of pulling a record out of the replication stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Shipped {
    /// A complete, checksum-verified record: the raw frame bytes
    /// (header + payload), ready to apply and append verbatim.
    Record(Vec<u8>),
    /// A keepalive from the primary: its wall clock and committed log
    /// length at send time. Heartbeats live only on the wire — they
    /// are never appended to either log and never advance the resume
    /// offset.
    Heartbeat {
        /// The primary's epoch milliseconds when the frame was sent.
        epoch_millis: u64,
        /// The primary's committed log length in bytes (the replica's
        /// lag target).
        committed: u64,
    },
    /// The buffered bytes end mid-record; read more from the socket.
    /// (On disconnect these bytes are dropped — they re-ship on
    /// resume, exactly like a torn tail truncates on recovery.)
    NeedMore,
    /// A complete record arrived but its checksum or framing is
    /// wrong. The stream position is exact (it advanced record by
    /// record from a verified offset), so this is divergence or
    /// corruption, never a framing guess gone wrong.
    Corrupt(String),
}

/// `len` header value marking a heartbeat frame. Real records are
/// bounded by `MAX_RECORD_LEN` (16 MiB), so the all-ones length can
/// never collide with on-disk framing — which is exactly why
/// heartbeats may share the wire with WAL records without ever
/// touching the log itself.
pub const HEARTBEAT_SENTINEL: u32 = u32::MAX;

/// Total bytes in a heartbeat frame: 8-byte header + 16-byte payload.
pub const HEARTBEAT_FRAME_LEN: usize = 24;

/// Encode a heartbeat frame carrying the primary's wall clock and
/// committed log length:
/// `[sentinel:u32le][crc:u32le][epoch_millis:u64le][committed:u64le]`,
/// checksummed with the same CRC as record payloads so line noise
/// cannot fake one.
pub fn encode_heartbeat(epoch_millis: u64, committed: u64) -> [u8; HEARTBEAT_FRAME_LEN] {
    let mut payload = [0u8; 16];
    payload[..8].copy_from_slice(&epoch_millis.to_le_bytes());
    payload[8..].copy_from_slice(&committed.to_le_bytes());
    let mut frame = [0u8; HEARTBEAT_FRAME_LEN];
    frame[..4].copy_from_slice(&HEARTBEAT_SENTINEL.to_le_bytes());
    frame[4..8].copy_from_slice(&crc32(&payload).to_le_bytes());
    frame[8..].copy_from_slice(&payload);
    frame
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
pub fn epoch_millis() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Incremental record splitter over the shipped byte stream.
///
/// Unlike `decode_records` (which scans a file already on disk), the
/// splitter must distinguish "incomplete" from "corrupt": a short
/// record means *wait*, a checksum mismatch on a complete record
/// means *refuse to serve*.
#[derive(Debug, Default)]
pub struct RecordSplitter {
    buf: Vec<u8>,
    start: usize,
}

impl RecordSplitter {
    /// An empty splitter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed bytes read from the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact lazily so long sessions don't grow without bound.
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as records.
    pub fn pending(&self) -> u64 {
        (self.buf.len() - self.start) as u64
    }

    /// Try to pull the next complete record off the front.
    pub fn next_record(&mut self) -> Shipped {
        let bytes = &self.buf[self.start..];
        let Some(header) = bytes.get(..8) else {
            return Shipped::NeedMore;
        };
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
        if len == HEARTBEAT_SENTINEL {
            let Some(frame) = bytes.get(..HEARTBEAT_FRAME_LEN) else {
                return Shipped::NeedMore;
            };
            let payload = &frame[8..];
            let actual = crc32(payload);
            if actual != crc {
                return Shipped::Corrupt(format!(
                    "heartbeat checksum mismatch: header says {crc:#010x}, payload hashes \
                     to {actual:#010x}"
                ));
            }
            let epoch_millis = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
            let committed = u64::from_le_bytes(payload[8..].try_into().expect("8 bytes"));
            self.start += HEARTBEAT_FRAME_LEN;
            return Shipped::Heartbeat {
                epoch_millis,
                committed,
            };
        }
        if len > MAX_RECORD_LEN {
            return Shipped::Corrupt(format!(
                "record header claims {len} payload bytes (bound {MAX_RECORD_LEN}): \
                 stream is corrupt or desynchronised"
            ));
        }
        let total = 8 + len as usize;
        let Some(frame) = bytes.get(..total) else {
            return Shipped::NeedMore;
        };
        let actual = crc32(&frame[8..]);
        if actual != crc {
            return Shipped::Corrupt(format!(
                "record checksum mismatch: header says {crc:#010x}, payload hashes to \
                 {actual:#010x}"
            ));
        }
        let record = frame.to_vec();
        self.start += total;
        Shipped::Record(record)
    }

    /// Drop everything buffered (a disconnect mid-record: the partial
    /// tail re-ships when the stream resumes from the last applied
    /// record boundary).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.start = 0;
    }
}

/// Exponential reconnect backoff: 50 ms doubling to a 1 s cap, reset
/// on every successful handshake. Deliberately short at the cap so a
/// replica notices a restarted primary (and its own shutdown flag)
/// promptly.
#[derive(Debug)]
pub struct Backoff {
    next_ms: u64,
}

/// First reconnect delay in milliseconds.
pub const BACKOFF_START_MS: u64 = 50;
/// Reconnect delay cap in milliseconds.
pub const BACKOFF_CAP_MS: u64 = 1000;

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            next_ms: BACKOFF_START_MS,
        }
    }
}

impl Backoff {
    /// A backoff at the starting delay.
    pub fn new() -> Self {
        Self::default()
    }

    /// The delay to sleep before the next attempt; doubles up to the
    /// cap.
    pub fn delay_ms(&mut self) -> u64 {
        let delay = self.next_ms;
        self.next_ms = (self.next_ms * 2).min(BACKOFF_CAP_MS);
        delay
    }

    /// A connection succeeded: the next failure starts over.
    pub fn reset(&mut self) {
        self.next_ms = BACKOFF_START_MS;
    }
}

/// Replica-side replication state, behind a mutex on the server and
/// surfaced in the `stats` response's `repl` block.
#[derive(Debug, Clone)]
pub struct ReplState {
    /// `HOST:PORT` of the primary being followed.
    pub primary: String,
    /// Is the stream currently connected (handshake accepted)?
    pub connected: bool,
    /// Did the divergence detector fire? Once true the replica stops
    /// replicating and refuses to answer queries.
    pub diverged: bool,
    /// Byte offset into the (shared) log that has been fully applied
    /// — with a data dir this equals the replica's own `wal.bytes`.
    pub offset: u64,
    /// The primary's committed log length as of the last handshake or
    /// shipped byte, so `target - offset` is the lag gauge.
    pub target: u64,
    /// `(len, crc)` of the last applied record, proving the prefix on
    /// the next handshake.
    pub last_record: Option<(u32, u32)>,
    /// Records applied by the replication loop (lifetime).
    pub records_applied: u64,
    /// Shipped records that failed to re-apply and were skipped.
    pub apply_errors: u64,
    /// Successful handshakes (so reconnects = sessions - 1).
    pub sessions: u64,
    /// Artifacts pre-warmed from the bootstrap snapshot.
    pub snapshot_artifacts: u64,
    /// The primary's wall clock (epoch millis) from the newest
    /// heartbeat, `None` before the first one arrives.
    pub primary_clock_millis: Option<u64>,
    /// Local wall clock (epoch millis) when the last record was
    /// applied or heartbeat received — the freshness anchor.
    pub last_record_at_millis: Option<u64>,
}

impl ReplState {
    /// Fresh state following `primary` with `offset` bytes already
    /// durable locally.
    pub fn new(primary: String, offset: u64, last_record: Option<(u32, u32)>) -> Self {
        ReplState {
            primary,
            connected: false,
            diverged: false,
            offset,
            target: offset,
            last_record,
            records_applied: 0,
            apply_errors: 0,
            sessions: 0,
            snapshot_artifacts: 0,
            primary_clock_millis: None,
            last_record_at_millis: None,
        }
    }

    /// Replication lag in bytes (0 when caught up).
    pub fn lag_bytes(&self) -> u64 {
        self.target.saturating_sub(self.offset)
    }

    /// Note a heartbeat (or record) carrying the primary's wall clock,
    /// received at local time `now_millis`.
    pub fn observe_heartbeat(&mut self, primary_millis: u64, now_millis: u64) {
        self.primary_clock_millis = Some(primary_millis);
        self.last_record_at_millis = Some(now_millis);
    }

    /// Time-based replication lag: local wall clock minus the newest
    /// primary clock seen. Keeps *growing* while disconnected (the
    /// primary clock sample ages), so a dead stream reads as rising
    /// lag rather than a frozen byte count. `None` before the first
    /// heartbeat, and clamped at 0 against clock skew.
    pub fn lag_millis(&self, now_millis: u64) -> Option<u64> {
        self.primary_clock_millis
            .map(|p| now_millis.saturating_sub(p))
    }

    /// Milliseconds since the replica last heard from the primary
    /// (records or heartbeats). Pure local-clock staleness — immune to
    /// primary/replica skew.
    pub fn stale_millis(&self, now_millis: u64) -> Option<u64> {
        self.last_record_at_millis
            .map(|t| now_millis.saturating_sub(t))
    }
}

/// A read-only snapshot of [`ReplState`] for programmatic callers
/// (benchmarks poll it for catch-up completion).
#[derive(Debug, Clone)]
pub struct ReplStatus {
    /// See [`ReplState::primary`].
    pub primary: String,
    /// See [`ReplState::connected`].
    pub connected: bool,
    /// See [`ReplState::diverged`].
    pub diverged: bool,
    /// See [`ReplState::offset`].
    pub offset: u64,
    /// See [`ReplState::target`].
    pub target: u64,
    /// See [`ReplState::records_applied`].
    pub records_applied: u64,
    /// See [`ReplState::apply_errors`].
    pub apply_errors: u64,
    /// See [`ReplState::sessions`].
    pub sessions: u64,
    /// See [`ReplState::lag_bytes`].
    pub lag_bytes: u64,
    /// See [`ReplState::lag_millis`] (evaluated at snapshot time).
    pub lag_millis: Option<u64>,
    /// See [`ReplState::last_record_at_millis`].
    pub last_record_at_millis: Option<u64>,
    /// See [`ReplState::stale_millis`] (evaluated at snapshot time).
    pub stale_millis: Option<u64>,
}

impl From<&ReplState> for ReplStatus {
    fn from(s: &ReplState) -> Self {
        let now = epoch_millis();
        ReplStatus {
            primary: s.primary.clone(),
            connected: s.connected,
            diverged: s.diverged,
            offset: s.offset,
            target: s.target,
            records_applied: s.records_applied,
            apply_errors: s.apply_errors,
            sessions: s.sessions,
            lag_bytes: s.lag_bytes(),
            lag_millis: s.lag_millis(now),
            last_record_at_millis: s.last_record_at_millis,
            stale_millis: s.stale_millis(now),
        }
    }
}

/// Hex-encode `bytes` (lowercase), for shipping the bootstrap
/// snapshot inside the JSON handshake response.
pub fn to_hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(DIGITS[(b >> 4) as usize] as char);
        out.push(DIGITS[(b & 0xF) as usize] as char);
    }
    out
}

/// Decode [`to_hex`] output; `None` on odd length or a non-hex digit.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digit = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    };
    let raw = s.as_bytes();
    let mut out = Vec::with_capacity(raw.len() / 2);
    for pair in raw.chunks_exact(2) {
        out.push(digit(pair[0])? << 4 | digit(pair[1])?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{encode_record, WalOp};

    fn records() -> Vec<Vec<u8>> {
        [
            WalOp::Load {
                kb: "k".into(),
                t: "a & b".into(),
            },
            WalOp::Revise {
                kb: "k".into(),
                op: "dalal".into(),
                p: "!a".into(),
                backend: "direct".into(),
            },
            WalOp::Drop { kb: "k".into() },
        ]
        .iter()
        .map(encode_record)
        .collect()
    }

    #[test]
    fn splitter_reassembles_records_fed_byte_by_byte() {
        let stream: Vec<u8> = records().concat();
        let mut splitter = RecordSplitter::new();
        let mut out = Vec::new();
        for &b in &stream {
            splitter.extend(&[b]);
            loop {
                match splitter.next_record() {
                    Shipped::Record(r) => out.push(r),
                    Shipped::NeedMore => break,
                    Shipped::Corrupt(m) => panic!("corrupt: {m}"),
                    Shipped::Heartbeat { .. } => panic!("no heartbeats in this stream"),
                }
            }
        }
        assert_eq!(out, records());
        assert_eq!(splitter.pending(), 0);
    }

    #[test]
    fn splitter_flags_a_corrupt_complete_record_but_waits_on_a_short_one() {
        let mut frame = records()[1].clone();
        let mut splitter = RecordSplitter::new();
        // All but the last byte: incomplete, not corrupt.
        splitter.extend(&frame[..frame.len() - 1]);
        assert_eq!(splitter.next_record(), Shipped::NeedMore);
        // Flip a payload byte, then complete the record: corrupt.
        frame[10] ^= 0x20;
        let mut splitter = RecordSplitter::new();
        splitter.extend(&frame);
        assert!(matches!(splitter.next_record(), Shipped::Corrupt(_)));
        // An insane length header is corruption, not a record to wait
        // for.
        let mut splitter = RecordSplitter::new();
        let mut huge = (MAX_RECORD_LEN + 1).to_le_bytes().to_vec();
        huge.extend_from_slice(&[0; 4]);
        splitter.extend(&huge);
        assert!(matches!(splitter.next_record(), Shipped::Corrupt(_)));
    }

    #[test]
    fn splitter_clear_drops_a_partial_tail() {
        let mut splitter = RecordSplitter::new();
        splitter.extend(&records()[0][..5]);
        assert_eq!(splitter.pending(), 5);
        splitter.clear();
        assert_eq!(splitter.pending(), 0);
        // Resuming re-ships the whole record.
        splitter.extend(&records()[0]);
        assert_eq!(
            splitter.next_record(),
            Shipped::Record(records()[0].clone())
        );
    }

    #[test]
    fn backoff_doubles_to_the_cap_and_resets() {
        let mut b = Backoff::new();
        assert_eq!(b.delay_ms(), 50);
        assert_eq!(b.delay_ms(), 100);
        assert_eq!(b.delay_ms(), 200);
        assert_eq!(b.delay_ms(), 400);
        assert_eq!(b.delay_ms(), 800);
        assert_eq!(b.delay_ms(), 1000);
        assert_eq!(b.delay_ms(), 1000);
        b.reset();
        assert_eq!(b.delay_ms(), 50);
    }

    #[test]
    fn hex_round_trips() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&bytes)), Some(bytes));
        assert_eq!(to_hex(&[0xDE, 0xAD]), "dead");
        assert_eq!(from_hex("DEad"), Some(vec![0xDE, 0xAD]));
        assert_eq!(from_hex("abc"), None);
        assert_eq!(from_hex("zz"), None);
    }

    #[test]
    fn splitter_passes_heartbeats_through_without_consuming_offset() {
        // Interleave: record, heartbeat, record — the heartbeat rides
        // the wire between records and never shows up as a record.
        let mut stream = records()[0].clone();
        stream.extend_from_slice(&encode_heartbeat(1_700_000_000_123, 4096));
        stream.extend_from_slice(&records()[1]);
        let mut splitter = RecordSplitter::new();
        splitter.extend(&stream);
        assert_eq!(
            splitter.next_record(),
            Shipped::Record(records()[0].clone())
        );
        assert_eq!(
            splitter.next_record(),
            Shipped::Heartbeat {
                epoch_millis: 1_700_000_000_123,
                committed: 4096
            }
        );
        assert_eq!(
            splitter.next_record(),
            Shipped::Record(records()[1].clone())
        );
        assert_eq!(splitter.next_record(), Shipped::NeedMore);
    }

    #[test]
    fn partial_or_corrupt_heartbeats_are_handled_like_records() {
        let frame = encode_heartbeat(42, 99);
        // Short: wait for the rest.
        let mut splitter = RecordSplitter::new();
        splitter.extend(&frame[..HEARTBEAT_FRAME_LEN - 1]);
        assert_eq!(splitter.next_record(), Shipped::NeedMore);
        splitter.extend(&frame[HEARTBEAT_FRAME_LEN - 1..]);
        assert_eq!(
            splitter.next_record(),
            Shipped::Heartbeat {
                epoch_millis: 42,
                committed: 99
            }
        );
        // Flipped payload byte: corrupt, not a bogus timestamp.
        let mut bad = frame;
        bad[9] ^= 0x01;
        let mut splitter = RecordSplitter::new();
        splitter.extend(&bad);
        assert!(matches!(splitter.next_record(), Shipped::Corrupt(_)));
    }

    #[test]
    fn time_lag_grows_from_the_last_heartbeat_and_clamps_on_skew() {
        let mut s = ReplState::new("127.0.0.1:1".into(), 8, None);
        assert_eq!(s.lag_millis(5_000), None);
        assert_eq!(s.stale_millis(5_000), None);
        s.observe_heartbeat(4_900, 5_000);
        assert_eq!(s.lag_millis(5_000), Some(100));
        assert_eq!(s.stale_millis(5_000), Some(0));
        // Disconnected: the same sample keeps aging instead of
        // freezing.
        assert_eq!(s.lag_millis(12_000), Some(7_100));
        assert_eq!(s.stale_millis(12_000), Some(7_000));
        // A primary clock ahead of ours clamps to zero, no underflow.
        s.observe_heartbeat(20_000, 12_500);
        assert_eq!(s.lag_millis(12_500), Some(0));
    }

    #[test]
    fn lag_gauge_tracks_target_minus_offset() {
        let mut s = ReplState::new("127.0.0.1:1".into(), 8, None);
        assert_eq!(s.lag_bytes(), 0);
        s.target = 100;
        assert_eq!(s.lag_bytes(), 92);
        s.offset = 100;
        assert_eq!(s.lag_bytes(), 0);
        // A stale target never yields an underflowed gauge.
        s.offset = 120;
        assert_eq!(s.lag_bytes(), 0);
    }
}
