//! Standalone entry point for the revision service.
//!
//! ```text
//! revkb-server --stdio                 # serve one NDJSON session on stdin/stdout
//! revkb-server --listen 127.0.0.1:7878 # serve TCP clients until `shutdown`
//! ```
//!
//! Tuning comes from `REVKB_SERVER_*` environment variables (see
//! `ServerConfig::from_env`) overridden by the flags below. The same
//! loops are reachable as `revkb serve` from the main CLI.

use revkb_obs as obs;
use revkb_server::{Server, ServerConfig, SyncMode};
use std::io::{self, BufReader, Write};
use std::net::TcpListener;
use std::process::ExitCode;

const USAGE: &str = "usage: revkb-server (--stdio | --listen ADDR) \
                     [--io evloop|blocking] \
                     [--threads N] [--queue N] [--deadline-ms N] \
                     [--compile-timeout-ms N] [--cache-cap N] \
                     [--slow-ms N] [--data-dir DIR] \
                     [--wal-sync always|batch|off] [--snapshot-every N] \
                     [--replica-of HOST:PORT] [--metrics-addr HOST:PORT] \
                     [--log-file PATH]";

/// Environment variable selecting the TCP front end (`evloop` or
/// `blocking`); overridden by `--io`.
const IO_ENV: &str = "REVKB_SERVER_IO";

enum Transport {
    Stdio,
    Tcp(String),
}

/// Which TCP front end serves the data plane.
#[derive(Clone, Copy, PartialEq, Eq)]
enum IoMode {
    /// The epoll event loop (pipelining + the HTTP gateway). The
    /// default on Linux; elsewhere it falls back to `blocking`.
    Evloop,
    /// One blocking thread per connection.
    Blocking,
}

impl IoMode {
    fn parse(raw: &str) -> Option<IoMode> {
        match raw {
            "evloop" => Some(IoMode::Evloop),
            "blocking" => Some(IoMode::Blocking),
            _ => None,
        }
    }

    fn from_env() -> IoMode {
        std::env::var(IO_ENV)
            .ok()
            .as_deref()
            .and_then(IoMode::parse)
            .unwrap_or(IoMode::Evloop)
    }
}

type Parsed = (Transport, ServerConfig, IoMode, Option<std::path::PathBuf>);

fn parse_args(args: &[String]) -> Result<Parsed, String> {
    let mut transport = None;
    let mut log_file = None;
    let mut io_mode = IoMode::from_env();
    let mut config = ServerConfig::from_env();
    let mut iter = args.iter();
    let value = |iter: &mut std::slice::Iter<String>, flag: &str| {
        iter.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--stdio" => transport = Some(Transport::Stdio),
            "--listen" => transport = Some(Transport::Tcp(value(&mut iter, "--listen")?)),
            "--io" => {
                let raw = value(&mut iter, "--io")?;
                io_mode =
                    IoMode::parse(&raw).ok_or_else(|| "--io needs evloop|blocking".to_string())?;
            }
            "--threads" => {
                config = config.with_threads(
                    value(&mut iter, "--threads")?
                        .parse()
                        .map_err(|_| "--threads needs an integer".to_string())?,
                );
            }
            "--queue" => {
                config = config.with_queue(
                    value(&mut iter, "--queue")?
                        .parse()
                        .map_err(|_| "--queue needs an integer".to_string())?,
                );
            }
            "--deadline-ms" => {
                config = config.with_default_deadline_ms(
                    value(&mut iter, "--deadline-ms")?
                        .parse()
                        .map_err(|_| "--deadline-ms needs an integer".to_string())?,
                );
            }
            "--compile-timeout-ms" => {
                config = config.with_compile_timeout_ms(Some(
                    value(&mut iter, "--compile-timeout-ms")?
                        .parse()
                        .map_err(|_| "--compile-timeout-ms needs an integer".to_string())?,
                ));
            }
            "--cache-cap" => {
                config = config.with_cache_capacity(
                    value(&mut iter, "--cache-cap")?
                        .parse()
                        .map_err(|_| "--cache-cap needs an integer".to_string())?,
                );
            }
            "--slow-ms" => {
                config = config.with_slow_ms(
                    value(&mut iter, "--slow-ms")?
                        .parse()
                        .map_err(|_| "--slow-ms needs an integer".to_string())?,
                );
            }
            "--data-dir" => {
                config = config.with_data_dir(Some(value(&mut iter, "--data-dir")?.into()));
            }
            "--wal-sync" => {
                let raw = value(&mut iter, "--wal-sync")?;
                config = config.with_wal_sync(
                    SyncMode::parse(&raw)
                        .ok_or_else(|| "--wal-sync needs always|batch|off".to_string())?,
                );
            }
            "--snapshot-every" => {
                config = config.with_snapshot_every(
                    value(&mut iter, "--snapshot-every")?
                        .parse()
                        .map_err(|_| "--snapshot-every needs an integer".to_string())?,
                );
            }
            "--replica-of" => {
                config = config.with_replica_of(Some(value(&mut iter, "--replica-of")?));
            }
            "--metrics-addr" => {
                config = config.with_metrics_addr(Some(value(&mut iter, "--metrics-addr")?));
            }
            "--log-file" => {
                log_file = Some(std::path::PathBuf::from(value(&mut iter, "--log-file")?));
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let transport = transport.ok_or_else(|| "pick --stdio or --listen ADDR".to_string())?;
    Ok((transport, config, io_mode, log_file))
}

/// Run the server on the chosen transport. Shared with `revkb serve`.
pub fn run(args: &[String]) -> ExitCode {
    let (transport, config, io_mode, log_file) = match parse_args(args) {
        Ok(parsed) => parsed,
        Err(message) => {
            obs::error("server", None, || {
                format!("revkb-server: {message}\n{USAGE}")
            });
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &log_file {
        if let Err(e) = obs::set_log_file(path) {
            obs::error("server", None, || {
                format!("revkb-server: cannot open log file {}: {e}", path.display())
            });
            return ExitCode::FAILURE;
        }
    }
    let data_dir = config.data_dir.clone();
    let server = match Server::open(config) {
        Ok(server) => server,
        Err(e) => {
            let dir = data_dir.as_deref().unwrap_or(std::path::Path::new("?"));
            obs::error("server", None, || {
                format!("revkb-server: cannot open data dir {}: {e}", dir.display())
            });
            return ExitCode::FAILURE;
        }
    };
    if let Some(report) = server.recovery_report() {
        obs::info("wal", None, || {
            format!(
                "revkb-server: recovered {} op(s) ({} skipped, {} snapshot artifact(s), \
                 {} torn byte(s) truncated) in {} us",
                report.replayed,
                report.replay_errors,
                report.snapshot_artifacts,
                report.truncated_bytes,
                report.boot_micros
            )
        });
    }
    // Replica mode: the apply loop runs alongside the serving loop
    // and drains on `shutdown` like every connection thread.
    let replication = server.start_replication();
    if let Some(status) = server.replication_status() {
        obs::info("repl", None, || {
            format!(
                "revkb-server: replicating from {} (resume offset {})",
                status.primary, status.offset
            )
        });
    }
    // The metrics plane is a sidecar listener: it must not collide
    // with the stdio data plane, so the banner goes to stderr.
    let metrics = match server.start_metrics_listener() {
        Ok(handle) => {
            if let Some((addr, _)) = &handle {
                obs::info("http", None, || {
                    format!("revkb-server: metrics listening {addr}")
                });
            }
            handle
        }
        Err(e) => {
            obs::error("http", None, || {
                format!("revkb-server: cannot bind metrics listener: {e}")
            });
            return ExitCode::FAILURE;
        }
    };
    let outcome = match transport {
        Transport::Stdio => {
            let stdin = io::stdin();
            let stdout = io::stdout();
            server.serve_stdio(BufReader::new(stdin.lock()), stdout.lock())
        }
        Transport::Tcp(addr) => match TcpListener::bind(&addr) {
            Ok(listener) => {
                // Announce the bound address (the OS picks the port
                // for ":0" binds) so scripts can connect.
                if let Ok(local) = listener.local_addr() {
                    println!("listening {local}");
                    let _ = io::stdout().flush();
                }
                match io_mode {
                    IoMode::Evloop => server.serve_event_loop(listener),
                    IoMode::Blocking => server.serve_tcp(listener),
                }
            }
            Err(e) => {
                obs::error("server", None, || {
                    format!("revkb-server: cannot bind {addr}: {e}")
                });
                return ExitCode::FAILURE;
            }
        },
    };
    if let Some(handle) = replication {
        // A stdio session can end at EOF without a `shutdown` command;
        // make sure the apply loop drains either way.
        server.begin_shutdown();
        let _ = handle.join();
    }
    if let Some((_, handle)) = metrics {
        server.begin_shutdown();
        let _ = handle.join();
    }
    write_trace_if_requested();
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            obs::error("server", None, || format!("revkb-server: {e}"));
            ExitCode::FAILURE
        }
    }
}

/// Under `REVKB_TRACE=chrome`, drain the telemetry accumulated over
/// the server's lifetime and write the trace file at exit — every
/// `server.*` span carries the `req` attribute, so the trace lines up
/// with the wire log's `req` fields.
fn write_trace_if_requested() {
    if obs::mode() != obs::TraceMode::Chrome {
        return;
    }
    let snap = obs::drain();
    let path = obs::trace_file_path();
    match obs::write_chrome_trace(&path, &snap) {
        Ok(()) => obs::info("server", None, || {
            format!("revkb-server: wrote chrome trace to {}", path.display())
        }),
        Err(e) => obs::error("server", None, || {
            format!(
                "revkb-server: cannot write chrome trace to {}: {e}",
                path.display()
            )
        }),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    run(&args)
}
