//! The server proper: admission control, deadlines, degradation, and
//! the command dispatcher, plus the stdio and TCP serving loops.
//!
//! Concurrency model: any number of connection threads feed
//! [`Server::handle_line`]. A request is first **admitted** (bounded
//! in-flight count — beyond it the server answers `overloaded` instead
//! of queueing unboundedly), then waits for one of a fixed number of
//! **execution permits** (so at most `threads` requests run engine
//! work at once), then executes against the named KB's own mutex
//! (queries to different KBs run in parallel; queries to one KB
//! serialise, which the incremental-session engines require anyway).
//!
//! Deadlines are best-effort, not preemptive: a request's deadline is
//! checked at admission, after the permit wait, and again after
//! execution (a result computed too late is discarded and reported as
//! `timeout` — late answers must not look fast). A `deadline_ms` of 0
//! therefore deterministically times out, which the tests and the CI
//! smoke script rely on.
//!
//! Every request gets a server-assigned monotonic id (`req`), echoed
//! in the response envelope and attached as an attribute to every
//! `server.*` telemetry span, so a Chrome trace (`REVKB_TRACE=chrome`)
//! correlates span-for-line with the wire log. Requests slower than
//! `REVKB_SERVER_SLOW_MS` land in a bounded `slow_log` ring buffer
//! returned by `stats`.

use crate::http;
use crate::json::Json;
use crate::metrics::{self, ServerCounters};
use crate::protocol::{
    codes, parse_request, Command, OpName, Request, RequestError, Response, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
};
use crate::registry::{
    cache_key, formula_size, Artifact, ArtifactCache, KbKind, KbProfile, KbState,
};
use crate::replica::{
    encode_heartbeat, epoch_millis, from_hex, to_hex, Backoff, RecordSplitter, ReplState,
    ReplStatus, Shipped,
};
use crate::wal::{decode_records, RecoveryReport, SyncMode, Wal, WalOp, LOG_MAGIC, SNAPSHOT_FILE};
use revkb_logic::{parse as parse_formula, Formula, Signature};
use revkb_obs as obs;
use revkb_revision::api::Engine;
use revkb_revision::{
    widtio, Backend, DelayedKb, Error, GfuvEngine, ModelBasedOp, RevisedKb, Theory, WidtioEngine,
    CACHE_CAP_ENV, DEFAULT_CACHE_CAPACITY,
};
use std::collections::{HashMap, VecDeque};
use std::fs::File;
use std::io::{self, BufRead, Read, Seek, SeekFrom, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Environment variable bounding concurrent request execution.
pub const THREADS_ENV: &str = "REVKB_SERVER_THREADS";
/// Environment variable bounding admitted-but-unfinished requests.
pub const QUEUE_ENV: &str = "REVKB_SERVER_QUEUE";
/// Environment variable giving the default per-request deadline (ms).
pub const DEADLINE_ENV: &str = "REVKB_SERVER_DEADLINE_MS";
/// Environment variable giving the compile timeout (ms) beyond which a
/// revision degrades to delayed incorporation.
pub const COMPILE_TIMEOUT_ENV: &str = "REVKB_SERVER_COMPILE_TIMEOUT_MS";
/// Environment variable giving the GFUV possible-worlds budget.
pub const WORLDS_ENV: &str = "REVKB_SERVER_WORLDS";
/// Environment variable giving the slow-request threshold (ms): any
/// request at least this slow end-to-end is recorded in the `slow_log`
/// ring buffer returned by `stats`. 0 records every request.
pub const SLOW_MS_ENV: &str = "REVKB_SERVER_SLOW_MS";
/// Environment variable giving the slow-log ring-buffer capacity.
pub const SLOW_LOG_ENV: &str = "REVKB_SERVER_SLOW_LOG";
/// Environment variable naming the primary to replicate from
/// (equivalent to `--replica-of HOST:PORT`). Set, the server is a
/// read-only replica.
pub const REPLICA_OF_ENV: &str = "REVKB_REPLICA_OF";

/// How long the replication stream sleeps between tail polls when it
/// has caught up with the primary's committed bytes.
const TAIL_POLL: Duration = Duration::from_millis(15);

/// How often a caught-up primary sends a wall-clock heartbeat down
/// each replication stream (the replica's `repl.lag.millis` source).
const HEARTBEAT_MS: u64 = 500;

/// A disconnected replica that has not heard from its primary for
/// this long stops reporting ready on `/readyz`.
pub const READY_STALE_MS: u64 = 10_000;

/// How many sampler ticks between incremental Chrome-trace flushes
/// (`REVKB_TRACE=chrome` only): at the default 1 s interval a
/// SIGKILL'd server loses at most ~5 s of trace.
const CHROME_FLUSH_TICKS: u64 = 5;

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Server tuning knobs. [`ServerConfig::from_env`] reads the
/// `REVKB_SERVER_*` variables; the setters override them (explicit
/// wins, the same precedence rule as `ReviseBuilder`).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent execution permits (default: the batch-pool thread
    /// count, i.e. `REVKB_THREADS` then available parallelism).
    pub threads: usize,
    /// Admission bound: requests admitted but not yet finished. Beyond
    /// it new work is answered `overloaded`. 0 rejects everything but
    /// the exempt commands (`ping`, `stats`, `shutdown`).
    pub queue: usize,
    /// Default per-request deadline in milliseconds when the request
    /// carries no `deadline_ms`.
    pub default_deadline_ms: u64,
    /// Compile budget in milliseconds: a model-based compile that
    /// exceeds it falls back to delayed incorporation and the revise
    /// response says `"degraded":true`. `None` disables the budget; 0
    /// degrades every compile (deterministic, used by tests).
    pub compile_timeout_ms: Option<u64>,
    /// Capacity of the compiled-artifact LRU cache.
    pub cache_capacity: usize,
    /// GFUV possible-worlds budget (Theorem 3.1 says the world set can
    /// be exponential; the budget turns that into an error).
    pub worlds_budget: usize,
    /// Slow-request threshold in milliseconds: a request at least this
    /// slow end-to-end is recorded in the `slow_log` ring buffer.
    /// 0 records every request (useful in tests).
    pub slow_ms: u64,
    /// Capacity of the `slow_log` ring buffer (oldest entries are
    /// evicted first). 0 disables the log.
    pub slow_log_cap: usize,
    /// Durable data directory for the write-ahead revision log and
    /// artifact snapshots. `None` (the default) keeps the server fully
    /// in-memory, exactly as before persistence existed.
    pub data_dir: Option<PathBuf>,
    /// WAL fsync discipline (only meaningful with a `data_dir`).
    pub wal_sync: SyncMode,
    /// Logged revises between artifact snapshots; 0 disables
    /// snapshots (replay then recompiles everything).
    pub snapshot_every: usize,
    /// `HOST:PORT` of a primary to replicate from. Set, this server
    /// is a **read-only replica**: it bootstraps from the primary's
    /// snapshot and log, applies shipped records through the same
    /// handlers recovery uses, serves `query`/`query_batch`/`stats`,
    /// and rejects writes with the stable `read_only` code.
    pub replica_of: Option<String>,
    /// `HOST:PORT` for the sidecar metrics listener (`/metrics`,
    /// `/stats.json`, `/series.json`, `/healthz`, `/readyz`). `None`
    /// (the default) serves no metrics plane.
    pub metrics_addr: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            threads: revkb_sat::default_threads(),
            queue: 64,
            default_deadline_ms: 30_000,
            compile_timeout_ms: None,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            worlds_budget: 4096,
            slow_ms: 1000,
            slow_log_cap: 32,
            data_dir: None,
            wal_sync: SyncMode::Always,
            snapshot_every: crate::wal::DEFAULT_SNAPSHOT_EVERY,
            replica_of: None,
            metrics_addr: None,
        }
    }
}

impl ServerConfig {
    /// Defaults overridden by any `REVKB_SERVER_*` / `REVKB_CACHE_CAP`
    /// variables present in the environment.
    pub fn from_env() -> Self {
        let mut config = Self::default();
        if let Some(threads) = env_usize(THREADS_ENV) {
            config.threads = threads.max(1);
        }
        if let Some(queue) = env_usize(QUEUE_ENV) {
            config.queue = queue;
        }
        if let Some(ms) = env_u64(DEADLINE_ENV) {
            config.default_deadline_ms = ms;
        }
        if let Some(ms) = env_u64(COMPILE_TIMEOUT_ENV) {
            config.compile_timeout_ms = Some(ms);
        }
        if let Some(cap) = env_usize(CACHE_CAP_ENV) {
            config.cache_capacity = cap;
        }
        if let Some(budget) = env_usize(WORLDS_ENV) {
            config.worlds_budget = budget;
        }
        if let Some(ms) = env_u64(SLOW_MS_ENV) {
            config.slow_ms = ms;
        }
        if let Some(cap) = env_usize(SLOW_LOG_ENV) {
            config.slow_log_cap = cap;
        }
        if let Ok(dir) = std::env::var(crate::wal::DATA_DIR_ENV) {
            if !dir.trim().is_empty() {
                config.data_dir = Some(PathBuf::from(dir));
            }
        }
        if let Some(mode) = std::env::var(crate::wal::SYNC_ENV)
            .ok()
            .and_then(|s| SyncMode::parse(&s))
        {
            config.wal_sync = mode;
        }
        if let Some(every) = env_usize(crate::wal::SNAPSHOT_EVERY_ENV) {
            config.snapshot_every = every;
        }
        if let Ok(primary) = std::env::var(REPLICA_OF_ENV) {
            if !primary.trim().is_empty() {
                config.replica_of = Some(primary.trim().to_string());
            }
        }
        if let Ok(addr) = std::env::var(http::METRICS_ADDR_ENV) {
            if !addr.trim().is_empty() {
                config.metrics_addr = Some(addr.trim().to_string());
            }
        }
        config
    }

    /// Set the execution-permit count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Set the admission bound.
    pub fn with_queue(mut self, queue: usize) -> Self {
        self.queue = queue;
        self
    }

    /// Set the default deadline.
    pub fn with_default_deadline_ms(mut self, ms: u64) -> Self {
        self.default_deadline_ms = ms;
        self
    }

    /// Set (or clear) the compile budget.
    pub fn with_compile_timeout_ms(mut self, ms: Option<u64>) -> Self {
        self.compile_timeout_ms = ms;
        self
    }

    /// Set the artifact-cache capacity.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Set the GFUV worlds budget.
    pub fn with_worlds_budget(mut self, budget: usize) -> Self {
        self.worlds_budget = budget;
        self
    }

    /// Set the slow-request threshold (ms). 0 logs every request.
    pub fn with_slow_ms(mut self, ms: u64) -> Self {
        self.slow_ms = ms;
        self
    }

    /// Set the slow-log ring-buffer capacity. 0 disables the log.
    pub fn with_slow_log_cap(mut self, cap: usize) -> Self {
        self.slow_log_cap = cap;
        self
    }

    /// Set (or clear) the durable data directory.
    pub fn with_data_dir(mut self, dir: Option<PathBuf>) -> Self {
        self.data_dir = dir;
        self
    }

    /// Set the WAL fsync discipline.
    pub fn with_wal_sync(mut self, sync: SyncMode) -> Self {
        self.wal_sync = sync;
        self
    }

    /// Set the revises-between-snapshots interval (0 disables).
    pub fn with_snapshot_every(mut self, every: usize) -> Self {
        self.snapshot_every = every;
        self
    }

    /// Set (or clear) the primary to replicate from. Set, the server
    /// becomes a read-only replica.
    pub fn with_replica_of(mut self, primary: Option<String>) -> Self {
        self.replica_of = primary;
        self
    }

    /// Set (or clear) the sidecar metrics listener address.
    pub fn with_metrics_addr(mut self, addr: Option<String>) -> Self {
        self.metrics_addr = addr;
        self
    }
}

/// A counting semaphore bounding concurrent execution.
struct ExecGate {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl ExecGate {
    fn new(permits: usize) -> Self {
        Self {
            permits: Mutex::new(permits),
            cv: Condvar::new(),
        }
    }

    /// Take a permit, waiting at most until `deadline`. False means
    /// the deadline expired first.
    fn acquire(&self, deadline: Instant) -> bool {
        let mut permits = self.permits.lock().expect("exec gate poisoned");
        loop {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            if *permits > 0 {
                *permits -= 1;
                return true;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(permits, deadline - now)
                .expect("exec gate poisoned");
            permits = guard;
        }
    }

    fn release(&self) {
        *self.permits.lock().expect("exec gate poisoned") += 1;
        self.cv.notify_one();
    }
}

struct PermitGuard<'a>(&'a ExecGate);

impl Drop for PermitGuard<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

struct InFlightGuard<'a>(&'a AtomicUsize);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Registers an admitted request in the in-flight table (the
/// `/debug/requests.json` source) and removes it on every exit path.
struct ActiveGuard<'a> {
    table: &'a Mutex<HashMap<u64, ActiveRequest>>,
    req: u64,
}

impl<'a> ActiveGuard<'a> {
    fn register(
        table: &'a Mutex<HashMap<u64, ActiveRequest>>,
        req: u64,
        entry: ActiveRequest,
    ) -> Self {
        table
            .lock()
            .expect("active table poisoned")
            .insert(req, entry);
        Self { table, req }
    }
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.table
            .lock()
            .expect("active table poisoned")
            .remove(&self.req);
    }
}

/// Decrements the open-connection gauge when a blocking connection
/// thread exits by any path.
struct ConnGuard<'a>(&'a Server);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.connection_closed();
    }
}

/// Where one parsed request goes next, as decided on the event-loop
/// thread by [`Server::route_request`].
pub(crate) enum Routing {
    /// Answered on the spot (rejections, overload): ship the response.
    Done(Response),
    /// A control-plane command for the dedicated control worker.
    Control,
    /// Admitted to the data-plane worker pool; the in-flight slot is
    /// already claimed and [`Server::execute_admitted`] releases it.
    Admitted,
    /// A `replicate` handshake: hand the whole connection over to a
    /// blocking replication stream.
    Replicate,
}

/// One `slow_log` entry: a request whose end-to-end latency was at
/// least the configured threshold.
#[derive(Debug, Clone, Copy)]
struct SlowEntry {
    /// Server-assigned monotonic request id (matches the response
    /// envelope's `req` field and the span attribute).
    req: u64,
    /// Command tag (or `"bad_request"`).
    cmd: &'static str,
    /// End-to-end latency in microseconds.
    micros: u64,
    /// The request's trace id (0 for paths that never resolved one,
    /// e.g. unparseable lines).
    trace: u64,
    /// Time spent waiting for an execution permit, microseconds.
    queue_micros: u64,
    /// Time spent compiling, microseconds (0 for non-revise work).
    compile_micros: u64,
}

/// Per-request phase timings, accumulated on the executing thread as
/// the request moves through the pipeline and harvested by
/// [`Server::note_request`]. Thread-local because a request executes
/// synchronously on exactly one thread; `take()` both reads and resets
/// so one request's phases never bleed into the next.
#[derive(Debug, Clone, Copy, Default)]
struct Phases {
    queue_micros: u64,
    compile_micros: u64,
}

thread_local! {
    static PHASES: std::cell::Cell<Phases> = const {
        std::cell::Cell::new(Phases {
            queue_micros: 0,
            compile_micros: 0,
        })
    };
}

fn note_queue_micros(micros: u64) {
    PHASES.with(|p| {
        let mut phases = p.get();
        phases.queue_micros += micros;
        p.set(phases);
    });
}

fn note_compile_micros(micros: u64) {
    PHASES.with(|p| {
        let mut phases = p.get();
        phases.compile_micros += micros;
        p.set(phases);
    });
}

/// One entry in the in-flight table behind `/debug/requests.json`.
#[derive(Debug, Clone, Copy)]
struct ActiveRequest {
    cmd: &'static str,
    trace: u64,
    started: Instant,
}

struct Inner {
    config: ServerConfig,
    registry: Mutex<HashMap<String, Arc<Mutex<KbState>>>>,
    cache: Mutex<ArtifactCache>,
    counters: ServerCounters,
    in_flight: AtomicUsize,
    gate: ExecGate,
    shutdown: AtomicBool,
    /// Monotonic request-id source (first request is 1).
    seq: AtomicU64,
    /// Ring buffer of the last `slow_log_cap` slow requests.
    slow_log: Mutex<VecDeque<SlowEntry>>,
    /// Admitted requests currently executing, keyed by `req` — the
    /// in-flight table behind `/debug/requests.json`.
    active: Mutex<HashMap<u64, ActiveRequest>>,
    /// Construction instant, for `uptime_millis` / `revkb_uptime_seconds`.
    started: Instant,
    /// The write-ahead log, when a data directory is configured.
    /// Lock order: registry/KB lock → `wal` → `cache`.
    wal: Option<Mutex<Wal>>,
    /// True while boot replay re-applies logged operations (appends
    /// are suppressed: replayed operations are already in the log).
    replaying: AtomicBool,
    /// Boot recovery summary, surfaced in `stats`.
    recovery: Mutex<Option<RecoveryReport>>,
    /// Replica-side replication state; `Some` iff `replica_of` is
    /// configured (the server is then read-only).
    repl: Option<Mutex<ReplState>>,
    /// Primary-side: replication streams currently being served.
    repl_streams: AtomicU64,
    /// Primary-side: replication streams served, lifetime.
    repl_streams_total: AtomicU64,
    /// Primary-side: raw WAL bytes shipped to replicas.
    repl_shipped_bytes: AtomicU64,
    /// Primary-side: replication handshakes accepted.
    repl_handshakes: AtomicU64,
    /// Primary-side: handshakes refused for divergence.
    repl_refusals: AtomicU64,
    /// Background time-series sampler feeding `/series.json` and the
    /// `series` section of `stats` (populated right after
    /// construction; `None` only mid-build).
    sampler: Mutex<Option<obs::Sampler>>,
    /// Data-plane connections currently open (blocking TCP threads
    /// plus event-loop registrations).
    connections: AtomicU64,
}

/// The revision service. Cheap to clone (shared state behind an
/// [`Arc`]); one instance serves any number of transports at once.
#[derive(Clone)]
pub struct Server {
    inner: Arc<Inner>,
}

/// Engine-or-protocol failure inside command execution.
type ExecError = (&'static str, String);

fn engine_err(e: Error) -> ExecError {
    (e.code(), e.to_string())
}

fn kind_tag(kind: KbKind) -> &'static str {
    match kind {
        KbKind::Unrevised => "unrevised",
        KbKind::ModelBased(op) => OpName::Model(op).tag(),
        KbKind::Gfuv => OpName::Gfuv.tag(),
        KbKind::Widtio => OpName::Widtio.tag(),
    }
}

fn num(n: u64) -> Json {
    Json::Num(n as f64)
}

/// How a revise obtained its engine (the `cache` field of the
/// response).
enum CacheOutcome {
    Hit,
    Miss,
    /// Formula-based operators bypass the artifact cache (WIDTIO's
    /// output is already small; GFUV's worlds are per-KB state).
    Bypass,
    /// The compile budget expired; the engine is a delayed base.
    Degraded,
}

impl CacheOutcome {
    fn tag(&self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Bypass => "bypass",
            CacheOutcome::Degraded => "degraded",
        }
    }
}

impl Server {
    /// A server with the given configuration and an empty registry.
    /// Any configured `data_dir` is ignored — use [`Server::open`] for
    /// persistence (this constructor stays infallible for callers that
    /// never persist, which is every pre-existing test and transport).
    pub fn new(mut config: ServerConfig) -> Self {
        config.data_dir = None;
        Self::build(config, None, None)
    }

    /// A server with the given configuration, recovered from its
    /// `data_dir` if one is configured: the artifact snapshot pre-warms
    /// the cache, then the write-ahead log replays in commit order, so
    /// every surviving KB answers exactly as it did before the restart
    /// — and model-based revises replay as cache hits, not recompiles.
    ///
    /// Errors only on real I/O failure (unreadable/uncreatable data
    /// directory). Corrupt log tails and snapshots are tolerated by
    /// construction: the log truncates at the first bad record, a bad
    /// snapshot is ignored.
    pub fn open(config: ServerConfig) -> io::Result<Self> {
        let Some(dir) = config.data_dir.clone() else {
            return Ok(Self::build(config, None, None));
        };
        let boot = Instant::now();
        let recovered = Wal::open(&dir, config.wal_sync, config.snapshot_every)?;
        let last_record = recovered.last_record;
        let server = Self::build(config, Some(recovered.wal), last_record);
        let mut report = RecoveryReport {
            truncated_bytes: recovered.truncated_bytes,
            snapshot_artifacts: recovered.snapshot.len() as u64,
            ..RecoveryReport::default()
        };
        {
            let _span = obs::span_with("wal.replay", &[("records", recovered.ops.len() as u64)]);
            server.inner.replaying.store(true, Ordering::SeqCst);
            {
                let mut cache = server.inner.cache.lock().expect("cache poisoned");
                for (key, artifact) in recovered.snapshot {
                    cache.insert(key, artifact);
                }
                // Pre-warming is not demand traffic: boot must not
                // skew the hit/miss counters clients reason about.
                cache.hits = 0;
                cache.misses = 0;
                cache.evictions = 0;
            }
            for op in &recovered.ops {
                match server.replay_op(op) {
                    Ok(()) => report.replayed += 1,
                    Err(message) => {
                        report.replay_errors += 1;
                        obs::warn("wal", None, || {
                            format!("revkb-server: wal replay skipped a record: {message}")
                        });
                    }
                }
            }
            server.inner.replaying.store(false, Ordering::SeqCst);
        }
        report.boot_micros = u64::try_from(boot.elapsed().as_micros()).unwrap_or(u64::MAX);
        metrics::WAL_REPLAYED.add(report.replayed);
        metrics::WAL_REPLAY_ERRORS.add(report.replay_errors);
        metrics::WAL_TRUNCATED_BYTES.add(report.truncated_bytes);
        *server.inner.recovery.lock().expect("recovery poisoned") = Some(report);
        Ok(server)
    }

    fn build(config: ServerConfig, wal: Option<Wal>, last_record: Option<(u32, u32)>) -> Self {
        let cache = ArtifactCache::new(config.cache_capacity);
        // A replica resumes from whatever its own log already holds:
        // the log is byte-for-byte a prefix of the primary's, so the
        // local length *is* the resume offset.
        let repl = config.replica_of.clone().map(|primary| {
            let offset = wal.as_ref().map_or(LOG_MAGIC.len() as u64, |wal| wal.bytes);
            Mutex::new(ReplState::new(primary, offset, last_record))
        });
        let server = Self {
            inner: Arc::new(Inner {
                gate: ExecGate::new(config.threads.max(1)),
                config,
                registry: Mutex::new(HashMap::new()),
                cache: Mutex::new(cache),
                counters: ServerCounters::default(),
                in_flight: AtomicUsize::new(0),
                shutdown: AtomicBool::new(false),
                seq: AtomicU64::new(0),
                slow_log: Mutex::new(VecDeque::new()),
                active: Mutex::new(HashMap::new()),
                started: Instant::now(),
                wal: wal.map(Mutex::new),
                replaying: AtomicBool::new(false),
                recovery: Mutex::new(None),
                repl,
                repl_streams: AtomicU64::new(0),
                repl_streams_total: AtomicU64::new(0),
                repl_shipped_bytes: AtomicU64::new(0),
                repl_handshakes: AtomicU64::new(0),
                repl_refusals: AtomicU64::new(0),
                sampler: Mutex::new(None),
                connections: AtomicU64::new(0),
            }),
        };
        server.start_sampler();
        server
    }

    /// Spawn the background time-series sampler. The source closure
    /// holds only a `Weak` on the server state (a strong reference
    /// would keep `Inner` alive forever) and returns `None` — stopping
    /// the thread — once the server is dropped or shutting down.
    fn start_sampler(&self) {
        let weak = Arc::downgrade(&self.inner);
        let mut ticks = 0u64;
        let sampler = obs::Sampler::start(
            obs::sample_interval(),
            obs::DEFAULT_SERIES_CAPACITY,
            move || {
                let inner = weak.upgrade()?;
                if inner.shutdown.load(Ordering::SeqCst) {
                    return None;
                }
                ticks += 1;
                // Piggyback the incremental Chrome-trace flush on the
                // sampling cadence: under REVKB_TRACE=chrome the trace
                // file is rewritten every few ticks (non-destructive
                // snapshot, full rewrite), so a SIGKILL'd server still
                // leaves a usable trace prefix. The clean-exit drain
                // in the binary supersedes the last flush.
                if ticks.is_multiple_of(CHROME_FLUSH_TICKS) && obs::mode() == obs::TraceMode::Chrome
                {
                    let snap = obs::snapshot();
                    if !snap.is_empty() {
                        let _ = obs::write_chrome_trace(&obs::trace_file_path(), &snap);
                    }
                }
                Some(sample_observations(&inner))
            },
        );
        *self.inner.sampler.lock().expect("sampler poisoned") = Some(sampler);
    }

    /// Re-apply one logged operation through the same request path the
    /// data plane uses ([`Server::process_request`] in replay mode) —
    /// so replay enforces exactly the engine rules the original commit
    /// did, while skipping the gating (admission, deadlines, replica
    /// read-only) those operations already passed once.
    fn replay_op(&self, op: &WalOp) -> Result<(), String> {
        let (kb, cmd) = match op {
            WalOp::Load { kb, t } => (
                kb,
                Command::Load {
                    kb: kb.clone(),
                    t: t.clone(),
                },
            ),
            WalOp::Revise { kb, op, p, backend } => {
                let op_name = OpName::from_tag(op).ok_or_else(|| format!("unknown op {op:?}"))?;
                let be = Backend::from_tag(backend)
                    .ok_or_else(|| format!("unknown backend {backend:?}"))?;
                (
                    kb,
                    Command::Revise {
                        kb: kb.clone(),
                        op: op_name,
                        p: p.clone(),
                        backend: be,
                    },
                )
            }
            WalOp::Drop { kb } => (kb, Command::Drop { kb: kb.clone() }),
        };
        let request = Request {
            id: None,
            deadline_ms: None,
            version: None,
            trace: None,
            cmd,
        };
        let tag = request.cmd.tag();
        match self
            .process_request(&request, Instant::now(), 0, obs::new_trace_id(), true)
            .result
        {
            Ok(_) => Ok(()),
            Err((code, m)) => Err(format!("{tag} {kb:?}: {code}: {m}")),
        }
    }

    /// Log one committed mutation. Called with the relevant KB or
    /// registry lock held, so log order matches apply order; no-op
    /// without a data directory and during boot replay. An append
    /// failure is counted and reported on stderr but does not fail the
    /// request — the operation already succeeded in memory, and
    /// refusing to answer would not make the disk healthier.
    fn wal_append(&self, op: WalOp, trace: u64) {
        let Some(wal) = &self.inner.wal else {
            return;
        };
        if self.inner.replaying.load(Ordering::SeqCst) {
            return;
        }
        let start = Instant::now();
        let mut wal = wal.lock().expect("wal poisoned");
        // The record lands at the current end of the log; stamping the
        // span with that offset (and the trace id) makes a primary's
        // append joinable with the replica's replay of the same record.
        let _span = obs::span_with(
            "wal.append",
            &[("wal_offset", wal.bytes), (obs::TRACE_ATTR, trace)],
        );
        let fsyncs_before = wal.fsyncs;
        match wal.append(&op) {
            Ok(bytes) => {
                metrics::WAL_APPENDS.inc();
                metrics::WAL_APPEND_BYTES.add(bytes);
                metrics::WAL_FSYNCS.add(wal.fsyncs - fsyncs_before);
                metrics::WAL_APPEND_MICROS
                    .record(u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX));
            }
            Err(e) => {
                wal.append_errors += 1;
                metrics::WAL_APPEND_ERRORS.inc();
                obs::error("wal", Some(trace), || {
                    format!("revkb-server: wal append failed: {e}")
                });
                return;
            }
        }
        if wal.snapshot_due() {
            let _span = obs::span("wal.snapshot");
            let cache = self.inner.cache.lock().expect("cache poisoned");
            match wal.write_snapshot(cache.entries()) {
                Ok(()) => metrics::WAL_SNAPSHOTS.inc(),
                Err(e) => obs::error("wal", Some(trace), || {
                    format!("revkb-server: wal snapshot failed: {e}")
                }),
            }
        }
    }

    /// Has a `shutdown` command been accepted?
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Ask every serving and replication loop to drain, exactly as an
    /// accepted `shutdown` command would. Embedders (and the binary,
    /// after a stdio session hits EOF) use this to stop the
    /// replication thread without a wire round trip.
    pub fn begin_shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
    }

    /// Process one request line. `None` means the line was blank
    /// (keep-alive noise); otherwise exactly one response line (no
    /// trailing newline) is returned, whatever happened.
    pub fn handle_line(&self, line: &str) -> Option<String> {
        let line = line.trim();
        if line.is_empty() {
            return None;
        }
        let started = Instant::now();
        match parse_request(line) {
            Ok(request) => Some(self.execute_from(&request, started).render()),
            Err(e) => Some(self.reject_line(&e, started, None)),
        }
    }

    /// The transport-agnostic service entry point: run one parsed
    /// request through the full pipeline — version check, control
    /// plane, gating, admission, deadline-bounded execution — and
    /// return the response envelope. Every transport (stdio, blocking
    /// TCP, the event loop, the HTTP gateway) and the replay paths
    /// funnel through the same machinery this calls.
    pub fn execute(&self, request: &Request) -> Response {
        self.execute_from(request, Instant::now())
    }

    /// [`Server::execute`] with an explicit arrival instant, so
    /// transports that buffered the request charge queueing time
    /// against the deadline too.
    fn execute_from(&self, request: &Request, started: Instant) -> Response {
        let req = self.next_req();
        let trace = request.trace.unwrap_or_else(obs::new_trace_id);
        let response = {
            let _span = obs::span_with("server.request", &[("req", req), (obs::TRACE_ATTR, trace)]);
            self.process_request(request, started, req, trace, false)
        };
        self.note_request(request.cmd.tag(), req, trace, started);
        response
    }

    /// Answer an unparseable line. Shares the accounting path with
    /// real requests (a `req` id, the error counter, latency and
    /// slow-log bookkeeping under `bad_request`). `trace` is the
    /// transport-supplied trace id, when one survived the parse
    /// failure (e.g. a valid `traceparent` header on a bad body); a
    /// trace salvaged from the body itself wins over it, matching the
    /// body-beats-header precedence of well-formed requests.
    pub(crate) fn reject_line(
        &self,
        err: &RequestError,
        started: Instant,
        trace: Option<u64>,
    ) -> String {
        let req = self.next_req();
        let trace = err.trace.or(trace).unwrap_or_else(obs::new_trace_id);
        let response = {
            let _span = obs::span_with("server.request", &[("req", req), (obs::TRACE_ATTR, trace)]);
            self.inner.counters.error();
            bad_request_response(err, req, trace)
        };
        self.note_request("bad_request", req, trace, started);
        response
    }

    /// Claim the next monotonic request id (first request is 1).
    pub(crate) fn next_req(&self) -> u64 {
        self.inner.seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Post-response accounting: the per-kind latency histogram and,
    /// past the slow threshold, the `slow_log` ring buffer. Harvests
    /// (and resets) the thread-local phase timings, so it must run on
    /// the thread that executed the request.
    pub(crate) fn note_request(&self, kind: &'static str, req: u64, trace: u64, started: Instant) {
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let phases = PHASES.with(std::cell::Cell::take);
        self.inner.counters.request(kind, micros);
        let cap = self.inner.config.slow_log_cap;
        if cap > 0 && micros >= self.inner.config.slow_ms.saturating_mul(1000) {
            let mut log = self.inner.slow_log.lock().expect("slow log poisoned");
            while log.len() >= cap {
                log.pop_front();
            }
            log.push_back(SlowEntry {
                req,
                cmd: kind,
                micros,
                trace,
                queue_micros: phases.queue_micros,
                compile_micros: phases.compile_micros,
            });
        }
    }

    /// The request pipeline behind [`Server::execute`]. In `replay`
    /// mode (boot replay, replica apply) the gating stages are skipped
    /// — the operation already passed them when it first committed —
    /// and no counters move.
    fn process_request(
        &self,
        request: &Request,
        started: Instant,
        req: u64,
        trace: u64,
        replay: bool,
    ) -> Response {
        if let Some(response) = self.version_rejection(request, req, trace, replay) {
            return response;
        }
        if replay {
            let result = self.dispatch(&request.cmd, req, trace);
            // Replay never reaches note_request; drop any phase
            // timings so they cannot bleed into the next request
            // accounted on this thread.
            let _ = PHASES.with(std::cell::Cell::take);
            return match result {
                Ok(result) => Response::ok(request.id.clone(), req, trace, result),
                Err((code, message)) => {
                    Response::err(request.id.clone(), req, trace, code, message)
                }
            };
        }
        // Control-plane commands bypass admission: they must answer
        // even (especially) when the server is saturated.
        if let Some(response) = self.control_response(request, req, trace) {
            return response;
        }
        if let Some(response) = self.gate_rejection(request, req, trace) {
            return response;
        }
        if !self.try_admit() {
            return self.overloaded_response(request, req, trace);
        }
        self.run_admitted(request, started, req, trace)
    }

    /// Reject a request that pins a protocol version outside the
    /// supported range.
    fn version_rejection(
        &self,
        request: &Request,
        req: u64,
        trace: u64,
        replay: bool,
    ) -> Option<Response> {
        let v = request.version?;
        if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&v) {
            return None;
        }
        if !replay {
            self.inner.counters.error();
        }
        Some(Response::err(
            request.id.clone(),
            req,
            trace,
            codes::BAD_REQUEST,
            format!(
                "unsupported protocol version {v} \
                 (supported {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})"
            ),
        ))
    }

    /// Answer a control-plane command (`None` for data-plane
    /// commands). Control commands bypass admission and deadlines so
    /// they answer even when the server is saturated; the event loop
    /// additionally runs them on a dedicated worker so a slow `stats`
    /// never blocks readiness polling.
    pub(crate) fn control_response(
        &self,
        request: &Request,
        req: u64,
        trace: u64,
    ) -> Option<Response> {
        match request.cmd {
            Command::Ping => Some(Response::ok(
                request.id.clone(),
                req,
                trace,
                Json::obj([("pong", Json::Bool(true))]),
            )),
            Command::Hello => Some(Response::ok(
                request.id.clone(),
                req,
                trace,
                self.hello_json(),
            )),
            Command::Stats => Some(Response::ok(
                request.id.clone(),
                req,
                trace,
                self.stats_json(),
            )),
            Command::Shutdown => {
                self.inner.shutdown.store(true, Ordering::SeqCst);
                Some(Response::ok(
                    request.id.clone(),
                    req,
                    trace,
                    Json::obj([("shutting_down", Json::Bool(true))]),
                ))
            }
            Command::Replicate { .. } => {
                // The TCP loops intercept `replicate` before line
                // dispatch and switch the connection to a raw record
                // stream; reaching here means a transport that cannot
                // carry one (stdio, HTTP).
                self.inner.counters.error();
                Some(Response::err(
                    request.id.clone(),
                    req,
                    trace,
                    codes::UNSUPPORTED,
                    "replicate requires a dedicated TCP connection",
                ))
            }
            _ => None,
        }
    }

    /// The `hello` negotiation payload: who the server is and which
    /// protocol versions it accepts.
    fn hello_json(&self) -> Json {
        Json::obj([
            ("server", Json::str("revkb-server")),
            ("version", Json::str(env!("CARGO_PKG_VERSION"))),
            ("protocol", num(PROTOCOL_VERSION)),
            ("min_protocol", num(MIN_PROTOCOL_VERSION)),
            (
                "features",
                Json::Arr(
                    ["pipelining", "http", "wal", "replication"]
                        .iter()
                        .map(|f| Json::str(*f))
                        .collect(),
                ),
            ),
        ])
    }

    /// Reject a data-plane request the server's current state refuses
    /// to serve: shutting down, or a replica that is read-only or has
    /// diverged.
    fn gate_rejection(&self, request: &Request, req: u64, trace: u64) -> Option<Response> {
        if self.is_shutting_down() {
            self.inner.counters.error();
            return Some(Response::err(
                request.id.clone(),
                req,
                trace,
                codes::SHUTTING_DOWN,
                "server is shutting down",
            ));
        }
        // A replica serves reads only — and once its divergence
        // detector has fired, not even those: answers would come from
        // a history that is not the primary's.
        if let Some(repl) = &self.inner.repl {
            let diverged = repl.lock().expect("repl poisoned").diverged;
            if diverged {
                self.inner.counters.error();
                return Some(Response::err(
                    request.id.clone(),
                    req,
                    trace,
                    codes::DIVERGED,
                    "replica log diverged from its primary; refusing to serve",
                ));
            }
            if matches!(
                request.cmd,
                Command::Load { .. } | Command::Revise { .. } | Command::Drop { .. }
            ) {
                self.inner.counters.error();
                return Some(Response::err(
                    request.id.clone(),
                    req,
                    trace,
                    codes::READ_ONLY,
                    "this server is a read-only replica; send writes to the primary",
                ));
            }
        }
        None
    }

    /// Admission control: claim an in-flight slot if one is free. A
    /// `true` return must be paired with [`Server::run_admitted`],
    /// which releases the slot.
    fn try_admit(&self) -> bool {
        self.inner
            .in_flight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < self.inner.config.queue).then_some(n + 1)
            })
            .is_ok()
    }

    /// The `overloaded` rejection for a request [`Server::try_admit`]
    /// turned away.
    fn overloaded_response(&self, request: &Request, req: u64, trace: u64) -> Response {
        self.inner.counters.overloaded();
        Response::err(
            request.id.clone(),
            req,
            trace,
            codes::OVERLOADED,
            format!(
                "{} requests already in flight (bound {}); retry later",
                self.inner.in_flight.load(Ordering::Relaxed),
                self.inner.config.queue
            ),
        )
    }

    /// Execute an admitted request: wait (deadline-bounded) for an
    /// execution permit, dispatch, and discard answers that arrived
    /// too late. Releases the in-flight slot claimed by
    /// [`Server::try_admit`] on every path out.
    fn run_admitted(&self, request: &Request, started: Instant, req: u64, trace: u64) -> Response {
        let _in_flight = InFlightGuard(&self.inner.in_flight);
        metrics::IN_FLIGHT_PEAK.set_max(self.inner.in_flight.load(Ordering::Relaxed) as u64);
        let _active = ActiveGuard::register(
            &self.inner.active,
            req,
            ActiveRequest {
                cmd: request.cmd.tag(),
                trace,
                started,
            },
        );

        let deadline_ms = request
            .deadline_ms
            .unwrap_or(self.inner.config.default_deadline_ms);
        let deadline = started + Duration::from_millis(deadline_ms);
        let queue_start = Instant::now();
        if !self.inner.gate.acquire(deadline) {
            self.inner.counters.timeout();
            return Response::err(
                request.id.clone(),
                req,
                trace,
                codes::TIMEOUT,
                format!("deadline of {deadline_ms} ms expired before execution started"),
            );
        }
        note_queue_micros(u64::try_from(queue_start.elapsed().as_micros()).unwrap_or(u64::MAX));
        let _permit = PermitGuard(&self.inner.gate);
        let result = self.dispatch(&request.cmd, req, trace);
        if Instant::now() > deadline {
            // The answer arrived after the client's deadline: discard
            // it so a late answer cannot masquerade as a fast one.
            self.inner.counters.timeout();
            return Response::err(
                request.id.clone(),
                req,
                trace,
                codes::TIMEOUT,
                format!("deadline of {deadline_ms} ms expired during execution"),
            );
        }
        match result {
            Ok(result) => Response::ok(request.id.clone(), req, trace, result),
            Err((code, message)) => {
                self.inner.counters.error();
                Response::err(request.id.clone(), req, trace, code, message)
            }
        }
    }

    fn dispatch(&self, cmd: &Command, req: u64, trace: u64) -> Result<Json, ExecError> {
        let span_name = match cmd {
            Command::Load { .. } => "server.cmd.load",
            Command::Revise { .. } => "server.cmd.revise",
            Command::Query { .. } => "server.cmd.query",
            Command::QueryBatch { .. } => "server.cmd.query_batch",
            Command::List => "server.cmd.list",
            Command::Drop { .. } => "server.cmd.drop",
            Command::Ping
            | Command::Hello
            | Command::Stats
            | Command::Shutdown
            | Command::Replicate { .. } => "server.cmd.control",
        };
        let _span = obs::span_with(span_name, &[("req", req), (obs::TRACE_ATTR, trace)]);
        match cmd {
            Command::Load { kb, t } => self.cmd_load(kb, t, trace),
            Command::Revise { kb, op, p, backend } => {
                self.cmd_revise(kb, *op, p, *backend, req, trace)
            }
            Command::Query { kb, q } => self.cmd_query(kb, q),
            Command::QueryBatch { kb, qs } => self.cmd_query_batch(kb, qs),
            Command::List => self.cmd_list(),
            Command::Drop { kb } => self.cmd_drop(kb, trace),
            // Handled before admission.
            Command::Ping
            | Command::Hello
            | Command::Stats
            | Command::Shutdown
            | Command::Replicate { .. } => {
                unreachable!("exempt command")
            }
        }
    }

    /// Classify one request for the event loop: an immediate answer
    /// (version/gate rejections, overload), a control command for the
    /// control worker, an admitted data-plane command for the worker
    /// pool, or a `replicate` handoff (line transport only —
    /// `allow_replicate` is false for HTTP, which cannot carry a raw
    /// record stream).
    ///
    /// Runs on the loop thread, so admission happens at arrival order:
    /// a flood of connections sees `overloaded` exactly as the
    /// blocking front end would answer it.
    pub(crate) fn route_request(
        &self,
        request: &Request,
        req: u64,
        trace: u64,
        allow_replicate: bool,
    ) -> Routing {
        if let Some(response) = self.version_rejection(request, req, trace, false) {
            return Routing::Done(response);
        }
        if matches!(request.cmd, Command::Replicate { .. }) && allow_replicate {
            return Routing::Replicate;
        }
        if matches!(
            request.cmd,
            Command::Ping
                | Command::Hello
                | Command::Stats
                | Command::Shutdown
                | Command::Replicate { .. }
        ) {
            return Routing::Control;
        }
        if let Some(response) = self.gate_rejection(request, req, trace) {
            return Routing::Done(response);
        }
        if !self.try_admit() {
            return Routing::Done(self.overloaded_response(request, req, trace));
        }
        Routing::Admitted
    }

    /// Run a control command routed by [`Server::route_request`]
    /// (event-loop control worker).
    pub(crate) fn execute_control(
        &self,
        request: &Request,
        started: Instant,
        req: u64,
    ) -> Response {
        let trace = request.trace.unwrap_or_else(obs::new_trace_id);
        let response = {
            let _span = obs::span_with("server.request", &[("req", req), (obs::TRACE_ATTR, trace)]);
            self.control_response(request, req, trace)
                .expect("routed as control")
        };
        self.note_request(request.cmd.tag(), req, trace, started);
        response
    }

    /// Run an admitted data-plane command routed by
    /// [`Server::route_request`] (event-loop worker pool).
    pub(crate) fn execute_admitted(
        &self,
        request: &Request,
        started: Instant,
        req: u64,
    ) -> Response {
        let trace = request.trace.unwrap_or_else(obs::new_trace_id);
        let response = {
            let _span = obs::span_with("server.request", &[("req", req), (obs::TRACE_ATTR, trace)]);
            self.run_admitted(request, started, req, trace)
        };
        self.note_request(request.cmd.tag(), req, trace, started);
        response
    }

    fn kb_handle(&self, name: &str) -> Result<Arc<Mutex<KbState>>, ExecError> {
        self.inner
            .registry
            .lock()
            .expect("registry poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| {
                (
                    codes::UNKNOWN_KB,
                    format!("no knowledge base named {name:?}"),
                )
            })
    }

    fn cmd_load(&self, name: &str, t: &str, trace: u64) -> Result<Json, ExecError> {
        let mut sig = Signature::new();
        let mut theory = Vec::new();
        for segment in t.split(';') {
            let segment = segment.trim();
            if segment.is_empty() {
                continue;
            }
            let f = parse_formula(segment, &mut sig).map_err(|e| engine_err(e.into()))?;
            theory.push(f);
        }
        let formulas = theory.len();
        let letters = sig.len();
        let state = KbState::new(name.to_string(), sig, theory);
        let kbs = {
            let mut registry = self.inner.registry.lock().expect("registry poisoned");
            registry.insert(name.to_string(), Arc::new(Mutex::new(state)));
            // Logged under the registry lock so log order is apply order.
            self.wal_append(
                WalOp::Load {
                    kb: name.to_string(),
                    t: t.to_string(),
                },
                trace,
            );
            registry.len()
        };
        metrics::KBS.set(kbs as u64);
        Ok(Json::obj([
            ("kb", Json::str(name)),
            ("formulas", num(formulas as u64)),
            ("letters", num(letters as u64)),
        ]))
    }

    fn cmd_revise(
        &self,
        name: &str,
        op: OpName,
        p_text: &str,
        backend: Backend,
        req: u64,
        trace: u64,
    ) -> Result<Json, ExecError> {
        let handle = self.kb_handle(name)?;
        let mut kb = handle.lock().expect("kb poisoned");
        let p = parse_formula(p_text, &mut kb.sig).map_err(|e| engine_err(e.into()))?;
        let p_nodes = formula_size(&p);
        #[allow(clippy::type_complexity)]
        let (engine, kind, outcome, compile_micros): (
            Box<dyn Engine + Send>,
            KbKind,
            CacheOutcome,
            Option<u64>,
        ) = match (kb.kind, op) {
            (KbKind::Gfuv, _) => {
                return Err((
                    codes::UNSUPPORTED,
                    "a GFUV base cannot be revised again: the possible-worlds \
                         form has no iterated construction"
                        .to_string(),
                ));
            }
            (KbKind::Unrevised | KbKind::ModelBased(_), OpName::Model(m)) => {
                if let KbKind::ModelBased(prev) = kb.kind {
                    if prev != m {
                        return Err(operator_mismatch(prev, op));
                    }
                }
                let mut ps = kb.revisions.clone();
                ps.push(p.clone());
                let (engine, outcome, micros) =
                    self.model_based_engine(&kb, m, &ps, backend, req, trace)?;
                (engine, KbKind::ModelBased(m), outcome, micros)
            }
            (KbKind::Unrevised, OpName::Gfuv) => {
                let theory = Theory::new(kb.theory.iter().cloned());
                let compile_start = Instant::now();
                let engine =
                    GfuvEngine::compile(theory, p.clone(), self.inner.config.worlds_budget)
                        .map_err(|e| engine_err(e.into()))?;
                let micros = u64::try_from(compile_start.elapsed().as_micros()).unwrap_or(u64::MAX);
                (
                    Box::new(engine),
                    KbKind::Gfuv,
                    CacheOutcome::Bypass,
                    Some(micros),
                )
            }
            (KbKind::Unrevised | KbKind::Widtio, OpName::Widtio) => {
                // Iterated WIDTIO: the kept sub-theory of step i is
                // the theory revised at step i+1.
                let mut theory = Theory::new(kb.theory.iter().cloned());
                for prev in &kb.revisions {
                    theory = widtio(&theory, prev);
                }
                let compile_start = Instant::now();
                let engine = WidtioEngine::compile(&theory, &p);
                let micros = u64::try_from(compile_start.elapsed().as_micros()).unwrap_or(u64::MAX);
                (
                    Box::new(engine),
                    KbKind::Widtio,
                    CacheOutcome::Bypass,
                    Some(micros),
                )
            }
            (prev_kind, _) => {
                let prev = match prev_kind {
                    KbKind::ModelBased(prev) => prev,
                    _ => {
                        return Err((
                            codes::OPERATOR_MISMATCH,
                            format!(
                                "KB was revised with {:?} and cannot switch to {:?}",
                                kind_tag(prev_kind),
                                op.tag()
                            ),
                        ));
                    }
                };
                return Err(operator_mismatch(prev, op));
            }
        };
        kb.revisions.push(p);
        kb.kind = kind;
        kb.degraded = matches!(outcome, CacheOutcome::Degraded);
        kb.engine = engine;
        kb.profile.note_revise(op.tag(), p_nodes);
        match outcome {
            CacheOutcome::Hit => kb.profile.cache_hits += 1,
            CacheOutcome::Miss => kb.profile.cache_misses += 1,
            CacheOutcome::Bypass | CacheOutcome::Degraded => {}
        }
        if let Some(micros) = compile_micros {
            kb.profile.note_compile(op.tag(), micros);
            note_compile_micros(micros);
        }
        // Logged under the KB lock, after the revise took effect: a
        // record in the log is a revise the client was (about to be)
        // told succeeded, never a partially applied one.
        self.wal_append(
            WalOp::Revise {
                kb: name.to_string(),
                op: op.tag().to_string(),
                p: p_text.to_string(),
                backend: backend.tag().to_string(),
            },
            trace,
        );
        Ok(Json::obj([
            ("kb", Json::str(name)),
            ("op", Json::str(op.tag())),
            ("backend", Json::str(backend.tag())),
            ("cache", Json::str(outcome.tag())),
            ("degraded", Json::Bool(kb.degraded)),
            ("revisions", num(kb.revisions.len() as u64)),
            (
                "compiled_size",
                kb.engine
                    .compiled_size()
                    .map_or(Json::Null, |s| num(s as u64)),
            ),
            ("engine", Json::str(kb.engine.describe())),
        ]))
    }

    /// Compile (or fetch from cache) the engine for a model-based
    /// revision chain `T * P¹ * … * Pᵐ`. The third element is the
    /// compile latency in microseconds (`None` on a cache hit or a
    /// degraded fallback, where no compile finished).
    #[allow(clippy::type_complexity)]
    fn model_based_engine(
        &self,
        kb: &KbState,
        op: ModelBasedOp,
        ps: &[Formula],
        backend: Backend,
        req: u64,
        trace: u64,
    ) -> Result<(Box<dyn Engine + Send>, CacheOutcome, Option<u64>), ExecError> {
        let key = cache_key(OpName::Model(op), backend, &kb.theory, ps);
        {
            let mut cache = self.inner.cache.lock().expect("cache poisoned");
            if let Some(artifact) = cache.get(&key) {
                metrics::CACHE_HITS.inc();
                let rep = revkb_revision::CompactRep::new(
                    artifact.formula,
                    artifact.base,
                    artifact.logical,
                );
                return Ok((Box::new(rep), CacheOutcome::Hit, None));
            }
            metrics::CACHE_MISSES.inc();
        }
        let t = kb.t();
        let compile_start = Instant::now();
        let compiled = {
            let _span = obs::span_with("server.compile", &[("req", req), (obs::TRACE_ATTR, trace)]);
            self.compile_budgeted(op, &t, ps, backend)
        };
        match compiled {
            Some(Ok(revised)) => {
                let micros = u64::try_from(compile_start.elapsed().as_micros()).unwrap_or(u64::MAX);
                metrics::COMPILE_MICROS.record(micros);
                let rep = revised.representation();
                let artifact = Artifact {
                    formula: rep.formula.clone(),
                    base: rep.base.clone(),
                    logical: rep.logical,
                };
                let mut cache = self.inner.cache.lock().expect("cache poisoned");
                let evictions_before = cache.evictions;
                cache.insert(key, artifact);
                metrics::CACHE_EVICTIONS.add(cache.evictions - evictions_before);
                Ok((Box::new(revised), CacheOutcome::Miss, Some(micros)))
            }
            Some(Err(e)) => Err(engine_err(e)),
            None => {
                // Compile budget expired: degrade to delayed
                // incorporation — the revise itself is then O(1) and
                // the compilation cost moves to the first query.
                self.inner.counters.degraded();
                let mut delayed = DelayedKb::new(op, t);
                for p in ps {
                    delayed.revise(p.clone());
                }
                Ok((Box::new(delayed), CacheOutcome::Degraded, None))
            }
        }
    }

    /// Run the compile under the configured budget. `None` means the
    /// budget expired.
    fn compile_budgeted(
        &self,
        op: ModelBasedOp,
        t: &Formula,
        ps: &[Formula],
        backend: Backend,
    ) -> Option<Result<RevisedKb, Error>> {
        let compile = {
            let t = t.clone();
            let ps = ps.to_vec();
            move || -> Result<RevisedKb, Error> {
                match (ps.as_slice(), backend) {
                    ([p], Backend::Bdd) => Ok(RevisedKb::compile_via_bdd(op, &t, p)?),
                    // The BDD pipeline has no iterated form; longer
                    // chains always use the direct constructions.
                    (ps, _) => Ok(RevisedKb::compile_iterated(op, &t, ps)?),
                }
            }
        };
        match self.inner.config.compile_timeout_ms {
            None => Some(compile()),
            // A zero budget degrades unconditionally — and skips
            // spawning a compile thread that nobody would wait for.
            Some(0) => None,
            Some(ms) => {
                let (tx, rx) = std::sync::mpsc::channel();
                std::thread::spawn(move || {
                    // The receiver may be gone if the budget expired;
                    // the finished artifact is then simply dropped.
                    let _ = tx.send(compile());
                });
                rx.recv_timeout(Duration::from_millis(ms)).ok()
            }
        }
    }

    fn cmd_query(&self, name: &str, q_text: &str) -> Result<Json, ExecError> {
        let handle = self.kb_handle(name)?;
        let mut kb = handle.lock().expect("kb poisoned");
        let q = parse_formula(q_text, &mut kb.sig).map_err(|e| engine_err(e.into()))?;
        let answer = kb.engine.try_entails(&q).map_err(engine_err)?;
        kb.queries += 1;
        let nodes = formula_size(&q);
        kb.profile.note_queries(1, nodes, nodes);
        Ok(Json::obj([
            ("kb", Json::str(name)),
            ("entails", Json::Bool(answer)),
        ]))
    }

    fn cmd_query_batch(&self, name: &str, q_texts: &[String]) -> Result<Json, ExecError> {
        let handle = self.kb_handle(name)?;
        let mut kb = handle.lock().expect("kb poisoned");
        let mut queries = Vec::with_capacity(q_texts.len());
        for q_text in q_texts {
            queries.push(parse_formula(q_text, &mut kb.sig).map_err(|e| engine_err(e.into()))?);
        }
        let answers = kb.engine.par_entails_batch(&queries).map_err(engine_err)?;
        kb.queries += answers.len() as u64;
        let sizes = queries.iter().map(formula_size);
        kb.profile.note_queries(
            answers.len() as u64,
            sizes.clone().sum(),
            sizes.max().unwrap_or(0),
        );
        Ok(Json::obj([
            ("kb", Json::str(name)),
            (
                "answers",
                Json::Arr(answers.into_iter().map(Json::Bool).collect()),
            ),
        ]))
    }

    fn cmd_list(&self) -> Result<Json, ExecError> {
        let handles: Vec<(String, Arc<Mutex<KbState>>)> = {
            let registry = self.inner.registry.lock().expect("registry poisoned");
            let mut entries: Vec<_> = registry
                .iter()
                .map(|(name, handle)| (name.clone(), Arc::clone(handle)))
                .collect();
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            entries
        };
        let mut kbs = Vec::with_capacity(handles.len());
        for (name, handle) in handles {
            let kb = handle.lock().expect("kb poisoned");
            kbs.push(Json::obj([
                ("name", Json::str(&name)),
                ("kind", Json::str(kind_tag(kb.kind))),
                ("revisions", num(kb.revisions.len() as u64)),
                ("queries", num(kb.queries)),
                ("degraded", Json::Bool(kb.degraded)),
                (
                    "compiled_size",
                    kb.engine
                        .compiled_size()
                        .map_or(Json::Null, |s| num(s as u64)),
                ),
                ("engine", Json::str(kb.engine.describe())),
            ]));
        }
        Ok(Json::obj([("kbs", Json::Arr(kbs))]))
    }

    fn cmd_drop(&self, name: &str, trace: u64) -> Result<Json, ExecError> {
        let (removed, kbs) = {
            let mut registry = self.inner.registry.lock().expect("registry poisoned");
            let removed = registry.remove(name).is_some();
            if removed {
                self.wal_append(
                    WalOp::Drop {
                        kb: name.to_string(),
                    },
                    trace,
                );
            }
            (removed, registry.len())
        };
        if !removed {
            return Err((
                codes::UNKNOWN_KB,
                format!("no knowledge base named {name:?}"),
            ));
        }
        metrics::KBS.set(kbs as u64);
        Ok(Json::obj([
            ("kb", Json::str(name)),
            ("dropped", Json::Bool(true)),
        ]))
    }

    /// The full `stats` payload as a JSON object — the body of the
    /// wire `stats` response and of the HTTP `/stats.json` endpoint,
    /// byte-identical between the two so dashboards can use either.
    pub fn stats_json(&self) -> Json {
        let counters = &self.inner.counters;
        let cache_json = {
            let cache = self.inner.cache.lock().expect("cache poisoned");
            Json::obj([
                ("hits", num(cache.hits)),
                ("misses", num(cache.misses)),
                ("evictions", num(cache.evictions)),
                ("entries", num(cache.len() as u64)),
                ("capacity", num(cache.capacity() as u64)),
            ])
        };
        let kbs = self.inner.registry.lock().expect("registry poisoned").len();
        // Per-request-type latency from the always-on local histograms;
        // reading them is non-destructive, so repeated `stats` calls
        // (and any telemetry drain) see consistent numbers.
        let latency_json = Json::obj(
            counters
                .latencies()
                .map(|(kind, h)| {
                    (
                        kind,
                        Json::obj([
                            ("count", num(h.count())),
                            ("max", num(h.max())),
                            ("p50", num(h.percentile(0.50).unwrap_or(0))),
                            ("p95", num(h.percentile(0.95).unwrap_or(0))),
                            ("p99", num(h.percentile(0.99).unwrap_or(0))),
                        ]),
                    )
                })
                .collect::<Vec<_>>(),
        );
        let slow_json = self.slow_log_json();
        let wal_json = match &self.inner.wal {
            None => Json::obj([("enabled", Json::Bool(false))]),
            Some(wal) => {
                let recovery = self
                    .inner
                    .recovery
                    .lock()
                    .expect("recovery poisoned")
                    .unwrap_or_default();
                let wal = wal.lock().expect("wal poisoned");
                Json::obj([
                    ("enabled", Json::Bool(true)),
                    ("sync", Json::str(wal.sync_tag())),
                    ("records", num(wal.records)),
                    ("bytes", num(wal.bytes)),
                    ("appends", num(wal.appends)),
                    ("append_errors", num(wal.append_errors)),
                    ("fsyncs", num(wal.fsyncs)),
                    ("snapshots", num(wal.snapshots)),
                    (
                        "recovery",
                        Json::obj([
                            ("replayed", num(recovery.replayed)),
                            ("replay_errors", num(recovery.replay_errors)),
                            ("snapshot_artifacts", num(recovery.snapshot_artifacts)),
                            ("truncated_bytes", num(recovery.truncated_bytes)),
                            ("boot_micros", num(recovery.boot_micros)),
                        ]),
                    ),
                ])
            }
        };
        let repl_json = match &self.inner.repl {
            Some(repl) => {
                let s = repl.lock().expect("repl poisoned");
                metrics::REPL_LAG_BYTES.set(s.lag_bytes());
                let now = epoch_millis();
                if let Some(lag) = s.lag_millis(now) {
                    metrics::REPL_LAG_MILLIS.set(lag);
                }
                Json::obj([
                    ("role", Json::str("replica")),
                    ("primary", Json::str(&s.primary)),
                    ("connected", Json::Bool(s.connected)),
                    ("diverged", Json::Bool(s.diverged)),
                    ("offset", num(s.offset)),
                    ("target", num(s.target)),
                    ("lag_bytes", num(s.lag_bytes())),
                    ("lag_millis", s.lag_millis(now).map_or(Json::Null, num)),
                    (
                        "last_record_at_millis",
                        s.last_record_at_millis.map_or(Json::Null, num),
                    ),
                    ("stale_millis", s.stale_millis(now).map_or(Json::Null, num)),
                    ("records_applied", num(s.records_applied)),
                    ("apply_errors", num(s.apply_errors)),
                    ("sessions", num(s.sessions)),
                    ("snapshot_artifacts", num(s.snapshot_artifacts)),
                ])
            }
            None => Json::obj([
                ("role", Json::str("primary")),
                (
                    "streams",
                    num(self.inner.repl_streams.load(Ordering::Relaxed)),
                ),
                (
                    "streams_total",
                    num(self.inner.repl_streams_total.load(Ordering::Relaxed)),
                ),
                (
                    "shipped_bytes",
                    num(self.inner.repl_shipped_bytes.load(Ordering::Relaxed)),
                ),
                (
                    "handshakes",
                    num(self.inner.repl_handshakes.load(Ordering::Relaxed)),
                ),
                (
                    "refusals",
                    num(self.inner.repl_refusals.load(Ordering::Relaxed)),
                ),
            ]),
        };
        Json::obj([
            ("requests", num(counters.requests_total())),
            ("overloaded", num(counters.overloaded_total())),
            ("timeouts", num(counters.timeouts_total())),
            ("errors", num(counters.errors_total())),
            ("degraded", num(counters.degraded_total())),
            (
                "uptime_millis",
                num(u64::try_from(self.inner.started.elapsed().as_millis()).unwrap_or(u64::MAX)),
            ),
            (
                "in_flight",
                num(self.inner.in_flight.load(Ordering::Relaxed) as u64),
            ),
            (
                "connections",
                num(self.inner.connections.load(Ordering::Relaxed)),
            ),
            ("kbs", num(kbs as u64)),
            ("cache", cache_json),
            ("request_latency", latency_json),
            ("slow_ms", num(self.inner.config.slow_ms)),
            ("slow_log", slow_json),
            ("wal", wal_json),
            ("repl", repl_json),
            ("kb_profiles", self.kb_profiles_json()),
            ("series", self.series_json()),
        ])
    }

    /// The `slow_log` ring as a JSON array (shared by `stats` and
    /// `/debug/requests.json`). Each entry carries the request's trace
    /// id and a phase breakdown: queue wait, compile time, and the
    /// remaining solve/dispatch time.
    fn slow_log_json(&self) -> Json {
        let log = self.inner.slow_log.lock().expect("slow log poisoned");
        Json::Arr(
            log.iter()
                .map(|e| {
                    Json::obj([
                        ("req", num(e.req)),
                        ("cmd", Json::str(e.cmd)),
                        ("trace", Json::Str(obs::format_trace_id(e.trace))),
                        ("micros", num(e.micros)),
                        ("queue_micros", num(e.queue_micros)),
                        ("compile_micros", num(e.compile_micros)),
                        (
                            "solve_micros",
                            num(e
                                .micros
                                .saturating_sub(e.queue_micros)
                                .saturating_sub(e.compile_micros)),
                        ),
                    ])
                })
                .collect(),
        )
    }

    /// Per-KB workload profiles as a JSON array (sorted by KB name) —
    /// the `kb_profiles` section of `stats`. Rolling counts of the
    /// query/revise mix, formula sizes, per-operator compile
    /// latencies, and cache behaviour, per named KB.
    pub fn kb_profiles_json(&self) -> Json {
        let handles: Vec<(String, Arc<Mutex<KbState>>)> = {
            let registry = self.inner.registry.lock().expect("registry poisoned");
            let mut entries: Vec<_> = registry
                .iter()
                .map(|(name, handle)| (name.clone(), Arc::clone(handle)))
                .collect();
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            entries
        };
        let mut profiles = Vec::with_capacity(handles.len());
        for (name, handle) in handles {
            let kb = handle.lock().expect("kb poisoned");
            let ops = kb
                .profile
                .ops
                .iter()
                .map(|(tag, op)| {
                    Json::obj([
                        ("op", Json::str(*tag)),
                        ("revises", num(op.revises)),
                        ("input_nodes_total", num(op.input_nodes_total)),
                        ("input_nodes_max", num(op.input_nodes_max)),
                        ("compiles", num(op.compiles)),
                        ("compile_micros_total", num(op.compile_micros_total)),
                        ("compile_micros_max", num(op.compile_micros_max)),
                    ])
                })
                .collect();
            profiles.push(Json::obj([
                ("kb", Json::str(&name)),
                ("kind", Json::str(kind_tag(kb.kind))),
                ("letters", num(kb.sig.len() as u64)),
                ("revisions", num(kb.revisions.len() as u64)),
                ("query_commands", num(kb.profile.query_commands)),
                ("queries", num(kb.profile.queries)),
                ("query_nodes_total", num(kb.profile.query_nodes_total)),
                ("query_nodes_max", num(kb.profile.query_nodes_max)),
                ("cache_hits", num(kb.profile.cache_hits)),
                ("cache_misses", num(kb.profile.cache_misses)),
                (
                    "cache_hit_ratio",
                    kb.profile.hit_ratio().map_or(Json::Null, Json::Num),
                ),
                ("ops", Json::Arr(ops)),
                (
                    "compiled_size",
                    kb.engine
                        .compiled_size()
                        .map_or(Json::Null, |s| num(s as u64)),
                ),
            ]));
        }
        Json::Arr(profiles)
    }

    /// The sampler's ring buffers as a JSON object — the body of the
    /// HTTP `/series.json` endpoint and the `series` section of
    /// `stats`. Counter series hold per-tick deltas, gauge series raw
    /// values; timestamps are milliseconds since the sampler started.
    pub fn series_json(&self) -> Json {
        let sampler = self.inner.sampler.lock().expect("sampler poisoned");
        let (interval_ms, capacity, series) = match sampler.as_ref() {
            Some(s) => {
                let interval_ms = s.interval().as_millis() as u64;
                // One store lock at a time: a guard held across a
                // second `lock()` of the same mutex would self-deadlock.
                let capacity = {
                    let store = s.store();
                    let store = store.lock().expect("series store poisoned");
                    store.capacity()
                };
                (interval_ms, capacity, s.series())
            }
            None => (obs::sample_interval().as_millis() as u64, 0, Vec::new()),
        };
        let arr = series
            .into_iter()
            .map(|s| {
                let points = s
                    .points
                    .iter()
                    .map(|(at, v)| Json::Arr(vec![num(*at), num(*v)]))
                    .collect();
                Json::obj([
                    ("name", Json::str(&s.name)),
                    ("kind", Json::str(s.kind.tag())),
                    ("points", Json::Arr(points)),
                ])
            })
            .collect();
        Json::obj([
            ("interval_ms", num(interval_ms)),
            ("capacity", num(capacity as u64)),
            ("series", Json::Arr(arr)),
        ])
    }

    /// The boot recovery summary, when this server was opened from a
    /// data directory (also surfaced in the `stats` response).
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        *self.inner.recovery.lock().expect("recovery poisoned")
    }

    /// A snapshot of this replica's replication state (`None` on a
    /// primary). Benchmarks and tests poll it for catch-up:
    /// `lag_bytes == 0 && connected` means the replica has applied
    /// every record the primary had committed at the last poll.
    pub fn replication_status(&self) -> Option<ReplStatus> {
        self.inner
            .repl
            .as_ref()
            .map(|repl| ReplStatus::from(&*repl.lock().expect("repl poisoned")))
    }

    /// Committed log length in bytes (`None` without a data dir).
    /// Comparing a replica's `replication_status().offset` against
    /// the primary's committed bytes decides convergence.
    pub fn wal_committed_bytes(&self) -> Option<u64> {
        self.inner
            .wal
            .as_ref()
            .map(|wal| wal.lock().expect("wal poisoned").bytes)
    }

    // ------------------------------------------------ replication: primary

    /// Serve one `replicate` request: validate the resume position
    /// against this primary's log (the divergence check), answer the
    /// JSON handshake, then switch the connection to a raw stream of
    /// committed WAL records, tailing the log until the replica
    /// disconnects or the server shuts down.
    pub(crate) fn handle_replicate(&self, stream: &mut TcpStream, req: u64, request: &Request) {
        let id = &request.id;
        let Command::Replicate {
            offset,
            last_len,
            last_crc,
            snapshot: want_snapshot,
        } = request.cmd
        else {
            return;
        };
        let start = Instant::now();
        let trace = request.trace.unwrap_or_else(obs::new_trace_id);
        let _span = obs::span_with(
            "server.cmd.replicate",
            &[("req", req), (obs::TRACE_ATTR, trace)],
        );
        let magic_len = LOG_MAGIC.len() as u64;
        let handshake = self.replicate_handshake(offset, last_len, last_crc);
        let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.inner.counters.request("replicate", micros);
        let (resume, log_path) = match handshake {
            Ok(accepted) => accepted,
            Err((code, message)) => {
                self.inner.counters.error();
                let _ = write_framed(
                    stream,
                    Response::err(id.clone(), req, trace, code, message).render(),
                );
                return;
            }
        };
        let committed = self.wal_committed_bytes().unwrap_or(magic_len);
        let mut result = vec![("offset", num(resume)), ("log_bytes", num(committed))];
        let snapshot_hex = want_snapshot
            .then(|| {
                std::fs::read(log_path.with_file_name(SNAPSHOT_FILE))
                    .ok()
                    .map(|bytes| to_hex(&bytes))
            })
            .flatten();
        if let Some(hex) = &snapshot_hex {
            result.push(("snapshot_hex", Json::str(hex)));
        }
        if write_framed(
            stream,
            Response::ok(id.clone(), req, trace, Json::obj(result)).render(),
        )
        .is_err()
        {
            return;
        }
        self.inner.repl_handshakes.fetch_add(1, Ordering::Relaxed);
        metrics::REPL_HANDSHAKES.inc();
        self.inner
            .repl_streams_total
            .fetch_add(1, Ordering::Relaxed);
        metrics::REPL_STREAMS.inc();
        self.inner.repl_streams.fetch_add(1, Ordering::Relaxed);
        let _active = StreamGuard(&self.inner.repl_streams);
        // A stuck replica must not pin this thread past shutdown.
        let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
        let mut file = match File::open(&log_path) {
            Ok(file) => file,
            Err(_) => return,
        };
        if file.seek(SeekFrom::Start(resume)).is_err() {
            return;
        }
        // Heartbeats start only once the replica is caught up, so
        // the pending-record region of the stream stays byte-for-byte
        // identical to the log: replicas (and fault harnesses) see
        // record bytes at their exact log offsets.
        let mut last_beat: Option<Instant> = None;
        let mut pos = resume;
        let mut chunk = vec![0u8; 64 * 1024];
        while !self.is_shutting_down() {
            let committed = self.wal_committed_bytes().unwrap_or(pos);
            if pos >= committed {
                // Caught up: keep the replica's clock-lag estimate
                // fresh. Heartbeats are stream-only frames — never
                // appended to a log, never advancing the offset. The
                // first one goes out immediately on catch-up.
                if last_beat.is_none_or(|t| t.elapsed() >= Duration::from_millis(HEARTBEAT_MS)) {
                    if stream
                        .write_all(&encode_heartbeat(epoch_millis(), committed))
                        .is_err()
                    {
                        return;
                    }
                    last_beat = Some(Instant::now());
                }
                std::thread::sleep(TAIL_POLL);
                continue;
            }
            // Committed bytes are fully written before the counter
            // moves (both happen under the wal lock), so this read
            // can never see a torn record.
            let want = usize::try_from(committed - pos)
                .unwrap_or(usize::MAX)
                .min(chunk.len());
            if file.read_exact(&mut chunk[..want]).is_err() {
                return;
            }
            if stream.write_all(&chunk[..want]).is_err() {
                return;
            }
            pos += want as u64;
            self.inner
                .repl_shipped_bytes
                .fetch_add(want as u64, Ordering::Relaxed);
            metrics::REPL_SHIPPED_BYTES.add(want as u64);
        }
    }

    /// Validate a `replicate` handshake: the server must have a log,
    /// the offset must be within it, and — the divergence detector —
    /// when the replica resumes mid-log, the record *ending* at the
    /// resume offset must carry exactly the `(len, crc)` header the
    /// replica holds, proving its log is a byte-for-byte prefix.
    /// Returns the clamped resume offset and the log path.
    fn replicate_handshake(
        &self,
        offset: u64,
        last_len: u32,
        last_crc: u32,
    ) -> Result<(u64, PathBuf), (&'static str, String)> {
        let magic_len = LOG_MAGIC.len() as u64;
        let Some(wal) = &self.inner.wal else {
            return Err((
                codes::UNSUPPORTED,
                "replication needs a durable primary: run it with --data-dir".to_string(),
            ));
        };
        let (log_path, committed) = {
            let wal = wal.lock().expect("wal poisoned");
            (wal.log_path(), wal.bytes)
        };
        let resume = offset.max(magic_len);
        if resume > committed {
            self.refuse_handshake();
            return Err((
                codes::DIVERGED,
                format!(
                    "resume offset {resume} is past this primary's committed log \
                     ({committed} bytes): the replica followed a different history"
                ),
            ));
        }
        if resume > magic_len {
            if last_len == 0 {
                return Err((
                    codes::BAD_REQUEST,
                    "resuming past the log head needs the replica's last record \
                     (last_len / last_crc)"
                        .to_string(),
                ));
            }
            let header_pos = resume
                .checked_sub(8 + last_len as u64)
                .filter(|&p| p >= magic_len)
                .ok_or_else(|| {
                    self.refuse_handshake();
                    (
                        codes::DIVERGED,
                        format!(
                            "no record of payload length {last_len} can end at \
                             offset {resume}"
                        ),
                    )
                })?;
            let mut header = [0u8; 8];
            let matches = File::open(&log_path)
                .and_then(|mut file| {
                    file.seek(SeekFrom::Start(header_pos))?;
                    file.read_exact(&mut header)?;
                    Ok(())
                })
                .is_ok()
                && u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) == last_len
                && u32::from_le_bytes(header[4..].try_into().expect("4 bytes")) == last_crc;
            if !matches {
                self.refuse_handshake();
                return Err((
                    codes::DIVERGED,
                    format!(
                        "record checksums disagree at resume offset {resume}: the \
                         replica's log is not a prefix of this primary's"
                    ),
                ));
            }
        }
        Ok((resume, log_path))
    }

    fn refuse_handshake(&self) {
        self.inner.repl_refusals.fetch_add(1, Ordering::Relaxed);
        metrics::REPL_REFUSALS.inc();
    }

    // ------------------------------------------------ replication: replica

    /// Start the replication apply loop (replica mode only; `None` on
    /// a primary). The returned thread connects to the primary with
    /// exponential backoff, bootstraps or resumes from the durable
    /// offset, applies shipped records through the same handlers boot
    /// replay uses, and exits on `shutdown` or divergence.
    pub fn start_replication(&self) -> Option<std::thread::JoinHandle<()>> {
        self.inner.repl.as_ref()?;
        let server = self.clone();
        Some(
            std::thread::Builder::new()
                .name("revkb-replication".to_string())
                .spawn(move || server.replication_loop())
                .expect("spawn replication thread"),
        )
    }

    fn replication_loop(&self) {
        let repl = self.inner.repl.as_ref().expect("replica state");
        let mut backoff = Backoff::new();
        while !self.is_shutting_down() {
            if repl.lock().expect("repl poisoned").diverged {
                return;
            }
            let (primary, offset, last) = {
                let s = repl.lock().expect("repl poisoned");
                (s.primary.clone(), s.offset, s.last_record)
            };
            match self.replication_session(&primary, offset, last) {
                SessionEnd::Disconnected => {
                    let mut s = repl.lock().expect("repl poisoned");
                    s.connected = false;
                }
                SessionEnd::NeverConnected => {
                    self.backoff_sleep(&mut backoff);
                    continue;
                }
                SessionEnd::Fatal => return,
            }
            backoff.reset();
        }
    }

    /// Sleep one backoff step in shutdown-sized slices so a draining
    /// replica never waits out the full delay.
    fn backoff_sleep(&self, backoff: &mut Backoff) {
        let mut remaining = backoff.delay_ms();
        while remaining > 0 && !self.is_shutting_down() {
            let slice = remaining.min(50);
            std::thread::sleep(Duration::from_millis(slice));
            remaining -= slice;
        }
    }

    /// One connect → handshake → apply session against the primary.
    fn replication_session(
        &self,
        primary: &str,
        offset: u64,
        last: Option<(u32, u32)>,
    ) -> SessionEnd {
        let repl = self.inner.repl.as_ref().expect("replica state");
        let magic_len = LOG_MAGIC.len() as u64;
        let mut stream = match TcpStream::connect(primary) {
            Ok(stream) => stream,
            Err(_) => return SessionEnd::NeverConnected,
        };
        let _ = stream.set_nodelay(true);
        if stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .is_err()
        {
            return SessionEnd::NeverConnected;
        }
        // Bootstrap (nothing durable yet) also asks for the
        // primary's artifact snapshot to pre-warm the cache, so
        // replayed revises are hits, exactly like boot recovery.
        let fresh = offset <= magic_len;
        let (last_len, last_crc) = last.unwrap_or((0, 0));
        let handshake = format!(
            "{{\"cmd\":\"replicate\",\"offset\":{offset},\"last_len\":{last_len},\
             \"last_crc\":{last_crc},\"snapshot\":{fresh}}}\n"
        );
        if stream.write_all(handshake.as_bytes()).is_err() {
            return SessionEnd::NeverConnected;
        }
        let mut splitter = RecordSplitter::new();
        let response = match self.read_handshake_line(&mut stream, &mut splitter) {
            Some(line) => line,
            None => return SessionEnd::NeverConnected,
        };
        let Ok(response) = Json::parse(&response) else {
            return SessionEnd::NeverConnected;
        };
        if response.get("ok").and_then(Json::as_bool) != Some(true) {
            let code = response.get("code").and_then(Json::as_str).unwrap_or("?");
            if code == codes::DIVERGED {
                self.mark_diverged(&format!(
                    "primary {primary} refused the resume handshake: {}",
                    response
                        .get("error")
                        .and_then(Json::as_str)
                        .unwrap_or("checksum mismatch")
                ));
                return SessionEnd::Fatal;
            }
            // Anything else (primary without a log, mid-boot, …):
            // keep retrying with backoff.
            return SessionEnd::NeverConnected;
        }
        let result = response.get("result").cloned().unwrap_or(Json::Null);
        {
            let mut s = repl.lock().expect("repl poisoned");
            s.connected = true;
            s.sessions += 1;
            if let Some(target) = result.get("log_bytes").and_then(Json::as_u64) {
                s.target = s.target.max(target);
            }
            metrics::REPL_LAG_BYTES.set(s.lag_bytes());
        }
        metrics::REPL_SESSIONS.inc();
        if fresh {
            if let Some(hex) = result.get("snapshot_hex").and_then(Json::as_str) {
                self.prewarm_from_snapshot(hex);
            }
        }
        // The handshake may have read past the response line; those
        // bytes are already stream bytes and sit in the splitter.
        let mut chunk = [0u8; 16 * 1024];
        loop {
            loop {
                match splitter.next_record() {
                    Shipped::Record(frame) => {
                        if !self.apply_replicated(&frame) {
                            return SessionEnd::Fatal;
                        }
                    }
                    Shipped::Heartbeat {
                        epoch_millis: primary_millis,
                        committed,
                    } => {
                        let mut s = repl.lock().expect("repl poisoned");
                        s.observe_heartbeat(primary_millis, epoch_millis());
                        // The heartbeat carries the primary's committed
                        // log length, so the byte-lag target advances
                        // even while no records ship.
                        s.target = s.target.max(committed);
                        metrics::REPL_HEARTBEATS.inc();
                        metrics::REPL_LAG_BYTES.set(s.lag_bytes());
                        if let Some(lag) = s.lag_millis(epoch_millis()) {
                            metrics::REPL_LAG_MILLIS.set(lag);
                        }
                    }
                    Shipped::NeedMore => break,
                    Shipped::Corrupt(message) => {
                        self.mark_diverged(&format!("corrupt shipped record: {message}"));
                        return SessionEnd::Fatal;
                    }
                }
            }
            if self.is_shutting_down() {
                return SessionEnd::Fatal;
            }
            match stream.read(&mut chunk) {
                Ok(0) => return SessionEnd::Disconnected,
                Ok(n) => splitter.extend(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(_) => return SessionEnd::Disconnected,
            }
        }
    }

    /// Read the newline-terminated handshake response; any bytes past
    /// the newline are the start of the record stream and go into
    /// `splitter`.
    fn read_handshake_line(
        &self,
        stream: &mut TcpStream,
        splitter: &mut RecordSplitter,
    ) -> Option<String> {
        let mut buffer: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 4096];
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if self.is_shutting_down() || Instant::now() > deadline {
                return None;
            }
            match stream.read(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => {
                    buffer.extend_from_slice(&chunk[..n]);
                    if let Some(pos) = buffer.iter().position(|&b| b == b'\n') {
                        let line = String::from_utf8_lossy(&buffer[..pos]).into_owned();
                        splitter.extend(&buffer[pos + 1..]);
                        return Some(line);
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(_) => return None,
            }
        }
    }

    /// Pre-warm the artifact cache from the primary's hex-shipped
    /// snapshot (bootstrap only). Mirrors boot recovery: pre-warming
    /// is not demand traffic, so the hit/miss counters reset.
    fn prewarm_from_snapshot(&self, hex: &str) {
        let Some(bytes) = from_hex(hex) else {
            return;
        };
        let entries = crate::wal::decode_snapshot(&bytes);
        let count = entries.len() as u64;
        {
            let mut cache = self.inner.cache.lock().expect("cache poisoned");
            for (key, artifact) in entries {
                cache.insert(key, artifact);
            }
            cache.hits = 0;
            cache.misses = 0;
            cache.evictions = 0;
        }
        if let Some(repl) = &self.inner.repl {
            repl.lock().expect("repl poisoned").snapshot_artifacts = count;
        }
    }

    /// Apply one checksum-verified shipped frame: decode it as a v1
    /// record, replay it through the normal handlers (the `replaying`
    /// flag suppresses re-logging), append the raw bytes to the
    /// replica's own log, and advance the durable offset. Returns
    /// `false` on divergence (an undecodable payload behind a valid
    /// checksum can only mean the stream is not this log's history).
    fn apply_replicated(&self, frame: &[u8]) -> bool {
        let (ops, good) = decode_records(frame);
        if ops.len() != 1 || good != frame.len() {
            self.mark_diverged("shipped record does not decode as a v1 operation");
            return false;
        }
        // The record being applied starts at the replica's current
        // durable offset — and the replica's log is a byte-for-byte
        // prefix of the primary's, so this is exactly the offset the
        // primary's `wal.append` span recorded for the same record.
        // Stamping the replay span with it makes the two joinable.
        let origin_offset = self
            .inner
            .repl
            .as_ref()
            .map_or(0, |r| r.lock().expect("repl poisoned").offset);
        self.inner.replaying.store(true, Ordering::SeqCst);
        let applied = {
            let _span = obs::span_with("repl.replay", &[("wal_offset", origin_offset)]);
            self.replay_op(&ops[0])
        };
        self.inner.replaying.store(false, Ordering::SeqCst);
        match applied {
            Ok(()) => metrics::REPL_APPLIED.inc(),
            Err(ref message) => {
                metrics::REPL_APPLY_ERRORS.inc();
                obs::warn("repl", None, || {
                    format!("revkb-server: replication skipped a record: {message}")
                });
            }
        }
        if let Some(wal) = &self.inner.wal {
            let mut wal = wal.lock().expect("wal poisoned");
            match wal.append_raw(frame) {
                Ok(()) => {
                    metrics::WAL_APPENDS.inc();
                    metrics::WAL_APPEND_BYTES.add(frame.len() as u64);
                }
                Err(e) => {
                    wal.append_errors += 1;
                    metrics::WAL_APPEND_ERRORS.inc();
                    obs::error("wal", None, || {
                        format!("revkb-server: replica wal append failed: {e}")
                    });
                }
            }
        }
        if let Some(repl) = &self.inner.repl {
            let mut s = repl.lock().expect("repl poisoned");
            s.offset += frame.len() as u64;
            s.target = s.target.max(s.offset);
            s.last_record = Some((
                u32::from_le_bytes(frame[..4].try_into().expect("4 bytes")),
                u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes")),
            ));
            s.last_record_at_millis = Some(epoch_millis());
            match applied {
                Ok(()) => s.records_applied += 1,
                Err(_) => s.apply_errors += 1,
            }
            metrics::REPL_LAG_BYTES.set(s.lag_bytes());
        }
        true
    }

    /// The divergence detector fired: remember why, stop replicating,
    /// and make the data plane refuse to serve. Public so fault
    /// harnesses can force the diverged state an operator would see.
    pub fn mark_diverged(&self, why: &str) {
        if let Some(repl) = &self.inner.repl {
            let mut s = repl.lock().expect("repl poisoned");
            s.diverged = true;
            s.connected = false;
        }
        metrics::REPL_DIVERGENCE.inc();
        obs::error("repl", None, || {
            format!("revkb-server: replication diverged: {why}")
        });
    }

    /// Serve line-delimited requests from `reader`, writing one
    /// response line each to `writer`, until EOF or a `shutdown`
    /// command.
    pub fn serve_stdio<R: BufRead, W: Write>(&self, reader: R, mut writer: W) -> io::Result<()> {
        for line in reader.lines() {
            let line = line?;
            if let Some(response) = self.handle_line(&line) {
                write_framed(&mut writer, response)?;
                writer.flush()?;
            }
            if self.is_shutting_down() {
                break;
            }
        }
        Ok(())
    }

    /// Accept TCP connections until a `shutdown` command arrives (from
    /// any connection), then join every connection thread so no
    /// response is lost.
    pub fn serve_tcp(&self, listener: TcpListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        let mut handles = Vec::new();
        while !self.is_shutting_down() {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    let server = self.clone();
                    handles.push(std::thread::spawn(move || server.serve_conn(stream)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
        for handle in handles {
            let _ = handle.join();
        }
        Ok(())
    }

    /// The configuration this server was built with.
    pub(crate) fn config(&self) -> &ServerConfig {
        &self.inner.config
    }

    /// Record a data-plane connection opening; pair with
    /// [`Server::connection_closed`].
    pub(crate) fn connection_opened(&self) {
        self.inner.connections.fetch_add(1, Ordering::Relaxed);
        metrics::CONNECTIONS.inc();
    }

    /// Record a data-plane connection closing.
    pub(crate) fn connection_closed(&self) {
        self.inner.connections.fetch_sub(1, Ordering::Relaxed);
        metrics::CONNECTIONS.dec();
    }

    /// One connection: manual line buffering on top of short read
    /// timeouts, so the thread notices a shutdown initiated elsewhere
    /// instead of blocking in `read` forever. (A `BufReader::read_line`
    /// would lose buffered partial lines on every timeout.)
    fn serve_conn(&self, mut stream: TcpStream) {
        if stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .is_err()
        {
            return;
        }
        self.connection_opened();
        let _conn = ConnGuard(self);
        // Each response is a single small segment; without TCP_NODELAY,
        // Nagle's algorithm holds it back waiting for the peer's delayed
        // ACK, adding tens of milliseconds to every round trip.
        let _ = stream.set_nodelay(true);
        let mut buffer: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => {
                    buffer.extend_from_slice(&chunk[..n]);
                    while let Some(pos) = buffer.iter().position(|&b| b == b'\n') {
                        let line_bytes: Vec<u8> = buffer.drain(..=pos).collect();
                        let line = String::from_utf8_lossy(&line_bytes[..pos]);
                        // `replicate` consumes the whole connection:
                        // after the handshake response, the socket
                        // carries a raw record stream, not lines.
                        if line.contains("\"replicate\"") {
                            if let Ok(request) = parse_request(&line) {
                                if matches!(request.cmd, Command::Replicate { .. }) {
                                    let req = self.inner.seq.fetch_add(1, Ordering::Relaxed) + 1;
                                    self.handle_replicate(&mut stream, req, &request);
                                    return;
                                }
                            }
                        }
                        if let Some(response) = self.handle_line(&line) {
                            if write_framed(&mut stream, response).is_err() {
                                return;
                            }
                        }
                        if self.is_shutting_down() {
                            let _ = stream.flush();
                            return;
                        }
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if self.is_shutting_down() {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
    }

    // ------------------------------------------------ metrics plane

    /// Render the Prometheus text-exposition page behind `/metrics`.
    ///
    /// Always-on server state first — requests, latency histograms,
    /// cache, WAL, replication, per-KB workload profiles — then, when
    /// `REVKB_TRACE` enables the workspace registry, every `obs`
    /// instrument under a distinct `revkb_obs_` prefix so the two
    /// layers never collide on a family name.
    pub fn metrics_text(&self) -> String {
        let mut page = http::PromText::new();
        let counters = &self.inner.counters;
        page.header(
            "server.requests.total",
            "counter",
            "Requests fully processed (any outcome).",
        );
        page.sample("server.requests.total", &[], counters.requests_total());
        page.header(
            "server.overloaded.total",
            "counter",
            "Requests rejected by admission control.",
        );
        page.sample("server.overloaded.total", &[], counters.overloaded_total());
        page.header(
            "server.timeouts.total",
            "counter",
            "Requests that exceeded their deadline.",
        );
        page.sample("server.timeouts.total", &[], counters.timeouts_total());
        page.header(
            "server.errors.total",
            "counter",
            "Requests answered with a protocol-level error.",
        );
        page.sample("server.errors.total", &[], counters.errors_total());
        page.header(
            "server.degraded.total",
            "counter",
            "Compilations that fell back to the degraded profile.",
        );
        page.sample("server.degraded.total", &[], counters.degraded_total());
        page.header(
            "server.in_flight",
            "gauge",
            "Requests currently admitted and unfinished.",
        );
        page.sample(
            "server.in_flight",
            &[],
            self.inner.in_flight.load(Ordering::Relaxed) as u64,
        );
        page.header(
            "server.connections",
            "gauge",
            "Data-plane connections currently open.",
        );
        page.sample(
            "server.connections",
            &[],
            self.inner.connections.load(Ordering::Relaxed),
        );
        page.header(
            "server.request.micros",
            "histogram",
            "End-to-end request latency in microseconds, per command.",
        );
        for (kind, h) in counters.latencies() {
            let buckets: Vec<(usize, u64)> = (0..obs::HIST_BUCKETS)
                .filter_map(|b| {
                    let c = h.bucket(b);
                    (c > 0).then_some((b, c))
                })
                .collect();
            page.histogram(
                "server.request.micros",
                &[("cmd", kind)],
                h.count(),
                h.sum(),
                &buckets,
            );
        }
        {
            let cache = self.inner.cache.lock().expect("cache poisoned");
            page.header("server.cache.hits.total", "counter", "Artifact-cache hits.");
            page.sample("server.cache.hits.total", &[], cache.hits);
            page.header(
                "server.cache.misses.total",
                "counter",
                "Artifact-cache misses.",
            );
            page.sample("server.cache.misses.total", &[], cache.misses);
            page.header(
                "server.cache.evictions.total",
                "counter",
                "Artifact-cache evictions.",
            );
            page.sample("server.cache.evictions.total", &[], cache.evictions);
            page.header(
                "server.cache.entries",
                "gauge",
                "Artifacts currently cached.",
            );
            page.sample("server.cache.entries", &[], cache.len() as u64);
        }
        if let Some(wal) = &self.inner.wal {
            let wal = wal.lock().expect("wal poisoned");
            page.header("wal.records.total", "counter", "WAL records appended.");
            page.sample("wal.records.total", &[], wal.records);
            page.header(
                "wal.bytes.total",
                "counter",
                "Committed log length in bytes.",
            );
            page.sample("wal.bytes.total", &[], wal.bytes);
            page.header("wal.appends.total", "counter", "WAL append calls.");
            page.sample("wal.appends.total", &[], wal.appends);
            page.header(
                "wal.append.errors.total",
                "counter",
                "WAL appends that failed with an I/O error.",
            );
            page.sample("wal.append.errors.total", &[], wal.append_errors);
            page.header(
                "wal.fsyncs.total",
                "counter",
                "sync_all calls issued on the WAL.",
            );
            page.sample("wal.fsyncs.total", &[], wal.fsyncs);
            page.header(
                "wal.snapshots.total",
                "counter",
                "Artifact snapshots written.",
            );
            page.sample("wal.snapshots.total", &[], wal.snapshots);
        }
        match &self.inner.repl {
            Some(repl) => {
                let s = repl.lock().expect("repl poisoned");
                let now = epoch_millis();
                page.header(
                    "repl.connected",
                    "gauge",
                    "1 while the replication stream is up.",
                );
                page.sample("repl.connected", &[], u64::from(s.connected));
                page.header(
                    "repl.diverged",
                    "gauge",
                    "1 once the divergence detector has fired.",
                );
                page.sample("repl.diverged", &[], u64::from(s.diverged));
                page.header(
                    "repl.offset",
                    "gauge",
                    "Durable replication offset in bytes.",
                );
                page.sample("repl.offset", &[], s.offset);
                page.header(
                    "repl.lag.bytes",
                    "gauge",
                    "Byte lag behind the primary's committed log.",
                );
                page.sample("repl.lag.bytes", &[], s.lag_bytes());
                if let Some(lag) = s.lag_millis(now) {
                    page.header(
                        "repl.lag.millis",
                        "gauge",
                        "Time lag behind the primary's wall clock in milliseconds.",
                    );
                    page.sample("repl.lag.millis", &[], lag);
                }
                if let Some(stale) = s.stale_millis(now) {
                    page.header(
                        "repl.stale.millis",
                        "gauge",
                        "Milliseconds since the stream last delivered anything.",
                    );
                    page.sample("repl.stale.millis", &[], stale);
                }
                page.header(
                    "repl.records.applied.total",
                    "counter",
                    "Shipped records applied by this replica.",
                );
                page.sample("repl.records.applied.total", &[], s.records_applied);
                page.header(
                    "repl.apply.errors.total",
                    "counter",
                    "Shipped records that failed to re-apply.",
                );
                page.sample("repl.apply.errors.total", &[], s.apply_errors);
                page.header(
                    "repl.sessions.total",
                    "counter",
                    "Replication sessions established.",
                );
                page.sample("repl.sessions.total", &[], s.sessions);
            }
            None => {
                page.header(
                    "repl.streams",
                    "gauge",
                    "Replication streams currently being served.",
                );
                page.sample(
                    "repl.streams",
                    &[],
                    self.inner.repl_streams.load(Ordering::Relaxed),
                );
                page.header(
                    "repl.streams.total",
                    "counter",
                    "Replication streams served (lifetime).",
                );
                page.sample(
                    "repl.streams.total",
                    &[],
                    self.inner.repl_streams_total.load(Ordering::Relaxed),
                );
                page.header(
                    "repl.shipped.bytes.total",
                    "counter",
                    "Raw WAL bytes shipped to replicas.",
                );
                page.sample(
                    "repl.shipped.bytes.total",
                    &[],
                    self.inner.repl_shipped_bytes.load(Ordering::Relaxed),
                );
                page.header(
                    "repl.handshakes.total",
                    "counter",
                    "Replication handshakes accepted.",
                );
                page.sample(
                    "repl.handshakes.total",
                    &[],
                    self.inner.repl_handshakes.load(Ordering::Relaxed),
                );
                page.header(
                    "repl.refusals.total",
                    "counter",
                    "Handshakes refused for divergence.",
                );
                page.sample(
                    "repl.refusals.total",
                    &[],
                    self.inner.repl_refusals.load(Ordering::Relaxed),
                );
            }
        }
        page.header(
            "build.info",
            "gauge",
            "Build metadata (constant 1, data in the labels).",
        );
        let protocol = PROTOCOL_VERSION.to_string();
        page.sample(
            "build.info",
            &[
                ("version", env!("CARGO_PKG_VERSION")),
                ("git", option_env!("REVKB_GIT_SHA").unwrap_or("unknown")),
                ("protocol", &protocol),
            ],
            1,
        );
        page.header(
            "uptime.seconds",
            "counter",
            "Seconds since the server was constructed.",
        );
        page.sample(
            "uptime.seconds",
            &[],
            self.inner.started.elapsed().as_secs(),
        );
        self.kb_metrics(&mut page);
        self.obs_metrics(&mut page);
        page.finish()
    }

    /// The per-KB workload-profile families (`revkb_kb_*`, labelled by
    /// KB name and, for the per-operator families, by operator tag).
    fn kb_metrics(&self, page: &mut http::PromText) {
        struct Row {
            name: String,
            letters: u64,
            revisions: u64,
            compiled_size: Option<u64>,
            profile: KbProfile,
        }
        let rows: Vec<Row> = {
            let handles: Vec<(String, Arc<Mutex<KbState>>)> = {
                let registry = self.inner.registry.lock().expect("registry poisoned");
                let mut entries: Vec<_> = registry
                    .iter()
                    .map(|(name, handle)| (name.clone(), Arc::clone(handle)))
                    .collect();
                entries.sort_by(|a, b| a.0.cmp(&b.0));
                entries
            };
            handles
                .into_iter()
                .map(|(name, handle)| {
                    let kb = handle.lock().expect("kb poisoned");
                    Row {
                        name,
                        letters: kb.sig.len() as u64,
                        revisions: kb.revisions.len() as u64,
                        compiled_size: kb.engine.compiled_size().map(|s| s as u64),
                        profile: kb.profile.clone(),
                    }
                })
                .collect()
        };
        page.header(
            "kb.letters",
            "gauge",
            "Alphabet size of the KB's signature.",
        );
        for row in &rows {
            page.sample("kb.letters", &[("kb", &row.name)], row.letters);
        }
        page.header("kb.revisions.total", "counter", "Revisions applied per KB.");
        for row in &rows {
            page.sample("kb.revisions.total", &[("kb", &row.name)], row.revisions);
        }
        page.header("kb.queries.total", "counter", "Queries answered per KB.");
        for row in &rows {
            page.sample(
                "kb.queries.total",
                &[("kb", &row.name)],
                row.profile.queries,
            );
        }
        page.header(
            "kb.query.commands.total",
            "counter",
            "Query commands (single or batch) per KB.",
        );
        for row in &rows {
            page.sample(
                "kb.query.commands.total",
                &[("kb", &row.name)],
                row.profile.query_commands,
            );
        }
        page.header(
            "kb.query.nodes.total",
            "counter",
            "Formula nodes across all queries per KB.",
        );
        for row in &rows {
            page.sample(
                "kb.query.nodes.total",
                &[("kb", &row.name)],
                row.profile.query_nodes_total,
            );
        }
        page.header(
            "kb.cache.hits.total",
            "counter",
            "Artifact-cache hits attributed to the KB's revises.",
        );
        for row in &rows {
            page.sample(
                "kb.cache.hits.total",
                &[("kb", &row.name)],
                row.profile.cache_hits,
            );
        }
        page.header(
            "kb.cache.misses.total",
            "counter",
            "Artifact-cache misses attributed to the KB's revises.",
        );
        for row in &rows {
            page.sample(
                "kb.cache.misses.total",
                &[("kb", &row.name)],
                row.profile.cache_misses,
            );
        }
        page.header(
            "kb.compiled.size",
            "gauge",
            "Compiled representation size of the KB's engine, when it reports one.",
        );
        for row in &rows {
            if let Some(size) = row.compiled_size {
                page.sample("kb.compiled.size", &[("kb", &row.name)], size);
            }
        }
        page.header(
            "kb.op.revises.total",
            "counter",
            "Revisions per KB and operator.",
        );
        for row in &rows {
            for (tag, op) in &row.profile.ops {
                page.sample(
                    "kb.op.revises.total",
                    &[("kb", &row.name), ("op", tag)],
                    op.revises,
                );
            }
        }
        page.header(
            "kb.op.input.nodes.total",
            "counter",
            "Formula nodes across revision inputs, per KB and operator.",
        );
        for row in &rows {
            for (tag, op) in &row.profile.ops {
                page.sample(
                    "kb.op.input.nodes.total",
                    &[("kb", &row.name), ("op", tag)],
                    op.input_nodes_total,
                );
            }
        }
        page.header(
            "kb.op.compiles.total",
            "counter",
            "Finished compiles per KB and operator.",
        );
        for row in &rows {
            for (tag, op) in &row.profile.ops {
                page.sample(
                    "kb.op.compiles.total",
                    &[("kb", &row.name), ("op", tag)],
                    op.compiles,
                );
            }
        }
        page.header(
            "kb.op.compile.micros.total",
            "counter",
            "Microseconds spent compiling, per KB and operator.",
        );
        for row in &rows {
            for (tag, op) in &row.profile.ops {
                page.sample(
                    "kb.op.compile.micros.total",
                    &[("kb", &row.name), ("op", tag)],
                    op.compile_micros_total,
                );
            }
        }
    }

    /// The trace-gated workspace registry, exported verbatim under
    /// `revkb_obs_*`. Empty (and therefore absent) unless the process
    /// runs with `REVKB_TRACE` enabled.
    fn obs_metrics(&self, page: &mut http::PromText) {
        let snap = obs::snapshot();
        for (name, value) in &snap.counters {
            let raw = format!("obs.{name}.total");
            page.header(
                &raw,
                "counter",
                "Workspace telemetry counter (REVKB_TRACE).",
            );
            page.sample(&raw, &[], *value);
        }
        for (name, value) in &snap.gauges {
            let raw = format!("obs.{name}");
            page.header(&raw, "gauge", "Workspace telemetry gauge (REVKB_TRACE).");
            page.sample(&raw, &[], *value);
        }
        for h in &snap.histograms {
            let raw = format!("obs.{}", h.name);
            page.header(
                &raw,
                "histogram",
                "Workspace telemetry histogram (REVKB_TRACE).",
            );
            page.histogram(&raw, &[], h.count, h.sum, &h.buckets);
        }
    }

    /// Liveness/readiness verdict for `/readyz`: `(ready, body)`.
    /// Not ready while shutting down, while a primary is replaying its
    /// log, or when a replica has diverged, never connected, or lost
    /// its stream for at least [`READY_STALE_MS`] milliseconds. A
    /// short disconnect within that budget stays ready: reconnects
    /// with backoff are normal operation.
    pub fn readiness(&self) -> (bool, Json) {
        let mut reasons: Vec<String> = Vec::new();
        if self.is_shutting_down() {
            reasons.push("shutting down".to_string());
        }
        if self.inner.repl.is_none() && self.inner.replaying.load(Ordering::SeqCst) {
            reasons.push("replaying the write-ahead log".to_string());
        }
        if let Some(repl) = &self.inner.repl {
            let s = repl.lock().expect("repl poisoned");
            if s.diverged {
                reasons.push("replica diverged from its primary".to_string());
            } else if s.sessions == 0 {
                reasons.push("replica has never connected to its primary".to_string());
            } else if !s.connected {
                if let Some(stale) = s.stale_millis(epoch_millis()) {
                    if stale >= READY_STALE_MS {
                        reasons.push(format!("replication stream stale for {stale} ms"));
                    }
                }
            }
        }
        let ready = reasons.is_empty();
        let body = Json::obj([
            ("ready", Json::Bool(ready)),
            (
                "reasons",
                Json::Arr(reasons.iter().map(Json::str).collect()),
            ),
        ]);
        (ready, body)
    }

    /// Route one metrics-plane path to its response; `query` is the
    /// raw query string (without the `?`), used by the `/debug/*`
    /// routes for filtering. Public so tests can exercise the
    /// endpoints without a live listener.
    pub fn metrics_route(&self, path: &str, query: &str) -> http::Response {
        fn json_body(json: Json) -> String {
            let mut body = json.render();
            body.push('\n');
            body
        }
        match path {
            "/metrics" => http::Response::ok(http::PROM_CONTENT_TYPE, self.metrics_text()),
            "/stats.json" => {
                http::Response::ok(http::JSON_CONTENT_TYPE, json_body(self.stats_json()))
            }
            "/series.json" => {
                http::Response::ok(http::JSON_CONTENT_TYPE, json_body(self.series_json()))
            }
            "/healthz" => {
                let role = if self.inner.repl.is_some() {
                    "replica"
                } else {
                    "primary"
                };
                http::Response::ok(
                    http::JSON_CONTENT_TYPE,
                    json_body(Json::obj([
                        ("ok", Json::Bool(true)),
                        ("role", Json::str(role)),
                        ("requests", num(self.inner.counters.requests_total())),
                    ])),
                )
            }
            "/readyz" => {
                let (ready, body) = self.readiness();
                http::Response {
                    status: if ready { 200 } else { 503 },
                    content_type: http::JSON_CONTENT_TYPE,
                    body: json_body(body),
                }
            }
            "/debug/trace.json" => {
                // The flight recorder's ring as a loadable Chrome
                // trace — available in every mode, REVKB_TRACE or not.
                let snap = obs::Snapshot {
                    mode: obs::mode(),
                    counters: Vec::new(),
                    gauges: Vec::new(),
                    histograms: Vec::new(),
                    span_aggregates: Vec::new(),
                    spans: obs::flight_snapshot(),
                };
                http::Response::ok(http::JSON_CONTENT_TYPE, obs::chrome_trace(&snap))
            }
            "/debug/logs.json" => {
                let level = query_param(query, "level").and_then(|v| obs::Level::parse(&v));
                let trace = query_param(query, "trace").and_then(|v| obs::parse_trace_id(&v));
                let records: Vec<obs::LogRecord> = obs::log_ring_snapshot()
                    .into_iter()
                    .filter(|r| level.is_none_or(|want| r.level <= want))
                    .filter(|r| trace.is_none_or(|want| r.trace == Some(want)))
                    .collect();
                let mut body = String::with_capacity(records.len() * 96 + 32);
                body.push_str("{\"count\":");
                body.push_str(&records.len().to_string());
                body.push_str(",\"logs\":[");
                for (i, r) in records.iter().enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    body.push_str(&r.render_json());
                }
                body.push_str("]}\n");
                http::Response::ok(http::JSON_CONTENT_TYPE, body)
            }
            "/debug/requests.json" => {
                let now = Instant::now();
                let in_flight = {
                    let active = self.inner.active.lock().expect("active table poisoned");
                    let mut entries: Vec<(u64, ActiveRequest)> =
                        active.iter().map(|(req, e)| (*req, *e)).collect();
                    entries.sort_unstable_by_key(|(req, _)| *req);
                    Json::Arr(
                        entries
                            .into_iter()
                            .map(|(req, e)| {
                                Json::obj([
                                    ("req", num(req)),
                                    ("cmd", Json::str(e.cmd)),
                                    ("trace", Json::Str(obs::format_trace_id(e.trace))),
                                    (
                                        "running_micros",
                                        num(u64::try_from(
                                            now.saturating_duration_since(e.started).as_micros(),
                                        )
                                        .unwrap_or(u64::MAX)),
                                    ),
                                ])
                            })
                            .collect(),
                    )
                };
                http::Response::ok(
                    http::JSON_CONTENT_TYPE,
                    json_body(Json::obj([
                        ("in_flight", in_flight),
                        ("slow_ms", num(self.inner.config.slow_ms)),
                        ("slow_log", self.slow_log_json()),
                    ])),
                )
            }
            other => http::Response::not_found(other),
        }
    }

    /// Bind and serve the sidecar metrics listener configured by
    /// `--metrics-addr` / `REVKB_SERVER_METRICS_ADDR` on a background
    /// thread until shutdown. `Ok(None)` when no address is
    /// configured; otherwise the bound address (so `:0` resolves to a
    /// real port) and the serving thread's handle, which the caller
    /// joins after `begin_shutdown`.
    pub fn start_metrics_listener(
        &self,
    ) -> io::Result<Option<(SocketAddr, std::thread::JoinHandle<()>)>> {
        let Some(addr) = self.inner.config.metrics_addr.clone() else {
            return Ok(None);
        };
        let listener = TcpListener::bind(&addr)?;
        let local = listener.local_addr()?;
        let stopper = self.clone();
        let router = self.clone();
        let handle = std::thread::Builder::new()
            .name("revkb-metrics".to_string())
            .spawn(move || {
                let stop = move || stopper.is_shutting_down();
                let handler = move |request: &http::HttpRequest| {
                    if request.method != "GET" {
                        return http::Response::method_not_allowed();
                    }
                    router.metrics_route(&request.path, &request.query)
                };
                if let Err(e) = http::serve(listener, stop, handler) {
                    obs::error("http", None, || {
                        format!("revkb-server: metrics listener failed: {e}")
                    });
                }
            })
            .expect("spawn metrics thread");
        Ok(Some((local, handle)))
    }
}

/// One sampler tick's worth of cumulative observations from the
/// always-on server state. The trace-gated `obs` registry is *not*
/// sampled: with tracing off it is empty, and with tracing on it
/// mirrors these counters anyway.
fn sample_observations(inner: &Inner) -> Vec<obs::Observation> {
    use obs::Observation as Obs;
    let counters = &inner.counters;
    let mut out = Vec::with_capacity(24);
    out.push(Obs::counter("server.requests", counters.requests_total()));
    for (kind, h) in counters.latencies() {
        out.push(Obs::counter(format!("server.requests.{kind}"), h.count()));
    }
    out.push(Obs::counter(
        "server.overloaded",
        counters.overloaded_total(),
    ));
    out.push(Obs::counter("server.timeouts", counters.timeouts_total()));
    out.push(Obs::counter("server.errors", counters.errors_total()));
    out.push(Obs::counter("server.degraded", counters.degraded_total()));
    {
        let cache = inner.cache.lock().expect("cache poisoned");
        out.push(Obs::counter("server.cache.hits", cache.hits));
        out.push(Obs::counter("server.cache.misses", cache.misses));
        out.push(Obs::counter("server.cache.evictions", cache.evictions));
    }
    out.push(Obs::gauge(
        "server.in_flight",
        inner.in_flight.load(Ordering::Relaxed) as u64,
    ));
    out.push(Obs::gauge(
        "server.connections",
        inner.connections.load(Ordering::Relaxed),
    ));
    out.push(Obs::gauge(
        "server.kbs",
        inner.registry.lock().expect("registry poisoned").len() as u64,
    ));
    if let Some(wal) = &inner.wal {
        let wal = wal.lock().expect("wal poisoned");
        out.push(Obs::counter("wal.bytes", wal.bytes));
        out.push(Obs::counter("wal.appends", wal.appends));
        out.push(Obs::counter("wal.fsyncs", wal.fsyncs));
    }
    match &inner.repl {
        Some(repl) => {
            let s = repl.lock().expect("repl poisoned");
            out.push(Obs::counter("repl.records_applied", s.records_applied));
            out.push(Obs::gauge("repl.lag.bytes", s.lag_bytes()));
            if let Some(lag) = s.lag_millis(epoch_millis()) {
                out.push(Obs::gauge("repl.lag.millis", lag));
            }
        }
        None => {
            out.push(Obs::counter(
                "repl.shipped.bytes",
                inner.repl_shipped_bytes.load(Ordering::Relaxed),
            ));
        }
    }
    out
}

/// How one replication session against the primary ended.
enum SessionEnd {
    /// Connected and streamed, then lost the connection: reconnect
    /// immediately (backoff resets on a successful session).
    Disconnected,
    /// Never got a stream going (connect refused, handshake retry):
    /// back off before trying again.
    NeverConnected,
    /// Shutdown or divergence: stop replicating for good.
    Fatal,
}

/// Decrements the active-streams gauge when a primary-side
/// replication stream ends, however it ends.
struct StreamGuard<'a>(&'a AtomicU64);

impl Drop for StreamGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Write one response as a single framed segment (payload + trailing
/// newline in one `write_all`). Shared by every transport: a two-write
/// frame can interleave with another thread's response on a shared
/// stream, and on stdio it doubled syscalls per response.
fn write_framed<W: Write>(writer: &mut W, mut response: String) -> io::Result<()> {
    response.push('\n');
    writer.write_all(response.as_bytes())
}

fn operator_mismatch(prev: ModelBasedOp, requested: OpName) -> ExecError {
    (
        codes::OPERATOR_MISMATCH,
        format!(
            "KB was revised with {:?} and the iterated constructions are \
             single-operator chains; requested {:?}",
            OpName::Model(prev).tag(),
            requested.tag()
        ),
    )
}

/// Render a `bad_request` response reusing the already-rendered id
/// from a [`RequestError`] (the id is valid JSON by construction).
fn bad_request_response(err: &RequestError, req: u64, trace: u64) -> String {
    let id = err.id.clone().unwrap_or_else(|| "null".to_string());
    format!(
        "{{\"v\":{PROTOCOL_VERSION},\"id\":{id},\"req\":{req},\"trace\":\"{}\",\"ok\":false,\"code\":\"{}\",\"error\":{}}}",
        obs::format_trace_id(trace),
        codes::BAD_REQUEST,
        Json::str(&err.message).render()
    )
}

/// Value of `name` in a raw query string (`a=1&b=2`); no
/// percent-decoding — the `/debug/*` filter values (level names, hex
/// trace ids) never need it.
fn query_param(query: &str, name: &str) -> Option<String> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == name).then(|| v.to_string())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::OpName;

    fn server() -> Server {
        Server::new(ServerConfig::default().with_queue(16).with_threads(2))
    }

    /// Send a request line and parse the response.
    fn call(server: &Server, line: &str) -> Json {
        let response = server.handle_line(line).expect("non-blank line");
        Json::parse(&response).expect("response is valid JSON")
    }

    fn assert_ok(resp: &Json) -> &Json {
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "{resp:?}"
        );
        resp.get("result").expect("ok response has result")
    }

    fn assert_err<'a>(resp: &'a Json, code: &str) -> &'a Json {
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(false),
            "{resp:?}"
        );
        assert_eq!(
            resp.get("code").and_then(Json::as_str),
            Some(code),
            "{resp:?}"
        );
        resp
    }

    #[test]
    fn load_query_roundtrip() {
        let s = server();
        let resp = call(&s, r#"{"id":1,"cmd":"load","kb":"k","t":"a & b; a -> c"}"#);
        let result = assert_ok(&resp);
        assert_eq!(resp.get("id").and_then(Json::as_f64), Some(1.0));
        assert_eq!(result.get("formulas").and_then(Json::as_u64), Some(2));
        assert_eq!(result.get("letters").and_then(Json::as_u64), Some(3));
        let resp = call(&s, r#"{"cmd":"query","kb":"k","q":"c"}"#);
        assert_eq!(
            assert_ok(&resp).get("entails").and_then(Json::as_bool),
            Some(true)
        );
        let resp = call(
            &s,
            r#"{"cmd":"query_batch","kb":"k","qs":["a","!a","b & c"]}"#,
        );
        let answers = assert_ok(&resp)
            .get("answers")
            .and_then(Json::as_array)
            .unwrap();
        let answers: Vec<bool> = answers.iter().map(|a| a.as_bool().unwrap()).collect();
        assert_eq!(answers, vec![true, false, true]);
    }

    #[test]
    fn revise_every_operator_and_query() {
        for op in OpName::ALL {
            let s = server();
            call(&s, r#"{"cmd":"load","kb":"k","t":"a; a -> b"}"#);
            let line = format!(
                r#"{{"cmd":"revise","kb":"k","op":"{}","p":"!b"}}"#,
                op.tag()
            );
            let resp = call(&s, &line);
            let result = assert_ok(&resp);
            assert_eq!(result.get("op").and_then(Json::as_str), Some(op.tag()));
            assert_eq!(result.get("degraded").and_then(Json::as_bool), Some(false));
            // Every operator accepts the revision: ¬b holds afterwards.
            let resp = call(&s, r#"{"cmd":"query","kb":"k","q":"!b"}"#);
            assert_eq!(
                assert_ok(&resp).get("entails").and_then(Json::as_bool),
                Some(true),
                "{}",
                op.tag()
            );
        }
    }

    #[test]
    fn cache_hits_on_identical_revision() {
        let s = server();
        call(&s, r#"{"cmd":"load","kb":"k1","t":"a & b"}"#);
        let resp = call(&s, r#"{"cmd":"revise","kb":"k1","op":"dalal","p":"!a"}"#);
        assert_eq!(
            assert_ok(&resp).get("cache").and_then(Json::as_str),
            Some("miss")
        );
        // A second KB with the same theory and revision: pure cache hit.
        call(&s, r#"{"cmd":"load","kb":"k2","t":"a & b"}"#);
        let resp = call(&s, r#"{"cmd":"revise","kb":"k2","op":"dalal","p":"!a"}"#);
        assert_eq!(
            assert_ok(&resp).get("cache").and_then(Json::as_str),
            Some("hit")
        );
        // The cached engine answers identically.
        for kb in ["k1", "k2"] {
            let resp = call(&s, &format!(r#"{{"cmd":"query","kb":"{kb}","q":"b"}}"#));
            assert_eq!(
                assert_ok(&resp).get("entails").and_then(Json::as_bool),
                Some(true)
            );
        }
        let resp = call(&s, r#"{"cmd":"stats"}"#);
        let cache = assert_ok(&resp).get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(1));
        assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn operator_rules_are_enforced() {
        let s = server();
        call(&s, r#"{"cmd":"load","kb":"k","t":"a"}"#);
        call(&s, r#"{"cmd":"revise","kb":"k","op":"dalal","p":"!a"}"#);
        let resp = call(&s, r#"{"cmd":"revise","kb":"k","op":"weber","p":"a"}"#);
        assert_err(&resp, codes::OPERATOR_MISMATCH);
        let resp = call(&s, r#"{"cmd":"revise","kb":"k","op":"widtio","p":"a"}"#);
        assert_err(&resp, codes::OPERATOR_MISMATCH);
        // Same operator again: fine (iterated chain).
        let resp = call(&s, r#"{"cmd":"revise","kb":"k","op":"dalal","p":"a"}"#);
        assert_eq!(
            assert_ok(&resp).get("revisions").and_then(Json::as_u64),
            Some(2)
        );
        // GFUV refuses any second revision.
        call(&s, r#"{"cmd":"load","kb":"g","t":"a"}"#);
        call(&s, r#"{"cmd":"revise","kb":"g","op":"gfuv","p":"!a"}"#);
        let resp = call(&s, r#"{"cmd":"revise","kb":"g","op":"gfuv","p":"a"}"#);
        assert_err(&resp, codes::UNSUPPORTED);
    }

    #[test]
    fn widtio_iterates_through_kept_theory() {
        let s = server();
        call(&s, r#"{"cmd":"load","kb":"w","t":"a; a -> b"}"#);
        call(&s, r#"{"cmd":"revise","kb":"w","op":"widtio","p":"!b"}"#);
        // WIDTIO threw out both conflicting formulas; only ¬b remains.
        let resp = call(&s, r#"{"cmd":"query","kb":"w","q":"!b"}"#);
        assert_eq!(
            assert_ok(&resp).get("entails").and_then(Json::as_bool),
            Some(true)
        );
        let resp = call(&s, r#"{"cmd":"revise","kb":"w","op":"widtio","p":"b"}"#);
        let result = assert_ok(&resp);
        assert_eq!(result.get("revisions").and_then(Json::as_u64), Some(2));
        let resp = call(&s, r#"{"cmd":"query","kb":"w","q":"b"}"#);
        assert_eq!(
            assert_ok(&resp).get("entails").and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn unknown_kb_and_malformed_requests() {
        let s = server();
        let resp = call(&s, r#"{"cmd":"query","kb":"nope","q":"a"}"#);
        assert_err(&resp, codes::UNKNOWN_KB);
        let resp = call(&s, r#"{"cmd":"drop","kb":"nope"}"#);
        assert_err(&resp, codes::UNKNOWN_KB);
        let resp = call(&s, "this is not json");
        assert_err(&resp, codes::BAD_REQUEST);
        // The id survives even when the command is garbage.
        let resp = call(&s, r#"{"id":"q-7","cmd":"frobnicate"}"#);
        assert_err(&resp, codes::BAD_REQUEST);
        assert_eq!(resp.get("id").and_then(Json::as_str), Some("q-7"));
        // Engine-level codes come through verbatim: parse error…
        call(&s, r#"{"cmd":"load","kb":"k","t":"a"}"#);
        let resp = call(&s, r#"{"cmd":"query","kb":"k","q":"a &&& b"}"#);
        assert_err(&resp, "parse");
        // …and the out-of-alphabet guard.
        let resp = call(&s, r#"{"cmd":"query","kb":"k","q":"zebra"}"#);
        assert_err(&resp, "out_of_alphabet");
    }

    #[test]
    fn deadline_zero_times_out_deterministically() {
        let s = server();
        call(&s, r#"{"cmd":"load","kb":"k","t":"a"}"#);
        let resp = call(
            &s,
            r#"{"id":9,"deadline_ms":0,"cmd":"query","kb":"k","q":"a"}"#,
        );
        assert_err(&resp, codes::TIMEOUT);
        assert_eq!(resp.get("id").and_then(Json::as_f64), Some(9.0));
        let resp = call(&s, r#"{"cmd":"stats"}"#);
        assert_eq!(
            assert_ok(&resp).get("timeouts").and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn zero_queue_rejects_everything_but_control_plane() {
        let s = Server::new(ServerConfig::default().with_queue(0));
        let resp = call(&s, r#"{"cmd":"load","kb":"k","t":"a"}"#);
        assert_err(&resp, codes::OVERLOADED);
        let resp = call(&s, r#"{"cmd":"ping"}"#);
        assert_ok(&resp);
        let resp = call(&s, r#"{"cmd":"stats"}"#);
        assert_eq!(
            assert_ok(&resp).get("overloaded").and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn compile_budget_zero_degrades_but_stays_correct() {
        let s = Server::new(
            ServerConfig::default()
                .with_queue(16)
                .with_compile_timeout_ms(Some(0)),
        );
        call(&s, r#"{"cmd":"load","kb":"k","t":"a & b"}"#);
        let resp = call(&s, r#"{"cmd":"revise","kb":"k","op":"satoh","p":"!a"}"#);
        let result = assert_ok(&resp);
        assert_eq!(result.get("degraded").and_then(Json::as_bool), Some(true));
        assert_eq!(result.get("cache").and_then(Json::as_str), Some("degraded"));
        // Delayed incorporation still answers correctly at query time.
        let resp = call(&s, r#"{"cmd":"query","kb":"k","q":"b"}"#);
        assert_eq!(
            assert_ok(&resp).get("entails").and_then(Json::as_bool),
            Some(true)
        );
        let resp = call(&s, r#"{"cmd":"stats"}"#);
        assert_eq!(
            assert_ok(&resp).get("degraded").and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn list_drop_and_shutdown() {
        let s = server();
        call(&s, r#"{"cmd":"load","kb":"b","t":"x"}"#);
        call(&s, r#"{"cmd":"load","kb":"a","t":"y"}"#);
        let resp = call(&s, r#"{"cmd":"list"}"#);
        let kbs = assert_ok(&resp)
            .get("kbs")
            .and_then(Json::as_array)
            .unwrap();
        let names: Vec<&str> = kbs
            .iter()
            .map(|kb| kb.get("name").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(names, vec!["a", "b"]); // sorted
        let resp = call(&s, r#"{"cmd":"drop","kb":"a"}"#);
        assert_ok(&resp);
        assert!(!s.is_shutting_down());
        let resp = call(&s, r#"{"cmd":"shutdown"}"#);
        assert_ok(&resp);
        assert!(s.is_shutting_down());
        // Non-control-plane work is now refused; ping still answers.
        let resp = call(&s, r#"{"cmd":"list"}"#);
        assert_err(&resp, codes::SHUTTING_DOWN);
        let resp = call(&s, r#"{"cmd":"ping"}"#);
        assert_ok(&resp);
    }

    #[test]
    fn req_ids_are_monotonic_from_one() {
        let s = server();
        for expect in 1..=4u64 {
            let resp = call(&s, r#"{"cmd":"ping"}"#);
            assert_eq!(
                resp.get("req").and_then(Json::as_u64),
                Some(expect),
                "{resp:?}"
            );
        }
        // Bad requests consume an id too — every line gets one.
        let resp = call(&s, "not json");
        assert_eq!(resp.get("req").and_then(Json::as_u64), Some(5));
        let resp = call(&s, r#"{"cmd":"ping"}"#);
        assert_eq!(resp.get("req").and_then(Json::as_u64), Some(6));
    }

    #[test]
    fn stats_reports_per_type_latency_without_draining() {
        let s = server();
        call(&s, r#"{"cmd":"load","kb":"k","t":"a & b"}"#);
        call(&s, r#"{"cmd":"query","kb":"k","q":"a"}"#);
        call(&s, r#"{"cmd":"query","kb":"k","q":"b"}"#);
        let resp = call(&s, r#"{"cmd":"stats"}"#);
        let latency = assert_ok(&resp).get("request_latency").unwrap();
        let query = latency.get("query").expect("query bucket present");
        assert_eq!(query.get("count").and_then(Json::as_u64), Some(2));
        let p50 = query.get("p50").and_then(Json::as_u64).unwrap();
        let p95 = query.get("p95").and_then(Json::as_u64).unwrap();
        let p99 = query.get("p99").and_then(Json::as_u64).unwrap();
        let max = query.get("max").and_then(Json::as_u64).unwrap();
        assert!(p50 <= p95 && p95 <= p99 && p99 <= max);
        assert_eq!(
            latency
                .get("load")
                .unwrap()
                .get("count")
                .and_then(Json::as_u64),
            Some(1)
        );
        // A second stats call sees the same history plus the first
        // stats request itself: nothing was drained or reset.
        let resp = call(&s, r#"{"cmd":"stats"}"#);
        let latency = assert_ok(&resp).get("request_latency").unwrap();
        let query = latency.get("query").unwrap();
        assert_eq!(query.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(
            latency
                .get("stats")
                .unwrap()
                .get("count")
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn slow_log_records_over_threshold_and_is_bounded() {
        // Threshold 0: every request is "slow". Capacity 2: ring.
        let s = Server::new(
            ServerConfig::default()
                .with_queue(16)
                .with_slow_ms(0)
                .with_slow_log_cap(2),
        );
        call(&s, r#"{"cmd":"ping"}"#); // req 1 — evicted
        call(&s, r#"{"cmd":"load","kb":"k","t":"a"}"#); // req 2
        call(&s, r#"{"cmd":"query","kb":"k","q":"a"}"#); // req 3
        let resp = call(&s, r#"{"cmd":"stats"}"#);
        let slow = assert_ok(&resp)
            .get("slow_log")
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(slow.len(), 2, "{slow:?}");
        let reqs: Vec<u64> = slow
            .iter()
            .map(|e| e.get("req").and_then(Json::as_u64).unwrap())
            .collect();
        assert_eq!(reqs, vec![2, 3]); // oldest evicted, order kept
        assert_eq!(slow[0].get("cmd").and_then(Json::as_str), Some("load"));
        assert_eq!(slow[1].get("cmd").and_then(Json::as_str), Some("query"));
        // Default threshold (1s): nothing here is slow.
        let s = server();
        call(&s, r#"{"cmd":"ping"}"#);
        let resp = call(&s, r#"{"cmd":"stats"}"#);
        let slow = assert_ok(&resp)
            .get("slow_log")
            .and_then(Json::as_array)
            .unwrap();
        assert!(slow.is_empty(), "{slow:?}");
    }

    /// A writer that records each `write` call as its own segment.
    struct SegmentWriter(Vec<Vec<u8>>);

    impl Write for SegmentWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.push(buf.to_vec());
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn every_response_is_one_framed_write() {
        let s = server();
        let script = concat!(
            r#"{"id":1,"cmd":"ping"}"#,
            "\n",
            r#"{"id":2,"cmd":"load","kb":"k","t":"a"}"#,
            "\n",
        );
        let mut out = SegmentWriter(Vec::new());
        s.serve_stdio(script.as_bytes(), &mut out).unwrap();
        assert_eq!(out.0.len(), 2, "one write per response, newline included");
        for segment in &out.0 {
            assert_eq!(segment.last(), Some(&b'\n'));
            assert!(Json::parse(&String::from_utf8_lossy(&segment[..segment.len() - 1])).is_ok());
        }
    }

    #[test]
    fn stdio_loop_runs_a_scripted_session() {
        let s = server();
        let script = concat!(
            r#"{"id":1,"cmd":"load","kb":"k","t":"a & b"}"#,
            "\n\n", // blank line is ignored
            r#"{"id":2,"cmd":"revise","kb":"k","op":"weber","p":"!a"}"#,
            "\n",
            r#"{"id":3,"cmd":"query","kb":"k","q":"b"}"#,
            "\n",
            r#"{"id":4,"cmd":"shutdown"}"#,
            "\n",
            r#"{"id":5,"cmd":"ping"}"#, // after shutdown: loop exited
            "\n",
        );
        let mut out = Vec::new();
        s.serve_stdio(script.as_bytes(), &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "{out}");
        for (i, line) in lines.iter().enumerate() {
            let resp = Json::parse(line).unwrap();
            assert_eq!(resp.get("id").and_then(Json::as_f64), Some((i + 1) as f64));
            assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        }
    }

    fn replica_server() -> Server {
        Server::new(
            ServerConfig::default()
                .with_queue(16)
                .with_threads(2)
                .with_replica_of(Some("127.0.0.1:1".to_string())),
        )
    }

    #[test]
    fn replica_rejects_writes_with_read_only() {
        let s = replica_server();
        for line in [
            r#"{"cmd":"load","kb":"k","t":"a & b"}"#,
            r#"{"cmd":"revise","kb":"k","op":"dalal","p":"!a"}"#,
            r#"{"cmd":"drop","kb":"k"}"#,
        ] {
            assert_err(&call(&s, line), codes::READ_ONLY);
        }
        // Reads and the control plane still answer.
        assert_ok(&call(&s, r#"{"cmd":"ping"}"#));
        assert_ok(&call(&s, r#"{"cmd":"list"}"#));
        assert_err(
            &call(&s, r#"{"cmd":"query","kb":"k","q":"a"}"#),
            codes::UNKNOWN_KB,
        );
    }

    #[test]
    fn diverged_replica_refuses_all_data_plane_commands() {
        let s = replica_server();
        s.mark_diverged("test: forced divergence");
        for line in [
            r#"{"cmd":"query","kb":"k","q":"a"}"#,
            r#"{"cmd":"list"}"#,
            r#"{"cmd":"load","kb":"k","t":"a"}"#,
        ] {
            assert_err(&call(&s, line), codes::DIVERGED);
        }
        // The control plane must stay reachable for diagnosis.
        assert_ok(&call(&s, r#"{"cmd":"ping"}"#));
        let stats = call(&s, r#"{"cmd":"stats"}"#);
        let repl = assert_ok(&stats).get("repl").expect("repl block").clone();
        assert_eq!(repl.get("role").and_then(Json::as_str), Some("replica"));
        assert_eq!(repl.get("diverged").and_then(Json::as_bool), Some(true));
        let status = s.replication_status().expect("replica has status");
        assert!(status.diverged);
        assert!(!status.connected);
    }

    #[test]
    fn stats_reports_replication_role_on_both_sides() {
        let primary = server();
        let stats = call(&primary, r#"{"cmd":"stats"}"#);
        let repl = assert_ok(&stats).get("repl").expect("repl block").clone();
        assert_eq!(repl.get("role").and_then(Json::as_str), Some("primary"));
        assert_eq!(repl.get("streams").and_then(Json::as_u64), Some(0));
        assert!(primary.replication_status().is_none());

        let replica = replica_server();
        let stats = call(&replica, r#"{"cmd":"stats"}"#);
        let repl = assert_ok(&stats).get("repl").expect("repl block").clone();
        assert_eq!(repl.get("role").and_then(Json::as_str), Some("replica"));
        assert_eq!(
            repl.get("primary").and_then(Json::as_str),
            Some("127.0.0.1:1")
        );
        assert_eq!(repl.get("connected").and_then(Json::as_bool), Some(false));
        // No wal: the in-memory replica starts at the log-head offset.
        assert_eq!(
            repl.get("offset").and_then(Json::as_u64),
            Some(crate::wal::LOG_MAGIC.len() as u64)
        );
    }

    #[test]
    fn replicate_over_stdio_is_unsupported() {
        let s = server();
        assert_err(
            &call(&s, r#"{"cmd":"replicate","offset":0}"#),
            codes::UNSUPPORTED,
        );
    }

    #[test]
    fn readyz_flips_when_a_replica_diverges() {
        // A healthy primary is ready.
        let primary = server();
        let resp = primary.metrics_route("/readyz", "");
        assert_eq!(resp.status, 200, "healthy primary must be ready");
        assert!(resp.body.contains(r#""ready":true"#), "{}", resp.body);

        // A replica that never reached its primary is not ready…
        let replica = replica_server();
        let resp = replica.metrics_route("/readyz", "");
        assert_eq!(resp.status, 503);
        assert!(resp.body.contains("never connected"), "{}", resp.body);

        // …and a diverged replica reports the divergence as the reason.
        replica.mark_diverged("test: forced divergence");
        let resp = replica.metrics_route("/readyz", "");
        assert_eq!(resp.status, 503);
        assert!(resp.body.contains("diverged"), "{}", resp.body);
        let (ready, body) = replica.readiness();
        assert!(!ready);
        let reasons = body.get("reasons").expect("reasons array").clone();
        assert!(
            reasons.render().contains("diverged"),
            "{}",
            reasons.render()
        );
    }

    #[test]
    fn stats_exposes_kb_profiles_and_series() {
        let s = server();
        assert_ok(&call(&s, r#"{"cmd":"load","kb":"k","t":"a & b"}"#));
        assert_ok(&call(
            &s,
            r#"{"cmd":"revise","kb":"k","op":"dalal","p":"!a"}"#,
        ));
        assert_ok(&call(&s, r#"{"cmd":"query","kb":"k","q":"b"}"#));
        let stats = call(&s, r#"{"cmd":"stats"}"#);
        let result = assert_ok(&stats);

        let profiles = result.get("kb_profiles").expect("kb_profiles").clone();
        let arr = match &profiles {
            Json::Arr(items) => items.clone(),
            other => panic!("kb_profiles must be an array, got {other:?}"),
        };
        assert_eq!(arr.len(), 1);
        let p = &arr[0];
        assert_eq!(p.get("kb").and_then(Json::as_str), Some("k"));
        assert_eq!(p.get("queries").and_then(Json::as_u64), Some(1));
        assert!(p.get("query_nodes_total").and_then(Json::as_u64).unwrap() >= 1);
        let ops = match p.get("ops").expect("ops array") {
            Json::Arr(items) => items.clone(),
            other => panic!("ops must be an array, got {other:?}"),
        };
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].get("op").and_then(Json::as_str), Some("dalal"));
        assert_eq!(ops[0].get("revises").and_then(Json::as_u64), Some(1));
        // Exactly one compile happened and it was a cache miss.
        assert_eq!(p.get("cache_misses").and_then(Json::as_u64), Some(1));

        let series = result.get("series").expect("series block").clone();
        assert!(series.get("interval_ms").and_then(Json::as_u64).is_some());
        assert!(series.get("capacity").and_then(Json::as_u64).is_some());
        assert!(
            matches!(series.get("series"), Some(Json::Arr(_))),
            "series.series must be an array"
        );
    }

    #[test]
    fn metrics_text_renders_labelled_families() {
        let s = server();
        assert_ok(&call(&s, r#"{"cmd":"load","kb":"k","t":"a & b"}"#));
        assert_ok(&call(
            &s,
            r#"{"cmd":"revise","kb":"k","op":"dalal","p":"!a"}"#,
        ));
        assert_ok(&call(&s, r#"{"cmd":"query","kb":"k","q":"b"}"#));
        let page = s.metrics_text();

        // Top-level server counters.
        assert!(
            page.contains("revkb_server_requests_total 3"),
            "missing requests counter:\n{page}"
        );
        assert!(page.contains("# TYPE revkb_server_requests_total counter"));
        // Per-KB families carry the kb label.
        assert!(
            page.contains(r#"revkb_kb_queries_total{kb="k"} 1"#),
            "missing per-KB query counter:\n{page}"
        );
        assert!(page.contains(r#"revkb_kb_op_revises_total{kb="k",op="dalal"} 1"#));
        // Histograms are cumulative and end with +Inf == _count.
        assert!(
            page.contains(r#"revkb_server_request_micros_bucket{cmd="query",le="+Inf"} 1"#),
            "missing +Inf bucket:\n{page}"
        );
        assert!(page.contains(r#"revkb_server_request_micros_count{cmd="query"} 1"#));
        // The page ends with a trailing newline (text exposition v0.0.4).
        assert!(page.ends_with('\n'));
    }

    #[test]
    fn metrics_route_serves_all_endpoints() {
        let s = server();
        assert_ok(&call(&s, r#"{"cmd":"ping"}"#));
        let metrics = s.metrics_route("/metrics", "");
        assert_eq!(metrics.status, 200);
        assert!(metrics.content_type.starts_with("text/plain"));
        let stats = s.metrics_route("/stats.json", "");
        assert_eq!(stats.status, 200);
        assert!(stats.content_type.starts_with("application/json"));
        assert!(stats.body.contains("kb_profiles"));
        let series = s.metrics_route("/series.json", "");
        assert_eq!(series.status, 200);
        assert!(series.body.contains("interval_ms"));
        let healthz = s.metrics_route("/healthz", "");
        assert_eq!(healthz.status, 200);
        assert!(
            healthz.body.contains(r#""role":"primary""#),
            "{}",
            healthz.body
        );
        let missing = s.metrics_route("/nope", "");
        assert_eq!(missing.status, 404);
    }
}
