//! The named-KB registry and the compiled-artifact cache.
//!
//! Compiled revised bases are the expensive artefact the paper is
//! about — the whole point of a resident service is to keep them warm.
//! Two layers do that here:
//!
//! 1. each [`KbState`] keeps its current engine (and with it the
//!    incremental solver session) alive across requests, and
//! 2. the [`ArtifactCache`] remembers compilation *outputs* across
//!    KB lifetimes, keyed by a canonical encoding of
//!    `(operator, backend, T, P¹…Pᵐ)`, so re-loading and re-revising
//!    the same base — a common pattern when many clients mirror one
//!    upstream KB — skips the compile entirely.
//!
//! The cache key is the canonical *encoding*, not just its hash:
//! a 64-bit fingerprint would make a hash collision silently answer
//! queries against the wrong knowledge base, which is exactly the
//! class of bug this workspace refuses to have.

use crate::protocol::OpName;
use revkb_logic::{Formula, Signature};
use revkb_revision::api::Engine;
use revkb_revision::Backend;
use std::collections::{HashMap, VecDeque};

/// Write a canonical, parse-order-independent encoding of `f` into
/// `out`. Two structurally equal formulas (same tree, same `Var`
/// indices) encode identically; nothing else does.
pub fn canonical_formula(f: &Formula, out: &mut String) {
    match f {
        Formula::True => out.push('1'),
        Formula::False => out.push('0'),
        Formula::Var(v) => {
            out.push('v');
            out.push_str(&v.0.to_string());
        }
        Formula::Not(inner) => {
            out.push('!');
            canonical_formula(inner, out);
        }
        Formula::And(items) => {
            out.push_str("&(");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                canonical_formula(item, out);
            }
            out.push(')');
        }
        Formula::Or(items) => {
            out.push_str("|(");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                canonical_formula(item, out);
            }
            out.push(')');
        }
        Formula::Implies(a, b) => {
            out.push_str(">(");
            canonical_formula(a, out);
            out.push(',');
            canonical_formula(b, out);
            out.push(')');
        }
        Formula::Iff(a, b) => {
            out.push_str("=(");
            canonical_formula(a, out);
            out.push(',');
            canonical_formula(b, out);
            out.push(')');
        }
        Formula::Xor(a, b) => {
            out.push_str("^(");
            canonical_formula(a, out);
            out.push(',');
            canonical_formula(b, out);
            out.push(')');
        }
    }
}

/// Parse a string produced by [`canonical_formula`] back into the
/// formula it encodes. Returns `None` on anything that is not a
/// complete, well-formed encoding. This is the inverse the snapshot
/// file format relies on: artifacts persist as their canonical
/// encodings, so the bytes on disk are the same bytes the cache keys
/// are made of.
pub fn parse_canonical(s: &str) -> Option<Formula> {
    fn parse(bytes: &[u8], pos: &mut usize) -> Option<Formula> {
        let head = *bytes.get(*pos)?;
        *pos += 1;
        match head {
            b'1' => Some(Formula::True),
            b'0' => Some(Formula::False),
            b'v' => {
                let start = *pos;
                while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
                    *pos += 1;
                }
                let n: u32 = std::str::from_utf8(&bytes[start..*pos])
                    .ok()?
                    .parse()
                    .ok()?;
                Some(Formula::var(revkb_logic::Var(n)))
            }
            b'!' => Some(parse(bytes, pos)?.not()),
            b'&' | b'|' => {
                let items = parse_list(bytes, pos)?;
                Some(if head == b'&' {
                    Formula::And(items)
                } else {
                    Formula::Or(items)
                })
            }
            b'>' | b'=' | b'^' => {
                let mut items = parse_list(bytes, pos)?;
                if items.len() != 2 {
                    return None;
                }
                let b = items.pop()?;
                let a = items.pop()?;
                Some(match head {
                    b'>' => a.implies(b),
                    b'=' => a.iff(b),
                    _ => a.xor(b),
                })
            }
            _ => None,
        }
    }

    // `(` items `)` — comma-separated, possibly empty (`&()` is ⊤,
    // `|()` is ⊥, exactly as the encoder renders them).
    fn parse_list(bytes: &[u8], pos: &mut usize) -> Option<Vec<Formula>> {
        if bytes.get(*pos) != Some(&b'(') {
            return None;
        }
        *pos += 1;
        let mut items = Vec::new();
        if bytes.get(*pos) == Some(&b')') {
            *pos += 1;
            return Some(items);
        }
        loop {
            items.push(parse(bytes, pos)?);
            match bytes.get(*pos)? {
                b',' => *pos += 1,
                b')' => {
                    *pos += 1;
                    return Some(items);
                }
                _ => return None,
            }
        }
    }

    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let f = parse(bytes, &mut pos)?;
    (pos == bytes.len()).then_some(f)
}

/// The canonical cache key of a compilation request.
pub fn cache_key(op: OpName, backend: Backend, t: &[Formula], ps: &[Formula]) -> String {
    let mut key = String::new();
    key.push_str(op.tag());
    key.push('|');
    key.push_str(backend.tag());
    key.push('|');
    for (i, f) in t.iter().enumerate() {
        if i > 0 {
            key.push(';');
        }
        canonical_formula(f, &mut key);
    }
    key.push('|');
    for (i, p) in ps.iter().enumerate() {
        if i > 0 {
            key.push(';');
        }
        canonical_formula(p, &mut key);
    }
    key
}

/// A cached compilation output: everything needed to rebuild a fresh
/// [`revkb_revision::CompactRep`] (solver sessions are per-KB state
/// and deliberately not cached).
#[derive(Debug, Clone)]
pub struct Artifact {
    /// The compiled representation formula `T'`.
    pub formula: Formula,
    /// The base alphabet the guarantee holds on.
    pub base: Vec<revkb_logic::Var>,
    /// Whether `T'` is logically equivalent (criterion (2)) rather
    /// than just query-equivalent (criterion (1)).
    pub logical: bool,
}

/// One cache slot: the artifact plus the sequence number of its most
/// recent touch.
#[derive(Debug)]
struct CacheEntry {
    artifact: Artifact,
    seq: u64,
}

/// A bounded least-recently-used map from [`cache_key`] strings to
/// [`Artifact`]s, with hit/miss/eviction counters.
///
/// Recency is O(1) amortized: every touch stamps the entry with a
/// fresh monotonic sequence number and pushes `(seq, key)` onto the
/// back of a queue, without removing the key's earlier queue entries.
/// Eviction pops from the front, skipping pairs whose sequence number
/// is stale (the key was touched again later, or removed). The queue
/// is compacted whenever it grows past twice the live entry count, so
/// its size stays O(len) and each queue slot is pushed and popped at
/// most once — unlike the previous implementation, whose
/// `VecDeque::position` scan made every warm hit O(capacity).
#[derive(Debug)]
pub struct ArtifactCache {
    capacity: usize,
    map: HashMap<String, CacheEntry>,
    /// Touch queue, oldest first; entries may be stale.
    order: VecDeque<(u64, String)>,
    next_seq: u64,
    /// Lookups that found an artifact.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries pushed out by the capacity bound.
    pub evictions: u64,
}

impl ArtifactCache {
    /// An empty cache holding at most `capacity` artifacts. Capacity 0
    /// disables caching (every lookup misses, nothing is stored).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::new(),
            order: VecDeque::new(),
            next_seq: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Artifacts currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterate the cached `(key, artifact)` pairs in unspecified
    /// order (used by WAL snapshots).
    pub fn entries(&self) -> impl Iterator<Item = (&String, &Artifact)> {
        self.map.iter().map(|(k, e)| (k, &e.artifact))
    }

    fn touch(&mut self, key: &str) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(entry) = self.map.get_mut(key) {
            entry.seq = seq;
        }
        self.order.push_back((seq, key.to_string()));
        // Stale pairs accumulate one per touch; compacting when they
        // outnumber live entries keeps the queue O(len) while doing
        // O(1) amortized work per touch.
        if self.order.len() > 2 * self.map.len() + 8 {
            let map = &self.map;
            self.order
                .retain(|(seq, key)| map.get(key).is_some_and(|e| e.seq == *seq));
        }
    }

    /// Look up a compilation output, refreshing its recency.
    pub fn get(&mut self, key: &str) -> Option<Artifact> {
        match self.map.get(key) {
            Some(entry) => {
                self.hits += 1;
                let artifact = entry.artifact.clone();
                self.touch(key);
                Some(artifact)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store a compilation output, evicting the least recently used
    /// entry if the cache is full.
    pub fn insert(&mut self, key: String, artifact: Artifact) {
        if self.capacity == 0 {
            return;
        }
        let replaced = self
            .map
            .insert(key.clone(), CacheEntry { artifact, seq: 0 })
            .is_some();
        self.touch(&key);
        if !replaced && self.map.len() > self.capacity {
            // Pop stale pairs until the front is a live LRU entry.
            while let Some((seq, oldest)) = self.order.pop_front() {
                if self.map.get(&oldest).is_some_and(|e| e.seq == seq) {
                    self.map.remove(&oldest);
                    self.evictions += 1;
                    break;
                }
            }
        }
    }
}

/// Node count of a formula tree — the size measure the workload
/// profiles use for revision and query inputs (connectives and leaves
/// both count one, matching the paper's formula-length measure up to a
/// constant factor).
pub fn formula_size(f: &Formula) -> u64 {
    match f {
        Formula::True | Formula::False | Formula::Var(_) => 1,
        Formula::Not(inner) => 1 + formula_size(inner),
        Formula::And(items) | Formula::Or(items) => 1 + items.iter().map(formula_size).sum::<u64>(),
        Formula::Implies(a, b) | Formula::Iff(a, b) | Formula::Xor(a, b) => {
            1 + formula_size(a) + formula_size(b)
        }
    }
}

/// Per-operator revise statistics inside a [`KbProfile`].
#[derive(Debug, Default, Clone, Copy)]
pub struct OpProfile {
    /// Revise commands accepted with this operator.
    pub revises: u64,
    /// Total node size of the revision input formulas.
    pub input_nodes_total: u64,
    /// Largest single revision input, in nodes.
    pub input_nodes_max: u64,
    /// Fresh compiles (cache misses that actually compiled).
    pub compiles: u64,
    /// Total compile latency across those compiles, in microseconds.
    pub compile_micros_total: u64,
    /// Slowest single compile, in microseconds.
    pub compile_micros_max: u64,
}

/// Rolling workload profile of one named KB: its query/revise mix,
/// input sizes, per-operator compile latencies, and cache behaviour.
/// Updated under the KB's own mutex on the hot paths (plain counter
/// bumps, no allocation beyond the first use of an operator) and
/// surfaced through `stats` and `/metrics` with a `kb` label — the
/// measured input a future cost-based planner chooses representations
/// from.
#[derive(Debug, Default, Clone)]
pub struct KbProfile {
    /// `query` / `query_batch` commands served.
    pub query_commands: u64,
    /// Individual query formulas answered (each batch member counts).
    pub queries: u64,
    /// Total node size of query formulas.
    pub query_nodes_total: u64,
    /// Largest single query formula, in nodes.
    pub query_nodes_max: u64,
    /// Artifact-cache hits attributable to this KB's revises.
    pub cache_hits: u64,
    /// Artifact-cache misses attributable to this KB's revises.
    pub cache_misses: u64,
    /// Per-operator revise statistics, in first-use order (tags are
    /// `OpName` tags, so the set is small and a Vec beats a map).
    pub ops: Vec<(&'static str, OpProfile)>,
}

impl KbProfile {
    /// The profile bucket for operator `tag`, created on first use.
    pub fn op_mut(&mut self, tag: &'static str) -> &mut OpProfile {
        if let Some(idx) = self.ops.iter().position(|(t, _)| *t == tag) {
            return &mut self.ops[idx].1;
        }
        self.ops.push((tag, OpProfile::default()));
        &mut self.ops.last_mut().expect("just pushed").1
    }

    /// Record one query command answering `count` formulas whose node
    /// sizes total `nodes_total` with maximum `nodes_max`.
    pub fn note_queries(&mut self, count: u64, nodes_total: u64, nodes_max: u64) {
        self.query_commands += 1;
        self.queries += count;
        self.query_nodes_total += nodes_total;
        self.query_nodes_max = self.query_nodes_max.max(nodes_max);
    }

    /// Record one accepted revise with operator `tag` whose input
    /// formula has `input_nodes` nodes.
    pub fn note_revise(&mut self, tag: &'static str, input_nodes: u64) {
        let op = self.op_mut(tag);
        op.revises += 1;
        op.input_nodes_total += input_nodes;
        op.input_nodes_max = op.input_nodes_max.max(input_nodes);
    }

    /// Record one fresh compile for operator `tag` taking `micros`.
    pub fn note_compile(&mut self, tag: &'static str, micros: u64) {
        let op = self.op_mut(tag);
        op.compiles += 1;
        op.compile_micros_total += micros;
        op.compile_micros_max = op.compile_micros_max.max(micros);
    }

    /// Artifact-cache hit ratio over this KB's revises, `None` before
    /// the cache was ever consulted for it.
    pub fn hit_ratio(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }
}

/// What kind of engine a KB currently runs (fixed by the first
/// revision; the iterated constructions are single-operator chains).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KbKind {
    /// Loaded, never revised: queries go against `T` itself.
    Unrevised,
    /// Revised with a model-based operator (possibly iterated).
    ModelBased(revkb_revision::ModelBasedOp),
    /// Revised once with GFUV.
    Gfuv,
    /// Revised with WIDTIO (possibly iterated).
    Widtio,
}

/// One named knowledge base: its parse signature (letter names are
/// per-KB), the loaded theory, the revision history, and the current
/// query engine.
pub struct KbState {
    /// The KB's name in the registry.
    pub name: String,
    /// Letter names for this KB's formulas.
    pub sig: Signature,
    /// The loaded theory (`;`-separated formulas at load time).
    pub theory: Vec<Formula>,
    /// Applied revision formulas, in order.
    pub revisions: Vec<Formula>,
    /// The engine kind (fixed by the first revise).
    pub kind: KbKind,
    /// The current query engine.
    pub engine: Box<dyn Engine + Send>,
    /// Whether the current engine came from a degraded (fallback)
    /// compilation after a timed-out preferred backend.
    pub degraded: bool,
    /// Queries answered against this KB since it was loaded.
    pub queries: u64,
    /// Rolling workload profile (query/revise mix, input sizes,
    /// compile latencies) surfaced by `stats` and `/metrics`.
    pub profile: KbProfile,
}

impl KbState {
    /// A freshly loaded, unrevised KB answering queries against `T`.
    pub fn new(name: String, sig: Signature, theory: Vec<Formula>) -> Self {
        let t = Formula::and_all(theory.iter().cloned());
        let base: Vec<_> = t.vars().into_iter().collect();
        let engine: Box<dyn Engine + Send> = Box::new(revkb_revision::CompactRep::logical(t, base));
        Self {
            name,
            sig,
            theory,
            revisions: Vec::new(),
            kind: KbKind::Unrevised,
            engine,
            degraded: false,
            queries: 0,
            profile: KbProfile::default(),
        }
    }

    /// The conjunction of the loaded theory.
    pub fn t(&self) -> Formula {
        Formula::and_all(self.theory.iter().cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revkb_logic::Var;
    use revkb_revision::ModelBasedOp;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    fn artifact(i: u32) -> Artifact {
        Artifact {
            formula: v(i),
            base: vec![Var(i)],
            logical: true,
        }
    }

    #[test]
    fn canonical_encoding_distinguishes_structure() {
        let mut pairs = Vec::new();
        for f in [
            v(0),
            v(1),
            v(0).not(),
            v(0).and(v(1)),
            v(0).or(v(1)),
            v(1).and(v(0)),
            v(0).implies(v(1)),
            v(0).iff(v(1)),
            v(0).xor(v(1)),
            Formula::True,
            Formula::False,
        ] {
            let mut enc = String::new();
            canonical_formula(&f, &mut enc);
            pairs.push((f, enc));
        }
        for (i, (fi, ei)) in pairs.iter().enumerate() {
            for (j, (fj, ej)) in pairs.iter().enumerate() {
                assert_eq!(i == j, ei == ej, "{fi:?} vs {fj:?}: {ei} vs {ej}");
            }
        }
    }

    #[test]
    fn cache_key_separates_operator_backend_and_history() {
        let t = [v(0).and(v(1))];
        let p1 = [v(0).not()];
        let p2 = [v(0).not(), v(1).not()];
        let k1 = cache_key(OpName::Model(ModelBasedOp::Dalal), Backend::Direct, &t, &p1);
        let k2 = cache_key(OpName::Model(ModelBasedOp::Weber), Backend::Direct, &t, &p1);
        let k3 = cache_key(OpName::Model(ModelBasedOp::Dalal), Backend::Bdd, &t, &p1);
        let k4 = cache_key(OpName::Model(ModelBasedOp::Dalal), Backend::Direct, &t, &p2);
        let again = cache_key(OpName::Model(ModelBasedOp::Dalal), Backend::Direct, &t, &p1);
        assert_eq!(k1, again);
        assert!(k1 != k2 && k1 != k3 && k1 != k4 && k2 != k3);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = ArtifactCache::new(2);
        cache.insert("a".into(), artifact(0));
        cache.insert("b".into(), artifact(1));
        assert!(cache.get("a").is_some()); // refresh a; b is now LRU
        cache.insert("c".into(), artifact(2)); // evicts b
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions, 1);
        assert!(cache.get("b").is_none());
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut cache = ArtifactCache::new(2);
        cache.insert("a".into(), artifact(0));
        cache.insert("b".into(), artifact(1));
        cache.insert("a".into(), artifact(5)); // overwrite, no eviction
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions, 0);
        assert_eq!(cache.get("a").unwrap().formula, v(5));
        // "b" is LRU now.
        cache.insert("c".into(), artifact(2));
        assert!(cache.get("b").is_none());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ArtifactCache::new(0);
        cache.insert("a".into(), artifact(0));
        assert!(cache.is_empty());
        assert!(cache.get("a").is_none());
        assert_eq!(cache.misses, 1);
    }

    #[test]
    fn canonical_encoding_round_trips_through_parse() {
        let cases = [
            Formula::True,
            Formula::False,
            v(0),
            v(123),
            v(0).not(),
            v(0).and(v(1)).not(),
            Formula::And(vec![]),
            Formula::Or(vec![]),
            Formula::And(vec![v(0), v(1), v(2)]),
            Formula::Or(vec![v(0).not(), v(1).and(v(2))]),
            v(0).implies(v(1)),
            v(0).iff(v(1).xor(v(2))),
            v(3).xor(v(4).implies(Formula::True)),
        ];
        for f in cases {
            let mut enc = String::new();
            canonical_formula(&f, &mut enc);
            let parsed = parse_canonical(&enc).unwrap_or_else(|| panic!("parse {enc}"));
            assert_eq!(parsed, f, "round trip of {enc}");
            let mut re = String::new();
            canonical_formula(&parsed, &mut re);
            assert_eq!(re, enc);
        }
    }

    #[test]
    fn parse_canonical_rejects_malformed_encodings() {
        for bad in [
            "",
            "v",
            "vx",
            "2",
            "&",
            "&(",
            "&(v0",
            "&(v0,)",
            ">(v0)",
            ">(v0,v1,v2)",
            "v0v1",
            "v0 ",
            "!(",
            "=(,v0)",
        ] {
            assert!(parse_canonical(bad).is_none(), "accepted {bad:?}");
        }
    }

    #[test]
    fn large_cache_keeps_exact_lru_order_under_heavy_touching() {
        // Regression for the O(capacity) recency scan: at this size
        // the old implementation made the loop below take quadratic
        // time, and any recency bug shows up as a wrong eviction.
        let n = 4096usize;
        let mut cache = ArtifactCache::new(n);
        for i in 0..n {
            cache.insert(format!("k{i}"), artifact(i as u32));
        }
        // Touch every entry except k0 several times, in a stride that
        // interleaves touches; k0 must stay the exact LRU victim.
        for round in 0..4u32 {
            for i in 1..n {
                let i = (i * 7919) % n;
                if i != 0 {
                    assert!(cache.get(&format!("k{i}")).is_some(), "round {round} k{i}");
                }
            }
        }
        assert_eq!(cache.len(), n);
        assert_eq!(cache.evictions, 0);
        cache.insert("straw".into(), artifact(9999));
        assert_eq!(cache.evictions, 1);
        assert!(cache.get("k0").is_none(), "k0 was the LRU victim");
        assert!(cache.get("k1").is_some());
        assert_eq!(cache.len(), n);
        // The touch queue stays bounded by the compaction rule.
        assert!(cache.order.len() <= 2 * cache.len() + 8);
    }

    #[test]
    fn entries_iterates_live_artifacts_only() {
        let mut cache = ArtifactCache::new(2);
        cache.insert("a".into(), artifact(0));
        cache.insert("b".into(), artifact(1));
        cache.insert("c".into(), artifact(2)); // evicts a
        let mut keys: Vec<_> = cache.entries().map(|(k, _)| k.clone()).collect();
        keys.sort();
        assert_eq!(keys, ["b", "c"]);
    }

    #[test]
    fn formula_size_counts_nodes() {
        assert_eq!(formula_size(&Formula::True), 1);
        assert_eq!(formula_size(&v(0)), 1);
        assert_eq!(formula_size(&v(0).not()), 2);
        assert_eq!(formula_size(&v(0).and(v(1))), 3);
        assert_eq!(formula_size(&Formula::And(vec![v(0), v(1), v(2)])), 4);
        assert_eq!(formula_size(&v(0).implies(v(1).xor(v(2)))), 5);
    }

    #[test]
    fn kb_profile_accumulates_workload_statistics() {
        let mut p = KbProfile::default();
        assert_eq!(p.hit_ratio(), None);
        p.note_queries(3, 12, 6);
        p.note_queries(1, 2, 2);
        assert_eq!(p.query_commands, 2);
        assert_eq!(p.queries, 4);
        assert_eq!(p.query_nodes_total, 14);
        assert_eq!(p.query_nodes_max, 6);
        p.note_revise("dalal", 5);
        p.note_revise("dalal", 9);
        p.note_revise("widtio", 2);
        p.note_compile("dalal", 100);
        p.note_compile("dalal", 40);
        p.cache_hits += 3;
        p.cache_misses += 1;
        let dalal = p.op_mut("dalal");
        assert_eq!(dalal.revises, 2);
        assert_eq!(dalal.input_nodes_total, 14);
        assert_eq!(dalal.input_nodes_max, 9);
        assert_eq!(dalal.compiles, 2);
        assert_eq!(dalal.compile_micros_total, 140);
        assert_eq!(dalal.compile_micros_max, 100);
        assert_eq!(p.op_mut("widtio").revises, 1);
        assert_eq!(p.ops.len(), 2);
        assert_eq!(p.hit_ratio(), Some(0.75));
    }

    #[test]
    fn fresh_kb_answers_against_t() {
        let mut sig = Signature::new();
        let t = revkb_logic::parse("a & b", &mut sig).unwrap();
        let mut kb = KbState::new("k".into(), sig, vec![t]);
        assert_eq!(kb.kind, KbKind::Unrevised);
        assert!(kb.engine.try_entails(&v(0)).unwrap());
        assert!(!kb.engine.try_entails(&v(0).not()).unwrap());
    }
}
