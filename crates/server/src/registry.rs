//! The named-KB registry and the compiled-artifact cache.
//!
//! Compiled revised bases are the expensive artefact the paper is
//! about — the whole point of a resident service is to keep them warm.
//! Two layers do that here:
//!
//! 1. each [`KbState`] keeps its current engine (and with it the
//!    incremental solver session) alive across requests, and
//! 2. the [`ArtifactCache`] remembers compilation *outputs* across
//!    KB lifetimes, keyed by a canonical encoding of
//!    `(operator, backend, T, P¹…Pᵐ)`, so re-loading and re-revising
//!    the same base — a common pattern when many clients mirror one
//!    upstream KB — skips the compile entirely.
//!
//! The cache key is the canonical *encoding*, not just its hash:
//! a 64-bit fingerprint would make a hash collision silently answer
//! queries against the wrong knowledge base, which is exactly the
//! class of bug this workspace refuses to have.

use crate::protocol::OpName;
use revkb_logic::{Formula, Signature};
use revkb_revision::api::Engine;
use revkb_revision::Backend;
use std::collections::{HashMap, VecDeque};

/// Write a canonical, parse-order-independent encoding of `f` into
/// `out`. Two structurally equal formulas (same tree, same `Var`
/// indices) encode identically; nothing else does.
pub fn canonical_formula(f: &Formula, out: &mut String) {
    match f {
        Formula::True => out.push('1'),
        Formula::False => out.push('0'),
        Formula::Var(v) => {
            out.push('v');
            out.push_str(&v.0.to_string());
        }
        Formula::Not(inner) => {
            out.push('!');
            canonical_formula(inner, out);
        }
        Formula::And(items) => {
            out.push_str("&(");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                canonical_formula(item, out);
            }
            out.push(')');
        }
        Formula::Or(items) => {
            out.push_str("|(");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                canonical_formula(item, out);
            }
            out.push(')');
        }
        Formula::Implies(a, b) => {
            out.push_str(">(");
            canonical_formula(a, out);
            out.push(',');
            canonical_formula(b, out);
            out.push(')');
        }
        Formula::Iff(a, b) => {
            out.push_str("=(");
            canonical_formula(a, out);
            out.push(',');
            canonical_formula(b, out);
            out.push(')');
        }
        Formula::Xor(a, b) => {
            out.push_str("^(");
            canonical_formula(a, out);
            out.push(',');
            canonical_formula(b, out);
            out.push(')');
        }
    }
}

/// The canonical cache key of a compilation request.
pub fn cache_key(op: OpName, backend: Backend, t: &[Formula], ps: &[Formula]) -> String {
    let mut key = String::new();
    key.push_str(op.tag());
    key.push('|');
    key.push_str(backend.tag());
    key.push('|');
    for (i, f) in t.iter().enumerate() {
        if i > 0 {
            key.push(';');
        }
        canonical_formula(f, &mut key);
    }
    key.push('|');
    for (i, p) in ps.iter().enumerate() {
        if i > 0 {
            key.push(';');
        }
        canonical_formula(p, &mut key);
    }
    key
}

/// A cached compilation output: everything needed to rebuild a fresh
/// [`revkb_revision::CompactRep`] (solver sessions are per-KB state
/// and deliberately not cached).
#[derive(Debug, Clone)]
pub struct Artifact {
    /// The compiled representation formula `T'`.
    pub formula: Formula,
    /// The base alphabet the guarantee holds on.
    pub base: Vec<revkb_logic::Var>,
    /// Whether `T'` is logically equivalent (criterion (2)) rather
    /// than just query-equivalent (criterion (1)).
    pub logical: bool,
}

/// A bounded least-recently-used map from [`cache_key`] strings to
/// [`Artifact`]s, with hit/miss/eviction counters.
#[derive(Debug)]
pub struct ArtifactCache {
    capacity: usize,
    map: HashMap<String, Artifact>,
    /// Recency order, least-recent first.
    order: VecDeque<String>,
    /// Lookups that found an artifact.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries pushed out by the capacity bound.
    pub evictions: u64,
}

impl ArtifactCache {
    /// An empty cache holding at most `capacity` artifacts. Capacity 0
    /// disables caching (every lookup misses, nothing is stored).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Artifacts currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up a compilation output, refreshing its recency.
    pub fn get(&mut self, key: &str) -> Option<Artifact> {
        match self.map.get(key) {
            Some(artifact) => {
                self.hits += 1;
                let artifact = artifact.clone();
                if let Some(pos) = self.order.iter().position(|k| k == key) {
                    self.order.remove(pos);
                    self.order.push_back(key.to_string());
                }
                Some(artifact)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store a compilation output, evicting the least recently used
    /// entry if the cache is full.
    pub fn insert(&mut self, key: String, artifact: Artifact) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(key.clone(), artifact).is_some() {
            if let Some(pos) = self.order.iter().position(|k| *k == key) {
                self.order.remove(pos);
            }
        } else if self.map.len() > self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
                self.evictions += 1;
            }
        }
        self.order.push_back(key);
    }
}

/// What kind of engine a KB currently runs (fixed by the first
/// revision; the iterated constructions are single-operator chains).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KbKind {
    /// Loaded, never revised: queries go against `T` itself.
    Unrevised,
    /// Revised with a model-based operator (possibly iterated).
    ModelBased(revkb_revision::ModelBasedOp),
    /// Revised once with GFUV.
    Gfuv,
    /// Revised with WIDTIO (possibly iterated).
    Widtio,
}

/// One named knowledge base: its parse signature (letter names are
/// per-KB), the loaded theory, the revision history, and the current
/// query engine.
pub struct KbState {
    /// The KB's name in the registry.
    pub name: String,
    /// Letter names for this KB's formulas.
    pub sig: Signature,
    /// The loaded theory (`;`-separated formulas at load time).
    pub theory: Vec<Formula>,
    /// Applied revision formulas, in order.
    pub revisions: Vec<Formula>,
    /// The engine kind (fixed by the first revise).
    pub kind: KbKind,
    /// The current query engine.
    pub engine: Box<dyn Engine + Send>,
    /// Whether the current engine came from a degraded (fallback)
    /// compilation after a timed-out preferred backend.
    pub degraded: bool,
    /// Queries answered against this KB since it was loaded.
    pub queries: u64,
}

impl KbState {
    /// A freshly loaded, unrevised KB answering queries against `T`.
    pub fn new(name: String, sig: Signature, theory: Vec<Formula>) -> Self {
        let t = Formula::and_all(theory.iter().cloned());
        let base: Vec<_> = t.vars().into_iter().collect();
        let engine: Box<dyn Engine + Send> = Box::new(revkb_revision::CompactRep::logical(t, base));
        Self {
            name,
            sig,
            theory,
            revisions: Vec::new(),
            kind: KbKind::Unrevised,
            engine,
            degraded: false,
            queries: 0,
        }
    }

    /// The conjunction of the loaded theory.
    pub fn t(&self) -> Formula {
        Formula::and_all(self.theory.iter().cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revkb_logic::Var;
    use revkb_revision::ModelBasedOp;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    fn artifact(i: u32) -> Artifact {
        Artifact {
            formula: v(i),
            base: vec![Var(i)],
            logical: true,
        }
    }

    #[test]
    fn canonical_encoding_distinguishes_structure() {
        let mut pairs = Vec::new();
        for f in [
            v(0),
            v(1),
            v(0).not(),
            v(0).and(v(1)),
            v(0).or(v(1)),
            v(1).and(v(0)),
            v(0).implies(v(1)),
            v(0).iff(v(1)),
            v(0).xor(v(1)),
            Formula::True,
            Formula::False,
        ] {
            let mut enc = String::new();
            canonical_formula(&f, &mut enc);
            pairs.push((f, enc));
        }
        for (i, (fi, ei)) in pairs.iter().enumerate() {
            for (j, (fj, ej)) in pairs.iter().enumerate() {
                assert_eq!(i == j, ei == ej, "{fi:?} vs {fj:?}: {ei} vs {ej}");
            }
        }
    }

    #[test]
    fn cache_key_separates_operator_backend_and_history() {
        let t = [v(0).and(v(1))];
        let p1 = [v(0).not()];
        let p2 = [v(0).not(), v(1).not()];
        let k1 = cache_key(OpName::Model(ModelBasedOp::Dalal), Backend::Direct, &t, &p1);
        let k2 = cache_key(OpName::Model(ModelBasedOp::Weber), Backend::Direct, &t, &p1);
        let k3 = cache_key(OpName::Model(ModelBasedOp::Dalal), Backend::Bdd, &t, &p1);
        let k4 = cache_key(OpName::Model(ModelBasedOp::Dalal), Backend::Direct, &t, &p2);
        let again = cache_key(OpName::Model(ModelBasedOp::Dalal), Backend::Direct, &t, &p1);
        assert_eq!(k1, again);
        assert!(k1 != k2 && k1 != k3 && k1 != k4 && k2 != k3);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = ArtifactCache::new(2);
        cache.insert("a".into(), artifact(0));
        cache.insert("b".into(), artifact(1));
        assert!(cache.get("a").is_some()); // refresh a; b is now LRU
        cache.insert("c".into(), artifact(2)); // evicts b
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions, 1);
        assert!(cache.get("b").is_none());
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut cache = ArtifactCache::new(2);
        cache.insert("a".into(), artifact(0));
        cache.insert("b".into(), artifact(1));
        cache.insert("a".into(), artifact(5)); // overwrite, no eviction
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions, 0);
        assert_eq!(cache.get("a").unwrap().formula, v(5));
        // "b" is LRU now.
        cache.insert("c".into(), artifact(2));
        assert!(cache.get("b").is_none());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ArtifactCache::new(0);
        cache.insert("a".into(), artifact(0));
        assert!(cache.is_empty());
        assert!(cache.get("a").is_none());
        assert_eq!(cache.misses, 1);
    }

    #[test]
    fn fresh_kb_answers_against_t() {
        let mut sig = Signature::new();
        let t = revkb_logic::parse("a & b", &mut sig).unwrap();
        let mut kb = KbState::new("k".into(), sig, vec![t]);
        assert_eq!(kb.kind, KbKind::Unrevised);
        assert!(kb.engine.try_entails(&v(0)).unwrap());
        assert!(!kb.engine.try_entails(&v(0).not()).unwrap());
    }
}
