//! # revkb-server
//!
//! A persistent multi-client revision service over the workspace's
//! compiled-revision engines — the operational shape the paper's
//! complexity results suggest: compiling `T * P` is the expensive,
//! *offline* step, so a long-running process that compiles once and
//! answers many queries (for many clients, against many named bases)
//! amortises exactly the cost the compact-representation theorems
//! bound.
//!
//! The pieces:
//!
//! - [`json`]: a dependency-free strict JSON parser/emitter (the
//!   workspace builds offline; no serde);
//! - [`protocol`]: the NDJSON request/response envelope, command set
//!   and stable error codes;
//! - [`registry`]: named [`registry::KbState`]s plus the
//!   [`registry::ArtifactCache`] — an LRU over canonical
//!   `(operator, backend, T, P…)` keys so recompiling a base another
//!   client already compiled is free;
//! - [`server`]: admission control, per-request deadlines, compile
//!   degradation, and the stdio/TCP serving loops;
//! - [`wal`]: the durable store — an append-only, checksummed
//!   write-ahead log of committed mutations plus periodic artifact
//!   snapshots, replayed on boot so a restarted server serves warm
//!   answers immediately;
//! - [`replica`]: the building blocks for WAL replication — the
//!   record splitter that reassembles shipped frames, reconnect
//!   backoff, and the replica's durable-offset state machine;
//! - [`metrics`]: always-on counters for the `stats` command, mirrored
//!   into `revkb-obs` instruments when tracing is enabled;
//! - [`http`]: the repo's one hand-rolled, zero-dependency HTTP/1.1
//!   layer — request parsing (bodies, keep-alive, chunked encoding)
//!   and response serialisation shared by the sidecar metrics plane
//!   behind `--metrics-addr` (Prometheus `/metrics`, JSON
//!   `/stats.json` / `/series.json`, probes `/healthz` / `/readyz`)
//!   and the event loop's JSON gateway;
//! - [`event_loop`]: the epoll-based non-blocking front end — one
//!   readiness thread multiplexing thousands of pipelined line- or
//!   HTTP-protocol connections onto the existing worker/admission
//!   machinery.
//!
//! See `crates/server/PROTOCOL.md` for the wire format.

// The only unsafe in the workspace is the thin epoll/rlimit syscall
// shim in `event_loop::sys`; everything else stays forbidden by the
// lint below plus scoped `allow`s.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod event_loop;
pub mod http;
pub mod json;
pub mod metrics;
pub mod protocol;
pub mod registry;
pub mod replica;
pub mod server;
pub mod wal;

pub use http::METRICS_ADDR_ENV;
pub use json::Json;
pub use protocol::{Command, OpName, Request, Response, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};
pub use registry::{cache_key, parse_canonical, Artifact, ArtifactCache, KbKind, KbState};
pub use replica::ReplStatus;
pub use server::{Server, ServerConfig};
pub use wal::{RecoveryReport, SyncMode, WalOp};
