//! The wire protocol: line-delimited JSON requests and responses.
//!
//! One request per line, one response per line, matched by the
//! client-chosen `id` field (echoed verbatim — number or string).
//! Responses are
//! `{"v":2,"id":…,"req":N,"trace":"…","ok":true,"result":{…}}` on
//! success and
//! `{"v":2,"id":…,"req":N,"trace":"…","ok":false,"code":"…","error":"…"}`
//! on failure, where `v` is the protocol version
//! ([`PROTOCOL_VERSION`]), `req` is the server-assigned monotonic
//! request id —
//! the same number every `server.*` telemetry span and `slow_log`
//! entry for that request carries, so wire lines and traces
//! correlate — and `trace` is the 16-hex-digit trace id (taken from
//! the request's optional `trace` field or the HTTP gateway's
//! `traceparent` header, generated server-side otherwise). The
//! `code` strings for engine-level failures are exactly
//! [`revkb_revision::Error::code`]; the protocol adds its own codes
//! for transport-level conditions ([`codes`]).
//!
//! See `crates/server/PROTOCOL.md` for the full command reference with
//! examples.

use crate::json::Json;
use revkb_obs as obs;
use revkb_revision::{Backend, ModelBasedOp};

/// The protocol version this server speaks. Every response envelope
/// carries it as `"v"`. Requests may pin a version with an optional
/// `"v"` field; versions outside
/// [`MIN_PROTOCOL_VERSION`]`..=`[`PROTOCOL_VERSION`] are rejected with
/// `bad_request`.
pub const PROTOCOL_VERSION: u64 = 2;

/// The oldest protocol version still accepted in a request's `"v"`
/// field. Version 1 is the pre-`v` envelope: same commands, same error
/// codes, responses without the `"v"` key.
pub const MIN_PROTOCOL_VERSION: u64 = 1;

/// Protocol-level error codes (engine-level codes come verbatim from
/// [`revkb_revision::Error::code`]).
pub mod codes {
    /// The request line is not valid JSON or not a valid request.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The named knowledge base does not exist.
    pub const UNKNOWN_KB: &str = "unknown_kb";
    /// A revise used a different operator than the KB's history; the
    /// iterated constructions are single-operator chains.
    pub const OPERATOR_MISMATCH: &str = "operator_mismatch";
    /// The request was rejected by admission control: too many
    /// requests already in flight. Back off and retry.
    pub const OVERLOADED: &str = "overloaded";
    /// The request's deadline expired before it could be answered.
    pub const TIMEOUT: &str = "timeout";
    /// The server is shutting down.
    pub const SHUTTING_DOWN: &str = "shutting_down";
    /// The command is valid but not supported for this KB state
    /// (e.g. a second revision of a GFUV base).
    pub const UNSUPPORTED: &str = "unsupported";
    /// The server is a replica (`--replica-of`): it serves reads and
    /// control plane only; writes belong on the primary.
    pub const READ_ONLY: &str = "read_only";
    /// Replication divergence: the record checksums at the resume
    /// offset disagree, so one side's log is not a prefix of the
    /// other's. A diverged replica refuses to serve rather than
    /// answer from a history that is not the primary's.
    pub const DIVERGED: &str = "diverged";
}

/// Which revision operator a `revise` request names: one of the six
/// model-based operators or one of the two formula-based ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpName {
    /// A model-based operator (Winslett, Borgida, Forbus, Satoh,
    /// Dalal, Weber).
    Model(ModelBasedOp),
    /// GFUV possible-worlds revision.
    Gfuv,
    /// When In Doubt Throw It Out.
    Widtio,
}

impl OpName {
    /// Wire tag of the operator.
    pub fn tag(self) -> &'static str {
        match self {
            OpName::Model(op) => match op {
                ModelBasedOp::Winslett => "winslett",
                ModelBasedOp::Borgida => "borgida",
                ModelBasedOp::Forbus => "forbus",
                ModelBasedOp::Satoh => "satoh",
                ModelBasedOp::Dalal => "dalal",
                ModelBasedOp::Weber => "weber",
            },
            OpName::Gfuv => "gfuv",
            OpName::Widtio => "widtio",
        }
    }

    /// Parse a wire tag (the same names the CLI accepts).
    pub fn from_tag(tag: &str) -> Option<OpName> {
        match tag.to_ascii_lowercase().as_str() {
            "gfuv" | "nebel" => Some(OpName::Gfuv),
            "widtio" => Some(OpName::Widtio),
            other => ModelBasedOp::from_name(other).map(OpName::Model),
        }
    }

    /// All eight operators, for sweeps and tests.
    pub const ALL: [OpName; 8] = [
        OpName::Model(ModelBasedOp::Winslett),
        OpName::Model(ModelBasedOp::Borgida),
        OpName::Model(ModelBasedOp::Forbus),
        OpName::Model(ModelBasedOp::Satoh),
        OpName::Model(ModelBasedOp::Dalal),
        OpName::Model(ModelBasedOp::Weber),
        OpName::Gfuv,
        OpName::Widtio,
    ];
}

/// A parsed request: the command plus the request-level envelope
/// fields (`id`, `deadline_ms`, `trace`).
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: Option<Json>,
    /// Per-request deadline in milliseconds (admission + execution
    /// must start within it). Absent means the server default.
    pub deadline_ms: Option<u64>,
    /// Requested protocol version (the optional `"v"` field). Absent
    /// means "whatever the server speaks".
    pub version: Option<u64>,
    /// Trace id (the optional `"trace"` field, 1–32 hex digits, or a
    /// `traceparent` header on the HTTP gateway). Absent means the
    /// server generates one; either way the response echoes it.
    pub trace: Option<u64>,
    /// The command.
    pub cmd: Command,
}

/// Every command the server understands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Create (or replace) a named KB from a `;`-separated theory.
    Load {
        /// KB name.
        kb: String,
        /// Theory text, `;`-separated formulas.
        t: String,
    },
    /// Revise a named KB: `T * P` under the given operator.
    Revise {
        /// KB name.
        kb: String,
        /// Operator tag.
        op: OpName,
        /// Revision formula text.
        p: String,
        /// Compilation backend (model-based ops only).
        backend: Backend,
    },
    /// Single entailment query.
    Query {
        /// KB name.
        kb: String,
        /// Query formula text.
        q: String,
    },
    /// Batch entailment query (answers come back index-aligned).
    QueryBatch {
        /// KB name.
        kb: String,
        /// Query formula texts.
        qs: Vec<String>,
    },
    /// List the registry.
    List,
    /// Server counters and cache statistics.
    Stats,
    /// Remove a named KB.
    Drop {
        /// KB name.
        kb: String,
    },
    /// Liveness probe.
    Ping,
    /// Protocol negotiation: report the server's name, version, and
    /// the protocol version range it accepts.
    Hello,
    /// Stop accepting work and shut down cleanly.
    Shutdown,
    /// Switch this TCP connection into a replication stream: after a
    /// JSON handshake response, the primary ships raw committed WAL
    /// records (v1 framing) from `offset` and tails the log until the
    /// replica disconnects. Only meaningful on a TCP connection.
    Replicate {
        /// Byte offset into the primary's `wal.log` (including the
        /// 8-byte magic) to resume from. Anything below the magic
        /// length means "from the beginning".
        offset: u64,
        /// Payload length of the replica's last durable record
        /// (0 when resuming from the beginning).
        last_len: u32,
        /// CRC-32 of the replica's last durable record's payload.
        last_crc: u32,
        /// Ship the primary's current artifact snapshot in the
        /// handshake response (hex-encoded), to pre-warm the
        /// replica's cache on bootstrap.
        snapshot: bool,
    },
}

impl Command {
    /// The wire tag of the command — the key under which the server
    /// buckets per-request-type latency in `stats`, and the `cmd`
    /// field of `slow_log` entries.
    pub fn tag(&self) -> &'static str {
        match self {
            Command::Load { .. } => "load",
            Command::Revise { .. } => "revise",
            Command::Query { .. } => "query",
            Command::QueryBatch { .. } => "query_batch",
            Command::List => "list",
            Command::Stats => "stats",
            Command::Drop { .. } => "drop",
            Command::Ping => "ping",
            Command::Hello => "hello",
            Command::Shutdown => "shutdown",
            Command::Replicate { .. } => "replicate",
        }
    }
}

/// Why a request line could not be turned into a [`Request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// The echoable id, if the line parsed far enough to have one.
    pub id: Option<String>,
    /// The client's trace id, if the line parsed far enough to carry
    /// a well-formed one — salvaged like `id`, so even a rejected
    /// request joins the trace the client asked for.
    pub trace: Option<u64>,
    /// Human-readable description.
    pub message: String,
}

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

/// Parse one request line. On error, returns the echoable `id` (when
/// the line was at least a JSON object) plus a message.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let value = Json::parse(line).map_err(|e| RequestError {
        id: None,
        trace: None,
        message: e.to_string(),
    })?;
    let id = value.get("id").cloned();
    let salvaged_trace = value
        .get("trace")
        .and_then(Json::as_str)
        .and_then(obs::parse_trace_id);
    let fail = |message: String| RequestError {
        id: id.as_ref().map(Json::render),
        trace: salvaged_trace,
        message,
    };
    if !matches!(value, Json::Obj(_)) {
        return Err(fail("request must be a JSON object".to_string()));
    }
    match &id {
        None | Some(Json::Num(_)) | Some(Json::Str(_)) => {}
        Some(_) => return Err(fail("id must be a number or a string".to_string())),
    }
    let deadline_ms = match value.get("deadline_ms") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| fail("deadline_ms must be a non-negative integer".to_string()))?,
        ),
    };
    let version = match value.get("v") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| fail("v must be a non-negative integer".to_string()))?,
        ),
    };
    let trace = match value.get("trace") {
        None => None,
        Some(v) => Some(
            v.as_str()
                .and_then(obs::parse_trace_id)
                .ok_or_else(|| fail("trace must be a nonzero hex-digit string".to_string()))?,
        ),
    };
    let cmd_tag = field(&value, "cmd").map_err(&fail)?;
    let cmd = match cmd_tag {
        "load" => Command::Load {
            kb: field(&value, "kb").map_err(&fail)?.to_string(),
            t: field(&value, "t").map_err(&fail)?.to_string(),
        },
        "revise" => {
            let op_tag = field(&value, "op").map_err(&fail)?;
            let op = OpName::from_tag(op_tag)
                .ok_or_else(|| fail(format!("unknown operator {op_tag:?}")))?;
            let backend = match value.get("backend") {
                None => Backend::Direct,
                Some(v) => {
                    let tag = v
                        .as_str()
                        .ok_or_else(|| fail("backend must be a string".to_string()))?;
                    Backend::from_tag(tag)
                        .ok_or_else(|| fail(format!("unknown backend {tag:?}")))?
                }
            };
            Command::Revise {
                kb: field(&value, "kb").map_err(&fail)?.to_string(),
                op,
                p: field(&value, "p").map_err(&fail)?.to_string(),
                backend,
            }
        }
        "query" => Command::Query {
            kb: field(&value, "kb").map_err(&fail)?.to_string(),
            q: field(&value, "q").map_err(&fail)?.to_string(),
        },
        "query_batch" => {
            let qs = value
                .get("qs")
                .and_then(Json::as_array)
                .ok_or_else(|| fail("missing or non-array field \"qs\"".to_string()))?;
            let qs: Result<Vec<String>, RequestError> = qs
                .iter()
                .map(|q| {
                    q.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| fail("qs must contain only strings".to_string()))
                })
                .collect();
            Command::QueryBatch {
                kb: field(&value, "kb").map_err(&fail)?.to_string(),
                qs: qs?,
            }
        }
        "list" => Command::List,
        "stats" => Command::Stats,
        "drop" => Command::Drop {
            kb: field(&value, "kb").map_err(&fail)?.to_string(),
        },
        "ping" => Command::Ping,
        "hello" => Command::Hello,
        "shutdown" => Command::Shutdown,
        "replicate" => {
            let offset = match value.get("offset") {
                None => 0,
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| fail("offset must be a non-negative integer".to_string()))?,
            };
            let small_u32 = |key: &str| -> Result<u32, RequestError> {
                match value.get(key) {
                    None => Ok(0),
                    Some(v) => v
                        .as_u64()
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| fail(format!("{key} must be a u32"))),
                }
            };
            Command::Replicate {
                offset,
                last_len: small_u32("last_len")?,
                last_crc: small_u32("last_crc")?,
                snapshot: value
                    .get("snapshot")
                    .map(|v| {
                        v.as_bool()
                            .ok_or_else(|| fail("snapshot must be a boolean".to_string()))
                    })
                    .transpose()?
                    .unwrap_or(false),
            }
        }
        other => return Err(fail(format!("unknown command {other:?}"))),
    };
    Ok(Request {
        id,
        deadline_ms,
        version,
        trace,
        cmd,
    })
}

/// A response envelope, not yet rendered to its wire line. This is
/// the transport-agnostic return value of `Server::execute`: stdio,
/// blocking TCP, the event loop, and the HTTP gateway all render the
/// same [`Response`] with [`Response::render`].
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echoed client correlation id (`None` renders as `null`).
    pub id: Option<Json>,
    /// Server-assigned monotonic request id.
    pub req: u64,
    /// Trace id — the client's, or one the server generated. Rendered
    /// as 16 lowercase hex digits next to `req`.
    pub trace: u64,
    /// `Ok(result)` on success, `Err((code, message))` on failure.
    pub result: Result<Json, (String, String)>,
}

impl Response {
    /// Build a success envelope.
    pub fn ok(id: Option<Json>, req: u64, trace: u64, result: Json) -> Response {
        Response {
            id,
            req,
            trace,
            result: Ok(result),
        }
    }

    /// Build an error envelope.
    pub fn err(
        id: Option<Json>,
        req: u64,
        trace: u64,
        code: &str,
        message: impl Into<String>,
    ) -> Response {
        Response {
            id,
            req,
            trace,
            result: Err((code.to_string(), message.into())),
        }
    }

    /// Whether this is a success envelope.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }

    /// The error code, when this is an error envelope.
    pub fn code(&self) -> Option<&str> {
        match &self.result {
            Ok(_) => None,
            Err((code, _)) => Some(code.as_str()),
        }
    }

    /// Render the one-line wire form (no trailing newline).
    pub fn render(&self) -> String {
        match &self.result {
            Ok(result) => ok_response(&self.id, self.req, self.trace, result.clone()),
            Err((code, message)) => err_response(&self.id, self.req, self.trace, code, message),
        }
    }
}

/// Render a success response line (no trailing newline). `req` is the
/// server-assigned monotonic request id and `trace` the trace id, both
/// echoed for telemetry correlation.
pub fn ok_response(id: &Option<Json>, req: u64, trace: u64, result: Json) -> String {
    Json::obj([
        ("v", Json::Num(PROTOCOL_VERSION as f64)),
        ("id", id.clone().unwrap_or(Json::Null)),
        ("req", Json::Num(req as f64)),
        ("trace", Json::Str(obs::format_trace_id(trace))),
        ("ok", Json::Bool(true)),
        ("result", result),
    ])
    .render()
}

/// Render an error response line (no trailing newline). `req` is the
/// server-assigned monotonic request id and `trace` the trace id, both
/// echoed for telemetry correlation.
pub fn err_response(id: &Option<Json>, req: u64, trace: u64, code: &str, message: &str) -> String {
    Json::obj([
        ("v", Json::Num(PROTOCOL_VERSION as f64)),
        ("id", id.clone().unwrap_or(Json::Null)),
        ("req", Json::Num(req as f64)),
        ("trace", Json::Str(obs::format_trace_id(trace))),
        ("ok", Json::Bool(false)),
        ("code", Json::str(code)),
        ("error", Json::str(message)),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        let cases = [
            (r#"{"id":1,"cmd":"load","kb":"k","t":"a & b"}"#, "load"),
            (
                r#"{"id":"x","cmd":"revise","kb":"k","op":"dalal","p":"!a"}"#,
                "revise",
            ),
            (r#"{"cmd":"query","kb":"k","q":"b"}"#, "query"),
            (
                r#"{"cmd":"query_batch","kb":"k","qs":["a","b"]}"#,
                "query_batch",
            ),
            (r#"{"cmd":"list"}"#, "list"),
            (r#"{"cmd":"stats"}"#, "stats"),
            (r#"{"cmd":"drop","kb":"k"}"#, "drop"),
            (r#"{"cmd":"ping"}"#, "ping"),
            (r#"{"cmd":"hello"}"#, "hello"),
            (r#"{"cmd":"shutdown"}"#, "shutdown"),
            (
                r#"{"cmd":"replicate","offset":8,"last_len":0,"last_crc":0,"snapshot":true}"#,
                "replicate",
            ),
        ];
        for (line, tag) in cases {
            let req = parse_request(line).unwrap_or_else(|e| panic!("{line}: {e:?}"));
            let ok = matches!(
                (&req.cmd, tag),
                (Command::Load { .. }, "load")
                    | (Command::Revise { .. }, "revise")
                    | (Command::Query { .. }, "query")
                    | (Command::QueryBatch { .. }, "query_batch")
                    | (Command::List, "list")
                    | (Command::Stats, "stats")
                    | (Command::Drop { .. }, "drop")
                    | (Command::Ping, "ping")
                    | (Command::Hello, "hello")
                    | (Command::Shutdown, "shutdown")
                    | (Command::Replicate { .. }, "replicate")
            );
            assert!(ok, "{line} parsed as {:?}", req.cmd);
        }
    }

    #[test]
    fn replicate_fields_parse_and_default() {
        let req = parse_request(
            r#"{"cmd":"replicate","offset":123,"last_len":17,"last_crc":4042322160,"snapshot":true}"#,
        )
        .unwrap();
        assert_eq!(
            req.cmd,
            Command::Replicate {
                offset: 123,
                last_len: 17,
                last_crc: 0xF0F0_F0F0,
                snapshot: true,
            }
        );
        // Everything defaults to "bootstrap from the beginning".
        let req = parse_request(r#"{"cmd":"replicate"}"#).unwrap();
        assert_eq!(
            req.cmd,
            Command::Replicate {
                offset: 0,
                last_len: 0,
                last_crc: 0,
                snapshot: false,
            }
        );
        for bad in [
            r#"{"cmd":"replicate","offset":-1}"#,
            r#"{"cmd":"replicate","last_len":5000000000}"#,
            r#"{"cmd":"replicate","snapshot":"yes"}"#,
        ] {
            assert!(parse_request(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn envelope_fields() {
        let req = parse_request(r#"{"id":7,"deadline_ms":250,"cmd":"ping"}"#).unwrap();
        assert_eq!(req.id, Some(Json::Num(7.0)));
        assert_eq!(req.deadline_ms, Some(250));
        assert_eq!(req.version, None);
        assert_eq!(req.trace, None);
        let req = parse_request(r#"{"v":2,"cmd":"ping"}"#).unwrap();
        assert_eq!(req.version, Some(2));
        let req = parse_request(r#"{"cmd":"ping","trace":"00f0000000000abc"}"#).unwrap();
        assert_eq!(req.trace, Some(0x00f0_0000_0000_0abc));
        // The 32-digit W3C form keeps its low 64 bits.
        let req =
            parse_request(r#"{"cmd":"ping","trace":"0af7651916cd43dd8448eb211c80319c"}"#).unwrap();
        assert_eq!(req.trace, Some(0x8448_eb21_1c80_319c));
        // Unknown envelope fields are tolerated (forward compatibility).
        let req = parse_request(r#"{"cmd":"ping","someday":true}"#).unwrap();
        assert_eq!(req.cmd, Command::Ping);
    }

    #[test]
    fn rejects_malformed_requests() {
        for line in [
            "",
            "garbage",
            "[]",
            r#""just a string""#,
            r#"{"cmd":"load","kb":"k"}"#,
            r#"{"cmd":"revise","kb":"k","op":"nope","p":"a"}"#,
            r#"{"cmd":"revise","kb":"k","op":"dalal","p":"a","backend":"qbf"}"#,
            r#"{"cmd":"frobnicate"}"#,
            r#"{"cmd":"query_batch","kb":"k","qs":[1]}"#,
            r#"{"id":[1],"cmd":"ping"}"#,
            r#"{"cmd":"ping","deadline_ms":-3}"#,
            r#"{"cmd":"ping","deadline_ms":1.5}"#,
            r#"{"cmd":"ping","v":"two"}"#,
            r#"{"cmd":"ping","v":-1}"#,
            r#"{"cmd":"ping","trace":17}"#,
            r#"{"cmd":"ping","trace":""}"#,
            r#"{"cmd":"ping","trace":"0000000000000000"}"#,
            r#"{"cmd":"ping","trace":"not-hex"}"#,
        ] {
            assert!(parse_request(line).is_err(), "accepted {line:?}");
        }
    }

    #[test]
    fn error_keeps_echoable_id() {
        let err = parse_request(r#"{"id":42,"cmd":"nope"}"#).unwrap_err();
        assert_eq!(err.id.as_deref(), Some("42"));
        let err = parse_request("not json").unwrap_err();
        assert_eq!(err.id, None);
    }

    #[test]
    fn response_shapes_are_pinned() {
        assert_eq!(
            ok_response(
                &Some(Json::Num(1.0)),
                3,
                0xabc,
                Json::obj([("pong", Json::Bool(true))])
            ),
            r#"{"v":2,"id":1,"req":3,"trace":"0000000000000abc","ok":true,"result":{"pong":true}}"#
        );
        assert_eq!(
            err_response(&None, 4, 0xdef, codes::BAD_REQUEST, "nope"),
            r#"{"v":2,"id":null,"req":4,"trace":"0000000000000def","ok":false,"code":"bad_request","error":"nope"}"#
        );
    }

    #[test]
    fn response_struct_renders_both_shapes() {
        let ok = Response::ok(
            Some(Json::Num(1.0)),
            3,
            7,
            Json::obj([("pong", Json::Bool(true))]),
        );
        assert!(ok.is_ok());
        assert_eq!(ok.code(), None);
        assert_eq!(
            ok.render(),
            ok_response(&ok.id, 3, 7, Json::obj([("pong", Json::Bool(true))]))
        );
        let err = Response::err(None, 4, 7, codes::TIMEOUT, "too slow");
        assert!(!err.is_ok());
        assert_eq!(err.code(), Some("timeout"));
        assert_eq!(
            err.render(),
            err_response(&None, 4, 7, codes::TIMEOUT, "too slow")
        );
    }

    #[test]
    fn command_tags_cover_every_command() {
        let cases: [(Command, &str); 11] = [
            (
                Command::Load {
                    kb: "k".into(),
                    t: "a".into(),
                },
                "load",
            ),
            (
                Command::Revise {
                    kb: "k".into(),
                    op: OpName::Model(ModelBasedOp::Dalal),
                    p: "a".into(),
                    backend: Backend::Direct,
                },
                "revise",
            ),
            (
                Command::Query {
                    kb: "k".into(),
                    q: "a".into(),
                },
                "query",
            ),
            (
                Command::QueryBatch {
                    kb: "k".into(),
                    qs: vec![],
                },
                "query_batch",
            ),
            (Command::List, "list"),
            (Command::Stats, "stats"),
            (Command::Drop { kb: "k".into() }, "drop"),
            (Command::Ping, "ping"),
            (Command::Hello, "hello"),
            (Command::Shutdown, "shutdown"),
            (
                Command::Replicate {
                    offset: 8,
                    last_len: 0,
                    last_crc: 0,
                    snapshot: false,
                },
                "replicate",
            ),
        ];
        for (cmd, tag) in cases {
            assert_eq!(cmd.tag(), tag);
        }
    }

    #[test]
    fn op_tags_round_trip() {
        for op in OpName::ALL {
            assert_eq!(OpName::from_tag(op.tag()), Some(op), "{}", op.tag());
        }
        assert_eq!(OpName::from_tag("nebel"), Some(OpName::Gfuv));
        assert_eq!(OpName::from_tag("zzz"), None);
    }
}
