//! Durable storage for the registry: a write-ahead revision log with
//! crash-safe replay, plus periodic compiled-artifact snapshots.
//!
//! The paper's premise is that the compiled revised base `T'` is the
//! expensive artifact worth keeping — so a server that forgets every
//! named KB on restart throws away exactly the thing the
//! compact-representation theorems price. With a `--data-dir`, the
//! server appends every **committed** mutation (`load` / `revise` /
//! `drop`) to an append-only log and periodically dumps the
//! [`ArtifactCache`](crate::registry::ArtifactCache) — keyed by the
//! same canonical formula encoding used for cache lookups — to a
//! snapshot file. On boot, the snapshot pre-warms the cache and the
//! log is replayed: every model-based revise in the log then *hits*
//! the cache instead of recompiling, so the first client query after a
//! crash is a warm answer.
//!
//! ## On-disk format (version 1, pinned by a golden-file test)
//!
//! `wal.log` is the 8-byte magic `REVKBW1\n` followed by records:
//!
//! ```text
//! record  := len:u32le  crc:u32le  payload[len]     (crc = CRC-32/IEEE of payload)
//! payload := 'L' str(kb) str(t)                      load
//!          | 'R' str(kb) str(op) str(p) str(backend) revise
//!          | 'D' str(kb)                             drop
//! str     := len:u32le bytes[len]                    (UTF-8)
//! ```
//!
//! `snapshot.bin` is the magic `REVKBS1\n` followed by records framed
//! the same way, one per cached artifact:
//!
//! ```text
//! payload := str(cache_key) str(canonical_formula) n:u32le var:u32le × n logical:u8
//! ```
//!
//! ## Crash safety
//!
//! A record is appended only **after** the operation succeeded in
//! memory, and (under the default `REVKB_WAL_SYNC=always`) `sync_all`
//! runs before the append returns — so a record in the log is a
//! committed operation, and a crash can lose at most an operation
//! whose response the client never saw. Replay reads records until the
//! first short, checksum-failing, or undecodable one and truncates the
//! file there: a torn tail can never apply a partial revise.
//! Snapshots are written to `snapshot.tmp`, synced, then renamed, so a
//! crash mid-snapshot leaves the previous snapshot intact; a corrupt
//! snapshot is ignored (replay recompiles — slower, never wrong).

use crate::registry::{parse_canonical, Artifact};
use revkb_logic::Var;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Environment variable naming the durable data directory
/// (equivalent to `--data-dir`). Unset means no persistence.
pub const DATA_DIR_ENV: &str = "REVKB_SERVER_DATA_DIR";
/// Environment variable selecting the fsync discipline
/// (`always` | `batch` | `off`, default `always`).
pub const SYNC_ENV: &str = "REVKB_WAL_SYNC";
/// Environment variable setting how many logged revises elapse between
/// artifact snapshots (0 disables snapshots; default 8).
pub const SNAPSHOT_EVERY_ENV: &str = "REVKB_WAL_SNAPSHOT_EVERY";

/// Log file name inside the data directory.
pub const LOG_FILE: &str = "wal.log";
/// Snapshot file name inside the data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Magic bytes opening `wal.log` (the trailing version digit bumps on
/// any incompatible format change).
pub const LOG_MAGIC: &[u8; 8] = b"REVKBW1\n";
/// Magic bytes opening `snapshot.bin`.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"REVKBS1\n";
/// Under `SyncMode::Batch`, `sync_all` runs every this many appends
/// (and at every snapshot), bounding the crash-loss window.
pub const BATCH_SYNC_APPENDS: u64 = 16;
/// Upper bound on a single record's payload length. Nothing the
/// server logs comes close; a replicated header claiming more than
/// this is corruption (or a desynchronised stream), not a record to
/// wait for.
pub const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;
/// Default revises-between-snapshots when the knob is unset.
pub const DEFAULT_SNAPSHOT_EVERY: usize = 8;

/// How eagerly appends reach stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// `sync_all` after every append: a record is durable before the
    /// client sees the response. The default.
    Always,
    /// `sync_all` every [`BATCH_SYNC_APPENDS`] appends and at every
    /// snapshot: bounded loss window, much cheaper under load.
    Batch,
    /// Never fsync; durability is whatever the OS page cache gives.
    Off,
}

impl SyncMode {
    /// Parse the `REVKB_WAL_SYNC` value.
    pub fn parse(s: &str) -> Option<SyncMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "always" => Some(SyncMode::Always),
            "batch" => Some(SyncMode::Batch),
            "off" => Some(SyncMode::Off),
            _ => None,
        }
    }

    /// The wire tag reported in `stats`.
    pub fn tag(self) -> &'static str {
        match self {
            SyncMode::Always => "always",
            SyncMode::Batch => "batch",
            SyncMode::Off => "off",
        }
    }
}

/// One logged registry mutation. Strings are the request's raw texts
/// and wire tags: parsing is deterministic (letters intern in order of
/// first appearance per KB), so replaying the texts reproduces the
/// exact formulas — and with them the exact canonical cache keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// `load`: create (or replace) a named KB.
    Load {
        /// KB name.
        kb: String,
        /// `;`-separated theory text.
        t: String,
    },
    /// `revise`: one committed revision step.
    Revise {
        /// KB name.
        kb: String,
        /// Operator wire tag.
        op: String,
        /// Revision formula text.
        p: String,
        /// Backend wire tag.
        backend: String,
    },
    /// `drop`: remove a named KB.
    Drop {
        /// KB name.
        kb: String,
    },
}

// ---------------------------------------------------------------- CRC

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3, the zlib polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ------------------------------------------------------ record coding

fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn read_u32(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let slice = bytes.get(*pos..*pos + 4)?;
    *pos += 4;
    Some(u32::from_le_bytes(slice.try_into().expect("4-byte slice")))
}

fn read_str(bytes: &[u8], pos: &mut usize) -> Option<String> {
    let len = read_u32(bytes, pos)? as usize;
    let slice = bytes.get(*pos..*pos + len)?;
    *pos += len;
    String::from_utf8(slice.to_vec()).ok()
}

fn encode_payload(op: &WalOp) -> Vec<u8> {
    let mut out = Vec::new();
    match op {
        WalOp::Load { kb, t } => {
            out.push(b'L');
            push_str(&mut out, kb);
            push_str(&mut out, t);
        }
        WalOp::Revise { kb, op, p, backend } => {
            out.push(b'R');
            push_str(&mut out, kb);
            push_str(&mut out, op);
            push_str(&mut out, p);
            push_str(&mut out, backend);
        }
        WalOp::Drop { kb } => {
            out.push(b'D');
            push_str(&mut out, kb);
        }
    }
    out
}

fn decode_payload(payload: &[u8]) -> Option<WalOp> {
    let mut pos = 1usize;
    let op = match *payload.first()? {
        b'L' => WalOp::Load {
            kb: read_str(payload, &mut pos)?,
            t: read_str(payload, &mut pos)?,
        },
        b'R' => WalOp::Revise {
            kb: read_str(payload, &mut pos)?,
            op: read_str(payload, &mut pos)?,
            p: read_str(payload, &mut pos)?,
            backend: read_str(payload, &mut pos)?,
        },
        b'D' => WalOp::Drop {
            kb: read_str(payload, &mut pos)?,
        },
        _ => return None,
    };
    (pos == payload.len()).then_some(op)
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Encode one operation as a complete on-disk record
/// (length prefix + checksum + payload). Public so the format can be
/// pinned by golden-file tests.
pub fn encode_record(op: &WalOp) -> Vec<u8> {
    frame(&encode_payload(op))
}

/// Walk framed records from the front of `bytes`, stopping at the
/// first short, checksum-failing, or undecodable record. Returns the
/// decoded prefix and the byte length of the good prefix — everything
/// past it is a torn tail to truncate.
pub fn decode_records(bytes: &[u8]) -> (Vec<WalOp>, usize) {
    let mut ops = Vec::new();
    let mut pos = 0usize;
    while let Some((payload, next)) = next_frame(bytes, pos) {
        let Some(op) = decode_payload(payload) else {
            break;
        };
        ops.push(op);
        pos = next;
    }
    (ops, pos)
}

/// Walk framed records from the front of `bytes` (the log body,
/// *after* the magic) and return the `(len, crc)` header of the last
/// complete record, or `None` when there is no complete record. The
/// replication handshake uses this to cross-check that a replica's
/// final durable record matches the primary's record at the same
/// offset before resuming the stream.
pub fn last_frame_info(bytes: &[u8]) -> Option<(u32, u32)> {
    let mut pos = 0usize;
    let mut last = None;
    while let Some((payload, next)) = next_frame(bytes, pos) {
        last = Some((payload.len() as u32, crc32(payload)));
        pos = next;
    }
    last
}

/// Read the framed record starting at `pos`: returns its payload and
/// the offset just past it, or `None` when the record is short,
/// fails its checksum, or `pos` is at (or inside) a torn tail.
fn next_frame(bytes: &[u8], pos: usize) -> Option<(&[u8], usize)> {
    let header = bytes.get(pos..pos + 8)?;
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
    let payload = bytes.get(pos + 8..pos + 8 + len)?;
    (crc32(payload) == crc).then_some((payload, pos + 8 + len))
}

// -------------------------------------------------- snapshot coding

fn encode_artifact(key: &str, artifact: &Artifact) -> Vec<u8> {
    let mut out = Vec::new();
    push_str(&mut out, key);
    let mut formula = String::new();
    crate::registry::canonical_formula(&artifact.formula, &mut formula);
    push_str(&mut out, &formula);
    out.extend_from_slice(&(artifact.base.len() as u32).to_le_bytes());
    for v in &artifact.base {
        out.extend_from_slice(&v.0.to_le_bytes());
    }
    out.push(artifact.logical as u8);
    out
}

fn decode_artifact(payload: &[u8]) -> Option<(String, Artifact)> {
    let mut pos = 0usize;
    let key = read_str(payload, &mut pos)?;
    let formula = parse_canonical(&read_str(payload, &mut pos)?)?;
    let n = read_u32(payload, &mut pos)? as usize;
    let mut base = Vec::with_capacity(n);
    for _ in 0..n {
        base.push(Var(read_u32(payload, &mut pos)?));
    }
    let logical = match payload.get(pos)? {
        0 => false,
        1 => true,
        _ => return None,
    };
    (pos + 1 == payload.len()).then_some((
        key,
        Artifact {
            formula,
            base,
            logical,
        },
    ))
}

/// Render a full snapshot file (magic + one framed record per cached
/// artifact) as bytes.
pub fn encode_snapshot<'a>(entries: impl Iterator<Item = (&'a String, &'a Artifact)>) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(SNAPSHOT_MAGIC);
    for (key, artifact) in entries {
        out.extend_from_slice(&frame(&encode_artifact(key, artifact)));
    }
    out
}

/// Decode a snapshot file, keeping the valid prefix of entries (a
/// corrupt entry discards it and everything after it — replay then
/// recompiles those artifacts instead).
pub fn decode_snapshot(bytes: &[u8]) -> Vec<(String, Artifact)> {
    let Some(body) = bytes.strip_prefix(SNAPSHOT_MAGIC.as_slice()) else {
        return Vec::new();
    };
    let mut entries = Vec::new();
    let mut pos = 0usize;
    while let Some((payload, next)) = next_frame(body, pos) {
        let Some(entry) = decode_artifact(payload) else {
            break;
        };
        entries.push(entry);
        pos = next;
    }
    entries
}

// ------------------------------------------------------------- files

/// What booting from a data directory found, before replay.
#[derive(Debug)]
pub struct Recovered {
    /// The open log, positioned for appending.
    pub wal: Wal,
    /// Committed operations to replay, in commit order.
    pub ops: Vec<WalOp>,
    /// Snapshot artifacts to pre-warm the cache with.
    pub snapshot: Vec<(String, Artifact)>,
    /// Bytes discarded from the log's torn tail (0 on a clean boot).
    pub truncated_bytes: u64,
    /// `(len, crc)` header of the last committed record, used by a
    /// replica to prove its log is a prefix of the primary's when it
    /// resumes replication. `None` when the log is empty.
    pub last_record: Option<(u32, u32)>,
}

/// Post-replay recovery summary, surfaced in `stats`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryReport {
    /// Log records successfully re-applied.
    pub replayed: u64,
    /// Log records that failed to re-apply and were skipped.
    pub replay_errors: u64,
    /// Artifacts pre-warmed from the snapshot.
    pub snapshot_artifacts: u64,
    /// Torn-tail bytes truncated from the log.
    pub truncated_bytes: u64,
    /// Wall time of the whole recovery (open + prewarm + replay).
    pub boot_micros: u64,
}

/// The open write-ahead log: an append handle plus the counters the
/// `stats` command reports under `wal`.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    file: File,
    sync: SyncMode,
    snapshot_every: usize,
    appends_since_sync: u64,
    revises_since_snapshot: usize,
    /// Records in the log (replayed + appended this process).
    pub records: u64,
    /// Log size in bytes (magic + records).
    pub bytes: u64,
    /// Records appended by this process.
    pub appends: u64,
    /// Appends that failed with an I/O error (the in-memory state is
    /// then ahead of the log; the client was warned via stderr).
    pub append_errors: u64,
    /// `sync_all` calls issued on the log.
    pub fsyncs: u64,
    /// Snapshots written by this process.
    pub snapshots: u64,
}

impl Wal {
    /// Open (or create) the data directory: read the snapshot, scan
    /// the log, truncate any torn tail, and leave the log open for
    /// appending. Never errors on *corrupt* contents — corruption
    /// shrinks what is recovered; only real I/O failures error.
    pub fn open(dir: &Path, sync: SyncMode, snapshot_every: usize) -> io::Result<Recovered> {
        std::fs::create_dir_all(dir)?;
        let log_path = dir.join(LOG_FILE);
        let existing = match std::fs::read(&log_path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let (ops, mut good_len) =
            if existing.len() >= LOG_MAGIC.len() && existing[..LOG_MAGIC.len()] == LOG_MAGIC[..] {
                let (ops, good) = decode_records(&existing[LOG_MAGIC.len()..]);
                (ops, LOG_MAGIC.len() + good)
            } else {
                // Missing, empty, or foreign file: start a fresh log.
                (Vec::new(), 0)
            };
        let truncated_bytes = (existing.len() - good_len) as u64;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&log_path)?;
        if good_len == 0 {
            file.set_len(0)?;
            file.write_all(LOG_MAGIC)?;
            good_len = LOG_MAGIC.len();
        } else {
            file.set_len(good_len as u64)?;
        }
        file.seek(SeekFrom::End(0))?;
        if truncated_bytes > 0 && sync != SyncMode::Off {
            file.sync_all()?;
        }
        let snapshot = match std::fs::read(dir.join(SNAPSHOT_FILE)) {
            Ok(bytes) => decode_snapshot(&bytes),
            Err(_) => Vec::new(),
        };
        let records = ops.len() as u64;
        let last_record = if good_len > LOG_MAGIC.len() {
            last_frame_info(&existing[LOG_MAGIC.len()..good_len])
        } else {
            None
        };
        Ok(Recovered {
            wal: Wal {
                dir: dir.to_path_buf(),
                file,
                sync,
                snapshot_every,
                appends_since_sync: 0,
                revises_since_snapshot: 0,
                records,
                bytes: good_len as u64,
                appends: 0,
                append_errors: 0,
                fsyncs: 0,
                snapshots: 0,
            },
            ops,
            snapshot,
            truncated_bytes,
            last_record,
        })
    }

    /// The fsync discipline tag for `stats`.
    pub fn sync_tag(&self) -> &'static str {
        self.sync.tag()
    }

    /// Path of the log file this WAL appends to. Replication streams
    /// read committed bytes through an independent handle on this
    /// path, so tailing never contends with the append lock.
    pub fn log_path(&self) -> PathBuf {
        self.dir.join(LOG_FILE)
    }

    /// Append one committed operation, honouring the sync discipline.
    /// Returns the record's size in bytes.
    pub fn append(&mut self, op: &WalOp) -> io::Result<u64> {
        let record = encode_record(op);
        self.file.write_all(&record)?;
        self.records += 1;
        self.appends += 1;
        self.bytes += record.len() as u64;
        if matches!(op, WalOp::Revise { .. }) {
            self.revises_since_snapshot += 1;
        }
        match self.sync {
            SyncMode::Always => {
                self.file.sync_all()?;
                self.fsyncs += 1;
            }
            SyncMode::Batch => {
                self.appends_since_sync += 1;
                if self.appends_since_sync >= BATCH_SYNC_APPENDS {
                    self.file.sync_all()?;
                    self.fsyncs += 1;
                    self.appends_since_sync = 0;
                }
            }
            SyncMode::Off => {}
        }
        Ok(record.len() as u64)
    }

    /// Append one already-framed record exactly as received — the
    /// replication path: record encoding is canonical, so a replica
    /// that appends the shipped bytes verbatim keeps a log that is
    /// byte-for-byte a prefix of the primary's, which is what makes
    /// resume offsets directly comparable across nodes. The caller
    /// has already verified the frame's checksum.
    pub fn append_raw(&mut self, record: &[u8]) -> io::Result<()> {
        self.file.write_all(record)?;
        self.records += 1;
        self.appends += 1;
        self.bytes += record.len() as u64;
        match self.sync {
            SyncMode::Always => {
                self.file.sync_all()?;
                self.fsyncs += 1;
            }
            SyncMode::Batch => {
                self.appends_since_sync += 1;
                if self.appends_since_sync >= BATCH_SYNC_APPENDS {
                    self.file.sync_all()?;
                    self.fsyncs += 1;
                    self.appends_since_sync = 0;
                }
            }
            SyncMode::Off => {}
        }
        Ok(())
    }

    /// Is a snapshot due (enough revises logged since the last one)?
    pub fn snapshot_due(&self) -> bool {
        self.snapshot_every > 0 && self.revises_since_snapshot >= self.snapshot_every
    }

    /// Write a snapshot of the artifact cache atomically: temp file,
    /// `sync_all`, rename over [`SNAPSHOT_FILE`], directory sync. A
    /// crash at any point leaves either the old or the new snapshot.
    pub fn write_snapshot<'a>(
        &mut self,
        entries: impl Iterator<Item = (&'a String, &'a Artifact)>,
    ) -> io::Result<()> {
        let bytes = encode_snapshot(entries);
        let tmp = self.dir.join("snapshot.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        // Under `batch`, a snapshot is also a durability point for the
        // log: records the snapshot supersedes must not outlive it.
        if self.sync == SyncMode::Batch && self.appends_since_sync > 0 {
            self.file.sync_all()?;
            self.fsyncs += 1;
            self.appends_since_sync = 0;
        }
        self.snapshots += 1;
        self.revises_since_snapshot = 0;
        Ok(())
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        // Graceful exit flushes whatever `batch` mode still owes.
        if self.sync != SyncMode::Off {
            let _ = self.file.sync_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revkb_logic::Formula;

    fn ops() -> Vec<WalOp> {
        vec![
            WalOp::Load {
                kb: "k".into(),
                t: "a & b; b -> c".into(),
            },
            WalOp::Revise {
                kb: "k".into(),
                op: "dalal".into(),
                p: "!a".into(),
                backend: "direct".into(),
            },
            WalOp::Drop { kb: "k".into() },
        ]
    }

    #[test]
    fn crc32_matches_the_standard_check_value() {
        // The canonical CRC-32/IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip() {
        let mut log = Vec::new();
        for op in ops() {
            log.extend_from_slice(&encode_record(&op));
        }
        let (decoded, good) = decode_records(&log);
        assert_eq!(decoded, ops());
        assert_eq!(good, log.len());
    }

    #[test]
    fn every_truncation_point_yields_a_committed_prefix() {
        let mut log = Vec::new();
        let mut boundaries = vec![0usize];
        for op in ops() {
            log.extend_from_slice(&encode_record(&op));
            boundaries.push(log.len());
        }
        for cut in 0..=log.len() {
            let (decoded, good) = decode_records(&log[..cut]);
            // The good prefix is the last record boundary at or below
            // the cut — never a partially applied record.
            let expected = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(decoded.len(), expected, "cut at {cut}");
            assert_eq!(good, boundaries[expected], "cut at {cut}");
            assert_eq!(decoded, ops()[..expected], "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_byte_stops_the_scan_at_that_record() {
        let mut log = Vec::new();
        for op in ops() {
            log.extend_from_slice(&encode_record(&op));
        }
        let first_len = encode_record(&ops()[0]).len();
        // Flip a payload byte inside the second record.
        log[first_len + 9] ^= 0x40;
        let (decoded, good) = decode_records(&log);
        assert_eq!(decoded, ops()[..1]);
        assert_eq!(good, first_len);
    }

    #[test]
    fn snapshot_round_trips_and_tolerates_corruption() {
        let a1 = Artifact {
            formula: Formula::var(Var(0)).and(Formula::var(Var(3)).not()),
            base: vec![Var(0), Var(3)],
            logical: true,
        };
        let a2 = Artifact {
            formula: Formula::var(Var(1)).implies(Formula::var(Var(2))),
            base: vec![Var(1), Var(2)],
            logical: false,
        };
        let entries = [("key-1".to_string(), a1), ("key-2".to_string(), a2)];
        let bytes = encode_snapshot(entries.iter().map(|(k, a)| (k, a)));
        let decoded = decode_snapshot(&bytes);
        assert_eq!(decoded.len(), 2);
        for ((k, a), (dk, da)) in entries.iter().zip(&decoded) {
            assert_eq!(k, dk);
            assert_eq!(a.formula, da.formula);
            assert_eq!(a.base, da.base);
            assert_eq!(a.logical, da.logical);
        }
        // Corrupting the second entry keeps the first.
        let mut corrupt = bytes.clone();
        let cut = SNAPSHOT_MAGIC.len() + 8 + {
            let body = &bytes[SNAPSHOT_MAGIC.len()..];
            u32::from_le_bytes(body[..4].try_into().unwrap()) as usize
        };
        corrupt[cut + 9] ^= 0xFF;
        let decoded = decode_snapshot(&corrupt);
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].0, "key-1");
        // A foreign file decodes to nothing.
        assert!(decode_snapshot(b"not a snapshot").is_empty());
    }

    #[test]
    fn sync_mode_parses_the_documented_values() {
        assert_eq!(SyncMode::parse("always"), Some(SyncMode::Always));
        assert_eq!(SyncMode::parse(" Batch "), Some(SyncMode::Batch));
        assert_eq!(SyncMode::parse("off"), Some(SyncMode::Off));
        assert_eq!(SyncMode::parse("sometimes"), None);
        for mode in [SyncMode::Always, SyncMode::Batch, SyncMode::Off] {
            assert_eq!(SyncMode::parse(mode.tag()), Some(mode));
        }
    }

    #[test]
    fn open_append_reopen_recovers_everything() {
        let dir = std::env::temp_dir().join(format!("revkb-wal-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut recovered = Wal::open(&dir, SyncMode::Always, 0).unwrap();
            assert!(recovered.ops.is_empty());
            assert_eq!(recovered.truncated_bytes, 0);
            for op in ops() {
                recovered.wal.append(&op).unwrap();
            }
            assert_eq!(recovered.wal.records, 3);
            assert_eq!(recovered.wal.fsyncs, 3);
        }
        // Clean reopen: all three records come back.
        let recovered = Wal::open(&dir, SyncMode::Always, 0).unwrap();
        assert_eq!(recovered.ops, ops());
        assert_eq!(recovered.truncated_bytes, 0);
        drop(recovered);
        // Tear the tail mid-record: reopen truncates to two records,
        // and the file on disk shrinks to the good prefix.
        let log_path = dir.join(LOG_FILE);
        let full = std::fs::read(&log_path).unwrap();
        std::fs::write(&log_path, &full[..full.len() - 3]).unwrap();
        let recovered = Wal::open(&dir, SyncMode::Always, 0).unwrap();
        assert_eq!(recovered.ops, ops()[..2]);
        assert!(recovered.truncated_bytes > 0);
        drop(recovered);
        let after = std::fs::read(&log_path).unwrap();
        assert_eq!(after.len(), full.len() - encode_record(&ops()[2]).len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn last_frame_info_tracks_the_final_complete_record() {
        assert_eq!(last_frame_info(&[]), None);
        let mut log = Vec::new();
        for op in ops() {
            log.extend_from_slice(&encode_record(&op));
            let record = encode_record(&op);
            let expected = (
                (record.len() - 8) as u32,
                u32::from_le_bytes(record[4..8].try_into().unwrap()),
            );
            assert_eq!(last_frame_info(&log), Some(expected));
        }
        // A torn tail does not change the answer.
        log.extend_from_slice(&[0x07, 0x00, 0x00]);
        let record = encode_record(&ops()[2]);
        assert_eq!(
            last_frame_info(&log),
            Some((
                (record.len() - 8) as u32,
                u32::from_le_bytes(record[4..8].try_into().unwrap()),
            ))
        );
    }

    #[test]
    fn raw_appends_recover_identically_to_encoded_ones() {
        let dir = std::env::temp_dir().join(format!("revkb-wal-raw-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut recovered = Wal::open(&dir, SyncMode::Always, 0).unwrap();
            assert_eq!(recovered.last_record, None);
            for op in ops() {
                recovered.wal.append_raw(&encode_record(&op)).unwrap();
            }
            assert_eq!(recovered.wal.records, 3);
            assert_eq!(
                recovered.wal.bytes,
                LOG_MAGIC.len() as u64
                    + ops()
                        .iter()
                        .map(|op| encode_record(op).len() as u64)
                        .sum::<u64>()
            );
        }
        let recovered = Wal::open(&dir, SyncMode::Always, 0).unwrap();
        assert_eq!(recovered.ops, ops());
        let record = encode_record(&ops()[2]);
        assert_eq!(
            recovered.last_record,
            Some((
                (record.len() - 8) as u32,
                u32::from_le_bytes(record[4..8].try_into().unwrap()),
            ))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
