//! The epoll-based non-blocking I/O front end.
//!
//! One readiness thread multiplexes every data-plane connection:
//! non-blocking accept, read, and write, with a per-connection state
//! machine that frames both wire protocols the server speaks —
//! NDJSON lines and HTTP/1.1 (the JSON gateway). The loop owns
//! *readiness and framing only*; execution stays on the existing
//! worker/admission machinery:
//!
//! - **admission runs on the loop thread** ([`Server` routing]) so a
//!   flood of connections is answered `overloaded` in arrival order,
//!   exactly as the blocking front end would answer it;
//! - admitted data-plane commands go to a pool of
//!   `ServerConfig::threads` workers (the same permit gate and
//!   deadlines apply);
//! - control-plane commands (`ping`, `hello`, `stats`, `shutdown`)
//!   and metrics GETs run on one dedicated control worker, so a
//!   `stats` that locks every KB can never stall readiness polling;
//! - workers push completed responses onto a shared completion list
//!   and wake the loop through a self-pipe; the loop copies each
//!   response into its connection's write buffer.
//!
//! **Pipelining**: a connection may have any number of line-protocol
//! requests in flight; responses are written in *completion* order,
//! with the envelope's `req` field preserving correlation. HTTP
//! connections run one request at a time (HTTP responses have no
//! `req`-style correlation on the wire, so order must be preserved);
//! pipelined HTTP requests queue in the parser.
//!
//! A `replicate` request hands the whole connection off to a
//! dedicated blocking thread (the WAL shipping stream is not
//! line-framed); any bytes the replica pipelined behind the handshake
//! are discarded, matching the blocking front end.
//!
//! On shutdown the loop stops accepting, flushes every buffered
//! response (bounded by a 5 s grace period) so the `shutdown` answer
//! itself is delivered, then joins the workers.
//!
//! Everything here is zero-dependency: the epoll and rlimit syscalls
//! are declared directly against libc (which every std binary links
//! anyway) in the private `sys` shim — the only `unsafe` in the
//! workspace.
//!
//! On non-Linux targets [`Server::serve_event_loop`] falls back to
//! the blocking thread-per-connection front end.

use crate::server::Server;
use std::io;
use std::net::TcpListener;

/// Raise this process's soft `RLIMIT_NOFILE` toward `target` (capped
/// at the hard limit) and return the resulting soft limit. Serving —
/// or benchmarking — tens of thousands of concurrent connections
/// needs more file descriptors than the usual soft default of 1024.
/// Returns 0 when the limit cannot even be read (or on non-Linux
/// targets, where this is a no-op).
pub fn raise_nofile(target: u64) -> u64 {
    #[cfg(target_os = "linux")]
    {
        linux::sys::raise_nofile(target)
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = target;
        0
    }
}

impl Server {
    /// Serve the data plane on `listener` with the epoll event loop
    /// until a `shutdown` command arrives. Answers are identical to
    /// [`Server::serve_tcp`] — same routing, same admission, same
    /// envelopes — plus the HTTP/JSON gateway (`POST /v1`, metrics
    /// GETs) on the same port. Falls back to `serve_tcp` on
    /// non-Linux targets.
    pub fn serve_event_loop(&self, listener: TcpListener) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            linux::serve(self, listener)
        }
        #[cfg(not(target_os = "linux"))]
        {
            self.serve_tcp(listener)
        }
    }
}

#[cfg(target_os = "linux")]
mod linux {
    use std::collections::HashMap;
    use std::io::{self, Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::{Duration, Instant};

    use crate::http;
    use crate::json::Json;
    use crate::protocol::{parse_request, Request};
    use crate::server::{Routing, Server};
    use revkb_obs as obs;

    /// Thin wrappers over the epoll and rlimit syscalls — the only
    /// `unsafe` in the workspace. No libc crate: the symbols are
    /// declared directly and resolved by the libc every std binary
    /// already links.
    #[allow(unsafe_code)]
    pub(super) mod sys {
        use std::io;
        use std::os::fd::{FromRawFd, OwnedFd, RawFd};

        /// One epoll event: interest/readiness mask plus the caller's
        /// 64-bit token. The kernel ABI packs this struct on x86-64.
        #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
        #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        pub const EPOLLIN: u32 = 0x1;
        pub const EPOLLOUT: u32 = 0x4;
        pub const EPOLLERR: u32 = 0x8;
        pub const EPOLLHUP: u32 = 0x10;
        pub const EPOLLRDHUP: u32 = 0x2000;

        const EPOLL_CLOEXEC: i32 = 0o2000000;
        pub const EPOLL_CTL_ADD: i32 = 1;
        pub const EPOLL_CTL_DEL: i32 = 2;
        pub const EPOLL_CTL_MOD: i32 = 3;

        const RLIMIT_NOFILE: i32 = 7;

        #[repr(C)]
        struct RLimit {
            cur: u64,
            max: u64,
        }

        extern "C" {
            fn epoll_create1(flags: i32) -> i32;
            fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
            fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
            fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
            fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
        }

        /// A fresh close-on-exec epoll instance.
        pub fn epoll_create() -> io::Result<OwnedFd> {
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(unsafe { OwnedFd::from_raw_fd(fd) })
        }

        /// One `epoll_ctl` operation on `fd` with interest `events`
        /// and caller token `token`.
        pub fn ctl(epfd: RawFd, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut event = EpollEvent {
                events,
                data: token,
            };
            let rc = unsafe { epoll_ctl(epfd, op, fd, &mut event) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Wait for readiness, retrying on `EINTR`. Returns how many
        /// entries of `events` were filled.
        pub fn wait(epfd: RawFd, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
            loop {
                let rc = unsafe {
                    epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms)
                };
                if rc >= 0 {
                    return Ok(rc as usize);
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
        }

        /// See [`crate::event_loop::raise_nofile`].
        pub fn raise_nofile(target: u64) -> u64 {
            let mut lim = RLimit { cur: 0, max: 0 };
            if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
                return 0;
            }
            let want = target.max(lim.cur).min(lim.max);
            if want > lim.cur {
                let new = RLimit {
                    cur: want,
                    max: lim.max,
                };
                if unsafe { setrlimit(RLIMIT_NOFILE, &new) } == 0 {
                    return want;
                }
            }
            lim.cur
        }
    }

    /// The epoll instance plus registration helpers.
    struct Poller {
        epfd: std::os::fd::OwnedFd,
    }

    impl Poller {
        fn new() -> io::Result<Poller> {
            Ok(Poller {
                epfd: sys::epoll_create()?,
            })
        }

        fn add(&self, fd: i32, token: u64, events: u32) -> io::Result<()> {
            sys::ctl(self.epfd.as_raw_fd(), sys::EPOLL_CTL_ADD, fd, events, token)
        }

        fn modify(&self, fd: i32, token: u64, events: u32) -> io::Result<()> {
            sys::ctl(self.epfd.as_raw_fd(), sys::EPOLL_CTL_MOD, fd, events, token)
        }

        fn delete(&self, fd: i32) -> io::Result<()> {
            sys::ctl(self.epfd.as_raw_fd(), sys::EPOLL_CTL_DEL, fd, 0, 0)
        }

        fn wait(&self, events: &mut [sys::EpollEvent], timeout_ms: i32) -> io::Result<usize> {
            sys::wait(self.epfd.as_raw_fd(), events, timeout_ms)
        }
    }

    const TOKEN_LISTENER: u64 = 0;
    const TOKEN_WAKE: u64 = 1;
    const FIRST_CONN_TOKEN: u64 = 2;
    const READ_CHUNK: usize = 16 * 1024;
    const EVENTS_CAP: usize = 1024;
    const SHUTDOWN_GRACE: Duration = Duration::from_secs(5);

    /// Which wire framing a worker's response needs.
    enum Reply {
        /// NDJSON: envelope plus a newline.
        Line,
        /// HTTP: envelope as a `200` JSON body.
        Http { keep_alive: bool },
    }

    /// One request dispatched to a worker.
    struct Job {
        token: u64,
        request: Request,
        started: Instant,
        req: u64,
        reply: Reply,
    }

    /// Work for the dedicated control worker.
    enum ControlJob {
        /// A control-plane command (`ping`, `hello`, `stats`,
        /// `shutdown`, or a rejected `replicate`).
        Request(Job),
        /// A metrics-plane GET from the HTTP gateway.
        MetricsGet {
            token: u64,
            path: String,
            query: String,
            keep_alive: bool,
        },
    }

    /// A rendered response on its way back to the loop thread.
    struct Completion {
        token: u64,
        bytes: Vec<u8>,
    }

    /// Protocol state of one connection, decided by its first byte:
    /// NDJSON requests start with `{` (or leading whitespace), HTTP
    /// request lines start with a method.
    enum Proto {
        Unknown,
        Line,
        Http(http::HttpParser),
    }

    /// Per-connection state machine.
    struct Conn {
        stream: TcpStream,
        token: u64,
        proto: Proto,
        /// Unframed bytes (line protocol and pre-sniff).
        line_buf: Vec<u8>,
        /// Bytes queued for the peer; `written` of them already sent.
        write_buf: Vec<u8>,
        written: usize,
        /// Responses still owed by workers.
        pending: usize,
        /// HTTP runs one request at a time to preserve response order.
        http_busy: bool,
        /// EOF seen or `Connection: close` honoured: stop reading,
        /// close once everything pending has flushed.
        closing: bool,
        /// Current epoll interest mask (to skip redundant `ctl`s).
        interest: u32,
    }

    impl Conn {
        fn new(stream: TcpStream, token: u64) -> Conn {
            Conn {
                stream,
                token,
                proto: Proto::Unknown,
                line_buf: Vec::new(),
                write_buf: Vec::new(),
                written: 0,
                pending: 0,
                http_busy: false,
                closing: false,
                interest: sys::EPOLLIN | sys::EPOLLRDHUP,
            }
        }
    }

    /// What to do with a connection after handling its readable bytes.
    enum After {
        Keep,
        Close,
        /// Hand the connection to a blocking replication stream.
        Handoff {
            request: Request,
            req: u64,
        },
    }

    /// Shared references the per-connection handlers need.
    struct Ctx<'a> {
        server: &'a Server,
        poller: &'a Poller,
        ctl_tx: &'a mpsc::Sender<ControlJob>,
        data_tx: &'a mpsc::Sender<Job>,
    }

    fn push_completion(
        completions: &Mutex<Vec<Completion>>,
        wake: &UnixStream,
        token: u64,
        bytes: Vec<u8>,
    ) {
        completions
            .lock()
            .expect("completions poisoned")
            .push(Completion { token, bytes });
        // A full pipe is fine: the loop is already due to wake.
        let _ = (&*wake).write(&[1]);
    }

    fn render_reply(reply: &Reply, response: &crate::protocol::Response) -> Vec<u8> {
        match reply {
            Reply::Line => {
                let mut bytes = response.render().into_bytes();
                bytes.push(b'\n');
                bytes
            }
            Reply::Http { keep_alive } => envelope_http(response).to_bytes_with(*keep_alive),
        }
    }

    /// An executed envelope as an HTTP response: always `200`; the
    /// envelope's own `ok`/`code` fields carry the command outcome.
    fn envelope_http(response: &crate::protocol::Response) -> http::Response {
        http::Response::ok(http::JSON_CONTENT_TYPE, format!("{}\n", response.render()))
    }

    fn data_worker(
        server: Server,
        rx: Arc<Mutex<mpsc::Receiver<Job>>>,
        completions: Arc<Mutex<Vec<Completion>>>,
        wake: UnixStream,
    ) {
        loop {
            let job = match rx.lock().expect("worker queue poisoned").recv() {
                Ok(job) => job,
                Err(_) => break,
            };
            let response = server.execute_admitted(&job.request, job.started, job.req);
            push_completion(
                &completions,
                &wake,
                job.token,
                render_reply(&job.reply, &response),
            );
        }
    }

    fn control_worker(
        server: Server,
        rx: mpsc::Receiver<ControlJob>,
        completions: Arc<Mutex<Vec<Completion>>>,
        wake: UnixStream,
    ) {
        for job in rx {
            match job {
                ControlJob::Request(job) => {
                    let response = server.execute_control(&job.request, job.started, job.req);
                    push_completion(
                        &completions,
                        &wake,
                        job.token,
                        render_reply(&job.reply, &response),
                    );
                }
                ControlJob::MetricsGet {
                    token,
                    path,
                    query,
                    keep_alive,
                } => {
                    let response = server.metrics_route(&path, &query);
                    push_completion(
                        &completions,
                        &wake,
                        token,
                        response.to_bytes_with(keep_alive),
                    );
                }
            }
        }
    }

    /// Flush as much of the write buffer as the socket accepts.
    /// `Ok(true)` once fully flushed.
    fn flush(conn: &mut Conn) -> io::Result<bool> {
        while conn.written < conn.write_buf.len() {
            match conn.stream.write(&conn.write_buf[conn.written..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => conn.written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    conn.write_buf.drain(..conn.written);
                    conn.written = 0;
                    return Ok(false);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        conn.write_buf.clear();
        conn.written = 0;
        Ok(true)
    }

    /// Flush, update epoll interest, decide the connection's fate.
    /// `false` means drop it.
    fn settle(ctx: &Ctx, conn: &mut Conn) -> bool {
        let flushed = match flush(conn) {
            Ok(flushed) => flushed,
            Err(_) => return false,
        };
        if conn.closing && flushed && conn.pending == 0 {
            return false;
        }
        let mut want = 0;
        if !conn.closing {
            want |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if !flushed {
            want |= sys::EPOLLOUT;
        }
        if want != conn.interest {
            conn.interest = want;
            let _ = ctx.poller.modify(conn.stream.as_raw_fd(), conn.token, want);
        }
        true
    }

    fn drop_conn(ctx: &Ctx, conns: &mut HashMap<u64, Conn>, token: u64) {
        if let Some(conn) = conns.remove(&token) {
            let _ = ctx.poller.delete(conn.stream.as_raw_fd());
            ctx.server.connection_closed();
        }
    }

    /// Detach the connection from the loop and serve the replication
    /// stream on a blocking thread of its own.
    fn handoff(ctx: &Ctx, conns: &mut HashMap<u64, Conn>, token: u64, request: Request, req: u64) {
        let Some(conn) = conns.remove(&token) else {
            return;
        };
        let _ = ctx.poller.delete(conn.stream.as_raw_fd());
        let mut stream = conn.stream;
        if stream.set_nonblocking(false).is_err() {
            ctx.server.connection_closed();
            return;
        }
        let server = ctx.server.clone();
        std::thread::Builder::new()
            .name("revkb-replicate".to_string())
            .spawn(move || {
                server.handle_replicate(&mut stream, req, &request);
                server.connection_closed();
            })
            .expect("spawn replication thread");
    }

    /// Drain readable bytes and frame them per the connection's
    /// protocol.
    fn handle_readable(ctx: &Ctx, conn: &mut Conn) -> After {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.closing = true;
                    return After::Keep;
                }
                Ok(n) => match feed(ctx, conn, &chunk[..n]) {
                    After::Keep => {}
                    other => return other,
                },
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return After::Keep,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return After::Close,
            }
        }
    }

    /// Feed freshly read bytes through protocol sniffing and framing.
    fn feed(ctx: &Ctx, conn: &mut Conn, bytes: &[u8]) -> After {
        match conn.proto {
            Proto::Unknown => {
                conn.line_buf.extend_from_slice(bytes);
                let Some(pos) = conn.line_buf.iter().position(|b| !b" \t\r\n".contains(b)) else {
                    // Only keep-alive noise so far; drop it.
                    conn.line_buf.clear();
                    return After::Keep;
                };
                if conn.line_buf[pos] == b'{' {
                    conn.proto = Proto::Line;
                    process_lines(ctx, conn)
                } else {
                    let rest = conn.line_buf.split_off(pos);
                    conn.line_buf.clear();
                    let mut parser = http::HttpParser::new();
                    parser.feed(&rest);
                    conn.proto = Proto::Http(parser);
                    drain_http(ctx, conn)
                }
            }
            Proto::Line => {
                conn.line_buf.extend_from_slice(bytes);
                process_lines(ctx, conn)
            }
            Proto::Http(ref mut parser) => {
                parser.feed(bytes);
                drain_http(ctx, conn)
            }
        }
    }

    /// Dispatch every complete NDJSON line in the buffer. Requests
    /// pipeline freely: each is routed as soon as its line arrives.
    fn process_lines(ctx: &Ctx, conn: &mut Conn) -> After {
        while let Some(pos) = conn.line_buf.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = conn.line_buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line_bytes[..pos]).into_owned();
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let started = Instant::now();
            match parse_request(line) {
                Err(e) => {
                    let response = ctx.server.reject_line(&e, started, None);
                    conn.write_buf.extend_from_slice(response.as_bytes());
                    conn.write_buf.push(b'\n');
                }
                Ok(mut request) => {
                    let req = ctx.server.next_req();
                    // Resolve the trace id on the loop thread so the
                    // worker that eventually executes the request (and
                    // the immediate-rejection path below) all see one
                    // consistent id.
                    let trace = request.trace.unwrap_or_else(obs::new_trace_id);
                    request.trace = Some(trace);
                    match ctx.server.route_request(&request, req, trace, true) {
                        Routing::Done(response) => {
                            ctx.server
                                .note_request(request.cmd.tag(), req, trace, started);
                            conn.write_buf
                                .extend_from_slice(response.render().as_bytes());
                            conn.write_buf.push(b'\n');
                        }
                        Routing::Control => {
                            conn.pending += 1;
                            let _ = ctx.ctl_tx.send(ControlJob::Request(Job {
                                token: conn.token,
                                request,
                                started,
                                req,
                                reply: Reply::Line,
                            }));
                        }
                        Routing::Admitted => {
                            conn.pending += 1;
                            let _ = ctx.data_tx.send(Job {
                                token: conn.token,
                                request,
                                started,
                                req,
                                reply: Reply::Line,
                            });
                        }
                        Routing::Replicate => return After::Handoff { request, req },
                    }
                }
            }
        }
        After::Keep
    }

    /// Take complete HTTP requests off the parser, one in flight at a
    /// time.
    fn drain_http(ctx: &Ctx, conn: &mut Conn) -> After {
        loop {
            if conn.http_busy || conn.closing {
                return After::Keep;
            }
            let taken = match conn.proto {
                Proto::Http(ref mut parser) => parser.take(),
                _ => return After::Keep,
            };
            match taken {
                Ok(None) => return After::Keep,
                Ok(Some(request)) => route_http(ctx, conn, request),
                Err(error) => {
                    conn.write_buf.extend_from_slice(&error.to_bytes());
                    conn.closing = true;
                    return After::Keep;
                }
            }
        }
    }

    /// Every command tag the gateway accepts as `POST /v1/<cmd>`.
    const GATEWAY_TAGS: [&str; 11] = [
        "load",
        "revise",
        "query",
        "query_batch",
        "list",
        "stats",
        "drop",
        "ping",
        "hello",
        "shutdown",
        "replicate",
    ];

    /// Turn one gateway POST into a protocol request line: `/v1`
    /// bodies are the request object verbatim; `/v1/<cmd>` bodies are
    /// the request object minus `cmd`, which the path supplies.
    fn gateway_line(request: &http::HttpRequest) -> Result<String, http::Response> {
        let body = std::str::from_utf8(&request.body)
            .map_err(|_| http::Response::text(400, "request body must be UTF-8\n"))?;
        if request.path == "/v1" {
            if body.trim().is_empty() {
                return Err(http::Response::text(
                    400,
                    "empty body; POST a JSON request object\n",
                ));
            }
            return Ok(body.to_string());
        }
        let tag = &request.path["/v1/".len()..];
        if !GATEWAY_TAGS.contains(&tag) {
            return Err(http::Response::not_found(&request.path));
        }
        let body = if body.trim().is_empty() { "{}" } else { body };
        let mut json = Json::parse(body)
            .map_err(|_| http::Response::text(400, "request body is not valid JSON\n"))?;
        let Json::Obj(pairs) = &mut json else {
            return Err(http::Response::text(
                400,
                "request body must be a JSON object\n",
            ));
        };
        // The path wins over any `cmd` field in the body.
        pairs.retain(|(key, _)| key != "cmd");
        pairs.insert(0, ("cmd".to_string(), Json::str(tag)));
        Ok(json.render())
    }

    /// Route one parsed HTTP request: gateway POSTs run the protocol
    /// pipeline; metrics GETs go to the control worker; everything
    /// else is 404/405.
    fn route_http(ctx: &Ctx, conn: &mut Conn, hreq: http::HttpRequest) {
        let keep = hreq.keep_alive;
        let started = Instant::now();
        if hreq.method == "POST" && (hreq.path == "/v1" || hreq.path.starts_with("/v1/")) {
            // A W3C `traceparent` header seeds the request's trace id
            // (the envelope's own `trace` field wins when both are
            // present). A malformed header is a client error worth
            // reporting — but only a 400, never a dropped connection.
            let trace_header = match hreq.header("traceparent") {
                None => None,
                Some(value) => match obs::parse_traceparent(value) {
                    Some(id) => Some(id),
                    None => {
                        let response = http::Response::text(400, "malformed traceparent header\n");
                        conn.write_buf
                            .extend_from_slice(&response.to_bytes_with(keep));
                        if !keep {
                            conn.closing = true;
                        }
                        return;
                    }
                },
            };
            match gateway_line(&hreq) {
                Err(response) => {
                    conn.write_buf
                        .extend_from_slice(&response.to_bytes_with(keep));
                }
                Ok(line) => match parse_request(line.trim()) {
                    Err(e) => {
                        // The gateway routed fine; the *command* is bad.
                        // Transport says 200, the envelope carries the
                        // error code — same contract as the line
                        // protocol, where a bad request still gets a
                        // well-formed reply line.
                        let body =
                            format!("{}\n", ctx.server.reject_line(&e, started, trace_header));
                        let response = http::Response {
                            status: 200,
                            content_type: http::JSON_CONTENT_TYPE,
                            body,
                        };
                        conn.write_buf
                            .extend_from_slice(&response.to_bytes_with(keep));
                    }
                    Ok(mut request) => {
                        let req = ctx.server.next_req();
                        let trace = request
                            .trace
                            .or(trace_header)
                            .unwrap_or_else(obs::new_trace_id);
                        request.trace = Some(trace);
                        // `replicate` cannot hand off an HTTP
                        // connection, so it routes to the control
                        // worker and earns `unsupported` there.
                        match ctx.server.route_request(&request, req, trace, false) {
                            Routing::Done(response) => {
                                ctx.server
                                    .note_request(request.cmd.tag(), req, trace, started);
                                conn.write_buf.extend_from_slice(
                                    &envelope_http(&response).to_bytes_with(keep),
                                );
                            }
                            Routing::Control => {
                                conn.pending += 1;
                                conn.http_busy = true;
                                let _ = ctx.ctl_tx.send(ControlJob::Request(Job {
                                    token: conn.token,
                                    request,
                                    started,
                                    req,
                                    reply: Reply::Http { keep_alive: keep },
                                }));
                            }
                            Routing::Admitted => {
                                conn.pending += 1;
                                conn.http_busy = true;
                                let _ = ctx.data_tx.send(Job {
                                    token: conn.token,
                                    request,
                                    started,
                                    req,
                                    reply: Reply::Http { keep_alive: keep },
                                });
                            }
                            Routing::Replicate => unreachable!("replicate is not routed over HTTP"),
                        }
                    }
                },
            }
        } else if hreq.method == "GET"
            && matches!(
                hreq.path.as_str(),
                "/metrics"
                    | "/stats.json"
                    | "/series.json"
                    | "/healthz"
                    | "/readyz"
                    | "/debug/trace.json"
                    | "/debug/logs.json"
                    | "/debug/requests.json"
            )
        {
            conn.pending += 1;
            conn.http_busy = true;
            let _ = ctx.ctl_tx.send(ControlJob::MetricsGet {
                token: conn.token,
                path: hreq.path,
                query: hreq.query,
                keep_alive: keep,
            });
        } else if hreq.path == "/v1" || hreq.path.starts_with("/v1/") {
            let response = http::Response::text(405, "use POST for /v1 endpoints\n");
            conn.write_buf
                .extend_from_slice(&response.to_bytes_with(keep));
        } else {
            conn.write_buf
                .extend_from_slice(&http::Response::not_found(&hreq.path).to_bytes_with(keep));
        }
        if !keep {
            conn.closing = true;
        }
    }

    /// Accept until the backlog is drained.
    fn accept_burst(
        ctx: &Ctx,
        listener: &TcpListener,
        conns: &mut HashMap<u64, Conn>,
        next_token: &mut u64,
    ) {
        loop {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = *next_token;
                    *next_token += 1;
                    if ctx
                        .poller
                        .add(stream.as_raw_fd(), token, sys::EPOLLIN | sys::EPOLLRDHUP)
                        .is_err()
                    {
                        continue;
                    }
                    ctx.server.connection_opened();
                    conns.insert(token, Conn::new(stream, token));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // Out of descriptors (or similar): back off so a
                    // level-triggered listener can't spin the loop.
                    std::thread::sleep(Duration::from_millis(10));
                    break;
                }
            }
        }
    }

    /// Handle one epoll event for a connection token.
    fn on_conn_event(ctx: &Ctx, conns: &mut HashMap<u64, Conn>, token: u64, flags: u32) {
        let Some(conn) = conns.get_mut(&token) else {
            return;
        };
        if flags & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
            drop_conn(ctx, conns, token);
            return;
        }
        let mut after = After::Keep;
        if flags & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0 && !conn.closing {
            after = handle_readable(ctx, conn);
        }
        match after {
            After::Close => {
                drop_conn(ctx, conns, token);
                return;
            }
            After::Handoff { request, req } => {
                handoff(ctx, conns, token, request, req);
                return;
            }
            After::Keep => {}
        }
        let keep = conns
            .get_mut(&token)
            .map(|conn| settle(ctx, conn))
            .unwrap_or(true);
        if !keep {
            drop_conn(ctx, conns, token);
        }
    }

    /// The event loop proper. See the module docs for the design.
    pub(super) fn serve(server: &Server, listener: TcpListener) -> io::Result<()> {
        sys::raise_nofile(u64::MAX);
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.add(listener.as_raw_fd(), TOKEN_LISTENER, sys::EPOLLIN)?;
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        poller.add(wake_rx.as_raw_fd(), TOKEN_WAKE, sys::EPOLLIN)?;

        let completions: Arc<Mutex<Vec<Completion>>> = Arc::default();
        let (ctl_tx, ctl_rx) = mpsc::channel::<ControlJob>();
        let (data_tx, data_rx) = mpsc::channel::<Job>();
        let data_rx = Arc::new(Mutex::new(data_rx));
        let mut workers = Vec::new();
        {
            let server = server.clone();
            let completions = Arc::clone(&completions);
            let wake = wake_tx.try_clone()?;
            workers.push(
                std::thread::Builder::new()
                    .name("revkb-ctl".to_string())
                    .spawn(move || control_worker(server, ctl_rx, completions, wake))
                    .expect("spawn control worker"),
            );
        }
        for i in 0..server.config().threads.max(1) {
            let server = server.clone();
            let rx = Arc::clone(&data_rx);
            let completions = Arc::clone(&completions);
            let wake = wake_tx.try_clone()?;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("revkb-worker-{i}"))
                    .spawn(move || data_worker(server, rx, completions, wake))
                    .expect("spawn data worker"),
            );
        }

        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_token = FIRST_CONN_TOKEN;
        let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; EVENTS_CAP];
        let mut accepting = true;
        let mut grace: Option<Instant> = None;

        loop {
            if server.is_shutting_down() {
                if accepting {
                    let _ = poller.delete(listener.as_raw_fd());
                    accepting = false;
                    grace = Some(Instant::now() + SHUTDOWN_GRACE);
                }
                let idle = conns
                    .values()
                    .all(|c| c.pending == 0 && c.write_buf.is_empty());
                if idle || grace.is_some_and(|g| Instant::now() > g) {
                    break;
                }
            }
            let n = poller.wait(&mut events, 100)?;
            let fired: Vec<(u64, u32)> = events[..n]
                .iter()
                .map(|e| {
                    let e = *e;
                    (e.data, e.events)
                })
                .collect();
            let ctx = Ctx {
                server,
                poller: &poller,
                ctl_tx: &ctl_tx,
                data_tx: &data_tx,
            };
            for (token, flags) in fired {
                match token {
                    TOKEN_LISTENER => {
                        if accepting {
                            accept_burst(&ctx, &listener, &mut conns, &mut next_token);
                        }
                    }
                    TOKEN_WAKE => {
                        let mut buf = [0u8; 256];
                        while matches!((&wake_rx).read(&mut buf), Ok(n) if n > 0) {}
                    }
                    token => on_conn_event(&ctx, &mut conns, token, flags),
                }
            }
            // Completed responses: copy each into its connection's
            // write buffer (dead tokens are simply dropped) and give
            // HTTP connections their next queued request.
            let batch = std::mem::take(&mut *completions.lock().expect("completions poisoned"));
            for completion in batch {
                let Some(conn) = conns.get_mut(&completion.token) else {
                    continue;
                };
                conn.pending = conn.pending.saturating_sub(1);
                conn.http_busy = false;
                conn.write_buf.extend_from_slice(&completion.bytes);
                if matches!(conn.proto, Proto::Http(_)) {
                    let _ = drain_http(&ctx, conn);
                }
                let keep = settle(&ctx, conn);
                if !keep {
                    drop_conn(&ctx, &mut conns, completion.token);
                }
            }
        }
        drop(ctl_tx);
        drop(data_tx);
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}
