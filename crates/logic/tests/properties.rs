//! Property tests for the logic kernel: parser/printer round-trips,
//! transformation semantics preservation, substitution laws, and the
//! Proposition 4.2 flip identity.

use proptest::prelude::*;
use revkb_logic::{
    distribute_cnf, parse, render, simplify_cnf, tseitin_auto, tt_equivalent, Alphabet, Formula,
    Signature, Var,
};

fn formula_strategy(num_vars: u32, depth: u32) -> BoxedStrategy<Formula> {
    let leaf = prop_oneof![
        4 => (0..num_vars, any::<bool>()).prop_map(|(v, pos)| Formula::lit(Var(v), pos)),
        1 => Just(Formula::True),
        1 => Just(Formula::False),
    ]
    .boxed();
    leaf.prop_recursive(depth, 32, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Formula::and_all),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Formula::or_all),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.iff(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.xor(b)),
            inner.prop_map(|a| a.not()),
        ]
        .boxed()
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// render ∘ parse is semantics-preserving.
    #[test]
    fn print_parse_roundtrip(f in formula_strategy(6, 4)) {
        let mut sig = Signature::new();
        for i in 0..6u32 {
            sig.var(&format!("x{i}"));
        }
        let rendered = render(&f, &sig);
        let reparsed = parse(&rendered, &mut sig).expect("rendered output re-parses");
        prop_assert!(
            tt_equivalent(&f, &reparsed),
            "roundtrip changed semantics: {rendered}"
        );
    }

    /// NNF, shorthand expansion, simplification and conditioning all
    /// preserve semantics.
    #[test]
    fn transforms_preserve_semantics(f in formula_strategy(5, 4)) {
        prop_assert!(tt_equivalent(&f, &f.nnf()));
        prop_assert!(tt_equivalent(&f, &f.expand_shorthands()));
        prop_assert!(tt_equivalent(&f, &f.simplified()));
    }

    /// |f| never grows under shorthand expansion: the measure already
    /// counts shorthands expanded, and the smart constructors can only
    /// fold constants away (strict equality holds for constant-free
    /// formulas, checked in the unit tests).
    #[test]
    fn size_monotone_under_expansion(f in formula_strategy(5, 4)) {
        prop_assert!(f.expand_shorthands().size() <= f.size());
    }

    /// Distribution to CNF preserves semantics (small depth — the
    /// blowup is real).
    #[test]
    fn distribution_preserves_semantics(f in formula_strategy(4, 3)) {
        let cnf = distribute_cnf(&f);
        prop_assert!(tt_equivalent(&f, &cnf.to_formula()));
    }

    /// CNF simplification preserves semantics on Tseitin outputs.
    #[test]
    fn simplify_preserves_tseitin(f in formula_strategy(4, 3)) {
        let mut cnf = tseitin_auto(&f);
        let before = cnf.to_formula();
        simplify_cnf(&mut cnf);
        prop_assert!(tt_equivalent(&before, &cnf.to_formula()));
    }

    /// Proposition 4.2: `M ⊨ F` iff `M△H ⊨ F[H/H̄]`, for random F, M, H.
    #[test]
    fn prop_4_2_flip(f in formula_strategy(5, 3), m_mask in 0u64..32, h_mask in 0u64..32) {
        let alpha = Alphabet::new((0..5).map(Var).collect());
        let h: Vec<Var> = (0..5u32).filter(|i| h_mask >> i & 1 == 1).map(Var).collect();
        let flipped = f.flip(&h);
        let m_delta_h = m_mask ^ (h_mask & 0b11111);
        prop_assert_eq!(
            alpha.eval_mask(&f, m_mask),
            alpha.eval_mask(&flipped, m_delta_h)
        );
    }

    /// Renaming with fresh letters then renaming back is the identity
    /// up to equivalence.
    #[test]
    fn rename_roundtrip(f in formula_strategy(4, 3)) {
        let xs: Vec<Var> = (0..4).map(Var).collect();
        let ys: Vec<Var> = (10..14).map(Var).collect();
        let there = f.rename(&xs, &ys);
        let back = there.rename(&ys, &xs);
        prop_assert!(tt_equivalent(&f, &back));
    }

    /// Dense enumeration agrees with pointwise evaluation.
    #[test]
    fn models_agree_with_eval(f in formula_strategy(5, 3)) {
        let alpha = Alphabet::new((0..5).map(Var).collect());
        let models = alpha.models(&f);
        for mask in 0..32u64 {
            let in_models = models.binary_search(&mask).is_ok();
            prop_assert_eq!(in_models, alpha.eval_mask(&f, mask));
        }
    }
}
