//! DIMACS CNF reading and writing, for interoperability with external
//! SAT tooling and for snapshotting benchmark instances.

use crate::cnf::{Cnf, Lit};
use crate::var::Var;
use std::fmt;

/// An error while parsing DIMACS input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimacsError {
    /// 1-based line where the error was found.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DIMACS error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DimacsError {}

/// Serialise a CNF in DIMACS format. Variable `Var(i)` maps to DIMACS
/// variable `i + 1`.
pub fn write_dimacs(cnf: &Cnf) -> String {
    let mut out = String::new();
    out.push_str(&format!("p cnf {} {}\n", cnf.num_vars, cnf.clauses.len()));
    for clause in &cnf.clauses {
        for lit in clause {
            let v = lit.var().0 as i64 + 1;
            let signed = if lit.is_positive() { v } else { -v };
            out.push_str(&format!("{signed} "));
        }
        out.push_str("0\n");
    }
    out
}

/// Parse DIMACS CNF text. Comment lines (`c …`) are skipped; the
/// problem line is validated loosely (clause/variable counts may exceed
/// the declaration, which raises the watermark instead of failing).
pub fn parse_dimacs(input: &str) -> Result<Cnf, DimacsError> {
    let mut cnf = Cnf::new();
    let mut declared_vars: Option<u32> = None;
    let mut current: Vec<Lit> = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
            continue;
        }
        if line.starts_with('p') {
            let mut parts = line.split_whitespace();
            let _p = parts.next();
            match parts.next() {
                Some("cnf") => {}
                other => {
                    return Err(DimacsError {
                        line: lineno,
                        message: format!("expected 'p cnf', found {other:?}"),
                    })
                }
            }
            let nv: u32 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| DimacsError {
                    line: lineno,
                    message: "missing variable count".into(),
                })?;
            declared_vars = Some(nv);
            continue;
        }
        for tok in line.split_whitespace() {
            let value: i64 = tok.parse().map_err(|_| DimacsError {
                line: lineno,
                message: format!("bad literal token {tok:?}"),
            })?;
            if value == 0 {
                cnf.push(std::mem::take(&mut current));
            } else {
                let var = Var((value.unsigned_abs() - 1) as u32);
                current.push(Lit::new(var, value > 0));
            }
        }
    }
    if !current.is_empty() {
        // Trailing clause without terminating 0 — accept it.
        cnf.push(current);
    }
    if let Some(nv) = declared_vars {
        cnf.num_vars = cnf.num_vars.max(nv);
    }
    Ok(cnf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut cnf = Cnf::new();
        cnf.push(vec![Lit::pos(Var(0)), Lit::neg(Var(2))]);
        cnf.push(vec![Lit::neg(Var(1))]);
        let text = write_dimacs(&cnf);
        let parsed = parse_dimacs(&text).unwrap();
        assert_eq!(parsed.clauses, cnf.clauses);
        assert_eq!(parsed.num_vars, cnf.num_vars);
    }

    #[test]
    fn parses_comments_and_header() {
        let text = "c a comment\np cnf 3 2\n1 -2 0\n3 0\n";
        let cnf = parse_dimacs(text).unwrap();
        assert_eq!(cnf.clauses.len(), 2);
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses[0], vec![Lit::pos(Var(0)), Lit::neg(Var(1))]);
    }

    #[test]
    fn multiline_clause() {
        let text = "p cnf 2 1\n1\n-2 0\n";
        let cnf = parse_dimacs(text).unwrap();
        assert_eq!(cnf.clauses.len(), 1);
        assert_eq!(cnf.clauses[0].len(), 2);
    }

    #[test]
    fn errors_on_garbage() {
        assert!(parse_dimacs("p cnf x y\n").is_err());
        assert!(parse_dimacs("p dnf 1 1\n1 0\n").is_err());
        assert!(parse_dimacs("1 banana 0\n").is_err());
    }

    #[test]
    fn declared_var_count_raises_watermark() {
        let cnf = parse_dimacs("p cnf 10 1\n1 0\n").unwrap();
        assert_eq!(cnf.num_vars, 10);
    }
}
