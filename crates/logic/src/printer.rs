//! Pretty-printing formulas back to the parser's concrete syntax.

use crate::formula::Formula;
use crate::var::Signature;
use std::fmt::Write;

/// Render `f` using the letter names of `sig` (unknown letters print as
/// `v<i>`). The output re-parses to a structurally equal formula.
pub fn render(f: &Formula, sig: &Signature) -> String {
    let mut out = String::new();
    write_prec(f, sig, 0, &mut out);
    out
}

/// Precedence levels: 0 iff/xor, 1 implies, 2 or, 3 and, 4 unary.
fn write_prec(f: &Formula, sig: &Signature, prec: u8, out: &mut String) {
    let my_prec = match f {
        Formula::Iff(_, _) | Formula::Xor(_, _) => 0,
        Formula::Implies(_, _) => 1,
        Formula::Or(_) => 2,
        Formula::And(_) => 3,
        _ => 4,
    };
    let need_parens = my_prec < prec;
    if need_parens {
        out.push('(');
    }
    match f {
        Formula::True => out.push_str("true"),
        Formula::False => out.push_str("false"),
        Formula::Var(v) => {
            let _ = write!(out, "{}", sig.name_or_default(*v));
        }
        Formula::Not(inner) => {
            out.push('!');
            write_prec(inner, sig, 4, out);
        }
        Formula::And(fs) => {
            for (i, g) in fs.iter().enumerate() {
                if i > 0 {
                    out.push_str(" & ");
                }
                write_prec(g, sig, 4, out);
            }
        }
        Formula::Or(fs) => {
            for (i, g) in fs.iter().enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                write_prec(g, sig, 3, out);
            }
        }
        Formula::Implies(a, b) => {
            write_prec(a, sig, 2, out);
            out.push_str(" -> ");
            write_prec(b, sig, 1, out);
        }
        Formula::Iff(a, b) => {
            write_prec(a, sig, 1, out);
            out.push_str(" <-> ");
            write_prec(b, sig, 1, out);
        }
        Formula::Xor(a, b) => {
            write_prec(a, sig, 1, out);
            out.push_str(" <+> ");
            write_prec(b, sig, 1, out);
        }
    }
    if need_parens {
        out.push(')');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::tt_equivalent;
    use crate::parser::parse;

    fn check_roundtrip(s: &str) {
        let mut sig = Signature::new();
        let f = parse(s, &mut sig).unwrap();
        let rendered = render(&f, &sig);
        let mut sig2 = sig.clone();
        let g = parse(&rendered, &mut sig2).unwrap();
        assert!(
            tt_equivalent(&f, &g),
            "roundtrip changed semantics: {s} -> {rendered}"
        );
    }

    #[test]
    fn roundtrips() {
        for s in [
            "a",
            "!a",
            "a & b & c",
            "a | b & c",
            "(a | b) & c",
            "a -> b -> c",
            "(a -> b) -> c",
            "a <-> b <+> c",
            "!(a & b)",
            "true | false",
            "a & !b | c -> d <-> e",
        ] {
            check_roundtrip(s);
        }
    }

    #[test]
    fn rendering_uses_names() {
        let mut sig = Signature::new();
        let f = parse("george | bill", &mut sig).unwrap();
        assert_eq!(render(&f, &sig), "george | bill");
    }

    #[test]
    fn unknown_vars_render_as_default() {
        let sig = Signature::new();
        let f = Formula::var(crate::var::Var(7));
        assert_eq!(render(&f, &sig), "v7");
    }

    #[test]
    fn negation_parenthesizes_compounds() {
        let mut sig = Signature::new();
        let f = parse("!(a | b)", &mut sig).unwrap();
        let rendered = render(&f, &sig);
        let g = parse(&rendered, &mut sig).unwrap();
        assert!(tt_equivalent(&f, &g));
    }
}
