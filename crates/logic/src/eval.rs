//! Interpretations, evaluation and dense model enumeration.
//!
//! The paper identifies an interpretation with the set of letters it
//! maps to true; [`Interpretation`] follows that convention. For the
//! semantic ground-truth engine we also provide a dense view: an
//! [`Alphabet`] fixes an ordering of at most 64 letters and represents
//! each interpretation as a `u64` bitmask, so `2ⁿ` enumeration and
//! symmetric-difference arithmetic become single machine operations.

use crate::formula::Formula;
use crate::var::Var;
use std::collections::BTreeSet;

/// An interpretation as the set of letters mapped to true.
pub type Interpretation = BTreeSet<Var>;

impl Formula {
    /// Evaluate under an arbitrary valuation function.
    pub fn eval_fn(&self, val: &impl Fn(Var) -> bool) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Var(v) => val(*v),
            Formula::Not(f) => !f.eval_fn(val),
            Formula::And(fs) => fs.iter().all(|f| f.eval_fn(val)),
            Formula::Or(fs) => fs.iter().any(|f| f.eval_fn(val)),
            Formula::Implies(a, b) => !a.eval_fn(val) || b.eval_fn(val),
            Formula::Iff(a, b) => a.eval_fn(val) == b.eval_fn(val),
            Formula::Xor(a, b) => a.eval_fn(val) != b.eval_fn(val),
        }
    }

    /// Evaluate under a set-of-true-letters interpretation
    /// (`M ⊨ φ` in the paper's notation).
    pub fn eval(&self, m: &Interpretation) -> bool {
        self.eval_fn(&|v| m.contains(&v))
    }
}

/// A fixed ordering of at most 64 letters, giving each interpretation a
/// dense `u64` bitmask encoding (bit `i` = truth of the `i`-th letter).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alphabet {
    vars: Vec<Var>,
    positions: std::collections::HashMap<Var, usize>,
}

impl Alphabet {
    /// Build an alphabet from an ordered list of distinct letters.
    ///
    /// # Panics
    /// If there are more than 64 letters or duplicates.
    pub fn new(vars: Vec<Var>) -> Self {
        assert!(
            vars.len() <= 64,
            "dense alphabets support at most 64 letters"
        );
        let mut positions = std::collections::HashMap::with_capacity(vars.len());
        for (i, &v) in vars.iter().enumerate() {
            let prev = positions.insert(v, i);
            assert!(prev.is_none(), "duplicate letter in alphabet");
        }
        Self { vars, positions }
    }

    /// The alphabet `V(φ)` of a formula, in `Var` order.
    pub fn of_formula(f: &Formula) -> Self {
        Self::new(f.vars().into_iter().collect())
    }

    /// The union of the alphabets of several formulas, in `Var` order.
    pub fn of_formulas<'a, I: IntoIterator<Item = &'a Formula>>(fs: I) -> Self {
        let mut vars = BTreeSet::new();
        for f in fs {
            f.collect_vars(&mut vars);
        }
        Self::new(vars.into_iter().collect())
    }

    /// Number of letters.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True when the alphabet has no letters.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// The letters, in mask-bit order.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Bit position of `v`, if it belongs to the alphabet.
    pub fn position(&self, v: Var) -> Option<usize> {
        self.positions.get(&v).copied()
    }

    /// True when `v` belongs to the alphabet.
    pub fn contains(&self, v: Var) -> bool {
        self.positions.contains_key(&v)
    }

    /// Total number of interpretations `2ⁿ`.
    ///
    /// # Panics
    /// If the alphabet has 64 letters (the count overflows `u64`); all
    /// enumeration entry points are intended for much smaller alphabets.
    pub fn interpretation_count(&self) -> u64 {
        assert!(self.len() < 64, "interpretation count overflows u64");
        1u64 << self.len()
    }

    /// Convert a mask to the paper's set-of-letters interpretation.
    pub fn mask_to_interpretation(&self, mask: u64) -> Interpretation {
        self.vars
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &v)| v)
            .collect()
    }

    /// Convert a set-of-letters interpretation to a mask. Letters outside
    /// the alphabet are ignored (they are false by convention).
    pub fn interpretation_to_mask(&self, m: &Interpretation) -> u64 {
        let mut mask = 0u64;
        for v in m {
            if let Some(i) = self.position(*v) {
                mask |= 1 << i;
            }
        }
        mask
    }

    /// Evaluate `f` under `mask`; letters of `f` outside the alphabet
    /// are false.
    pub fn eval_mask(&self, f: &Formula, mask: u64) -> bool {
        f.eval_fn(&|v| match self.position(v) {
            Some(i) => mask & (1 << i) != 0,
            None => false,
        })
    }

    /// Enumerate all models of `f` over this alphabet, as masks, in
    /// increasing mask order.
    ///
    /// # Panics
    /// If the alphabet has 64 or more letters. This is the ground-truth
    /// path; use the SAT solver for large alphabets.
    pub fn models(&self, f: &Formula) -> Vec<u64> {
        let count = self.interpretation_count();
        (0..count).filter(|&m| self.eval_mask(f, m)).collect()
    }

    /// Hamming distance between two interpretations (the cardinality of
    /// the symmetric difference, `|M △ N|`).
    #[inline]
    pub fn distance(a: u64, b: u64) -> u32 {
        (a ^ b).count_ones()
    }

    /// Symmetric difference `M △ N` as a mask.
    #[inline]
    pub fn diff(a: u64, b: u64) -> u64 {
        a ^ b
    }

    /// Project a mask onto the letters of `sub` (a sub-alphabet): the
    /// resulting mask is expressed in `sub`'s bit order. Letters of
    /// `sub` absent from `self` come out false.
    pub fn project_mask(&self, mask: u64, sub: &Alphabet) -> u64 {
        let mut out = 0u64;
        for (j, &v) in sub.vars.iter().enumerate() {
            if let Some(i) = self.position(v) {
                if mask & (1 << i) != 0 {
                    out |= 1 << j;
                }
            }
        }
        out
    }

    /// The mask selecting the positions of the given letters (letters
    /// outside the alphabet are ignored).
    pub fn subset_mask(&self, vars: &[Var]) -> u64 {
        let mut out = 0u64;
        for &v in vars {
            if let Some(i) = self.position(v) {
                out |= 1 << i;
            }
        }
        out
    }
}

/// Truth-table logical equivalence of two formulas over the union of
/// their alphabets. Exponential; intended for testing and small inputs.
pub fn tt_equivalent(a: &Formula, b: &Formula) -> bool {
    let alpha = Alphabet::of_formulas([a, b]);
    assert!(alpha.len() <= 24, "tt_equivalent is for small alphabets");
    let count = 1u64 << alpha.len();
    (0..count).all(|m| alpha.eval_mask(a, m) == alpha.eval_mask(b, m))
}

/// Truth-table validity check. Exponential; for testing and small inputs.
pub fn tt_valid(f: &Formula) -> bool {
    tt_equivalent(f, &Formula::True)
}

/// Truth-table satisfiability check. Exponential; for testing and small
/// inputs.
pub fn tt_satisfiable(f: &Formula) -> bool {
    let alpha = Alphabet::of_formula(f);
    assert!(alpha.len() <= 24, "tt_satisfiable is for small alphabets");
    let count = 1u64 << alpha.len();
    (0..count).any(|m| alpha.eval_mask(f, m))
}

/// Truth-table entailment `a ⊨ b` over the union alphabet. Exponential.
pub fn tt_entails(a: &Formula, b: &Formula) -> bool {
    let alpha = Alphabet::of_formulas([a, b]);
    assert!(alpha.len() <= 24, "tt_entails is for small alphabets");
    let count = 1u64 << alpha.len();
    (0..count).all(|m| !alpha.eval_mask(a, m) || alpha.eval_mask(b, m))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn eval_on_sets() {
        let f = v(0).and(v(1).not());
        let m: Interpretation = [Var(0)].into_iter().collect();
        assert!(f.eval(&m));
        let m2: Interpretation = [Var(0), Var(1)].into_iter().collect();
        assert!(!f.eval(&m2));
    }

    #[test]
    fn eval_shorthands() {
        let f = v(0).iff(v(1));
        let both: Interpretation = [Var(0), Var(1)].into_iter().collect();
        let neither: Interpretation = Interpretation::new();
        let one: Interpretation = [Var(0)].into_iter().collect();
        assert!(f.eval(&both));
        assert!(f.eval(&neither));
        assert!(!f.eval(&one));
        let g = v(0).implies(v(1));
        assert!(g.eval(&neither));
        assert!(!g.eval(&one));
    }

    #[test]
    fn model_enumeration() {
        let f = v(0).or(v(1));
        let alpha = Alphabet::of_formula(&f);
        let models = alpha.models(&f);
        assert_eq!(models, vec![0b01, 0b10, 0b11]);
    }

    #[test]
    fn interpretation_roundtrip() {
        let alpha = Alphabet::new(vec![Var(3), Var(7), Var(9)]);
        let m: Interpretation = [Var(3), Var(9)].into_iter().collect();
        let mask = alpha.interpretation_to_mask(&m);
        assert_eq!(mask, 0b101);
        assert_eq!(alpha.mask_to_interpretation(mask), m);
    }

    #[test]
    fn distance_and_diff() {
        assert_eq!(Alphabet::distance(0b101, 0b011), 2);
        assert_eq!(Alphabet::diff(0b101, 0b011), 0b110);
    }

    #[test]
    fn projection() {
        let big = Alphabet::new(vec![Var(0), Var(1), Var(2)]);
        let small = Alphabet::new(vec![Var(2), Var(0)]);
        // mask 0b110 on big = {Var1, Var2}; projected to (Var2, Var0) = 0b01.
        assert_eq!(big.project_mask(0b110, &small), 0b01);
    }

    #[test]
    fn subset_mask_ignores_foreign_letters() {
        let alpha = Alphabet::new(vec![Var(0), Var(1)]);
        assert_eq!(alpha.subset_mask(&[Var(1), Var(42)]), 0b10);
    }

    #[test]
    fn tt_checks() {
        let f = v(0).or(v(0).not());
        assert!(tt_valid(&f));
        assert!(tt_satisfiable(&v(0)));
        assert!(!tt_satisfiable(&v(0).and(v(0).not())));
        assert!(tt_entails(&v(0).and(v(1)), &v(0)));
        assert!(!tt_entails(&v(0), &v(1)));
        assert!(tt_equivalent(&v(0).implies(v(1)), &v(0).not().or(v(1))));
    }

    #[test]
    fn eval_mask_treats_foreign_vars_false() {
        let alpha = Alphabet::new(vec![Var(0)]);
        let f = v(0).and(v(5).not());
        assert!(alpha.eval_mask(&f, 0b1));
    }
}
