//! The propositional formula AST.
//!
//! Connectives mirror the paper's notation: `¬`, `∧`, `∨`, plus the
//! shorthands `x → y` (for `¬x ∨ y`), `x ≡ y` (for `(x∧y)∨(¬x∧¬y)`) and
//! `x ≢ y` (for `(x∨y)∧(¬x∨¬y)`). Shorthands are kept as AST nodes for
//! readability but [`Formula::size`] accounts for them expanded, exactly
//! as the paper defines `|W|` — the number of variable occurrences of
//! the (shorthand-free) formula.
//!
//! Subformulas are reference-counted ([`std::sync::Arc`]) so cloning a
//! formula — which the substitution and construction machinery does
//! constantly — is cheap and shares structure.

use crate::var::Var;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A propositional formula.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// `⊤` — validity.
    True,
    /// `⊥` — falsity.
    False,
    /// A propositional letter.
    Var(Var),
    /// Negation `¬φ`.
    Not(Arc<Formula>),
    /// Conjunction `φ₁ ∧ … ∧ φₖ` (empty conjunction is `⊤`).
    And(Vec<Formula>),
    /// Disjunction `φ₁ ∨ … ∨ φₖ` (empty disjunction is `⊥`).
    Or(Vec<Formula>),
    /// Implication `φ → ψ`, shorthand for `¬φ ∨ ψ`.
    Implies(Arc<Formula>, Arc<Formula>),
    /// Equivalence `φ ≡ ψ`, shorthand for `(φ∧ψ) ∨ (¬φ∧¬ψ)`.
    Iff(Arc<Formula>, Arc<Formula>),
    /// Non-equivalence `φ ≢ ψ`, shorthand for `(φ∨ψ) ∧ (¬φ∨¬ψ)`.
    Xor(Arc<Formula>, Arc<Formula>),
}

impl Formula {
    /// The letter `v` as a formula.
    pub fn var(v: Var) -> Formula {
        Formula::Var(v)
    }

    /// The literal `v` or `¬v`.
    pub fn lit(v: Var, positive: bool) -> Formula {
        if positive {
            Formula::Var(v)
        } else {
            Formula::Var(v).not()
        }
    }

    /// `¬self`, with double negations collapsed.
    ///
    /// Deliberately an inherent method rather than `std::ops::Not`:
    /// the whole codebase builds formulas by fluent chaining
    /// (`a.and(b).not()`), and an operator impl would force `!`
    /// syntax into those chains.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        match self {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => inner.as_ref().clone(),
            other => Formula::Not(Arc::new(other)),
        }
    }

    /// `self ∧ other`, flattening nested conjunctions and folding constants.
    pub fn and(self, other: Formula) -> Formula {
        Formula::and_all([self, other])
    }

    /// `self ∨ other`, flattening nested disjunctions and folding constants.
    pub fn or(self, other: Formula) -> Formula {
        Formula::or_all([self, other])
    }

    /// `self → other`.
    pub fn implies(self, other: Formula) -> Formula {
        Formula::Implies(Arc::new(self), Arc::new(other))
    }

    /// `self ≡ other`.
    pub fn iff(self, other: Formula) -> Formula {
        Formula::Iff(Arc::new(self), Arc::new(other))
    }

    /// `self ≢ other` (exclusive or).
    pub fn xor(self, other: Formula) -> Formula {
        Formula::Xor(Arc::new(self), Arc::new(other))
    }

    /// Conjunction of all formulas in `items`; `⊤` if empty.
    ///
    /// Nested `And`s are flattened; `⊤` conjuncts are dropped and a `⊥`
    /// conjunct collapses the whole conjunction.
    pub fn and_all<I: IntoIterator<Item = Formula>>(items: I) -> Formula {
        let mut parts = Vec::new();
        for f in items {
            match f {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(inner) => parts.extend(inner),
                other => parts.push(other),
            }
        }
        match parts.len() {
            0 => Formula::True,
            1 => parts.pop().unwrap(),
            _ => Formula::And(parts),
        }
    }

    /// Disjunction of all formulas in `items`; `⊥` if empty.
    pub fn or_all<I: IntoIterator<Item = Formula>>(items: I) -> Formula {
        let mut parts = Vec::new();
        for f in items {
            match f {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(inner) => parts.extend(inner),
                other => parts.push(other),
            }
        }
        match parts.len() {
            0 => Formula::False,
            1 => parts.pop().unwrap(),
            _ => Formula::Or(parts),
        }
    }

    /// The paper's size measure `|W|`: the number of variable
    /// occurrences, with the `→`, `≡`, `≢` shorthands counted expanded
    /// (so `x ≡ y` has size 4, matching `(x∧y)∨(¬x∧¬y)`).
    ///
    /// ```
    /// use revkb_logic::{Formula, Var};
    /// let x = Formula::var(Var(0));
    /// let y = Formula::var(Var(1));
    /// assert_eq!(x.clone().and(y.clone().not()).size(), 2);
    /// assert_eq!(x.iff(y).size(), 4); // counted expanded
    /// ```
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False => 0,
            Formula::Var(_) => 1,
            Formula::Not(f) => f.size(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().map(Formula::size).sum(),
            Formula::Implies(a, b) => a.size() + b.size(),
            Formula::Iff(a, b) | Formula::Xor(a, b) => 2 * (a.size() + b.size()),
        }
    }

    /// Number of AST nodes (a secondary, structural size measure).
    pub fn node_count(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Var(_) => 1,
            Formula::Not(f) => 1 + f.node_count(),
            Formula::And(fs) | Formula::Or(fs) => {
                1 + fs.iter().map(Formula::node_count).sum::<usize>()
            }
            Formula::Implies(a, b) | Formula::Iff(a, b) | Formula::Xor(a, b) => {
                1 + a.node_count() + b.node_count()
            }
        }
    }

    /// The set `V(φ)` of letters occurring in the formula.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    /// Accumulate `V(φ)` into `out` without allocating a fresh set.
    pub fn collect_vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Var(v) => {
                out.insert(*v);
            }
            Formula::Not(f) => f.collect_vars(out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_vars(out);
                }
            }
            Formula::Implies(a, b) | Formula::Iff(a, b) | Formula::Xor(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// True when the formula is the constant `⊤`.
    pub fn is_true(&self) -> bool {
        matches!(self, Formula::True)
    }

    /// True when the formula is the constant `⊥`.
    pub fn is_false(&self) -> bool {
        matches!(self, Formula::False)
    }

    /// Rewrite the shorthands `→`, `≡`, `≢` into `¬/∧/∨`, recursively.
    ///
    /// The result is what the paper's `|W|` measures; [`Formula::size`]
    /// of the result equals `size` of the original.
    pub fn expand_shorthands(&self) -> Formula {
        match self {
            Formula::True | Formula::False | Formula::Var(_) => self.clone(),
            Formula::Not(f) => f.expand_shorthands().not(),
            Formula::And(fs) => Formula::and_all(fs.iter().map(Formula::expand_shorthands)),
            Formula::Or(fs) => Formula::or_all(fs.iter().map(Formula::expand_shorthands)),
            Formula::Implies(a, b) => {
                let a = a.expand_shorthands();
                let b = b.expand_shorthands();
                a.not().or(b)
            }
            Formula::Iff(a, b) => {
                let a = a.expand_shorthands();
                let b = b.expand_shorthands();
                let both = a.clone().and(b.clone());
                let neither = a.not().and(b.not());
                both.or(neither)
            }
            Formula::Xor(a, b) => {
                let a = a.expand_shorthands();
                let b = b.expand_shorthands();
                let one = a.clone().or(b.clone());
                let not_both = a.not().or(b.not());
                one.and(not_both)
            }
        }
    }
}

/// Conjunction of equivalences forcing two equal-length letter vectors
/// to agree: `⋀ᵢ (xᵢ ≡ yᵢ)`. Panics if the slices differ in length.
pub fn vectors_equal(xs: &[Var], ys: &[Var]) -> Formula {
    assert_eq!(xs.len(), ys.len(), "vector length mismatch");
    Formula::and_all(
        xs.iter()
            .zip(ys)
            .map(|(&x, &y)| Formula::var(x).iff(Formula::var(y))),
    )
}

/// Conjunction of non-equivalences `⋀ᵢ (xᵢ ≢ yᵢ)` (Nebel's `P₁`).
pub fn vectors_differ_everywhere(xs: &[Var], ys: &[Var]) -> Formula {
    assert_eq!(xs.len(), ys.len(), "vector length mismatch");
    Formula::and_all(
        xs.iter()
            .zip(ys)
            .map(|(&x, &y)| Formula::var(x).xor(Formula::var(y))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn constructors_fold_constants() {
        assert_eq!(Formula::True.and(v(0)), v(0));
        assert_eq!(Formula::False.and(v(0)), Formula::False);
        assert_eq!(Formula::False.or(v(0)), v(0));
        assert_eq!(Formula::True.or(v(0)), Formula::True);
        assert_eq!(Formula::True.not(), Formula::False);
    }

    #[test]
    fn double_negation_collapses() {
        assert_eq!(v(0).not().not(), v(0));
    }

    #[test]
    fn and_flattens() {
        let f = v(0).and(v(1)).and(v(2));
        match f {
            Formula::And(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected flat And, got {other:?}"),
        }
    }

    #[test]
    fn empty_connectives() {
        assert_eq!(Formula::and_all([]), Formula::True);
        assert_eq!(Formula::or_all([]), Formula::False);
    }

    #[test]
    fn size_counts_occurrences() {
        // x1 ∧ (x2 ∨ ¬x3) has 3 occurrences.
        let f = v(1).and(v(2).or(v(3).not()));
        assert_eq!(f.size(), 3);
        // Same letter twice counts twice.
        let g = v(1).and(v(1));
        assert_eq!(g.size(), 2);
    }

    #[test]
    fn size_of_shorthands_matches_expansion() {
        let f = v(0).iff(v(1));
        assert_eq!(f.size(), 4);
        assert_eq!(f.expand_shorthands().size(), f.size());
        let g = v(0).xor(v(1));
        assert_eq!(g.size(), 4);
        assert_eq!(g.expand_shorthands().size(), g.size());
        let h = v(0).implies(v(1));
        assert_eq!(h.size(), 2);
        assert_eq!(h.expand_shorthands().size(), h.size());
    }

    #[test]
    fn vars_deduplicates() {
        let f = v(0).and(v(1)).or(v(0).not());
        let vars = f.vars();
        assert_eq!(vars.len(), 2);
        assert!(vars.contains(&Var(0)));
        assert!(vars.contains(&Var(1)));
    }

    #[test]
    fn vector_helpers() {
        let xs = [Var(0), Var(1)];
        let ys = [Var(2), Var(3)];
        let eq = vectors_equal(&xs, &ys);
        assert_eq!(eq.size(), 8);
        let ne = vectors_differ_everywhere(&xs, &ys);
        assert_eq!(ne.size(), 8);
    }

    #[test]
    fn node_count_structural() {
        let f = v(0).and(v(1));
        assert_eq!(f.node_count(), 3);
    }
}
