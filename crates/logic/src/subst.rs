//! Substitution of letters by formulas: the paper's `P[x/F]` and
//! `P[X/Y]` notation, plus the idioms the constructions use constantly —
//! vector renaming `T[X/Y]` and literal flipping `T[S/S̄]`.

use crate::formula::Formula;
use crate::var::Var;
use std::collections::HashMap;

/// A simultaneous substitution from letters to formulas.
#[derive(Debug, Clone, Default)]
pub struct Substitution {
    map: HashMap<Var, Formula>,
}

impl Substitution {
    /// The empty substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// `P[x/F]`: map letter `x` to formula `F`.
    pub fn bind(mut self, x: Var, f: Formula) -> Self {
        self.map.insert(x, f);
        self
    }

    /// `P[X/Y]` for ordered letter vectors `X`, `Y` of equal length.
    ///
    /// # Panics
    /// If the vectors differ in length.
    pub fn renaming(xs: &[Var], ys: &[Var]) -> Self {
        assert_eq!(xs.len(), ys.len(), "renaming vectors differ in length");
        let mut s = Self::new();
        for (&x, &y) in xs.iter().zip(ys) {
            s.map.insert(x, Formula::var(y));
        }
        s
    }

    /// `T[S/S̄]`: replace each letter of `S` by its negation
    /// (Proposition 4.2's flip).
    pub fn flipping(s: &[Var]) -> Self {
        let mut sub = Self::new();
        for &x in s {
            sub.map.insert(x, Formula::var(x).not());
        }
        sub
    }

    /// The bound formula for `x`, if any.
    pub fn get(&self, x: Var) -> Option<&Formula> {
        self.map.get(&x)
    }

    /// Number of bound letters.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no letter is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Apply the substitution simultaneously to `f`.
    pub fn apply(&self, f: &Formula) -> Formula {
        match f {
            Formula::True | Formula::False => f.clone(),
            Formula::Var(v) => match self.map.get(v) {
                Some(g) => g.clone(),
                None => f.clone(),
            },
            Formula::Not(inner) => self.apply(inner).not(),
            Formula::And(fs) => Formula::and_all(fs.iter().map(|g| self.apply(g))),
            Formula::Or(fs) => Formula::or_all(fs.iter().map(|g| self.apply(g))),
            Formula::Implies(a, b) => self.apply(a).implies(self.apply(b)),
            Formula::Iff(a, b) => self.apply(a).iff(self.apply(b)),
            Formula::Xor(a, b) => self.apply(a).xor(self.apply(b)),
        }
    }
}

impl Formula {
    /// `self[x/F]`.
    pub fn substitute(&self, x: Var, f: Formula) -> Formula {
        Substitution::new().bind(x, f).apply(self)
    }

    /// `self[X/Y]` for equal-length letter vectors.
    pub fn rename(&self, xs: &[Var], ys: &[Var]) -> Formula {
        Substitution::renaming(xs, ys).apply(self)
    }

    /// `self[S/S̄]`: flip the polarity of every letter in `s`.
    pub fn flip(&self, s: &[Var]) -> Formula {
        Substitution::flipping(s).apply(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::tt_equivalent;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn paper_example() {
        // Q = x1 ∧ (x2 ∨ ¬x3); X = {x1,x3}, Y = {y1, ¬y3}.
        // Q[X/Y] = y1 ∧ (x2 ∨ ¬¬y3).
        let q = v(1).and(v(2).or(v(3).not()));
        let sub = Substitution::new()
            .bind(Var(1), v(11))
            .bind(Var(3), v(13).not());
        let out = sub.apply(&q);
        // ¬¬y3 collapses to y3 under our smart constructors.
        let expected = v(11).and(v(2).or(v(13)));
        assert_eq!(out, expected);
    }

    #[test]
    fn substitution_is_simultaneous() {
        // [x0/x1, x1/x0] swaps, it does not cascade.
        let f = v(0).and(v(1));
        let sub = Substitution::new().bind(Var(0), v(1)).bind(Var(1), v(0));
        assert_eq!(sub.apply(&f), v(1).and(v(0)));
    }

    #[test]
    fn renaming_vectors() {
        let f = v(0).or(v(1));
        let out = f.rename(&[Var(0), Var(1)], &[Var(10), Var(11)]);
        assert_eq!(out, v(10).or(v(11)));
    }

    #[test]
    fn flip_is_involutive_semantically() {
        let f = v(0).implies(v(1)).and(v(2).xor(v(0)));
        let s = [Var(0), Var(2)];
        let flipped_twice = f.flip(&s).flip(&s);
        assert!(tt_equivalent(&f, &flipped_twice));
    }

    #[test]
    fn prop_4_2_flip_models() {
        // Proposition 4.2: M ⊨ F iff M△H ⊨ F[H/H̄].
        // F = x1 ∧ (x2 ∨ ¬x3), M = {x1}, H = {x2,x3}.
        let f = v(1).and(v(2).or(v(3).not()));
        let m: crate::eval::Interpretation = [Var(1)].into_iter().collect();
        assert!(f.eval(&m));
        let h = [Var(2), Var(3)];
        let m_delta_h: crate::eval::Interpretation = [Var(1), Var(2), Var(3)].into_iter().collect();
        let f_flipped = f.flip(&h);
        assert!(f_flipped.eval(&m_delta_h));
    }

    #[test]
    fn unbound_letters_untouched() {
        let f = v(0).and(v(5));
        let out = f.substitute(Var(0), Formula::True);
        assert_eq!(out, v(5));
    }
}
