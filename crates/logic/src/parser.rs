//! A small recursive-descent parser for propositional formulas.
//!
//! Grammar (lowest to highest precedence; `<->` and `<+>` associate
//! left, `->` associates right):
//!
//! ```text
//! iff     := implies ( ("<->" | "<+>") implies )*
//! implies := or ( "->" implies )?
//! or      := and ( ("|" | "\/") and )*
//! and     := unary ( ("&" | "/\") unary )*
//! unary   := ("!" | "~" | "-") unary | atom
//! atom    := "true" | "false" | ident | "(" iff ")"
//! ident   := [A-Za-z_][A-Za-z0-9_'#]*
//! ```
//!
//! Identifiers are interned into the supplied [`Signature`], so parsing
//! `"g | b"` then `"!g"` reuses the same letters.

use crate::formula::Formula;
use crate::var::Signature;
use std::fmt;

/// A parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte position where parsing failed.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse `input` into a formula, interning letters into `sig`.
///
/// ```
/// use revkb_logic::{parse, Signature};
/// let mut sig = Signature::new();
/// let f = parse("george | bill", &mut sig).unwrap();
/// let g = parse("!george", &mut sig).unwrap();
/// // Letters are shared through the signature.
/// assert!(revkb_logic::tt_entails(&f.and(g), &parse("bill", &mut sig).unwrap()));
/// ```
pub fn parse(input: &str, sig: &mut Signature) -> Result<Formula, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        sig,
    };
    p.skip_ws();
    let f = p.parse_iff()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing input"));
    }
    Ok(f)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    sig: &'a mut Signature,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            position: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn parse_iff(&mut self) -> Result<Formula, ParseError> {
        let mut left = self.parse_implies()?;
        loop {
            self.skip_ws();
            if self.eat("<->") {
                self.skip_ws();
                let right = self.parse_implies()?;
                left = left.iff(right);
            } else if self.eat("<+>") {
                self.skip_ws();
                let right = self.parse_implies()?;
                left = left.xor(right);
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_implies(&mut self) -> Result<Formula, ParseError> {
        let left = self.parse_or()?;
        self.skip_ws();
        if self.eat("->") {
            self.skip_ws();
            let right = self.parse_implies()?;
            Ok(left.implies(right))
        } else {
            Ok(left)
        }
    }

    fn parse_or(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.parse_and()?];
        loop {
            self.skip_ws();
            // Careful not to consume the "|" of nothing or "\/".
            if self.eat("\\/")
                || (self.peek() == Some(b'|') && {
                    self.pos += 1;
                    true
                })
            {
                self.skip_ws();
                parts.push(self.parse_and()?);
            } else {
                break;
            }
        }
        Ok(Formula::or_all(parts))
    }

    fn parse_and(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.parse_unary()?];
        loop {
            self.skip_ws();
            if self.eat("/\\")
                || (self.peek() == Some(b'&') && {
                    self.pos += 1;
                    true
                })
            {
                self.skip_ws();
                parts.push(self.parse_unary()?);
            } else {
                break;
            }
        }
        Ok(Formula::and_all(parts))
    }

    fn parse_unary(&mut self) -> Result<Formula, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'!') | Some(b'~') => {
                self.pos += 1;
                Ok(self.parse_unary()?.not())
            }
            // '-' negation, but not the '->' arrow (can't start a term).
            Some(b'-') if self.bytes.get(self.pos + 1) != Some(&b'>') => {
                self.pos += 1;
                Ok(self.parse_unary()?.not())
            }
            _ => self.parse_atom(),
        }
    }

    fn parse_atom(&mut self) -> Result<Formula, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let f = self.parse_iff()?;
                self.skip_ws();
                if self.peek() == Some(b')') {
                    self.pos += 1;
                    Ok(f)
                } else {
                    Err(self.error("expected ')'"))
                }
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while self
                    .peek()
                    .map(|c| c.is_ascii_alphanumeric() || c == b'_' || c == b'\'' || c == b'#')
                    .unwrap_or(false)
                {
                    self.pos += 1;
                }
                let ident = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
                match ident {
                    "true" | "TRUE" | "T" => Ok(Formula::True),
                    "false" | "FALSE" | "F" => Ok(Formula::False),
                    name => Ok(Formula::var(self.sig.var(name))),
                }
            }
            _ => Err(self.error("expected atom")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::tt_equivalent;
    use crate::formula::Formula;

    fn roundtrip(s: &str) -> (Formula, Signature) {
        let mut sig = Signature::new();
        let f = parse(s, &mut sig).expect("parse failed");
        (f, sig)
    }

    #[test]
    fn atoms_and_constants() {
        let (f, sig) = roundtrip("george");
        assert_eq!(f, Formula::var(sig.lookup("george").unwrap()));
        assert_eq!(roundtrip("true").0, Formula::True);
        assert_eq!(roundtrip("false").0, Formula::False);
    }

    #[test]
    fn precedence() {
        // a | b & c parses as a | (b & c)
        let (f, mut sig) = roundtrip("a | b & c");
        let expected = parse("a | (b & c)", &mut sig).unwrap();
        assert_eq!(f, expected);
        // !a & b parses as (!a) & b
        let (g, mut sig2) = roundtrip("!a & b");
        let expected2 = parse("(!a) & b", &mut sig2).unwrap();
        assert_eq!(g, expected2);
    }

    #[test]
    fn implication_right_associative() {
        let (f, mut sig) = roundtrip("a -> b -> c");
        let expected = parse("a -> (b -> c)", &mut sig).unwrap();
        assert_eq!(f, expected);
    }

    #[test]
    fn connective_spellings() {
        let (f, mut sig) = roundtrip("a /\\ b \\/ ~c");
        let expected = parse("a & b | !c", &mut sig).unwrap();
        assert!(tt_equivalent(&f, &expected));
    }

    #[test]
    fn iff_and_xor() {
        let (f, _) = roundtrip("a <-> b");
        assert!(matches!(f, Formula::Iff(_, _)));
        let (g, _) = roundtrip("a <+> b");
        assert!(matches!(g, Formula::Xor(_, _)));
    }

    #[test]
    fn shared_signature_reuses_letters() {
        let mut sig = Signature::new();
        let f = parse("g | b", &mut sig).unwrap();
        let g = parse("!g", &mut sig).unwrap();
        let conj = f.and(g);
        // g ∨ b, ¬g entails b (the paper's office example).
        let b = Formula::var(sig.lookup("b").unwrap());
        assert!(crate::eval::tt_entails(&conj, &b));
    }

    #[test]
    fn dash_negation_vs_arrow() {
        let (f, mut sig) = roundtrip("-a -> b");
        let expected = parse("(!a) -> b", &mut sig).unwrap();
        assert_eq!(f, expected);
    }

    #[test]
    fn errors() {
        let mut sig = Signature::new();
        assert!(parse("a &", &mut sig).is_err());
        assert!(parse("(a", &mut sig).is_err());
        assert!(parse("a b", &mut sig).is_err());
        assert!(parse("", &mut sig).is_err());
    }

    #[test]
    fn primed_identifiers() {
        let (_, sig) = roundtrip("x1' & w#3");
        assert!(sig.lookup("x1'").is_some());
        assert!(sig.lookup("w#3").is_some());
    }
}
