//! Clausal form: literals, clauses, CNF, and the Tseitin transform.
//!
//! [`Lit`] uses the MiniSat packed encoding (`var << 1 | sign`), which
//! the SAT solver indexes watch lists with. The full (two-sided)
//! Tseitin transform is used rather than the polarity-optimised one:
//! with definitional clauses in both directions, every model of the
//! original formula extends to *exactly one* model of the CNF, and
//! every CNF model restricts to a model of the formula — which is what
//! the query-equivalence machinery (projection of auxiliary letters)
//! relies on.

use crate::formula::Formula;
use crate::var::Var;
use std::fmt;

/// Number of Tseitin encodings performed (KB loads and per-query
/// definitional encodings both funnel through
/// [`tseitin_definitions`]).
static TSEITIN_RUNS: revkb_obs::Counter = revkb_obs::Counter::new("logic.tseitin.runs");
static TSEITIN_CLAUSES: revkb_obs::Counter = revkb_obs::Counter::new("logic.tseitin.clauses");
static TSEITIN_AUX_VARS: revkb_obs::Counter = revkb_obs::Counter::new("logic.tseitin.aux_vars");

/// A literal: a variable with a polarity, packed MiniSat-style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    #[inline]
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    #[inline]
    pub fn neg(v: Var) -> Lit {
        Lit(v.0 << 1 | 1)
    }

    /// Build from a variable and a polarity flag.
    #[inline]
    pub fn new(v: Var, positive: bool) -> Lit {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// True for positive literals.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    #[inline]
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// The packed code (for watch-list indexing).
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`Lit::code`].
    #[inline]
    pub fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        self.negated()
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "!{}", self.var())
        }
    }
}

/// A clause: a disjunction of literals.
pub type Clause = Vec<Lit>;

/// A CNF formula: a conjunction of clauses over variables `0..num_vars`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    /// The clauses.
    pub clauses: Vec<Clause>,
    /// One past the highest variable index mentioned (watermark).
    pub num_vars: u32,
}

impl Cnf {
    /// An empty (valid) CNF.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a clause, raising the variable watermark as needed.
    pub fn push(&mut self, clause: Clause) {
        for l in &clause {
            self.num_vars = self.num_vars.max(l.var().0 + 1);
        }
        self.clauses.push(clause);
    }

    /// Raise the watermark so `v` is within range.
    pub fn register_var(&mut self, v: Var) {
        self.num_vars = self.num_vars.max(v.0 + 1);
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// True when there are no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Total number of literal occurrences.
    pub fn literal_count(&self) -> usize {
        self.clauses.iter().map(|c| c.len()).sum()
    }

    /// Merge another CNF into this one (conjunction).
    pub fn extend(&mut self, other: Cnf) {
        self.num_vars = self.num_vars.max(other.num_vars);
        self.clauses.extend(other.clauses);
    }

    /// View the CNF as a [`Formula`].
    pub fn to_formula(&self) -> Formula {
        Formula::and_all(
            self.clauses
                .iter()
                .map(|c| Formula::or_all(c.iter().map(|l| Formula::lit(l.var(), l.is_positive())))),
        )
    }
}

/// A supply of fresh variables for definitional encodings.
pub trait VarSupply {
    /// Produce a variable not used before by this supply or the caller.
    fn fresh_var(&mut self) -> Var;
}

/// A watermark-based supply: hands out `next, next+1, …`.
#[derive(Debug, Clone)]
pub struct CountingSupply {
    next: u32,
}

impl CountingSupply {
    /// Start handing out variables from `next`.
    pub fn new(next: u32) -> Self {
        Self { next }
    }

    /// Start just above every variable of `f`.
    pub fn above_formula(f: &Formula) -> Self {
        let next = f.vars().iter().map(|v| v.0 + 1).max().unwrap_or(0);
        Self { next }
    }
}

impl VarSupply for CountingSupply {
    fn fresh_var(&mut self) -> Var {
        let v = Var(self.next);
        self.next += 1;
        v
    }
}

impl VarSupply for crate::var::Signature {
    fn fresh_var(&mut self) -> Var {
        self.fresh("_ts")
    }
}

/// Tseitin-transform `f` into an equisatisfiable CNF.
///
/// Returns the CNF (including the unit clause asserting the root) —
/// the definitional letters come from `supply`. Every model of `f`
/// (over `V(f)`) extends to exactly one model of the result, and every
/// model of the result restricts to a model of `f`.
pub fn tseitin(f: &Formula, supply: &mut impl VarSupply) -> Cnf {
    let _span = revkb_obs::span("logic.tseitin");
    let mut cnf = Cnf::new();
    let root = tseitin_definitions(f, &mut cnf, supply);
    cnf.push(vec![root]);
    cnf
}

/// Tseitin-encode `f` into `cnf` *without asserting it*, returning
/// the defining literal of the root.
///
/// The pushed clauses are two-sided definitions (`d ↔ subformula`),
/// so they are satisfiable under every assignment of `V(f)` and can
/// be added to an incremental solver permanently: asserting the
/// returned literal (or its negation) later — e.g. as a solver
/// assumption — constrains the solver to models of `f` (resp. `¬f`).
/// This is the encoding step behind `revkb_sat::QuerySession`.
pub fn tseitin_definitions(f: &Formula, cnf: &mut Cnf, supply: &mut impl VarSupply) -> Lit {
    for v in f.vars() {
        cnf.register_var(v);
    }
    let clauses_before = cnf.len();
    let mut counting = CountingFresh {
        inner: supply,
        fresh: 0,
    };
    let root = encode(f, cnf, &mut counting);
    TSEITIN_RUNS.inc();
    TSEITIN_CLAUSES.add((cnf.len() - clauses_before) as u64);
    TSEITIN_AUX_VARS.add(counting.fresh);
    root
}

/// Wraps a supply to count how many definitional letters an encoding
/// consumed (one local increment per fresh var; negligible either way).
struct CountingFresh<'a, S: VarSupply> {
    inner: &'a mut S,
    fresh: u64,
}

impl<S: VarSupply> VarSupply for CountingFresh<'_, S> {
    fn fresh_var(&mut self) -> Var {
        self.fresh += 1;
        self.inner.fresh_var()
    }
}

/// Tseitin-transform with an automatic fresh-variable watermark placed
/// above `V(f)`.
///
/// ```
/// use revkb_logic::{tseitin_auto, Formula, Var};
/// let f = Formula::var(Var(0)).xor(Formula::var(Var(1)));
/// let cnf = tseitin_auto(&f);
/// assert!(cnf.len() > 0);
/// // Equisatisfiable with the original.
/// assert!(revkb_logic::tt_satisfiable(&cnf.to_formula()));
/// ```
pub fn tseitin_auto(f: &Formula) -> Cnf {
    let mut supply = CountingSupply::above_formula(f);
    tseitin(f, &mut supply)
}

/// Encode `f` as a literal, pushing definitional clauses into `cnf`.
fn encode(f: &Formula, cnf: &mut Cnf, supply: &mut impl VarSupply) -> Lit {
    match f {
        Formula::True => {
            // A fresh letter constrained true.
            let v = supply.fresh_var();
            cnf.push(vec![Lit::pos(v)]);
            Lit::pos(v)
        }
        Formula::False => {
            let v = supply.fresh_var();
            cnf.push(vec![Lit::pos(v)]);
            Lit::neg(v)
        }
        Formula::Var(v) => Lit::pos(*v),
        Formula::Not(inner) => encode(inner, cnf, supply).negated(),
        Formula::And(fs) => {
            let lits: Vec<Lit> = fs.iter().map(|g| encode(g, cnf, supply)).collect();
            let d = Lit::pos(supply.fresh_var());
            // d → each lᵢ ; (⋀ lᵢ) → d.
            let mut back: Clause = lits.iter().map(|l| l.negated()).collect();
            back.push(d);
            for &l in &lits {
                cnf.push(vec![d.negated(), l]);
            }
            cnf.push(back);
            d
        }
        Formula::Or(fs) => {
            let lits: Vec<Lit> = fs.iter().map(|g| encode(g, cnf, supply)).collect();
            let d = Lit::pos(supply.fresh_var());
            // lᵢ → d ; d → (⋁ lᵢ).
            let mut fwd: Clause = lits.clone();
            fwd.push(d.negated());
            for &l in &lits {
                cnf.push(vec![l.negated(), d]);
            }
            cnf.push(fwd);
            d
        }
        Formula::Implies(a, b) => {
            let la = encode(a, cnf, supply);
            let lb = encode(b, cnf, supply);
            let d = Lit::pos(supply.fresh_var());
            // d ↔ (¬a ∨ b)
            cnf.push(vec![d.negated(), la.negated(), lb]);
            cnf.push(vec![d, la]);
            cnf.push(vec![d, lb.negated()]);
            d
        }
        Formula::Iff(a, b) => {
            let la = encode(a, cnf, supply);
            let lb = encode(b, cnf, supply);
            let d = Lit::pos(supply.fresh_var());
            // d ↔ (a ↔ b)
            cnf.push(vec![d.negated(), la.negated(), lb]);
            cnf.push(vec![d.negated(), la, lb.negated()]);
            cnf.push(vec![d, la, lb]);
            cnf.push(vec![d, la.negated(), lb.negated()]);
            d
        }
        Formula::Xor(a, b) => {
            let la = encode(a, cnf, supply);
            let lb = encode(b, cnf, supply);
            let d = Lit::pos(supply.fresh_var());
            // d ↔ (a ⊕ b)
            cnf.push(vec![d.negated(), la, lb]);
            cnf.push(vec![d.negated(), la.negated(), lb.negated()]);
            cnf.push(vec![d, la.negated(), lb]);
            cnf.push(vec![d, la, lb.negated()]);
            d
        }
    }
}

/// Convert to CNF by distribution (worst-case exponential). Used for
/// small formulas and as a test oracle; the scalable path is
/// [`tseitin`].
pub fn distribute_cnf(f: &Formula) -> Cnf {
    let nnf = f.expand_shorthands().nnf();
    let mut cnf = Cnf::new();
    for v in f.vars() {
        cnf.register_var(v);
    }
    match dist(&nnf) {
        None => {
            // Unsatisfiable: the empty clause.
            cnf.push(vec![]);
        }
        Some(clauses) => {
            for c in clauses {
                cnf.push(c);
            }
        }
    }
    cnf
}

/// Distribution on an NNF formula. Returns `None` for `⊥` (forcing the
/// empty clause), `Some(vec![])` for `⊤`.
fn dist(f: &Formula) -> Option<Vec<Clause>> {
    match f {
        Formula::True => Some(vec![]),
        Formula::False => None,
        Formula::Var(v) => Some(vec![vec![Lit::pos(*v)]]),
        Formula::Not(inner) => match inner.as_ref() {
            Formula::Var(v) => Some(vec![vec![Lit::neg(*v)]]),
            other => panic!("dist expects NNF, found negation of {other:?}"),
        },
        Formula::And(fs) => {
            let mut out = Vec::new();
            for g in fs {
                out.extend(dist(g)?);
            }
            Some(out)
        }
        Formula::Or(fs) => {
            let mut acc: Vec<Clause> = vec![vec![]];
            for g in fs {
                let sub = match dist(g) {
                    None => continue, // ⊥ disjunct contributes nothing
                    Some(s) => s,
                };
                if sub.is_empty() {
                    // ⊤ disjunct makes the whole disjunction valid.
                    return Some(vec![]);
                }
                let mut next = Vec::with_capacity(acc.len() * sub.len());
                for base in &acc {
                    for clause in &sub {
                        let mut merged = base.clone();
                        merged.extend(clause.iter().copied());
                        next.push(merged);
                    }
                }
                acc = next;
            }
            if acc == vec![Vec::<Lit>::new()] {
                // No disjunct contributed: the disjunction was ⊥.
                None
            } else {
                Some(acc)
            }
        }
        other => panic!("dist expects NNF without shorthands, found {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{tt_equivalent, tt_satisfiable, Alphabet};

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn lit_packing() {
        let l = Lit::pos(Var(5));
        assert_eq!(l.var(), Var(5));
        assert!(l.is_positive());
        assert_eq!(!l, Lit::neg(Var(5)));
        assert_eq!(Lit::from_code(l.code()), l);
        assert_eq!(Lit::new(Var(3), false), Lit::neg(Var(3)));
    }

    #[test]
    fn cnf_roundtrip_formula() {
        let mut cnf = Cnf::new();
        cnf.push(vec![Lit::pos(Var(0)), Lit::neg(Var(1))]);
        cnf.push(vec![Lit::pos(Var(1))]);
        let f = cnf.to_formula();
        assert!(tt_equivalent(&f, &v(0).and(v(1))));
        assert_eq!(cnf.num_vars, 2);
        assert_eq!(cnf.literal_count(), 3);
    }

    /// Models of the Tseitin CNF, projected onto original variables,
    /// must equal the models of the original formula.
    fn check_tseitin_projection(f: &Formula) {
        let cnf = tseitin_auto(f);
        let g = cnf.to_formula();
        let orig_alpha = Alphabet::of_formula(f);
        let full_alpha = Alphabet::of_formulas([&g, f]);
        assert!(full_alpha.len() <= 22, "test formula too large");
        let mut projected: Vec<u64> = full_alpha
            .models(&g)
            .into_iter()
            .map(|m| full_alpha.project_mask(m, &orig_alpha))
            .collect();
        projected.sort_unstable();
        projected.dedup();
        let expected = orig_alpha.models(f);
        assert_eq!(projected, expected, "projection mismatch for {f:?}");
    }

    #[test]
    fn tseitin_projection_simple() {
        check_tseitin_projection(&v(0).and(v(1).or(v(2).not())));
        check_tseitin_projection(&v(0).iff(v(1)));
        check_tseitin_projection(&v(0).xor(v(1)).implies(v(2)));
        check_tseitin_projection(&v(0).and(v(0).not()));
        check_tseitin_projection(&Formula::True.or(v(1)));
    }

    #[test]
    fn tseitin_extension_unique() {
        // Each model of f extends to exactly one model of the CNF.
        let f = v(0).xor(v(1)).or(v(2));
        let cnf = tseitin_auto(&f);
        let g = cnf.to_formula();
        let orig_alpha = Alphabet::of_formula(&f);
        let full_alpha = Alphabet::of_formulas([&g, &f]);
        let models = full_alpha.models(&g);
        let mut seen = std::collections::HashMap::new();
        for m in models {
            let p = full_alpha.project_mask(m, &orig_alpha);
            *seen.entry(p).or_insert(0) += 1;
        }
        for (_, count) in seen {
            assert_eq!(count, 1, "non-unique Tseitin extension");
        }
    }

    #[test]
    fn distribute_matches_semantics() {
        for f in [
            v(0).or(v(1)).and(v(2).or(v(0).not())),
            v(0).iff(v(1)),
            v(0).implies(v(1)).implies(v(2)),
            v(0).and(v(0).not()),
            Formula::True,
            Formula::False,
            v(0).xor(v(1)).xor(v(2)),
        ] {
            let cnf = distribute_cnf(&f);
            assert!(
                tt_equivalent(&f, &cnf.to_formula()),
                "distribution changed semantics of {f:?}"
            );
        }
    }

    #[test]
    fn distribute_unsat_gives_empty_clause() {
        let f = v(0).and(v(0).not());
        let cnf = distribute_cnf(&f);
        assert!(!tt_satisfiable(&cnf.to_formula()));
    }

    #[test]
    fn counting_supply_above_formula() {
        let f = v(7).or(v(2));
        let mut s = CountingSupply::above_formula(&f);
        assert_eq!(s.fresh_var(), Var(8));
        assert_eq!(s.fresh_var(), Var(9));
    }
}
