//! Propositional variables and signatures (alphabets).
//!
//! The paper works with named propositional letters (`b₁ … bₙ`, guard
//! matrices `cʲᵢ`, primed copies `Y`, `Z`, circuit-internal letters `W`).
//! A [`Signature`] interns letter names and hands out dense [`Var`]
//! indices, so the rest of the system can use integer-indexed variables
//! while error messages and pretty-printing keep the paper's names.

use std::collections::HashMap;
use std::fmt;

/// A propositional variable: a dense index into a [`Signature`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// Index as `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An interning table from letter names to [`Var`] indices.
///
/// Signatures are append-only: letters are never removed, so `Var`
/// indices stay stable for the lifetime of the signature. Fresh letters
/// (Tseitin definitions, the paper's `Y`/`Z`/`W` families) are created
/// with [`Signature::fresh`], which guarantees a name that is not yet
/// taken.
#[derive(Debug, Default, Clone)]
pub struct Signature {
    names: Vec<String>,
    index: HashMap<String, Var>,
    fresh_counter: u64,
}

impl Signature {
    /// An empty signature.
    pub fn new() -> Self {
        Self::default()
    }

    /// A signature pre-populated with `names`, in order.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut sig = Self::new();
        for n in names {
            sig.var(&n.into());
        }
        sig
    }

    /// Intern `name`, returning its variable (existing or new).
    pub fn var(&mut self, name: &str) -> Var {
        if let Some(&v) = self.index.get(name) {
            return v;
        }
        let v = Var(self.names.len() as u32);
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), v);
        v
    }

    /// Look up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<Var> {
        self.index.get(name).copied()
    }

    /// The name of `v`, if `v` belongs to this signature.
    pub fn name(&self, v: Var) -> Option<&str> {
        self.names.get(v.index()).map(|s| s.as_str())
    }

    /// The name of `v`, or a synthetic `v<i>` placeholder.
    pub fn name_or_default(&self, v: Var) -> String {
        self.name(v)
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!("v{}", v.0))
    }

    /// Number of interned letters.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no letter has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Create a fresh letter whose name starts with `prefix` and is not
    /// yet interned.
    pub fn fresh(&mut self, prefix: &str) -> Var {
        loop {
            let candidate = format!("{}#{}", prefix, self.fresh_counter);
            self.fresh_counter += 1;
            if !self.index.contains_key(&candidate) {
                return self.var(&candidate);
            }
        }
    }

    /// Create `count` fresh letters sharing `prefix`.
    pub fn fresh_many(&mut self, prefix: &str, count: usize) -> Vec<Var> {
        (0..count).map(|_| self.fresh(prefix)).collect()
    }

    /// Iterate over `(Var, name)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Var(i as u32), n.as_str()))
    }

    /// All variables of the signature, in index order.
    pub fn all_vars(&self) -> Vec<Var> {
        (0..self.names.len() as u32).map(Var).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut sig = Signature::new();
        let a = sig.var("a");
        let b = sig.var("b");
        assert_ne!(a, b);
        assert_eq!(sig.var("a"), a);
        assert_eq!(sig.len(), 2);
    }

    #[test]
    fn lookup_and_names() {
        let mut sig = Signature::new();
        let g = sig.var("george");
        assert_eq!(sig.lookup("george"), Some(g));
        assert_eq!(sig.lookup("bill"), None);
        assert_eq!(sig.name(g), Some("george"));
        assert_eq!(sig.name(Var(99)), None);
        assert_eq!(sig.name_or_default(Var(99)), "v99");
    }

    #[test]
    fn fresh_avoids_collisions() {
        let mut sig = Signature::new();
        sig.var("w#0");
        let f = sig.fresh("w");
        assert_ne!(sig.name(f), Some("w#0"));
        let g = sig.fresh("w");
        assert_ne!(f, g);
    }

    #[test]
    fn fresh_many_distinct() {
        let mut sig = Signature::new();
        let vs = sig.fresh_many("y", 10);
        let set: std::collections::HashSet<_> = vs.iter().collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn from_names_orders_vars() {
        let sig = Signature::from_names(["a", "b", "c"]);
        assert_eq!(sig.lookup("a"), Some(Var(0)));
        assert_eq!(sig.lookup("c"), Some(Var(2)));
        assert_eq!(sig.all_vars(), vec![Var(0), Var(1), Var(2)]);
    }

    #[test]
    fn iter_yields_pairs() {
        let sig = Signature::from_names(["x", "y"]);
        let pairs: Vec<_> = sig.iter().map(|(v, n)| (v.0, n.to_string())).collect();
        assert_eq!(pairs, vec![(0, "x".to_string()), (1, "y".to_string())]);
    }
}
