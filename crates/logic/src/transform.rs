//! Structural transformations: negation normal form, constant
//! simplification, and conditioning (partial evaluation).

use crate::formula::Formula;
use crate::var::Var;
use std::collections::HashMap;

impl Formula {
    /// Negation normal form: negations pushed to the letters.
    ///
    /// Shorthands (`→`, `≡`, `≢`) are expanded first, so the result
    /// uses only `¬/∧/∨` with negation applied to letters.
    pub fn nnf(&self) -> Formula {
        nnf_inner(&self.expand_shorthands(), false)
    }

    /// Fold constants and flatten nested connectives, bottom-up.
    ///
    /// This is not a full simplifier (no absorption or unit
    /// propagation); it re-runs the smart constructors over the whole
    /// tree, which is enough to clean up after substitution of `⊤`/`⊥`.
    pub fn simplified(&self) -> Formula {
        match self {
            Formula::True | Formula::False | Formula::Var(_) => self.clone(),
            Formula::Not(f) => f.simplified().not(),
            Formula::And(fs) => Formula::and_all(fs.iter().map(Formula::simplified)),
            Formula::Or(fs) => Formula::or_all(fs.iter().map(Formula::simplified)),
            Formula::Implies(a, b) => {
                let (a, b) = (a.simplified(), b.simplified());
                match (&a, &b) {
                    (Formula::True, _) => b,
                    (Formula::False, _) => Formula::True,
                    (_, Formula::True) => Formula::True,
                    (_, Formula::False) => a.not(),
                    _ => a.implies(b),
                }
            }
            Formula::Iff(a, b) => {
                let (a, b) = (a.simplified(), b.simplified());
                match (&a, &b) {
                    (Formula::True, _) => b,
                    (_, Formula::True) => a,
                    (Formula::False, _) => b.not(),
                    (_, Formula::False) => a.not(),
                    _ => a.iff(b),
                }
            }
            Formula::Xor(a, b) => {
                let (a, b) = (a.simplified(), b.simplified());
                match (&a, &b) {
                    (Formula::True, _) => b.not(),
                    (_, Formula::True) => a.not(),
                    (Formula::False, _) => b,
                    (_, Formula::False) => a,
                    _ => a.xor(b),
                }
            }
        }
    }

    /// Condition the formula on a partial assignment: replace each
    /// assigned letter by `⊤`/`⊥` and simplify.
    pub fn condition(&self, assignment: &HashMap<Var, bool>) -> Formula {
        let mut sub = crate::subst::Substitution::new();
        for (&v, &b) in assignment {
            sub = sub.bind(v, if b { Formula::True } else { Formula::False });
        }
        sub.apply(self).simplified()
    }
}

fn nnf_inner(f: &Formula, negate: bool) -> Formula {
    match f {
        Formula::True => {
            if negate {
                Formula::False
            } else {
                Formula::True
            }
        }
        Formula::False => {
            if negate {
                Formula::True
            } else {
                Formula::False
            }
        }
        Formula::Var(v) => Formula::lit(*v, !negate),
        Formula::Not(inner) => nnf_inner(inner, !negate),
        Formula::And(fs) => {
            let parts = fs.iter().map(|g| nnf_inner(g, negate));
            if negate {
                Formula::or_all(parts)
            } else {
                Formula::and_all(parts)
            }
        }
        Formula::Or(fs) => {
            let parts = fs.iter().map(|g| nnf_inner(g, negate));
            if negate {
                Formula::and_all(parts)
            } else {
                Formula::or_all(parts)
            }
        }
        // expand_shorthands ran first, so these cannot appear.
        other => panic!("nnf_inner on unexpanded shorthand {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::tt_equivalent;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    fn is_nnf(f: &Formula) -> bool {
        match f {
            Formula::True | Formula::False | Formula::Var(_) => true,
            Formula::Not(inner) => matches!(inner.as_ref(), Formula::Var(_)),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().all(is_nnf),
            _ => false,
        }
    }

    #[test]
    fn nnf_preserves_semantics_and_shape() {
        for f in [
            v(0).and(v(1).or(v(2))).not(),
            v(0).iff(v(1)).not(),
            v(0).implies(v(1).xor(v(2))),
            v(0).not().not().not(),
        ] {
            let n = f.nnf();
            assert!(is_nnf(&n), "not NNF: {n:?}");
            assert!(tt_equivalent(&f, &n), "NNF changed semantics of {f:?}");
        }
    }

    #[test]
    fn simplify_folds_constants() {
        let f = v(0).implies(Formula::True);
        assert_eq!(f.simplified(), Formula::True);
        let g = Formula::False.iff(v(1));
        assert_eq!(g.simplified(), v(1).not());
        let h = Formula::True.xor(v(2));
        assert_eq!(h.simplified(), v(2).not());
    }

    #[test]
    fn conditioning() {
        let f = v(0).and(v(1).or(v(2)));
        let mut assign = HashMap::new();
        assign.insert(Var(0), true);
        assign.insert(Var(1), false);
        assert_eq!(f.condition(&assign), v(2));
        assign.insert(Var(2), false);
        assert_eq!(f.condition(&assign), Formula::False);
    }

    #[test]
    fn simplify_preserves_semantics() {
        let f = v(0).implies(v(1)).iff(v(2).xor(Formula::False));
        assert!(tt_equivalent(&f, &f.simplified()));
    }
}
