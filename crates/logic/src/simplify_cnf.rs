//! CNF simplification: unit propagation, tautology and duplicate
//! removal, subsumption and self-subsumption.
//!
//! The compact representations the revision engine emits are highly
//! structured (guard letters, definitional equivalences); a
//! simplification pass often shrinks them substantially before they
//! are measured or queried. All rules preserve logical equivalence
//! over the original variables — unit propagation keeps the unit
//! clauses themselves, so no model is gained or lost.

use crate::cnf::{Clause, Cnf, Lit};
use std::collections::BTreeSet;

/// Outcome statistics of a simplification pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimplifyStats {
    /// Clauses removed as tautologies or duplicates.
    pub tautologies: usize,
    /// Clauses removed by unit propagation (satisfied by a unit).
    pub satisfied_by_units: usize,
    /// Literal occurrences deleted (falsified by units or
    /// self-subsumption).
    pub literals_removed: usize,
    /// Clauses removed by subsumption.
    pub subsumed: usize,
    /// True when a contradiction was derived (the result is `⊥`).
    pub contradiction: bool,
}

/// Simplify a CNF in place, preserving logical equivalence over all
/// variables. Returns the statistics; on contradiction the CNF is
/// replaced by the single empty clause.
pub fn simplify_cnf(cnf: &mut Cnf) -> SimplifyStats {
    let mut stats = SimplifyStats::default();

    // 1. Normalise clauses: sort, dedup, drop tautologies.
    let mut clauses: Vec<Clause> = Vec::with_capacity(cnf.clauses.len());
    'clause: for c in cnf.clauses.drain(..) {
        let mut c = c;
        c.sort_unstable();
        c.dedup();
        for w in c.windows(2) {
            if w[0] == w[1].negated() {
                stats.tautologies += 1;
                continue 'clause;
            }
        }
        clauses.push(c);
    }
    clauses.sort();
    let before = clauses.len();
    clauses.dedup();
    stats.tautologies += before - clauses.len();

    // 2. Unit propagation to fixpoint.
    let mut units: BTreeSet<Lit> = BTreeSet::new();
    loop {
        let new_units: Vec<Lit> = clauses
            .iter()
            .filter(|c| c.len() == 1)
            .map(|c| c[0])
            .filter(|l| !units.contains(l))
            .collect();
        if new_units.is_empty() {
            break;
        }
        for u in new_units {
            if units.contains(&u.negated()) {
                stats.contradiction = true;
                cnf.clauses = vec![vec![]];
                return stats;
            }
            units.insert(u);
        }
        let mut next: Vec<Clause> = Vec::with_capacity(clauses.len());
        for c in clauses.drain(..) {
            if c.len() == 1 && units.contains(&c[0]) {
                next.push(c); // keep the unit itself
                continue;
            }
            if c.iter().any(|l| units.contains(l)) {
                stats.satisfied_by_units += 1;
                continue;
            }
            let filtered: Clause = c
                .iter()
                .copied()
                .filter(|l| !units.contains(&l.negated()))
                .collect();
            stats.literals_removed += c.len() - filtered.len();
            if filtered.is_empty() {
                stats.contradiction = true;
                cnf.clauses = vec![vec![]];
                return stats;
            }
            next.push(filtered);
        }
        clauses = next;
    }

    // 3. Subsumption and self-subsumption (quadratic; fine at the
    //    sizes the revision engine produces).
    let subset = |a: &Clause, b: &Clause| a.iter().all(|l| b.binary_search(l).is_ok());
    let mut removed = vec![false; clauses.len()];
    for i in 0..clauses.len() {
        if removed[i] {
            continue;
        }
        for j in 0..clauses.len() {
            if i == j || removed[j] || removed[i] {
                continue;
            }
            if clauses[i].len() <= clauses[j].len() && subset(&clauses[i], &clauses[j]) {
                removed[j] = true;
                stats.subsumed += 1;
                continue;
            }
            // Self-subsumption: if flipping one literal of clause i
            // makes it a subset of clause j, that literal can be
            // removed from j.
            if clauses[i].len() <= clauses[j].len() {
                let mut candidate: Option<Lit> = None;
                let mut fits = true;
                for &l in &clauses[i] {
                    if clauses[j].binary_search(&l).is_ok() {
                        continue;
                    }
                    if clauses[j].binary_search(&l.negated()).is_ok() && candidate.is_none() {
                        candidate = Some(l.negated());
                    } else {
                        fits = false;
                        break;
                    }
                }
                if fits {
                    if let Some(drop) = candidate {
                        let pos = clauses[j].binary_search(&drop).expect("present");
                        clauses[j].remove(pos);
                        stats.literals_removed += 1;
                        if clauses[j].is_empty() {
                            stats.contradiction = true;
                            cnf.clauses = vec![vec![]];
                            return stats;
                        }
                    }
                }
            }
        }
    }
    cnf.clauses = clauses
        .into_iter()
        .zip(removed)
        .filter(|(_, r)| !r)
        .map(|(c, _)| c)
        .collect();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::tt_equivalent;
    use crate::var::Var;

    fn pos(i: u32) -> Lit {
        Lit::pos(Var(i))
    }
    fn neg(i: u32) -> Lit {
        Lit::neg(Var(i))
    }

    fn check_preserves(cnf_in: Vec<Clause>) {
        let mut cnf = Cnf::new();
        for c in cnf_in {
            cnf.push(c);
        }
        let original = cnf.to_formula();
        let mut simplified = cnf.clone();
        simplify_cnf(&mut simplified);
        assert!(
            tt_equivalent(&original, &simplified.to_formula()),
            "simplification changed semantics of {cnf:?}"
        );
    }

    #[test]
    fn removes_tautologies_and_duplicates() {
        let mut cnf = Cnf::new();
        cnf.push(vec![pos(0), neg(0)]);
        cnf.push(vec![pos(1)]);
        cnf.push(vec![pos(1)]);
        let stats = simplify_cnf(&mut cnf);
        assert_eq!(cnf.len(), 1);
        assert_eq!(stats.tautologies, 2);
    }

    #[test]
    fn unit_propagation_fixpoint() {
        // x0, ¬x0 ∨ x1, ¬x1 ∨ x2 — propagates through the chain.
        let mut cnf = Cnf::new();
        cnf.push(vec![pos(0)]);
        cnf.push(vec![neg(0), pos(1)]);
        cnf.push(vec![neg(1), pos(2)]);
        let stats = simplify_cnf(&mut cnf);
        assert!(!stats.contradiction);
        // The units remain; the implications collapse into units.
        let mut units: Vec<Clause> = cnf.clauses.clone();
        units.sort();
        assert_eq!(units, vec![vec![pos(0)], vec![pos(1)], vec![pos(2)]]);
    }

    #[test]
    fn detects_contradiction() {
        let mut cnf = Cnf::new();
        cnf.push(vec![pos(0)]);
        cnf.push(vec![neg(0)]);
        let stats = simplify_cnf(&mut cnf);
        assert!(stats.contradiction);
        assert_eq!(cnf.clauses, vec![Vec::<Lit>::new()]);
    }

    #[test]
    fn subsumption() {
        let mut cnf = Cnf::new();
        cnf.push(vec![pos(0), pos(1)]);
        cnf.push(vec![pos(0), pos(1), pos(2)]);
        let stats = simplify_cnf(&mut cnf);
        assert_eq!(stats.subsumed, 1);
        assert_eq!(cnf.len(), 1);
    }

    #[test]
    fn self_subsumption_strengthens() {
        // (x0 ∨ x1) ∧ (¬x0 ∨ x1 ∨ x2) → second becomes (x1 ∨ x2).
        let mut cnf = Cnf::new();
        cnf.push(vec![pos(0), pos(1)]);
        cnf.push(vec![neg(0), pos(1), pos(2)]);
        simplify_cnf(&mut cnf);
        assert!(cnf
            .clauses
            .iter()
            .any(|c| c.len() == 2 && c.contains(&pos(1)) && c.contains(&pos(2))));
    }

    #[test]
    fn preserves_equivalence_on_samples() {
        check_preserves(vec![
            vec![pos(0), neg(1)],
            vec![pos(1)],
            vec![neg(0), pos(2), pos(1)],
        ]);
        check_preserves(vec![vec![pos(0), pos(1)], vec![neg(0), pos(1), pos(2)]]);
        check_preserves(vec![vec![pos(0), neg(0), pos(1)], vec![pos(2)]]);
        check_preserves(vec![]);
    }

    #[test]
    fn random_equivalence_preservation() {
        let mut seed = 11u64;
        let mut rnd = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        for _ in 0..100 {
            let m = 2 + rnd() % 8;
            let clauses: Vec<Clause> = (0..m)
                .map(|_| {
                    let k = 1 + rnd() % 3;
                    (0..k)
                        .map(|_| Lit::new(Var(rnd() % 5), rnd() & 1 == 0))
                        .collect()
                })
                .collect();
            check_preserves(clauses);
        }
    }
}
