//! # revkb-logic
//!
//! Propositional logic kernel for the `revkb` belief-revision system
//! (Cadoli–Donini–Liberatore–Schaerf, *The Size of a Revised Knowledge
//! Base*, PODS'95).
//!
//! Provides:
//! - [`Var`] / [`Signature`]: named propositional letters;
//! - [`Formula`]: the AST, with the paper's size measure `|W|`
//!   ([`Formula::size`]) and substitution `P[X/Y]`
//!   ([`Substitution`]);
//! - [`Interpretation`] (sets of letters) and dense [`Alphabet`]
//!   bitmask model enumeration;
//! - clausal form ([`Cnf`], [`tseitin`]) and DIMACS I/O;
//! - a parser ([`parse`]) and pretty-printer ([`render`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cnf;
pub mod dimacs;
pub mod eval;
pub mod formula;
pub mod parser;
pub mod printer;
pub mod simplify_cnf;
pub mod subst;
pub mod transform;
pub mod var;

pub use cnf::{
    distribute_cnf, tseitin, tseitin_auto, tseitin_definitions, Clause, Cnf, CountingSupply, Lit,
    VarSupply,
};
pub use dimacs::{parse_dimacs, write_dimacs, DimacsError};
pub use eval::{tt_entails, tt_equivalent, tt_satisfiable, tt_valid, Alphabet, Interpretation};
pub use formula::{vectors_differ_everywhere, vectors_equal, Formula};
pub use parser::{parse, ParseError};
pub use printer::render;
pub use simplify_cnf::{simplify_cnf, SimplifyStats};
pub use subst::Substitution;
pub use var::{Signature, Var};
