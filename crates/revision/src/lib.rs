//! # revkb-revision
//!
//! The primary contribution of *The Size of a Revised Knowledge Base*
//! (Cadoli, Donini, Liberatore, Schaerf — PODS'95), as a library:
//!
//! - every revision operator the paper analyses — model-based
//!   ([`semantic::ModelBasedOp`]: Winslett, Borgida, Forbus, Satoh,
//!   Dalal, Weber) and formula-based ([`formula_based`]: GFUV, Nebel,
//!   WIDTIO);
//! - a ground-truth **semantic engine** ([`semantic`]) computing
//!   `M(T * P)` by enumeration;
//! - the paper's **compact representation constructions**
//!   ([`compact`]): Theorems 3.4/3.5 (single unbounded, query
//!   equivalence), Section 4's formulas (5)–(9) (single bounded,
//!   logical equivalence), Theorem 5.1's `Φₘ` and formula (10)
//!   (iterated unbounded) and Section 6's QBF forms (iterated
//!   bounded);
//! - SAT-based computation of `k_{T,P}`, `δ(T,P)` and `Ω`
//!   ([`distance`]);
//! - both equivalence criteria as decision procedures
//!   ([`equivalence`]);
//! - exact two-level minimisation ([`minimize`]) as the measurable
//!   "smallest formula" proxy;
//! - Figure 1's containment lattice ([`containment`]);
//! - the two-step query-answering engine ([`engine`]), whose online
//!   half answers queries through an incremental
//!   [`revkb_sat::QuerySession`]: the compiled `T'` is loaded into one
//!   CDCL solver, each query runs under an activation literal keeping
//!   learned clauses across queries, answers are memoised, and a
//!   [`revkb_sat::SolverStats`] block is exposed via
//!   [`engine::RevisedKb::query_stats`]. Queries outside the base
//!   alphabet are rejected in every build profile
//!   ([`compact::CompactRep::try_entails`] /
//!   [`compact::QueryError::OutOfAlphabet`]) rather than silently
//!   answered against the wrong alphabet.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advice;
pub mod api;
pub mod builder;
pub mod compact;
pub mod containment;
pub mod contraction;
pub mod counterfactual;
pub mod distance;
pub mod engine;
pub mod engine_formula_based;
pub mod equivalence;
pub mod error;
pub mod formula_based;
pub mod horn;
pub mod minimize;
pub mod model_check;
pub mod model_set;
pub mod postulates;
pub mod semantic;

pub use advice::{advise, Advice, OperatorKind, Profile};
pub use api::{Engine, GfuvEngine, WidtioEngine};
pub use builder::{Backend, ReviseBuilder, CACHE_CAP_ENV, DEFAULT_CACHE_CAPACITY};
pub use compact::{CompactRep, EngineStats, QueryError};
pub use containment::{check_containments, containment_matrix, FIGURE1_EDGES};
pub use contraction::{contract, contract_on};
pub use counterfactual::{holds as counterfactual_holds, might_hold, Counterfactual};
pub use engine::{CompileError, DelayedKb, RevisedKb};
pub use engine_formula_based::{GfuvKb, WidtioKb, WorldBudgetExceeded};
pub use equivalence::{
    logically_equivalent, query_equivalent_bdd, query_equivalent_enum,
    query_equivalent_enum_limited,
};
pub use error::Error;
pub use formula_based::{
    gfuv_entails, gfuv_explicit, nebel_entails, nebel_preferred_subtheories, possible_worlds,
    widtio, world_count, Theory,
};
pub use horn::{horn_formula, horn_lub, is_horn_definable};
pub use model_check::{model_check, ModelCheckError};
pub use model_set::{revision_alphabet, revision_alphabet_seq, ModelSet};
pub use postulates::{
    check_postulate, postulate_report, Counterexample, Postulate, PostulateCheck,
};
pub use semantic::{revise, revise_iterated_on, revise_masks, revise_on, ModelBasedOp};
