//! Counterfactual queries over revision operators — the §2.2.4
//! connection to Eiter–Gottlob's *nested counterfactuals* \[9\].
//!
//! A counterfactual `P > Q` ("if `P` were the case, `Q` would hold")
//! is evaluated through revision: `T ⊨ P > Q` iff `T * P ⊨ Q`.
//! Right-nesting composes revisions — `P¹ > (P² > Q)` holds iff
//! `T * P¹ * P² ⊨ Q` — which is exactly the iterated revision whose
//! compactability Sections 5–6 analyse. Two evaluation paths are
//! provided and cross-checked:
//!
//! - [`holds`]: the semantic path (enumeration oracle per step);
//! - [`holds_compiled`]: the compiled path for right-nested chains
//!   (one call into the Section 5/6 constructions).

use crate::semantic::{revise_iterated_on, ModelBasedOp};
use revkb_logic::{Alphabet, Formula};

/// A (right-nestable) counterfactual query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Counterfactual {
    /// A plain propositional consequence `Q`.
    Fact(Formula),
    /// `P > C`: "if `P` were the case, `C` would hold".
    Would(Formula, Box<Counterfactual>),
}

impl Counterfactual {
    /// A plain fact.
    pub fn fact(q: Formula) -> Self {
        Counterfactual::Fact(q)
    }

    /// `p > self`.
    pub fn would(p: Formula, inner: Counterfactual) -> Self {
        Counterfactual::Would(p, Box::new(inner))
    }

    /// Build a right-nested chain `p₁ > (p₂ > (… > q))`.
    pub fn chain<I: IntoIterator<Item = Formula>>(ps: I, q: Formula) -> Self {
        let ps: Vec<Formula> = ps.into_iter().collect();
        let mut c = Counterfactual::Fact(q);
        for p in ps.into_iter().rev() {
            c = Counterfactual::Would(p, Box::new(c));
        }
        c
    }

    /// The antecedent chain and the final consequent of a right-nested
    /// counterfactual.
    pub fn unroll(&self) -> (Vec<&Formula>, &Formula) {
        let mut ps = Vec::new();
        let mut cur = self;
        loop {
            match cur {
                Counterfactual::Fact(q) => return (ps, q),
                Counterfactual::Would(p, inner) => {
                    ps.push(p);
                    cur = inner;
                }
            }
        }
    }

    /// Every formula mentioned in the query.
    pub fn formulas(&self) -> Vec<&Formula> {
        let (mut ps, q) = self.unroll();
        ps.push(q);
        ps
    }
}

/// Evaluate `T ⊨ C` under `op`, semantically (enumeration per nesting
/// level). Exact; exponential in the shared alphabet.
pub fn holds(op: ModelBasedOp, t: &Formula, c: &Counterfactual) -> bool {
    let mut vars = t.vars();
    for f in c.formulas() {
        f.collect_vars(&mut vars);
    }
    let alpha = Alphabet::new(vars.into_iter().collect());
    holds_on(op, &alpha, t, c)
}

fn holds_on(op: ModelBasedOp, alpha: &Alphabet, t: &Formula, c: &Counterfactual) -> bool {
    let (ps, q) = c.unroll();
    let owned: Vec<Formula> = ps.into_iter().cloned().collect();
    let revised = revise_iterated_on(op, alpha, t, &owned);
    revised.entails(q)
}

/// Evaluate a right-nested counterfactual through the compiled
/// iterated representation (Sections 5–6): polynomial-size for the
/// compactable cells of Table 2. Returns the engine's error when the
/// operator/profile combination refuses to compile.
pub fn holds_compiled(
    op: ModelBasedOp,
    t: &Formula,
    c: &Counterfactual,
) -> Result<bool, crate::engine::CompileError> {
    let (ps, q) = c.unroll();
    let owned: Vec<Formula> = ps.into_iter().cloned().collect();
    let kb = crate::engine::RevisedKb::compile_iterated(op, t, &owned)?;
    Ok(kb.entails(q))
}

/// Evaluate all levels of the "might" dual as well: `P ⋄ Q` ("if `P`
/// were the case, `Q` might hold") — ¬(P > ¬Q).
pub fn might_hold(op: ModelBasedOp, t: &Formula, p: &Formula, q: &Formula) -> bool {
    !holds(
        op,
        t,
        &Counterfactual::would(p.clone(), Counterfactual::fact(q.clone().not())),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model_set::revision_alphabet_seq;
    use revkb_logic::Var;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn simple_counterfactual_is_revision_entailment() {
        // Office: T = g ∨ b; "if George were out, Bill would be in"
        // holds under revision, not under update.
        let t = v(0).or(v(1));
        let c = Counterfactual::would(v(0).not(), Counterfactual::fact(v(1)));
        assert!(holds(ModelBasedOp::Dalal, &t, &c));
        assert!(!holds(ModelBasedOp::Winslett, &t, &c));
        // Might-dual: under update, Bill *might* be out.
        assert!(might_hold(
            ModelBasedOp::Winslett,
            &t,
            &v(0).not(),
            &v(1).not()
        ));
        assert!(!might_hold(
            ModelBasedOp::Dalal,
            &t,
            &v(0).not(),
            &v(1).not()
        ));
    }

    #[test]
    fn nested_counterfactual_matches_iterated_revision() {
        let t = Formula::and_all((0..3).map(v));
        let ps = vec![v(0).not().or(v(1).not()), v(2).not()];
        let q = v(0).or(v(1));
        let c = Counterfactual::chain(ps.clone(), q.clone());
        for op in ModelBasedOp::ALL {
            let alpha = revision_alphabet_seq(&t, &ps);
            let expected = revise_iterated_on(op, &alpha, &t, &ps).entails(&q);
            assert_eq!(holds(op, &t, &c), expected, "{}", op.name());
        }
    }

    #[test]
    fn compiled_path_agrees_with_semantic() {
        let t = Formula::and_all((0..4).map(v));
        let ps = vec![v(0).not(), v(1).not().or(v(2).not())];
        for q in [v(3), v(0).or(v(3)), v(1).and(v(2))] {
            let c = Counterfactual::chain(ps.clone(), q);
            for op in ModelBasedOp::ALL {
                let semantic = holds(op, &t, &c);
                let compiled = holds_compiled(op, &t, &c).expect("compiles");
                assert_eq!(semantic, compiled, "{} diverges", op.name());
            }
        }
    }

    #[test]
    fn chain_unroll_roundtrip() {
        let c = Counterfactual::chain([v(0), v(1)], v(2));
        let (ps, q) = c.unroll();
        assert_eq!(ps.len(), 2);
        assert_eq!(*q, v(2));
        assert_eq!(c.formulas().len(), 3);
    }

    #[test]
    fn zero_antecedents_is_plain_entailment() {
        let t = v(0).and(v(1));
        let c = Counterfactual::fact(v(0));
        for op in ModelBasedOp::ALL {
            assert!(holds(op, &t, &c));
        }
    }
}
