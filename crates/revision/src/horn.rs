//! Horn approximation of revised knowledge bases — the §2.3
//! connection to Kautz–Selman knowledge compilation and
//! Gogic–Papadimitriou–Sideri incremental recompilation \[16, 20\].
//!
//! The paper contrasts its *equivalence-preserving* compactability
//! question with *approximate* compilation: Kautz and Selman showed
//! that even the least Horn upper bound (LUB) of a formula can be
//! exponentially large (their result is the template for Theorem 2.3).
//! This module implements the Horn LUB exactly for small alphabets —
//! the model set closed under bitwise intersection — so the benches
//! can measure how the approximate route behaves on revised bases.

use crate::model_set::ModelSet;
use revkb_logic::Formula;

/// Close a model set under pairwise intersection (bitwise AND of
/// masks): the models of the least Horn upper bound.
///
/// A theory is Horn-definable iff its model set is closed under
/// intersection (all over a fixed alphabet); the closure of `M(f)` is
/// the smallest such superset, i.e. `M(LUB(f))`.
pub fn horn_closure(mut masks: Vec<u64>) -> Vec<u64> {
    masks.sort_unstable();
    masks.dedup();
    let mut changed = true;
    while changed {
        changed = false;
        let snapshot = masks.clone();
        for (i, &a) in snapshot.iter().enumerate() {
            for &b in &snapshot[i + 1..] {
                let meet = a & b;
                if masks.binary_search(&meet).is_err() {
                    masks.push(meet);
                    masks.sort_unstable();
                    changed = true;
                }
            }
        }
    }
    masks
}

/// The least Horn upper bound of a model set.
///
/// ```
/// use revkb_revision::{horn_lub, is_horn_definable, ModelSet};
/// use revkb_logic::{Alphabet, Formula, Var};
/// let alpha = Alphabet::new(vec![Var(0), Var(1)]);
/// let or = ModelSet::of_formula(alpha, &Formula::var(Var(0)).or(Formula::var(Var(1))));
/// assert!(!is_horn_definable(&or));
/// let lub = horn_lub(&or);
/// assert!(is_horn_definable(&lub));
/// assert_eq!(lub.len(), 4); // the empty model joins the closure
/// ```
pub fn horn_lub(ms: &ModelSet) -> ModelSet {
    ModelSet::new(ms.alphabet().clone(), horn_closure(ms.masks().to_vec()))
}

/// Is the model set Horn-definable (closed under intersection)?
pub fn is_horn_definable(ms: &ModelSet) -> bool {
    let masks = ms.masks();
    masks.iter().enumerate().all(|(i, &a)| {
        masks[i + 1..]
            .iter()
            .all(|&b| masks.binary_search(&(a & b)).is_ok())
    })
}

/// Materialise a Horn-closed model set as a Horn CNF: one clause per
/// "forbidden pattern", built from the closure's characteristic
/// implicates. Produces a (not necessarily minimal) Horn formula with
/// clauses of the shape `⋀ posᵢ → head` / `⋀ posᵢ → ⊥`.
///
/// Construction: for every model-set-violating "positive part" we emit
/// the clause blocking it. Exact over the alphabet; exponential in the
/// worst case (as Kautz–Selman's lower bound demands).
pub fn horn_formula(ms: &ModelSet) -> Formula {
    let alpha = ms.alphabet();
    let n = alpha.len();
    assert!(n <= 20, "horn_formula is for small alphabets");
    let vars = alpha.vars();
    let mut clauses: Vec<Formula> = Vec::new();
    // A Horn-closed set S is definable by clauses (B → h) and (B → ⊥)
    // with B a set of positive literals: for each subset B, the models
    // of S ⊇-containing B have a unique minimal element m(B) =
    // ⋂ {M ∈ S : M ⊇ B} (if any). Required heads: every letter of
    // m(B); if no model contains B, forbid B outright. Emitting a
    // clause per (B, head) is exponential; instead we emit the
    // *characteristic* clauses: for every letter h and every model-set
    // member M with h ∉ M, the clause (M∩ → …) is implied. A simpler
    // exact route for small n: complement-minterm CNF restricted to
    // Horn shape via closure — here we use the direct definable-set
    // characterisation: clause for B = each closed set's complement
    // pattern. For practicality we emit, for every non-model mask v
    // whose "positive support" differs from every model, the blocking
    // clause with at most one negative literal where possible.
    //
    // Exact emission: iterate all masks; for each non-member v, find
    // the intersection of members ⊇ (v's positive letters). If none,
    // emit (⋀_{i∈v} xᵢ) → ⊥. Otherwise that intersection w ⊋/≠ v
    // differs from v at some bit in w∖v: emit (⋀_{i∈v} xᵢ) → x_b for
    // one such bit b... but only sound if every member ⊇ v also
    // contains b — true since w is their intersection and b ∈ w.
    let members = ms.masks();
    let count = alpha.interpretation_count();
    for v in 0..count {
        if members.binary_search(&v).is_ok() {
            continue;
        }
        let supersets: Vec<u64> = members.iter().copied().filter(|&m| m & v == v).collect();
        let body = Formula::and_all(
            (0..n)
                .filter(|&i| v >> i & 1 == 1)
                .map(|i| Formula::var(vars[i])),
        );
        if supersets.is_empty() {
            clauses.push(body.implies(Formula::False));
        } else {
            let w = supersets.iter().copied().fold(!0u64, |a, b| a & b);
            let extra = w & !v;
            if extra != 0 {
                let b = extra.trailing_zeros() as usize;
                clauses.push(body.implies(Formula::var(vars[b])));
            }
            // extra == 0 would mean v = ⋂ supersets ∈ closure — then v
            // is a member for closed sets, contradiction.
        }
    }
    Formula::and_all(clauses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use revkb_logic::Alphabet;

    use revkb_logic::Var;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn closure_basics() {
        // {011, 101} closes with 001.
        assert_eq!(horn_closure(vec![0b011, 0b101]), vec![0b001, 0b011, 0b101]);
        // Already closed sets are unchanged.
        assert_eq!(horn_closure(vec![0b0, 0b1]), vec![0b0, 0b1]);
    }

    #[test]
    fn horn_definability() {
        let alpha = Alphabet::new(vec![Var(0), Var(1)]);
        // a ∧ b is Horn-definable; a ∨ b is not (models 01,10,11 —
        // 01 & 10 = 00 missing); a ≡ b is Horn... models 00,11: 00&11=00 ✓.
        assert!(is_horn_definable(&ModelSet::of_formula(
            alpha.clone(),
            &v(0).and(v(1))
        )));
        assert!(!is_horn_definable(&ModelSet::of_formula(
            alpha.clone(),
            &v(0).or(v(1))
        )));
        assert!(is_horn_definable(&ModelSet::of_formula(
            alpha,
            &v(0).iff(v(1))
        )));
    }

    #[test]
    fn lub_is_minimal_superset() {
        let alpha = Alphabet::new(vec![Var(0), Var(1), Var(2)]);
        let f = v(0).or(v(1));
        let ms = ModelSet::of_formula(alpha, &f);
        let lub = horn_lub(&ms);
        assert!(ms.is_subset_of(&lub));
        assert!(is_horn_definable(&lub));
        // Minimality: removing any added model breaks closure or the
        // superset property — check that the closure is exactly the
        // set generated by intersections.
        let regenerate = horn_closure(ms.masks().to_vec());
        assert_eq!(lub.masks(), &regenerate[..]);
    }

    #[test]
    fn horn_formula_represents_closure() {
        let alpha = Alphabet::new(vec![Var(0), Var(1), Var(2)]);
        for f in [
            v(0).or(v(1)),
            v(0).xor(v(1)).or(v(2)),
            v(0).and(v(1)).or(v(2).not()),
            Formula::True,
            v(0).and(v(0).not()),
        ] {
            let ms = ModelSet::of_formula(alpha.clone(), &f);
            let lub = horn_lub(&ms);
            let g = horn_formula(&lub);
            let got = ModelSet::of_formula(alpha.clone(), &g);
            assert_eq!(got, lub, "horn_formula wrong for {f:?}");
        }
    }

    #[test]
    fn lub_preserves_horn_consequences() {
        // Every clause entailed by the LUB is entailed by the
        // original (upper bound: weaker theory, sound consequences).
        let alpha = Alphabet::new(vec![Var(0), Var(1), Var(2)]);
        let f = v(0).xor(v(1));
        let ms = ModelSet::of_formula(alpha.clone(), &f);
        let lub = horn_lub(&ms);
        // Spot query: the LUB must not entail anything f doesn't.
        let q = v(0).or(v(1));
        if lub.entails(&q) {
            assert!(ms.entails(&q));
        }
        // And f ⊨ LUB (upper bound).
        let g = horn_formula(&lub);
        assert!(revkb_sat::entails(&f, &g));
    }

    #[test]
    fn lub_of_revised_base() {
        // The §2.2.2 example revised by Dalal has a single model —
        // trivially Horn-definable; Weber's result (all of P's models)
        // is not, and its LUB adds the intersections.
        let t = v(0).and(v(1)).and(v(2));
        let p = v(0)
            .not()
            .and(v(1).not())
            .and(v(3).not())
            .or(v(2).not().and(v(1)).and(v(0).xor(v(3))));
        let dalal = crate::semantic::revise(crate::ModelBasedOp::Dalal, &t, &p);
        assert!(is_horn_definable(&dalal));
        let weber = crate::semantic::revise(crate::ModelBasedOp::Weber, &t, &p);
        assert!(!is_horn_definable(&weber));
        let lub = horn_lub(&weber);
        assert!(weber.is_subset_of(&lub));
        assert!(lub.len() > weber.len());
    }
}
