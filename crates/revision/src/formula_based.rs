//! Formula-based (syntax-sensitive) revision: **GFUV**
//! (Ginsberg–Fagin–Ullman–Vardi), **Nebel**'s prioritised variant and
//! **WIDTIO**, §2.2.1 of the paper.
//!
//! All three are driven by `W(T,P)` — the set of maximal subsets of
//! the theory `T` consistent with `P`:
//!
//! ```text
//! W(T,P) = maxc { T' ⊆ T | T' ∪ {P} ⊭ ⊥ }
//! ```
//!
//! `W(T,P)` is enumerated with the CDCL solver via selector letters:
//! the working formula is `P ∧ ⋀ᵢ (sᵢ → fᵢ)`; each satisfying
//! assignment is *grown* to a maximal selector set, recorded, and
//! blocked with the clause `⋁_{i ∉ S} sᵢ` (every other maximal set
//! must contain some formula outside `S`, so nothing is lost and
//! nothing repeats).

use revkb_logic::VarSupply;
use revkb_logic::{tseitin, Formula, Lit, Var};
use revkb_sat::{supply_above, Solver};

/// A knowledge base as a *set of formulas* (syntax matters here: the
/// paper's `T₁ = {a, b}` and `T₂ = {a, a → b}` revise differently).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Theory {
    /// The member formulas, in insertion order.
    pub formulas: Vec<Formula>,
}

impl Theory {
    /// A theory from its member formulas.
    pub fn new<I: IntoIterator<Item = Formula>>(formulas: I) -> Self {
        Self {
            formulas: formulas.into_iter().collect(),
        }
    }

    /// The conjunction `⋀T`.
    pub fn conjunction(&self) -> Formula {
        Formula::and_all(self.formulas.iter().cloned())
    }

    /// Number of member formulas.
    pub fn len(&self) -> usize {
        self.formulas.len()
    }

    /// True when the theory has no formulas.
    pub fn is_empty(&self) -> bool {
        self.formulas.is_empty()
    }

    /// Total size `|T| = Σ|fᵢ|`.
    pub fn size(&self) -> usize {
        self.formulas.iter().map(Formula::size).sum()
    }
}

/// Enumerate `W(T,P)` as sets of indices into `t.formulas`, up to
/// `limit` worlds. Returns `None` if the limit was exceeded (the
/// result would be incomplete) — the possibility the paper's
/// exponential examples exercise.
pub fn possible_worlds(t: &Theory, p: &Formula, limit: usize) -> Option<Vec<Vec<usize>>> {
    let mut supply = supply_above(t.formulas.iter().chain([p]));
    let n = t.formulas.len();
    let selectors: Vec<Var> = (0..n).map(|_| supply.fresh_var()).collect();
    let guarded = Formula::and_all(
        std::iter::once(p.clone()).chain(
            t.formulas
                .iter()
                .zip(&selectors)
                .map(|(f, &s)| Formula::var(s).implies(f.clone())),
        ),
    );
    let cnf = tseitin(&guarded, &mut supply);
    let mut solver = Solver::new();
    if !solver.add_cnf(&cnf) {
        // P itself is unsatisfiable: W(T,P) is empty.
        return Some(Vec::new());
    }
    for &s in &selectors {
        solver.ensure_var(s);
    }

    let mut worlds: Vec<Vec<usize>> = Vec::new();
    while solver.solve() {
        if worlds.len() >= limit {
            return None;
        }
        // Start from the selectors true in the model, then grow.
        let mut in_set: Vec<bool> = selectors.iter().map(|&s| solver.model_value(s)).collect();
        loop {
            let mut grew = false;
            for j in 0..n {
                if in_set[j] {
                    continue;
                }
                let assumptions: Vec<Lit> = (0..n)
                    .filter(|&i| in_set[i] || i == j)
                    .map(|i| Lit::pos(selectors[i]))
                    .collect();
                if solver.solve_with_assumptions(&assumptions) {
                    // Absorb everything the new model satisfies.
                    for (i, flag) in in_set.iter_mut().enumerate() {
                        *flag = *flag || solver.model_value(selectors[i]);
                    }
                    in_set[j] = true;
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        let world: Vec<usize> = (0..n).filter(|&i| in_set[i]).collect();
        // Block this world: any further maximal set must include a
        // formula outside it.
        let blocking: Vec<Lit> = (0..n)
            .filter(|&i| !in_set[i])
            .map(|i| Lit::pos(selectors[i]))
            .collect();
        worlds.push(world);
        if blocking.is_empty() || !solver.add_clause(&blocking) {
            break;
        }
    }
    Some(worlds)
}

/// `T *GFUV P ⊨ Q`: consequence in every possible world.
pub fn gfuv_entails(t: &Theory, p: &Formula, q: &Formula) -> bool {
    let worlds = possible_worlds(t, p, usize::MAX).expect("unlimited enumeration cannot truncate");
    worlds.iter().all(|w| {
        let theory = Formula::and_all(w.iter().map(|&i| t.formulas[i].clone()).chain([p.clone()]));
        revkb_sat::entails(&theory, q)
    })
}

/// The explicit (naive) representation of `T *GFUV P`:
/// `(⋁_{T' ∈ W(T,P)} ⋀T') ∧ P` — the formula whose exponential size
/// Nebel's and Winslett's examples exhibit. Returns `None` if more
/// than `limit` worlds exist.
pub fn gfuv_explicit(t: &Theory, p: &Formula, limit: usize) -> Option<Formula> {
    let worlds = possible_worlds(t, p, limit)?;
    Some(
        Formula::or_all(
            worlds
                .iter()
                .map(|w| Formula::and_all(w.iter().map(|&i| t.formulas[i].clone()))),
        )
        .and(p.clone()),
    )
}

/// Number of possible worlds `|W(T,P)|`, up to `limit`.
pub fn world_count(t: &Theory, p: &Formula, limit: usize) -> Option<usize> {
    possible_worlds(t, p, limit).map(|w| w.len())
}

/// `T *wid P = (⋂ W(T,P)) ∪ {P}` — When In Doubt Throw It Out.
/// Always compactable: the result is a sub-theory of `T` plus `P`.
pub fn widtio(t: &Theory, p: &Formula) -> Theory {
    let worlds = possible_worlds(t, p, usize::MAX).expect("unlimited enumeration cannot truncate");
    let kept: Vec<Formula> = match worlds.split_first() {
        None => Vec::new(), // P unsatisfiable: intersection over ∅ = keep nothing
        Some((first, rest)) => first
            .iter()
            .copied()
            .filter(|i| rest.iter().all(|w| w.binary_search(i).is_ok()))
            .map(|i| t.formulas[i].clone())
            .collect(),
    };
    Theory::new(kept.into_iter().chain([p.clone()]))
}

/// Nebel's prioritised revision `*N`: the theory is partitioned into
/// priority classes `T₁ ≻ T₂ ≻ …`; a preferred subtheory maximises
/// its intersection with `T₁` first, then `T₂` given that choice, and
/// so on. Returns the preferred subtheories as `(class, index)` pairs,
/// up to `limit` of them.
pub fn nebel_preferred_subtheories(
    classes: &[Theory],
    p: &Formula,
    limit: usize,
) -> Option<Vec<Vec<(usize, usize)>>> {
    let mut out = Vec::new();
    nebel_rec(classes, 0, p.clone(), Vec::new(), &mut out, limit)?;
    Some(out)
}

fn nebel_rec(
    classes: &[Theory],
    class_idx: usize,
    context: Formula,
    chosen: Vec<(usize, usize)>,
    out: &mut Vec<Vec<(usize, usize)>>,
    limit: usize,
) -> Option<()> {
    if class_idx == classes.len() {
        if out.len() >= limit {
            return None;
        }
        out.push(chosen);
        return Some(());
    }
    let worlds = possible_worlds(&classes[class_idx], &context, usize::MAX)
        .expect("unlimited enumeration cannot truncate");
    if worlds.is_empty() {
        // context itself unsatisfiable: no preferred subtheory extends it.
        return Some(());
    }
    for w in worlds {
        let mut next_chosen = chosen.clone();
        let mut next_context = context.clone();
        for &i in &w {
            next_chosen.push((class_idx, i));
            next_context = next_context.and(classes[class_idx].formulas[i].clone());
        }
        nebel_rec(
            classes,
            class_idx + 1,
            next_context,
            next_chosen,
            out,
            limit,
        )?;
    }
    Some(())
}

/// `T *N P ⊨ Q` under Nebel's prioritised semantics.
pub fn nebel_entails(classes: &[Theory], p: &Formula, q: &Formula) -> bool {
    let subtheories = nebel_preferred_subtheories(classes, p, usize::MAX)
        .expect("unlimited enumeration cannot truncate");
    subtheories.iter().all(|sel| {
        let theory = Formula::and_all(
            sel.iter()
                .map(|&(c, i)| classes[c].formulas[i].clone())
                .chain([p.clone()]),
        );
        revkb_sat::entails(&theory, q)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use revkb_logic::{tt_equivalent, Var};

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    /// The paper's §2.2.1 example: T₁ = {a, b}, T₂ = {a, a → b},
    /// P = ¬b.
    #[test]
    fn syntax_sensitivity_example() {
        let (a, b) = (v(0), v(1));
        let p = b.clone().not();
        let t1 = Theory::new([a.clone(), b.clone()]);
        let t2 = Theory::new([a.clone(), a.clone().implies(b.clone())]);

        let w1 = possible_worlds(&t1, &p, 100).unwrap();
        assert_eq!(w1, vec![vec![0]]); // only {a}

        let mut w2 = possible_worlds(&t2, &p, 100).unwrap();
        w2.sort();
        assert_eq!(w2, vec![vec![0], vec![1]]); // {a} and {a→b}

        // T1 *GFUV P ≡ a ∧ ¬b.
        let e1 = gfuv_explicit(&t1, &p, 100).unwrap();
        assert!(tt_equivalent(&e1, &a.clone().and(b.clone().not())));
        // T2 *GFUV P ≡ ¬b.
        let e2 = gfuv_explicit(&t2, &p, 100).unwrap();
        assert!(tt_equivalent(&e2, &b.clone().not()));

        // WIDTIO gives the same results here.
        let wid1 = widtio(&t1, &p).conjunction();
        assert!(tt_equivalent(&wid1, &a.clone().and(b.clone().not())));
        let wid2 = widtio(&t2, &p).conjunction();
        assert!(tt_equivalent(&wid2, &b.not()));
    }

    #[test]
    fn consistent_case_keeps_everything() {
        let t = Theory::new([v(0), v(1).implies(v(2))]);
        let p = v(2);
        let worlds = possible_worlds(&t, &p, 100).unwrap();
        assert_eq!(worlds, vec![vec![0, 1]]);
        assert!(gfuv_entails(&t, &p, &v(0)));
    }

    #[test]
    fn unsat_p_gives_no_worlds() {
        let t = Theory::new([v(0)]);
        let p = v(1).and(v(1).not());
        assert_eq!(
            possible_worlds(&t, &p, 100).unwrap(),
            Vec::<Vec<usize>>::new()
        );
        // GFUV entailment over zero worlds is vacuous.
        assert!(gfuv_entails(&t, &p, &Formula::False));
    }

    #[test]
    fn nebel_example_exponential_worlds() {
        // Nebel's T₁ = {x₁..xₘ, y₁..yₘ}, P₁ = ⋀(xᵢ ≢ yᵢ):
        // 2^m possible worlds.
        let m = 4u32;
        let xs: Vec<Formula> = (0..m).map(v).collect();
        let ys: Vec<Formula> = (m..2 * m).map(v).collect();
        let t = Theory::new(xs.iter().chain(&ys).cloned());
        let p = Formula::and_all(xs.iter().zip(&ys).map(|(x, y)| x.clone().xor(y.clone())));
        assert_eq!(world_count(&t, &p, 1 << 10), Some(1 << m));
        // And the limit machinery reports truncation.
        assert_eq!(world_count(&t, &p, 3), None);
    }

    #[test]
    fn widtio_drops_everything_under_full_conflict() {
        // Nebel's example again: the intersection of the 2^m worlds is
        // empty, so WIDTIO keeps only P.
        let m = 3u32;
        let t = Theory::new((0..2 * m).map(v));
        let p = Formula::and_all((0..m).map(|i| v(i).xor(v(m + i))));
        let wid = widtio(&t, &p);
        assert_eq!(wid.len(), 1);
        assert!(tt_equivalent(&wid.conjunction(), &p));
    }

    #[test]
    fn widtio_size_bounded_by_inputs() {
        // |T *wid P| ≤ |T| + |P| always (the paper's observation that
        // WIDTIO is trivially logically compactable).
        let t = Theory::new([v(0), v(1), v(0).implies(v(2))]);
        let p = v(2).not();
        let wid = widtio(&t, &p);
        assert!(wid.size() <= t.size() + p.size());
    }

    #[test]
    fn nebel_priorities_pick_high_class() {
        // Classes: {a} ≻ {¬a ∨ b, ¬b}. P = ¬(a ∧ b).
        // Highest class {a} always kept; second class then can keep
        // at most one of its two formulas? a ∧ ¬(a∧b) forces ¬b; both
        // ¬a∨b and ¬b: a ∧ (¬a∨b) gives b — contradiction with ¬b? Let
        // me just check the machinery returns maximal prioritised sets.
        let c1 = Theory::new([v(0)]);
        let c2 = Theory::new([v(0).not().or(v(1)), v(1).not()]);
        let p = v(0).and(v(1)).not();
        let subs = nebel_preferred_subtheories(&[c1, c2], &p, 100).unwrap();
        // a is in every preferred subtheory.
        assert!(subs.iter().all(|s| s.contains(&(0, 0))));
        // With a fixed and P: {¬a∨b} forces b, conflicting with P∧a;
        // so the only maximal second-class choice is {¬b}.
        assert_eq!(subs, vec![vec![(0, 0), (1, 1)]]);
    }

    #[test]
    fn nebel_flat_partition_matches_gfuv() {
        // With a single priority class Nebel = GFUV.
        let t = Theory::new([v(0), v(0).implies(v(1))]);
        let p = v(1).not();
        let mut nw: Vec<Vec<usize>> =
            nebel_preferred_subtheories(std::slice::from_ref(&t), &p, 100)
                .unwrap()
                .into_iter()
                .map(|s| s.into_iter().map(|(_, i)| i).collect())
                .collect();
        nw.sort();
        let mut gw = possible_worlds(&t, &p, 100).unwrap();
        gw.sort();
        assert_eq!(nw, gw);
    }

    #[test]
    fn theory_size_measure() {
        let t = Theory::new([v(0).and(v(1)), v(2)]);
        assert_eq!(t.size(), 3);
        assert_eq!(t.len(), 2);
    }
}
