//! The unified query-engine interface.
//!
//! Before this module, every compiled-base type had its own surface:
//! [`CompactRep`] answered with `&self` through interior mutability,
//! [`DelayedKb`] needed `&mut self` and returned `CompileError`,
//! [`GfuvKb`]/[`WidtioKb`] answered without any alphabet guard. A
//! caller that wants to hold *some compiled knowledge base* — the
//! `revkb-server` registry, a bench harness, a differential test —
//! had to special-case each one.
//!
//! [`Engine`] is the union contract: answer entailment queries
//! (single, batch, parallel batch), fail loudly and uniformly
//! ([`crate::Error`]) on out-of-alphabet queries and failed lazy
//! compilations, report the base alphabet and the engine's statistics.
//! Every method takes `&mut self` — the weakest requirement that all
//! implementations can meet (lazy compilation genuinely mutates) — and
//! the trait is object-safe, so a server can store
//! `Box<dyn Engine + Send>` and dispatch without knowing which of the
//! paper's strategies is behind a knowledge base.

use crate::compact::{CompactRep, EngineStats};
use crate::engine::{DelayedKb, RevisedKb};
use crate::engine_formula_based::{GfuvKb, WidtioKb, WorldBudgetExceeded};
use crate::error::Error;
use crate::formula_based::Theory;
use revkb_logic::{Formula, Var};

/// A compiled (or lazily compiled) knowledge base that answers
/// entailment queries: the paper's "step 2", abstracted over every
/// "step 1" strategy the workspace implements.
pub trait Engine {
    /// A short human-readable description of the engine (operator and
    /// strategy), e.g. `"revised(Dalal)"` or `"delayed(Weber)"`.
    fn describe(&self) -> String;

    /// The base alphabet the entailment guarantee holds on. Queries
    /// must stay within it; [`Engine::try_entails`] rejects others.
    fn alphabet(&self) -> Vec<Var>;

    /// Size of the compiled representation (`|T'|`, variable
    /// occurrences), or `None` if nothing has been compiled yet.
    fn compiled_size(&self) -> Option<usize>;

    /// Statistics of the engine's query machinery, uniformly shaped.
    /// Engines without an incremental session (GFUV, WIDTIO) report
    /// the empty block.
    fn stats(&self) -> EngineStats;

    /// Answer `T * P… ⊨ Q`, or report why the query is unanswerable
    /// (out-of-alphabet query, failed lazy compilation).
    fn try_entails(&mut self, q: &Formula) -> Result<bool, Error>;

    /// Answer a whole batch; the answer at index `i` is for
    /// `queries[i]`. `Err` means no answer was produced (the batch is
    /// checked before any work starts).
    fn try_entails_batch(&mut self, queries: &[Formula]) -> Result<Vec<bool>, Error>;

    /// Batch answering with the engine's parallel path, where it has
    /// one (the session-pool engines shard the batch across
    /// `REVKB_THREADS` workers). The default forwards to
    /// [`Engine::try_entails_batch`], which for pool-backed engines
    /// *is* the parallel path.
    fn par_entails_batch(&mut self, queries: &[Formula]) -> Result<Vec<bool>, Error> {
        self.try_entails_batch(queries)
    }

    /// Infallible single query.
    ///
    /// # Panics
    ///
    /// On any [`Engine::try_entails`] error: an undefined answer must
    /// not silently become a boolean.
    fn entails(&mut self, q: &Formula) -> bool {
        match self.try_entails(q) {
            Ok(answer) => answer,
            Err(e) => panic!("Engine::entails: {e}"),
        }
    }

    /// Infallible batch query.
    ///
    /// # Panics
    ///
    /// On any [`Engine::try_entails_batch`] error.
    fn entails_batch(&mut self, queries: &[Formula]) -> Vec<bool> {
        match self.try_entails_batch(queries) {
            Ok(answers) => answers,
            Err(e) => panic!("Engine::entails_batch: {e}"),
        }
    }
}

impl Engine for CompactRep {
    fn describe(&self) -> String {
        if self.logical {
            "compact-rep(logical)".to_string()
        } else {
            "compact-rep(query)".to_string()
        }
    }

    fn alphabet(&self) -> Vec<Var> {
        self.base.clone()
    }

    fn compiled_size(&self) -> Option<usize> {
        Some(self.size())
    }

    fn stats(&self) -> EngineStats {
        CompactRep::stats(self)
    }

    fn try_entails(&mut self, q: &Formula) -> Result<bool, Error> {
        CompactRep::try_entails(self, q).map_err(Error::from)
    }

    fn try_entails_batch(&mut self, queries: &[Formula]) -> Result<Vec<bool>, Error> {
        CompactRep::try_entails_batch(self, queries).map_err(Error::from)
    }
}

impl Engine for RevisedKb {
    fn describe(&self) -> String {
        format!("revised({})", self.operator().name())
    }

    fn alphabet(&self) -> Vec<Var> {
        self.representation().base.clone()
    }

    fn compiled_size(&self) -> Option<usize> {
        Some(self.size())
    }

    fn stats(&self) -> EngineStats {
        RevisedKb::stats(self)
    }

    fn try_entails(&mut self, q: &Formula) -> Result<bool, Error> {
        RevisedKb::try_entails(self, q).map_err(Error::from)
    }

    fn try_entails_batch(&mut self, queries: &[Formula]) -> Result<Vec<bool>, Error> {
        RevisedKb::try_entails_batch(self, queries).map_err(Error::from)
    }
}

impl Engine for DelayedKb {
    fn describe(&self) -> String {
        format!("delayed({})", self.operator().name())
    }

    fn alphabet(&self) -> Vec<Var> {
        // Before compilation the guarantee-carrying alphabet is
        // already determined: V(T) ∪ V(P¹…Pᵐ).
        let mut vars = self.base().vars();
        for p in self.pending() {
            p.collect_vars(&mut vars);
        }
        vars.into_iter().collect()
    }

    fn compiled_size(&self) -> Option<usize> {
        DelayedKb::compiled_size(self)
    }

    fn stats(&self) -> EngineStats {
        DelayedKb::stats(self)
    }

    fn try_entails(&mut self, q: &Formula) -> Result<bool, Error> {
        let compiled = self.force_compile()?;
        compiled.try_entails(q).map_err(Error::from)
    }

    fn try_entails_batch(&mut self, queries: &[Formula]) -> Result<Vec<bool>, Error> {
        let compiled = self.force_compile()?;
        compiled.try_entails_batch(queries).map_err(Error::from)
    }
}

/// [`GfuvKb`] bound to its base alphabet, as an [`Engine`].
///
/// The bare `GfuvKb` answers any formula by iterating the worlds; the
/// wrapper adds the same out-of-alphabet guard the compiled engines
/// enforce, so trait-object dispatch cannot silently answer a query
/// the guarantee says nothing about.
#[derive(Debug, Clone)]
pub struct GfuvEngine {
    kb: GfuvKb,
    alphabet: Vec<Var>,
}

impl GfuvEngine {
    /// Materialise `W(T,P)` up to `budget` worlds (Theorem 3.1 says
    /// this can be exponential — the budget keeps it honest).
    pub fn compile(theory: Theory, p: Formula, budget: usize) -> Result<Self, WorldBudgetExceeded> {
        let mut vars = theory.conjunction().vars();
        p.collect_vars(&mut vars);
        let kb = GfuvKb::compile(theory, p, budget)?;
        Ok(Self {
            kb,
            alphabet: vars.into_iter().collect(),
        })
    }

    /// The wrapped possible-worlds engine.
    pub fn kb(&self) -> &GfuvKb {
        &self.kb
    }

    fn check_alphabet(&self, q: &Formula) -> Result<(), Error> {
        if let Some(&var) = q.vars().iter().find(|v| !self.alphabet.contains(v)) {
            return Err(Error::Query(crate::compact::QueryError::OutOfAlphabet {
                var,
            }));
        }
        Ok(())
    }
}

impl Engine for GfuvEngine {
    fn describe(&self) -> String {
        format!("gfuv({} worlds)", self.kb.world_count())
    }

    fn alphabet(&self) -> Vec<Var> {
        self.alphabet.clone()
    }

    fn compiled_size(&self) -> Option<usize> {
        Some(self.kb.explicit_representation().size())
    }

    fn stats(&self) -> EngineStats {
        EngineStats::default()
    }

    fn try_entails(&mut self, q: &Formula) -> Result<bool, Error> {
        self.check_alphabet(q)?;
        Ok(self.kb.entails(q))
    }

    fn try_entails_batch(&mut self, queries: &[Formula]) -> Result<Vec<bool>, Error> {
        for q in queries {
            self.check_alphabet(q)?;
        }
        Ok(queries.iter().map(|q| self.kb.entails(q)).collect())
    }
}

/// [`WidtioKb`] bound to its base alphabet, as an [`Engine`].
///
/// WIDTIO may throw out every formula mentioning a letter, so the
/// alphabet is recorded at compile time from the *inputs* — the kept
/// sub-theory alone would under-approximate it.
#[derive(Debug, Clone)]
pub struct WidtioEngine {
    kb: WidtioKb,
    alphabet: Vec<Var>,
}

impl WidtioEngine {
    /// Compile `T *wid P` and record `V(T) ∪ V(P)`.
    pub fn compile(theory: &Theory, p: &Formula) -> Self {
        let mut vars = theory.conjunction().vars();
        p.collect_vars(&mut vars);
        Self {
            kb: WidtioKb::compile(theory, p),
            alphabet: vars.into_iter().collect(),
        }
    }

    /// The wrapped compiled sub-theory engine.
    pub fn kb(&self) -> &WidtioKb {
        &self.kb
    }

    fn check_alphabet(&self, q: &Formula) -> Result<(), Error> {
        if let Some(&var) = q.vars().iter().find(|v| !self.alphabet.contains(v)) {
            return Err(Error::Query(crate::compact::QueryError::OutOfAlphabet {
                var,
            }));
        }
        Ok(())
    }
}

impl Engine for WidtioEngine {
    fn describe(&self) -> String {
        format!("widtio({} kept)", self.kb.theory().formulas.len())
    }

    fn alphabet(&self) -> Vec<Var> {
        self.alphabet.clone()
    }

    fn compiled_size(&self) -> Option<usize> {
        Some(self.kb.size())
    }

    fn stats(&self) -> EngineStats {
        EngineStats::default()
    }

    fn try_entails(&mut self, q: &Formula) -> Result<bool, Error> {
        self.check_alphabet(q)?;
        Ok(self.kb.entails(q))
    }

    fn try_entails_batch(&mut self, queries: &[Formula]) -> Result<Vec<bool>, Error> {
        for q in queries {
            self.check_alphabet(q)?;
        }
        Ok(queries.iter().map(|q| self.kb.entails(q)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantic::ModelBasedOp;
    use revkb_logic::Var;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn trait_object_dispatch_matches_concrete() {
        let t = v(0).and(v(1)).and(v(2));
        let p = v(0).not().or(v(1).not());
        for op in ModelBasedOp::ALL {
            let concrete = RevisedKb::compile(op, &t, &p).unwrap();
            let mut boxed: Box<dyn Engine> = Box::new(RevisedKb::compile(op, &t, &p).unwrap());
            for q in [v(2), v(0).or(v(1)), v(0).and(v(1)), v(2).not()] {
                assert_eq!(
                    boxed.try_entails(&q).unwrap(),
                    concrete.entails(&q),
                    "{} diverges on {q:?}",
                    op.name()
                );
            }
        }
    }

    #[test]
    fn delayed_kb_unified_error_instead_of_panic() {
        let mut kb = DelayedKb::new(ModelBasedOp::Dalal, v(0).and(v(1)));
        kb.revise(v(0).not());
        let engine: &mut dyn Engine = &mut kb;
        // Out-of-alphabet through the trait is an Err, not a panic.
        let err = engine.try_entails(&v(9)).unwrap_err();
        assert_eq!(err.code(), "out_of_alphabet");
        assert!(engine.try_entails(&v(1)).unwrap());
    }

    #[test]
    fn delayed_kb_alphabet_known_before_compile() {
        let mut kb = DelayedKb::new(ModelBasedOp::Weber, v(0));
        kb.revise(v(1).not());
        let engine: &dyn Engine = &kb;
        assert_eq!(engine.alphabet(), vec![Var(0), Var(1)]);
        assert_eq!(engine.compiled_size(), None);
    }

    #[test]
    fn formula_based_engines_guard_alphabet() {
        let theory = Theory::new([v(0), v(0).implies(v(1))]);
        let p = v(1).not();
        let mut widtio = WidtioEngine::compile(&theory, &p);
        // x0 was thrown out of the kept theory, but stays queryable.
        assert!(widtio.alphabet().contains(&Var(0)));
        assert!(!widtio.try_entails(&v(0)).unwrap());
        assert_eq!(
            widtio.try_entails(&v(5)).unwrap_err().code(),
            "out_of_alphabet"
        );

        let mut gfuv = GfuvEngine::compile(theory, p, 64).unwrap();
        assert!(gfuv.try_entails(&v(1).not()).unwrap());
        assert_eq!(
            gfuv.try_entails_batch(&[v(0), v(5)]).unwrap_err().code(),
            "out_of_alphabet"
        );
    }

    #[test]
    fn batch_equals_single_through_trait() {
        let t = v(0).and(v(1)).and(v(2));
        let p = v(0).not().or(v(1).not());
        let mut engines: Vec<Box<dyn Engine>> = vec![
            Box::new(RevisedKb::compile(ModelBasedOp::Dalal, &t, &p).unwrap()),
            Box::new({
                let mut d = DelayedKb::new(ModelBasedOp::Dalal, t.clone());
                d.revise(p.clone());
                d
            }),
        ];
        let queries = [v(0), v(1), v(2), v(0).or(v(1)), v(0).and(v(2))];
        for engine in &mut engines {
            let batch = engine.try_entails_batch(&queries).unwrap();
            let single: Vec<bool> = queries
                .iter()
                .map(|q| engine.try_entails(q).unwrap())
                .collect();
            assert_eq!(batch, single, "{}", engine.describe());
            let par = engine.par_entails_batch(&queries).unwrap();
            assert_eq!(par, batch, "{}", engine.describe());
        }
    }
}
