//! The semantic (ground-truth) engine: model-based revision operators
//! computed by explicit enumeration, exactly as defined in §2.2.2 of
//! the paper.
//!
//! All six model-based operators select among the models of `P` by
//! proximity to the models of `T`:
//!
//! - pointwise (update-style): **Winslett** `*Win`, **Borgida** `*B`,
//!   **Forbus** `*F`;
//! - global (revision-style): **Satoh** `*S`, **Dalal** `*D`,
//!   **Weber** `*Web`.
//!
//! Proximities are built from `μ(M,P) = min⊆ {M△N | N ⊨ P}` and
//! `δ(T,P) = min⊆ ⋃_{M ⊨ T} μ(M,P)`.
//!
//! Enumeration is exponential in the alphabet — this module is the
//! *oracle* the scalable constructions are validated against, and is
//! also used directly by the benchmarks on small alphabets.
//!
//! Degenerate cases: the paper assumes both `T` and `P` satisfiable
//! (other cases are "clearly compactable"). We fix the convention:
//! if `P` is unsatisfiable the result is unsatisfiable; if `T` is
//! unsatisfiable (but `P` is not) the result is `P`.

use crate::model_set::{revision_alphabet, ModelSet};
use revkb_logic::{Alphabet, Formula};

/// The model-based revision operators of §2.2.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelBasedOp {
    /// Winslett's standard-semantics update `*Win` \[27\].
    Winslett,
    /// Borgida's operator `*B` \[4\]: `T ∧ P` when consistent, else
    /// Winslett.
    Borgida,
    /// Forbus' cardinality-based update `*F` \[11\].
    Forbus,
    /// Satoh's global set-inclusion revision `*S` \[25\].
    Satoh,
    /// Dalal's global cardinality revision `*D` \[7\].
    Dalal,
    /// Weber's revision `*Web` \[26\].
    Weber,
}

impl ModelBasedOp {
    /// All six operators, for sweeps.
    pub const ALL: [ModelBasedOp; 6] = [
        ModelBasedOp::Winslett,
        ModelBasedOp::Borgida,
        ModelBasedOp::Forbus,
        ModelBasedOp::Satoh,
        ModelBasedOp::Dalal,
        ModelBasedOp::Weber,
    ];

    /// Short name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ModelBasedOp::Winslett => "Winslett",
            ModelBasedOp::Borgida => "Borgida",
            ModelBasedOp::Forbus => "Forbus",
            ModelBasedOp::Satoh => "Satoh",
            ModelBasedOp::Dalal => "Dalal",
            ModelBasedOp::Weber => "Weber",
        }
    }

    /// Parse an operator name as accepted on the command line and the
    /// server wire protocol (case-insensitive, common abbreviations).
    pub fn from_name(name: &str) -> Option<ModelBasedOp> {
        match name.to_ascii_lowercase().as_str() {
            "winslett" | "win" => Some(ModelBasedOp::Winslett),
            "borgida" | "b" => Some(ModelBasedOp::Borgida),
            "forbus" | "f" => Some(ModelBasedOp::Forbus),
            "satoh" | "s" => Some(ModelBasedOp::Satoh),
            "dalal" | "d" => Some(ModelBasedOp::Dalal),
            "weber" | "web" => Some(ModelBasedOp::Weber),
            _ => None,
        }
    }

    /// Is proximity computed pointwise per model of `T` (update-style)
    /// rather than globally (revision-style)?
    pub fn is_pointwise(self) -> bool {
        matches!(
            self,
            ModelBasedOp::Winslett | ModelBasedOp::Borgida | ModelBasedOp::Forbus
        )
    }
}

/// Keep only the ⊆-minimal masks of `sets` (each mask a set of
/// letters). `O(s²)` — fine for enumeration scales.
pub fn min_subsets(mut sets: Vec<u64>) -> Vec<u64> {
    sets.sort_unstable();
    sets.dedup();
    let minimal: Vec<u64> = sets
        .iter()
        .copied()
        .filter(|&a| !sets.iter().any(|&b| b != a && b & !a == 0))
        .collect();
    minimal
}

/// `μ(M, P)`: the ⊆-minimal symmetric differences between `m` and the
/// models `p_models` of `P` (all masks over one alphabet).
pub fn mu(m: u64, p_models: &[u64]) -> Vec<u64> {
    min_subsets(p_models.iter().map(|&n| m ^ n).collect())
}

/// `k_{M,P}`: the minimum cardinality of differences between `m` and
/// models of `P`. `None` when `P` has no models.
pub fn k_m(m: u64, p_models: &[u64]) -> Option<u32> {
    p_models.iter().map(|&n| (m ^ n).count_ones()).min()
}

/// `δ(T, P) = min⊆ ⋃_{M ⊨ T} μ(M, P)`: the globally ⊆-minimal
/// differences between models of `T` and models of `P`.
pub fn delta(t_models: &[u64], p_models: &[u64]) -> Vec<u64> {
    // min⊆ of the union of pointwise-minimal sets equals min⊆ over all
    // pairwise differences.
    let all: Vec<u64> = t_models
        .iter()
        .flat_map(|&m| p_models.iter().map(move |&n| m ^ n))
        .collect();
    min_subsets(all)
}

/// `k_{T,P}`: minimum Hamming distance between models of `T` and
/// models of `P`. `None` when either side is empty.
pub fn k_global(t_models: &[u64], p_models: &[u64]) -> Option<u32> {
    t_models
        .iter()
        .flat_map(|&m| p_models.iter().map(move |&n| (m ^ n).count_ones()))
        .min()
}

/// `Ω = ⋃ δ(T, P)` as a letter mask.
pub fn omega_mask(t_models: &[u64], p_models: &[u64]) -> u64 {
    delta(t_models, p_models).into_iter().fold(0, |a, b| a | b)
}

/// Compute `M(T *op P)` over a given alphabet, by enumeration.
pub fn revise_on(op: ModelBasedOp, alphabet: &Alphabet, t: &Formula, p: &Formula) -> ModelSet {
    let _span = revkb_obs::span("revision.phase.model_set");
    let t_models = alphabet.models(t);
    let p_models = alphabet.models(p);
    let selected = revise_masks(op, &t_models, &p_models);
    ModelSet::new(alphabet.clone(), selected)
}

/// Compute `M(T *op P)` over the union alphabet `V(T) ∪ V(P)`.
///
/// ```
/// use revkb_revision::{revise, ModelBasedOp};
/// use revkb_logic::{Formula, Var};
/// // The office example: T = g ∨ b, P = ¬g.
/// let t = Formula::var(Var(0)).or(Formula::var(Var(1)));
/// let p = Formula::var(Var(0)).not();
/// // Dalal (revision) concludes b; Winslett (update) does not.
/// assert!(revise(ModelBasedOp::Dalal, &t, &p).entails(&Formula::var(Var(1))));
/// assert!(!revise(ModelBasedOp::Winslett, &t, &p).entails(&Formula::var(Var(1))));
/// ```
pub fn revise(op: ModelBasedOp, t: &Formula, p: &Formula) -> ModelSet {
    let alphabet = revision_alphabet(t, p);
    revise_on(op, &alphabet, t, p)
}

/// Operator semantics on raw mask sets (both over the same alphabet).
pub fn revise_masks(op: ModelBasedOp, t_models: &[u64], p_models: &[u64]) -> Vec<u64> {
    if p_models.is_empty() {
        return Vec::new();
    }
    if t_models.is_empty() {
        return p_models.to_vec();
    }
    match op {
        ModelBasedOp::Winslett => {
            // N ∈ M(P) with ∃M ⊨ T : M△N ∈ μ(M,P).
            let mut out = Vec::new();
            for &m in t_models {
                let minimal = mu(m, p_models);
                for &d in &minimal {
                    out.push(m ^ d);
                }
            }
            out
        }
        ModelBasedOp::Borgida => {
            let both: Vec<u64> = t_models
                .iter()
                .copied()
                .filter(|m| p_models.binary_search(m).is_ok())
                .collect();
            if !both.is_empty() {
                both
            } else {
                revise_masks(ModelBasedOp::Winslett, t_models, p_models)
            }
        }
        ModelBasedOp::Forbus => {
            let mut out = Vec::new();
            for &m in t_models {
                let k = k_m(m, p_models).expect("p_models nonempty");
                for &n in p_models {
                    if (m ^ n).count_ones() == k {
                        out.push(n);
                    }
                }
            }
            out
        }
        ModelBasedOp::Satoh => {
            let d = delta(t_models, p_models);
            p_models
                .iter()
                .copied()
                .filter(|&n| t_models.iter().any(|&m| d.contains(&(m ^ n))))
                .collect()
        }
        ModelBasedOp::Dalal => {
            let k = k_global(t_models, p_models).expect("both nonempty");
            p_models
                .iter()
                .copied()
                .filter(|&n| t_models.iter().any(|&m| (m ^ n).count_ones() == k))
                .collect()
        }
        ModelBasedOp::Weber => {
            let omega = omega_mask(t_models, p_models);
            p_models
                .iter()
                .copied()
                .filter(|&n| t_models.iter().any(|&m| (m ^ n) & !omega == 0))
                .collect()
        }
    }
}

/// Iterated revision `T *op P¹ *op … *op Pᵐ` over a fixed alphabet
/// (left-associative, §2.2.3), by enumeration. The result of each step
/// becomes the theory for the next.
pub fn revise_iterated_on(
    op: ModelBasedOp,
    alphabet: &Alphabet,
    t: &Formula,
    ps: &[Formula],
) -> ModelSet {
    let _span = revkb_obs::span("revision.phase.model_set");
    let mut current = alphabet.models(t);
    for p in ps {
        let p_models = alphabet.models(p);
        current = revise_masks(op, &current, &p_models);
        current.sort_unstable();
        current.dedup();
    }
    ModelSet::new(alphabet.clone(), current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use revkb_logic::{Signature, Var};

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn min_subsets_keeps_antichain() {
        assert_eq!(min_subsets(vec![0b11, 0b01, 0b10]), vec![0b01, 0b10]);
        assert_eq!(min_subsets(vec![0b111, 0b101]), vec![0b101]);
        assert_eq!(min_subsets(vec![0b0]), vec![0b0]);
        assert_eq!(min_subsets(vec![0b01, 0b0, 0b10]), vec![0b0]);
    }

    /// §2.2.2's running example: T = a∧b∧c, P = (¬a∧¬b∧¬d) ∨
    /// (¬c∧b∧(a ≢ d)) over {a,b,c,d}.
    fn paper_example() -> (Signature, Formula, Formula, Alphabet) {
        let mut sig = Signature::new();
        let (a, b, c, d) = (sig.var("a"), sig.var("b"), sig.var("c"), sig.var("d"));
        let t = Formula::var(a).and(Formula::var(b)).and(Formula::var(c));
        let p1 = Formula::var(a)
            .not()
            .and(Formula::var(b).not())
            .and(Formula::var(d).not());
        let p2 = Formula::var(c)
            .not()
            .and(Formula::var(b))
            .and(Formula::var(a).xor(Formula::var(d)));
        let p = p1.or(p2);
        let alpha = Alphabet::new(vec![a, b, c, d]);
        (sig, t, p, alpha)
    }

    /// Models named as in the paper: N1 = {a,b}, N2 = {c},
    /// N3 = {b,d}, N4 = ∅.
    fn named_masks(alpha: &Alphabet, sig: &Signature) -> (u64, u64, u64, u64) {
        let m = |names: &[&str]| -> u64 {
            let interp: revkb_logic::Interpretation =
                names.iter().map(|n| sig.lookup(n).unwrap()).collect();
            alpha.interpretation_to_mask(&interp)
        };
        (m(&["a", "b"]), m(&["c"]), m(&["b", "d"]), m(&[]))
    }

    #[test]
    fn paper_example_p_has_four_models() {
        let (sig, _t, p, alpha) = paper_example();
        let (n1, n2, n3, n4) = named_masks(&alpha, &sig);
        let mut expected = vec![n1, n2, n3, n4];
        expected.sort_unstable();
        assert_eq!(alpha.models(&p), expected);
    }

    #[test]
    fn paper_example_winslett_selects_n1_n2_n3() {
        let (sig, t, p, alpha) = paper_example();
        let (n1, n2, n3, _n4) = named_masks(&alpha, &sig);
        let got = revise_on(ModelBasedOp::Winslett, &alpha, &t, &p);
        let mut expected = [n1, n2, n3];
        expected.sort_unstable();
        assert_eq!(got.masks(), &expected[..]);
        // Borgida coincides (T ∧ P inconsistent).
        let b = revise_on(ModelBasedOp::Borgida, &alpha, &t, &p);
        assert_eq!(b.masks(), &expected[..]);
    }

    #[test]
    fn paper_example_forbus_selects_n1_n3() {
        // Paper: k_{M1,P} = 2 selects N1, N3; k_{M2,P} = 1 selects N1;
        // so T *F P has models N1 and N3.
        let (sig, t, p, alpha) = paper_example();
        let (n1, _n2, n3, _n4) = named_masks(&alpha, &sig);
        let got = revise_on(ModelBasedOp::Forbus, &alpha, &t, &p);
        let mut expected = [n1, n3];
        expected.sort_unstable();
        assert_eq!(got.masks(), &expected[..]);
    }

    #[test]
    fn paper_example_satoh_selects_n1_n2() {
        let (sig, t, p, alpha) = paper_example();
        let (n1, n2, _n3, _n4) = named_masks(&alpha, &sig);
        let got = revise_on(ModelBasedOp::Satoh, &alpha, &t, &p);
        let mut expected = [n1, n2];
        expected.sort_unstable();
        assert_eq!(got.masks(), &expected[..]);
    }

    #[test]
    fn paper_example_dalal_selects_n1() {
        let (sig, t, p, alpha) = paper_example();
        let (n1, _n2, _n3, _n4) = named_masks(&alpha, &sig);
        let got = revise_on(ModelBasedOp::Dalal, &alpha, &t, &p);
        assert_eq!(got.masks(), &[n1]);
    }

    #[test]
    fn paper_example_weber_selects_all_models_of_p() {
        let (_sig, t, p, alpha) = paper_example();
        let got = revise_on(ModelBasedOp::Weber, &alpha, &t, &p);
        assert_eq!(got.masks(), &alpha.models(&p)[..]);
    }

    #[test]
    fn paper_example_mu_and_delta() {
        let (sig, t, p, alpha) = paper_example();
        let t_models = alpha.models(&t);
        let p_models = alpha.models(&p);
        // μ(M2 = {a,b,c}, P) = {{c}, {a,b}}.
        let m2 = alpha.interpretation_to_mask(
            &["a", "b", "c"]
                .iter()
                .map(|n| sig.lookup(n).unwrap())
                .collect(),
        );
        let mask_of = |names: &[&str]| -> u64 {
            alpha.interpretation_to_mask(&names.iter().map(|n| sig.lookup(n).unwrap()).collect())
        };
        let mut mu2 = mu(m2, &p_models);
        mu2.sort_unstable();
        let mut expected = vec![mask_of(&["c"]), mask_of(&["a", "b"])];
        expected.sort_unstable();
        assert_eq!(mu2, expected);
        // δ(T,P) = {{c},{a,b}}; Ω = {a,b,c}.
        let mut d = delta(&t_models, &p_models);
        d.sort_unstable();
        assert_eq!(d, expected);
        assert_eq!(omega_mask(&t_models, &p_models), mask_of(&["a", "b", "c"]));
        // k_{T,P} = 1.
        assert_eq!(k_global(&t_models, &p_models), Some(1));
    }

    #[test]
    fn consistent_case_all_revision_ops_give_conjunction() {
        // Office example: T = g ∨ b, P = ¬g consistent with T:
        // revision-style operators give T ∧ P = ¬g ∧ b.
        let t = v(0).or(v(1));
        let p = v(0).not();
        for op in [
            ModelBasedOp::Borgida,
            ModelBasedOp::Satoh,
            ModelBasedOp::Dalal,
            ModelBasedOp::Weber,
        ] {
            let got = revise(op, &t, &p);
            let alpha = got.alphabet().clone();
            let expected = ModelSet::of_formula(alpha, &t.clone().and(p.clone()));
            assert_eq!(got, expected, "{}", op.name());
        }
    }

    #[test]
    fn update_office_example_keeps_ignorance() {
        // Update semantics: T = g∨b updated with ¬g does NOT conclude b
        // (the paper's update example): {¬g,¬b} model survives because
        // the T-model {g} updates to ∅... concretely ∅ must be a model
        // of T *Win ¬g.
        let t = v(0).or(v(1));
        let p = v(0).not();
        let got = revise(ModelBasedOp::Winslett, &t, &p);
        let empty = revkb_logic::Interpretation::new();
        assert!(got.contains(&empty));
        // So T *Win P does not entail b.
        assert!(!got.entails(&v(1)));
    }

    #[test]
    fn success_postulate_result_entails_p() {
        // All operators: M(T*P) ⊆ M(P).
        let t = v(0).iff(v(1)).and(v(2).or(v(0)));
        let p = v(0).xor(v(2));
        let alpha = revision_alphabet(&t, &p);
        let p_set = ModelSet::of_formula(alpha.clone(), &p);
        for op in ModelBasedOp::ALL {
            let got = revise_on(op, &alpha, &t, &p);
            assert!(got.is_subset_of(&p_set), "{}", op.name());
            assert!(!got.is_empty(), "{} empty", op.name());
        }
    }

    #[test]
    fn unsat_p_gives_empty() {
        let t = v(0);
        let p = v(1).and(v(1).not());
        for op in ModelBasedOp::ALL {
            assert!(revise(op, &t, &p).is_empty());
        }
    }

    #[test]
    fn unsat_t_gives_p() {
        let t = v(0).and(v(0).not());
        let p = v(1).or(v(0));
        for op in ModelBasedOp::ALL {
            let got = revise(op, &t, &p);
            let expected = ModelSet::of_formula(got.alphabet().clone(), &p);
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn iterated_single_step_matches_revise() {
        let t = v(0).and(v(1));
        let p = v(0).not().or(v(1).not());
        let alpha = revision_alphabet(&t, &p);
        for op in ModelBasedOp::ALL {
            let once = revise_on(op, &alpha, &t, &p);
            let seq = revise_iterated_on(op, &alpha, &t, std::slice::from_ref(&p));
            assert_eq!(once, seq, "{}", op.name());
        }
    }

    #[test]
    fn iterated_two_steps() {
        // T = x0∧x1∧x2; P1 = ¬x0∨¬x1; P2 = ¬x2. After both Dalal
        // steps the models keep two of the original letters.
        let t = v(0).and(v(1)).and(v(2));
        let p1 = v(0).not().or(v(1).not());
        let p2 = v(2).not();
        let alpha = revision_alphabet(&t, &p1);
        let got = revise_iterated_on(ModelBasedOp::Dalal, &alpha, &t, &[p1, p2]);
        // Step 1: models {x0,x2},{x1,x2}; step 2: drop x2 → {x0},{x1}.
        let expected = ModelSet::of_formula(alpha, &v(0).xor(v(1)).and(v(2).not()));
        assert_eq!(got, expected);
    }

    #[test]
    fn prop_2_1_bounded_difference_pointwise() {
        // Proposition 2.1 for the pointwise operators with arbitrary T:
        // for every model M of T there is a model N of T*P with
        // M△N ⊆ V(P). (Pointwise minimal differences always stay
        // inside V(P) and every one of them is realised.)
        let t = v(0).iff(v(1)).and(v(2).or(v(3)));
        let p = v(0).xor(v(3));
        let alpha = revision_alphabet(&t, &p);
        let t_models = alpha.models(&t);
        let pvars_mask = alpha.subset_mask(&p.vars().into_iter().collect::<Vec<_>>());
        for op in [ModelBasedOp::Winslett, ModelBasedOp::Forbus] {
            let result = revise_on(op, &alpha, &t, &p);
            for &m in &t_models {
                assert!(
                    result.masks().iter().any(|&n| (m ^ n) & !pvars_mask == 0),
                    "Prop 2.1 fails for {} at model {m:b}",
                    op.name()
                );
            }
        }
    }

    #[test]
    fn prop_2_1_complete_theory_all_operators() {
        // Proposition 2.1 in the form the non-compactability proofs use
        // it (T a maximal consistent set of literals, i.e. one model):
        // holds for all six operators.
        let t = v(0).and(v(1).not()).and(v(2)).and(v(3));
        let p = v(0).xor(v(3)).or(v(1));
        let alpha = revision_alphabet(&t, &p);
        let t_models = alpha.models(&t);
        assert_eq!(t_models.len(), 1);
        let pvars_mask = alpha.subset_mask(&p.vars().into_iter().collect::<Vec<_>>());
        for op in ModelBasedOp::ALL {
            let result = revise_on(op, &alpha, &t, &p);
            for &m in &t_models {
                assert!(
                    result.masks().iter().any(|&n| (m ^ n) & !pvars_mask == 0),
                    "Prop 2.1 fails for {} at model {m:b}",
                    op.name()
                );
            }
        }
    }
}
