//! The AGM/KM rationality postulates, as executable checks.
//!
//! The paper's introduction grounds belief revision in the
//! Alchourrón–Gärdenfors–Makinson framework \[1, 12\] and the
//! revision/update distinction of Katsuno–Mendelzon \[19\]. This module
//! implements the Katsuno–Mendelzon propositional renderings — R1–R6
//! for *revision*, U1–U8 for *update* — as decision procedures over
//! the semantic engine, so the classic classification ("Dalal is an
//! AGM revision, Winslett is a KM update, …") becomes testable, and
//! counterexamples become first-class values.

use crate::model_set::ModelSet;
use crate::semantic::{revise_on, ModelBasedOp};
use revkb_logic::{Alphabet, Formula};

/// A KM postulate identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Postulate {
    /// R1: `T * P ⊨ P`.
    R1,
    /// R2: if `T ∧ P` is satisfiable then `T * P ≡ T ∧ P`.
    R2,
    /// R3: if `P` is satisfiable then `T * P` is satisfiable.
    R3,
    /// R4: syntax irrelevance — `T₁ ≡ T₂`, `P₁ ≡ P₂` ⟹
    /// `T₁ * P₁ ≡ T₂ * P₂` (trivial for model-based operators; checked
    /// by revising syntactic variants).
    R4,
    /// R5: `(T * P) ∧ Q ⊨ T * (P ∧ Q)`.
    R5,
    /// R6: if `(T * P) ∧ Q` is satisfiable then `T * (P ∧ Q) ⊨ (T * P) ∧ Q`.
    R6,
    /// U1: `T ◦ P ⊨ P`.
    U1,
    /// U2: if `T ⊨ P` then `T ◦ P ≡ T`.
    U2,
    /// U3: if `T` and `P` are satisfiable then `T ◦ P` is satisfiable.
    U3,
    /// U4: syntax irrelevance (as R4).
    U4,
    /// U5: `(T ◦ P) ∧ Q ⊨ T ◦ (P ∧ Q)`.
    U5,
    /// U6: if `T ◦ P ⊨ Q` and `T ◦ Q ⊨ P` then `T ◦ P ≡ T ◦ Q`.
    U6,
    /// U7: if `T` is complete then `(T ◦ P) ∧ (T ◦ Q) ⊨ T ◦ (P ∨ Q)`.
    U7,
    /// U8: `(T₁ ∨ T₂) ◦ P ≡ (T₁ ◦ P) ∨ (T₂ ◦ P)`.
    U8,
}

impl Postulate {
    /// The KM revision postulates.
    pub const REVISION: [Postulate; 6] = [
        Postulate::R1,
        Postulate::R2,
        Postulate::R3,
        Postulate::R4,
        Postulate::R5,
        Postulate::R6,
    ];

    /// The KM update postulates.
    pub const UPDATE: [Postulate; 8] = [
        Postulate::U1,
        Postulate::U2,
        Postulate::U3,
        Postulate::U4,
        Postulate::U5,
        Postulate::U6,
        Postulate::U7,
        Postulate::U8,
    ];
}

/// One instantiated postulate check: the inputs it was evaluated on
/// and the verdict.
#[derive(Debug, Clone)]
pub struct PostulateCheck {
    /// Which postulate.
    pub postulate: Postulate,
    /// Whether it held on this instance.
    pub holds: bool,
}

fn rev(op: ModelBasedOp, alpha: &Alphabet, t: &Formula, p: &Formula) -> ModelSet {
    revise_on(op, alpha, t, p)
}

/// Check one postulate for `op` on concrete `(T, P, Q)` (and a
/// secondary theory `T₂` where the postulate needs one). All checks
/// are by enumeration over the shared alphabet — exact, small inputs.
pub fn check_postulate(
    postulate: Postulate,
    op: ModelBasedOp,
    t: &Formula,
    t2: &Formula,
    p: &Formula,
    q: &Formula,
) -> bool {
    let alpha = Alphabet::of_formulas([t, t2, p, q]);
    let t_models = ModelSet::of_formula(alpha.clone(), t);
    let p_models = ModelSet::of_formula(alpha.clone(), p);
    match postulate {
        Postulate::R1 | Postulate::U1 => rev(op, &alpha, t, p).is_subset_of(&p_models),
        Postulate::R2 => {
            let conj = ModelSet::of_formula(alpha.clone(), &t.clone().and(p.clone()));
            if conj.is_empty() {
                true
            } else {
                rev(op, &alpha, t, p) == conj
            }
        }
        Postulate::R3 | Postulate::U3 => {
            if p_models.is_empty() || (postulate == Postulate::U3 && t_models.is_empty()) {
                true
            } else if t_models.is_empty() {
                // R3 with unsatisfiable T: our convention returns P.
                !rev(op, &alpha, t, p).is_empty()
            } else {
                !rev(op, &alpha, t, p).is_empty()
            }
        }
        Postulate::R4 | Postulate::U4 => {
            // Revise a syntactic variant: double negation + re-ordered
            // conjunction with ⊤.
            let t_variant = t.clone().not().not().and(Formula::True);
            let p_variant = Formula::True.and(p.clone().not().not());
            rev(op, &alpha, t, p) == rev(op, &alpha, &t_variant, &p_variant)
        }
        Postulate::R5 | Postulate::U5 => {
            let left = rev(op, &alpha, t, p).intersect(&ModelSet::of_formula(alpha.clone(), q));
            let right = rev(op, &alpha, t, &p.clone().and(q.clone()));
            left.is_subset_of(&right)
        }
        Postulate::R6 => {
            let left = rev(op, &alpha, t, p).intersect(&ModelSet::of_formula(alpha.clone(), q));
            if left.is_empty() {
                true
            } else {
                let right = rev(op, &alpha, t, &p.clone().and(q.clone()));
                right.is_subset_of(&left)
            }
        }
        Postulate::U2 => {
            // KM postulates presuppose a consistent theory.
            if !t_models.is_empty() && t_models.is_subset_of(&p_models) {
                rev(op, &alpha, t, p) == t_models
            } else {
                true
            }
        }
        Postulate::U6 => {
            if t_models.is_empty() {
                return true;
            }
            let tp = rev(op, &alpha, t, p);
            let tq = rev(op, &alpha, t, q);
            let q_models = ModelSet::of_formula(alpha.clone(), q);
            if tp.is_subset_of(&q_models) && tq.is_subset_of(&p_models) {
                tp == tq
            } else {
                true
            }
        }
        Postulate::U7 => {
            if t_models.len() != 1 {
                true
            } else {
                let left = rev(op, &alpha, t, p).intersect(&rev(op, &alpha, t, q));
                let right = rev(op, &alpha, t, &p.clone().or(q.clone()));
                left.is_subset_of(&right)
            }
        }
        Postulate::U8 => {
            // Both disjuncts must be consistent theories for the
            // postulate to apply (our unsatisfiable-T convention is
            // outside KM's scope).
            if t_models.is_empty() || ModelSet::of_formula(alpha.clone(), t2).is_empty() {
                return true;
            }
            let disj = t.clone().or(t2.clone());
            let left = rev(op, &alpha, &disj, p);
            let r1 = rev(op, &alpha, t, p);
            let r2 = rev(op, &alpha, t2, p);
            let union = ModelSet::new(
                alpha.clone(),
                r1.masks().iter().chain(r2.masks()).copied().collect(),
            );
            left == union
        }
    }
}

/// A found counterexample to a postulate.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The postulate violated.
    pub postulate: Postulate,
    /// The inputs `(T, T₂, P, Q)`.
    pub inputs: (Formula, Formula, Formula, Formula),
}

/// Sample `cases` pseudo-random instances (deterministic in `seed`)
/// and report, per postulate, how many held — returning the first
/// counterexample found for each violated postulate.
pub fn postulate_report(
    op: ModelBasedOp,
    postulates: &[Postulate],
    cases: usize,
    seed: u64,
) -> Vec<(Postulate, usize, usize, Option<Counterexample>)> {
    let mut state = seed;
    let mut rnd = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    fn build(rnd: &mut impl FnMut() -> u32, depth: u32, nv: u32) -> Formula {
        let r = rnd();
        if depth == 0 || r.is_multiple_of(6) {
            return Formula::lit(revkb_logic::Var(r % nv), r & 1 == 0);
        }
        let a = build(rnd, depth - 1, nv);
        let b = build(rnd, depth - 1, nv);
        match r % 4 {
            0 => a.and(b),
            1 => a.or(b),
            2 => a.xor(b),
            _ => a.implies(b),
        }
    }
    let mut stats: Vec<(Postulate, usize, usize, Option<Counterexample>)> = postulates
        .iter()
        .map(|&p| (p, 0usize, 0usize, None))
        .collect();
    for _ in 0..cases {
        let t = build(&mut rnd, 3, 4);
        let t2 = build(&mut rnd, 3, 4);
        let p = build(&mut rnd, 2, 3);
        let q = build(&mut rnd, 2, 3);
        for entry in &mut stats {
            let holds = check_postulate(entry.0, op, &t, &t2, &p, &q);
            if holds {
                entry.1 += 1;
            } else {
                entry.2 += 1;
                if entry.3.is_none() {
                    entry.3 = Some(Counterexample {
                        postulate: entry.0,
                        inputs: (t.clone(), t2.clone(), p.clone(), q.clone()),
                    });
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Formula {
        Formula::var(revkb_logic::Var(i))
    }

    /// R1/U1 (success) holds for every operator, always.
    #[test]
    fn success_holds_universally() {
        for op in ModelBasedOp::ALL {
            let report = postulate_report(op, &[Postulate::R1], 40, 1);
            assert_eq!(report[0].2, 0, "{} violates success", op.name());
        }
    }

    /// R2 (vacuity) holds for the revision-style operators and fails
    /// for the update-style ones (the office example).
    #[test]
    fn vacuity_separates_revision_from_update() {
        for op in [
            ModelBasedOp::Borgida,
            ModelBasedOp::Satoh,
            ModelBasedOp::Dalal,
            ModelBasedOp::Weber,
        ] {
            let report = postulate_report(op, &[Postulate::R2], 40, 2);
            assert_eq!(report[0].2, 0, "{} violates R2", op.name());
        }
        // Winslett on the office example: T∧P consistent but the
        // update is not the conjunction.
        let t = v(0).or(v(1));
        let p = v(0).not();
        assert!(!check_postulate(
            Postulate::R2,
            ModelBasedOp::Winslett,
            &t,
            &Formula::True,
            &p,
            &Formula::True
        ));
    }

    /// R3 (consistency preservation) holds for all six operators.
    #[test]
    fn consistency_preservation() {
        for op in ModelBasedOp::ALL {
            let report = postulate_report(op, &[Postulate::R3], 40, 3);
            assert_eq!(report[0].2, 0, "{} violates R3", op.name());
        }
    }

    /// R4/U4 (irrelevance of syntax) holds for all model-based
    /// operators — the defining contrast with GFUV/WIDTIO.
    #[test]
    fn syntax_irrelevance_model_based() {
        for op in ModelBasedOp::ALL {
            let report = postulate_report(op, &[Postulate::R4], 30, 4);
            assert_eq!(report[0].2, 0, "{} is syntax-sensitive?!", op.name());
        }
    }

    /// U2 holds for Winslett (inertia: if T already entails P, the
    /// update changes nothing).
    #[test]
    fn u2_winslett_inertia() {
        let report = postulate_report(ModelBasedOp::Winslett, &[Postulate::U2], 60, 5);
        assert_eq!(report[0].2, 0, "Winslett violates U2");
    }

    /// U8 (disjunction distribution) holds for Winslett and fails for
    /// Dalal — the classic revision/update separator.
    #[test]
    fn u8_separates_winslett_from_dalal() {
        let report = postulate_report(ModelBasedOp::Winslett, &[Postulate::U8], 60, 6);
        assert_eq!(report[0].2, 0, "Winslett violates U8");
        // Dalal violates U8: explicit counterexample. T1 = a∧b,
        // T2 = ¬a∧¬b, P = a ≢ b. Dalal on T1∨T2 picks distance-1
        // models from either disjunct — same as the union here, so
        // craft the classic asymmetric case instead:
        // T1 = a∧b∧c, T2 = ¬a∧¬b∧¬c, P = (a∧¬b) ∨ (¬a∧b∧¬c).
        let t1 = v(0).and(v(1)).and(v(2));
        let t2 = v(0).not().and(v(1).not()).and(v(2).not());
        let p = v(0)
            .clone()
            .and(v(1).not())
            .or(v(0).not().and(v(1)).and(v(2).not()));
        let direct = check_postulate(
            Postulate::U8,
            ModelBasedOp::Dalal,
            &t1,
            &t2,
            &p,
            &Formula::True,
        );
        let sampled = postulate_report(ModelBasedOp::Dalal, &[Postulate::U8], 120, 7);
        assert!(
            !direct || sampled[0].2 > 0,
            "expected a U8 counterexample for Dalal (global minimisation \
             does not distribute over disjunction)"
        );
    }

    /// R5 holds for Dalal on sampled instances (it is an AGM
    /// revision).
    #[test]
    fn r5_dalal() {
        let report = postulate_report(ModelBasedOp::Dalal, &[Postulate::R5], 60, 8);
        assert_eq!(report[0].2, 0, "Dalal violates R5");
    }

    /// U5 is *violated* by Winslett on some instances — the known KM
    /// subtlety that the PMA does not satisfy U5 in general
    /// (Katsuno–Mendelzon note the PMA fails some update postulates).
    /// We only assert the checker can express both outcomes: U5 holds
    /// on a crafted instance and the report machinery runs.
    #[test]
    fn u5_machinery_runs() {
        let t = v(0).and(v(1));
        let p = v(0).not().or(v(1).not());
        let q = v(0).not();
        assert!(check_postulate(
            Postulate::U5,
            ModelBasedOp::Winslett,
            &t,
            &Formula::True,
            &p,
            &q
        ));
        let report = postulate_report(ModelBasedOp::Winslett, &[Postulate::U5], 30, 9);
        assert_eq!(report[0].1 + report[0].2, 30);
    }

    /// U7 for Winslett (complete theories).
    #[test]
    fn u7_winslett_complete_theories() {
        // Complete T: one model.
        let t = v(0).and(v(1).not()).and(v(2));
        let p = v(0).not();
        let q = v(2).not();
        assert!(check_postulate(
            Postulate::U7,
            ModelBasedOp::Winslett,
            &t,
            &Formula::True,
            &p,
            &q
        ));
    }

    /// Counterexamples carry their inputs.
    #[test]
    fn counterexample_reporting() {
        let report = postulate_report(ModelBasedOp::Winslett, &[Postulate::R2], 80, 10);
        if report[0].2 > 0 {
            let ce = report[0].3.as_ref().expect("counterexample recorded");
            assert!(!check_postulate(
                Postulate::R2,
                ModelBasedOp::Winslett,
                &ce.inputs.0,
                &ce.inputs.1,
                &ce.inputs.2,
                &ce.inputs.3
            ));
        }
    }
}
