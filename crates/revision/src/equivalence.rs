//! The paper's two equivalence criteria, as decision procedures.
//!
//! - **Logical equivalence** (criterion (2)): `T' ≡ T * P` — decided
//!   with the SAT solver or by BDD canonicity.
//! - **Query equivalence** (criterion (1)): `{Q over X : T' ⊨ Q} =
//!   {Q over X : T*P ⊨ Q}` — since any set of `X`-interpretations is
//!   axiomatisable, this holds iff the projections of the two model
//!   sets onto `X` coincide. Two independent implementations are
//!   provided (BDD quantification and projected all-SAT) and
//!   cross-checked in tests.

use revkb_bdd::BddManager;
use revkb_logic::{Formula, Var};
use revkb_sat::models_projected;

/// Logical equivalence via SAT (`a ⊕ b` unsatisfiable).
pub fn logically_equivalent(a: &Formula, b: &Formula) -> bool {
    revkb_sat::equivalent(a, b)
}

/// Logical equivalence via BDD canonicity (same node in one manager).
pub fn logically_equivalent_bdd(a: &Formula, b: &Formula) -> bool {
    let mut m = BddManager::new();
    let na = m.from_formula(a);
    let nb = m.from_formula(b);
    na == nb
}

/// Query equivalence over `base` via BDDs: existentially quantify all
/// non-base letters of each side, then compare canonical nodes.
pub fn query_equivalent_bdd(a: &Formula, b: &Formula, base: &[Var]) -> bool {
    // Put the base letters first in the ordering for stability.
    let mut order: Vec<Var> = base.to_vec();
    let mut extra: Vec<Var> = Vec::new();
    for f in [a, b] {
        for v in f.vars() {
            if !base.contains(&v) && !extra.contains(&v) {
                extra.push(v);
            }
        }
    }
    order.extend(extra.iter().copied());
    let mut m = BddManager::with_order(order);
    let na = m.from_formula(a);
    let nb = m.from_formula(b);
    let pa = m.exists(na, &extra);
    let pb = m.exists(nb, &extra);
    pa == pb
}

/// Query equivalence over `base` via projected all-SAT enumeration.
/// Returns `false` when more than `limit` projected models exist on
/// either side without a decision (callers should raise the limit).
pub fn query_equivalent_enum_limited(
    a: &Formula,
    b: &Formula,
    base: &[Var],
    limit: usize,
) -> Option<bool> {
    let ma = models_projected(a, base, limit)?;
    let mb = models_projected(b, base, limit)?;
    let sa: std::collections::BTreeSet<_> = ma.into_iter().collect();
    let sb: std::collections::BTreeSet<_> = mb.into_iter().collect();
    Some(sa == sb)
}

/// Query equivalence by enumeration with a generous default limit.
///
/// ```
/// use revkb_revision::query_equivalent_enum;
/// use revkb_logic::{Formula, Var};
/// let a = Formula::var(Var(0)).or(Formula::var(Var(1)));
/// // b adds a defined auxiliary letter: query-equivalent over {x0,x1}.
/// let b = a.clone().and(Formula::var(Var(9)).iff(Formula::var(Var(0))));
/// assert!(query_equivalent_enum(&a, &b, &[Var(0), Var(1)]));
/// assert!(!revkb_sat::equivalent(&a, &b));
/// ```
///
/// # Panics
/// If the projected model count exceeds the internal limit (use
/// [`query_equivalent_bdd`] or
/// [`query_equivalent_enum_limited`] for huge spaces).
pub fn query_equivalent_enum(a: &Formula, b: &Formula, base: &[Var]) -> bool {
    query_equivalent_enum_limited(a, b, base, 2_000_000)
        .expect("projected model space too large for enumeration")
}

/// Does `a` query-entail everything `b` entails and vice versa on a
/// single query? Convenience check: `a ⊨ q ⟺ b ⊨ q`.
pub fn agree_on_query(a: &Formula, b: &Formula, q: &Formula) -> bool {
    revkb_sat::entails(a, q) == revkb_sat::entails(b, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn logical_equivalence_both_ways() {
        let a = v(0).implies(v(1));
        let b = v(0).not().or(v(1));
        assert!(logically_equivalent(&a, &b));
        assert!(logically_equivalent_bdd(&a, &b));
        let c = v(0).and(v(1));
        assert!(!logically_equivalent(&a, &c));
        assert!(!logically_equivalent_bdd(&a, &c));
    }

    #[test]
    fn query_equivalence_ignores_aux_letters() {
        // a: (x0 ∨ x1); b: same plus a fresh letter y constrained
        // y ≡ x0 — query-equivalent over {x0, x1} but not logically
        // equivalent.
        let a = v(0).or(v(1));
        let b = a.clone().and(v(9).iff(v(0)));
        let base = [Var(0), Var(1)];
        assert!(query_equivalent_bdd(&a, &b, &base));
        assert!(query_equivalent_enum(&a, &b, &base));
        assert!(!logically_equivalent(&a, &b));
    }

    #[test]
    fn query_equivalence_detects_difference() {
        let a = v(0).or(v(1));
        let b = v(0).and(v(1));
        let base = [Var(0), Var(1)];
        assert!(!query_equivalent_bdd(&a, &b, &base));
        assert!(!query_equivalent_enum(&a, &b, &base));
    }

    #[test]
    fn projection_collapses_constraints() {
        // ∃y. (x ≡ y) is a tautology over {x}.
        let a = v(0).iff(v(1));
        let base = [Var(0)];
        assert!(query_equivalent_bdd(&a, &Formula::True, &base));
        assert!(query_equivalent_enum(&a, &Formula::True, &base));
    }

    #[test]
    fn enum_and_bdd_agree_on_random_pairs() {
        let mut seed = 5u64;
        let mut rnd = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        fn build(rnd: &mut impl FnMut() -> u32, depth: u32, nv: u32) -> Formula {
            let r = rnd();
            if depth == 0 || r.is_multiple_of(6) {
                return Formula::lit(Var(r % nv), r & 1 == 0);
            }
            let a = build(rnd, depth - 1, nv);
            let b = build(rnd, depth - 1, nv);
            match r % 4 {
                0 => a.and(b),
                1 => a.or(b),
                2 => a.xor(b),
                _ => a.iff(b),
            }
        }
        let base = [Var(0), Var(1), Var(2)];
        for _ in 0..60 {
            let a = build(&mut rnd, 3, 6);
            let b = build(&mut rnd, 3, 6);
            assert_eq!(
                query_equivalent_bdd(&a, &b, &base),
                query_equivalent_enum(&a, &b, &base),
                "BDD and enumeration disagree on {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn unsat_sides() {
        let unsat = v(0).and(v(0).not());
        assert!(query_equivalent_bdd(&unsat, &Formula::False, &[Var(0)]));
        assert!(query_equivalent_enum(&unsat, &Formula::False, &[Var(0)]));
        assert!(!query_equivalent_bdd(&unsat, &v(0), &[Var(0)]));
    }

    #[test]
    fn agree_on_query_basic() {
        let a = v(0).and(v(1));
        let b = v(1).and(v(0));
        assert!(agree_on_query(&a, &b, &v(0)));
    }
}
