//! Exact two-level minimisation: Quine–McCluskey prime implicants plus
//! Petrick-style exact cover.
//!
//! The paper's object of study is the size of the *smallest* formula
//! equivalent to `T * P` — uncomputable at scale, but measurable
//! exactly for small alphabets in the two-level (DNF/CNF) restriction.
//! The benches use [`minimum_dnf`] / [`minimum_cnf_literals`] as the measurable
//! lower-bound proxy on the hard families (see DESIGN.md §1,
//! substitution 1).

use crate::model_set::ModelSet;
use revkb_logic::{Formula, Var};

/// A cube (product term): covers minterm `m` iff
/// `m & !dontcare == bits`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    /// Fixed bit values (don't-care positions are zeroed).
    pub bits: u64,
    /// Mask of positions this cube does not constrain.
    pub dontcare: u64,
}

impl Cube {
    /// Does this cube cover the minterm?
    #[inline]
    pub fn covers(&self, m: u64) -> bool {
        m & !self.dontcare == self.bits
    }

    /// Number of literals of the cube over `n` variables.
    pub fn literals(&self, n: usize) -> usize {
        n - (self.dontcare.count_ones() as usize)
    }
}

/// Result of an exact two-level minimisation.
#[derive(Debug, Clone)]
pub struct TwoLevel {
    /// Chosen cubes (a minimum cover by prime implicants).
    pub cubes: Vec<Cube>,
    /// Number of variables.
    pub num_vars: usize,
}

impl TwoLevel {
    /// Total literal occurrences (the paper's `|W|` measure for the
    /// resulting DNF).
    pub fn literal_count(&self) -> usize {
        self.cubes.iter().map(|c| c.literals(self.num_vars)).sum()
    }

    /// Number of terms.
    pub fn term_count(&self) -> usize {
        self.cubes.len()
    }

    /// Materialise as a DNF over the given ordered variables.
    pub fn to_dnf(&self, vars: &[Var]) -> Formula {
        assert_eq!(vars.len(), self.num_vars);
        if self.cubes.is_empty() {
            return Formula::False;
        }
        Formula::or_all(self.cubes.iter().map(|c| {
            Formula::and_all(vars.iter().enumerate().filter_map(|(i, &v)| {
                if c.dontcare >> i & 1 == 1 {
                    None
                } else {
                    Some(Formula::lit(v, c.bits >> i & 1 == 1))
                }
            }))
        }))
    }
}

/// All prime implicants of the function whose on-set is `minterms`
/// over `n` variables (Quine–McCluskey).
pub fn prime_implicants(minterms: &[u64], n: usize) -> Vec<Cube> {
    assert!(n <= 24, "QM minimisation is for small alphabets");
    let mut current: Vec<Cube> = minterms
        .iter()
        .map(|&m| Cube {
            bits: m,
            dontcare: 0,
        })
        .collect();
    current.sort_unstable();
    current.dedup();
    let mut primes: Vec<Cube> = Vec::new();
    while !current.is_empty() {
        let mut combined = vec![false; current.len()];
        let mut next: Vec<Cube> = Vec::new();
        for i in 0..current.len() {
            for j in i + 1..current.len() {
                let (a, b) = (current[i], current[j]);
                if a.dontcare != b.dontcare {
                    continue;
                }
                let diff = a.bits ^ b.bits;
                if diff.count_ones() == 1 {
                    combined[i] = true;
                    combined[j] = true;
                    next.push(Cube {
                        bits: a.bits & !diff,
                        dontcare: a.dontcare | diff,
                    });
                }
            }
        }
        for (i, c) in current.iter().enumerate() {
            if !combined[i] {
                primes.push(*c);
            }
        }
        next.sort_unstable();
        next.dedup();
        current = next;
    }
    primes.sort_unstable();
    primes.dedup();
    primes
}

/// Exact minimum cover of `minterms` by `primes`: essential primes
/// first, then branch-and-bound on the rest, minimising term count
/// with literal count as tie-break.
fn minimum_cover(minterms: &[u64], primes: &[Cube], n: usize) -> Vec<Cube> {
    if minterms.is_empty() {
        return Vec::new();
    }
    // Coverage table.
    let cover: Vec<Vec<usize>> = minterms
        .iter()
        .map(|&m| (0..primes.len()).filter(|&p| primes[p].covers(m)).collect())
        .collect();
    // Essential primes: sole coverer of some minterm.
    let mut chosen: Vec<usize> = Vec::new();
    for row in &cover {
        if row.len() == 1 && !chosen.contains(&row[0]) {
            chosen.push(row[0]);
        }
    }
    let mut uncovered: Vec<usize> = (0..minterms.len())
        .filter(|&i| !chosen.iter().any(|&p| primes[p].covers(minterms[i])))
        .collect();
    // Branch and bound over the remaining minterms.
    let mut best: Option<Vec<usize>> = None;
    let mut stack_choice: Vec<usize> = Vec::new();
    fn cost(sel: &[usize], primes: &[Cube], n: usize) -> (usize, usize) {
        (sel.len(), sel.iter().map(|&p| primes[p].literals(n)).sum())
    }
    fn bnb(
        uncovered: &mut Vec<usize>,
        chosen_extra: &mut Vec<usize>,
        cover: &[Vec<usize>],
        primes: &[Cube],
        minterms: &[u64],
        n: usize,
        best: &mut Option<Vec<usize>>,
    ) {
        if let Some(b) = best {
            if chosen_extra.len() >= b.len() {
                return; // cannot improve term count
            }
        }
        let Some(&pivot) = uncovered.first() else {
            let better = match best {
                None => true,
                Some(b) => cost(chosen_extra, primes, n) < cost(b, primes, n),
            };
            if better {
                *best = Some(chosen_extra.clone());
            }
            return;
        };
        for &p in &cover[pivot] {
            if chosen_extra.contains(&p) {
                continue;
            }
            chosen_extra.push(p);
            let removed: Vec<usize> = uncovered
                .iter()
                .copied()
                .filter(|&i| primes[p].covers(minterms[i]))
                .collect();
            uncovered.retain(|&i| !primes[p].covers(minterms[i]));
            bnb(uncovered, chosen_extra, cover, primes, minterms, n, best);
            uncovered.extend(removed);
            uncovered.sort_unstable();
            chosen_extra.pop();
        }
    }
    if !uncovered.is_empty() {
        bnb(
            &mut uncovered,
            &mut stack_choice,
            &cover,
            primes,
            minterms,
            n,
            &mut best,
        );
    }
    if let Some(extra) = best {
        chosen.extend(extra);
    }
    chosen.sort_unstable();
    chosen.dedup();
    chosen.into_iter().map(|p| primes[p]).collect()
}

/// Exact minimum DNF of the function with on-set `minterms` over `n`
/// variables.
///
/// ```
/// use revkb_revision::minimize::minimum_dnf;
/// // x0 ⊕ x1 needs two full terms: 4 literals.
/// let r = minimum_dnf(&[0b01, 0b10], 2);
/// assert_eq!(r.term_count(), 2);
/// assert_eq!(r.literal_count(), 4);
/// ```
pub fn minimum_dnf(minterms: &[u64], n: usize) -> TwoLevel {
    let _span = revkb_obs::span("revision.phase.minimize");
    let primes = prime_implicants(minterms, n);
    let cubes = minimum_cover(minterms, &primes, n);
    TwoLevel { cubes, num_vars: n }
}

/// Exact minimum DNF of a model set.
pub fn minimum_dnf_of(ms: &ModelSet) -> TwoLevel {
    minimum_dnf(ms.masks(), ms.alphabet().len())
}

/// Exact minimum CNF literal count, via the complement's minimum DNF
/// (De Morgan duality).
pub fn minimum_cnf_literals(minterms: &[u64], n: usize) -> usize {
    assert!(n < 24);
    let on: std::collections::HashSet<u64> = minterms.iter().copied().collect();
    let off: Vec<u64> = (0..1u64 << n).filter(|m| !on.contains(m)).collect();
    minimum_dnf(&off, n).literal_count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use revkb_logic::Alphabet;

    fn check_equivalent(minterms: &[u64], n: usize) {
        let result = minimum_dnf(minterms, n);
        let vars: Vec<Var> = (0..n as u32).map(Var).collect();
        let f = result.to_dnf(&vars);
        let alpha = Alphabet::new(vars);
        let mut got = alpha.models(&f);
        got.sort_unstable();
        let mut expected = minterms.to_vec();
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(got, expected, "cover changed the function");
    }

    #[test]
    fn xor_needs_two_full_terms() {
        // x0 ⊕ x1: on-set {01, 10}; minimal DNF has 2 terms, 4 literals.
        let r = minimum_dnf(&[0b01, 0b10], 2);
        assert_eq!(r.term_count(), 2);
        assert_eq!(r.literal_count(), 4);
        check_equivalent(&[0b01, 0b10], 2);
    }

    #[test]
    fn single_variable_collapses() {
        // on-set = all minterms with x0 = 1 over 3 vars → one cube "x0".
        let minterms: Vec<u64> = (0..8).filter(|m| m & 1 == 1).collect();
        let r = minimum_dnf(&minterms, 3);
        assert_eq!(r.term_count(), 1);
        assert_eq!(r.literal_count(), 1);
        check_equivalent(&minterms, 3);
    }

    #[test]
    fn tautology_is_empty_cube() {
        let minterms: Vec<u64> = (0..8).collect();
        let r = minimum_dnf(&minterms, 3);
        assert_eq!(r.term_count(), 1);
        assert_eq!(r.literal_count(), 0);
    }

    #[test]
    fn empty_onset_is_false() {
        let r = minimum_dnf(&[], 3);
        assert_eq!(r.term_count(), 0);
        let vars: Vec<Var> = (0..3).map(Var).collect();
        assert_eq!(r.to_dnf(&vars), Formula::False);
    }

    #[test]
    fn classic_qm_example() {
        // f(w,x,y,z) with on-set {4,8,10,11,12,15} (classic textbook
        // case): minimum has 3 terms (with m9, m14 as don't-cares it
        // would be smaller, but without don't-cares the exact cover is
        // 4 terms). Verify equivalence and primality rather than a
        // memorised count.
        let minterms = [4u64, 8, 10, 11, 12, 15];
        check_equivalent(&minterms, 4);
        let primes = prime_implicants(&minterms, 4);
        // Every prime must cover only on-set minterms.
        let on: std::collections::HashSet<u64> = minterms.iter().copied().collect();
        for p in &primes {
            for m in 0..16u64 {
                if p.covers(m) {
                    assert!(on.contains(&m), "prime {p:?} covers off-set {m}");
                }
            }
        }
    }

    #[test]
    fn minimum_is_no_larger_than_naive() {
        let mut seed = 3u64;
        for _ in 0..30 {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let n = 4usize;
            let onset_mask = seed >> 20 & 0xFFFF;
            let minterms: Vec<u64> = (0..16u64).filter(|&m| onset_mask >> m & 1 == 1).collect();
            let r = minimum_dnf(&minterms, n);
            // Naive DNF: one full term per minterm.
            assert!(r.literal_count() <= minterms.len() * n);
            assert!(r.term_count() <= minterms.len().max(1));
            check_equivalent(&minterms, n);
        }
    }

    #[test]
    fn cnf_duality() {
        // x0 ∧ x1 over 2 vars: min CNF = 2 unit clauses = 2 literals.
        assert_eq!(minimum_cnf_literals(&[0b11], 2), 2);
        // xor: min CNF has 4 literals.
        assert_eq!(minimum_cnf_literals(&[0b01, 0b10], 2), 4);
    }
}
