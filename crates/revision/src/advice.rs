//! Tables 1 and 2 as a queryable API: given an operator and a usage
//! profile, report whether a compact representation exists, which
//! construction provides it, and what the paper's reference is.
//!
//! This is the paper's practical bottom line ("important aspects in
//! the choice of a revision operator are its compactability
//! properties", §8) packaged for a downstream system that needs to
//! *choose* an operator.

use crate::semantic::ModelBasedOp;

/// Which operator family is being asked about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatorKind {
    /// One of the six model-based operators.
    ModelBased(ModelBasedOp),
    /// Ginsberg–Fagin–Ullman–Vardi possible-worlds revision (also
    /// Nebel's prioritised refinement).
    Gfuv,
    /// When In Doubt Throw It Out.
    Widtio,
}

/// The usage profile a knowledge base owner cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Profile {
    /// Is `|P|` (each revision formula) bounded by a small constant?
    pub bounded_p: bool,
    /// May the stored representation introduce new propositional
    /// letters (query equivalence, criterion (1))? If false, logical
    /// equivalence (criterion (2)) is required.
    pub allow_new_letters: bool,
    /// Will revisions be iterated an unbounded number of times?
    pub iterated: bool,
}

/// The verdict for an (operator, profile) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Advice {
    /// A polynomial-size representation exists.
    Compactable {
        /// Which construction provides it.
        construction: &'static str,
        /// The paper's reference.
        reference: &'static str,
    },
    /// No polynomial-size representation exists unless the polynomial
    /// hierarchy collapses.
    NotCompactable {
        /// The paper's reference.
        reference: &'static str,
        /// The complexity consequence a compact representation would
        /// have.
        consequence: &'static str,
    },
}

impl Advice {
    /// Is a compact representation available?
    pub fn is_compactable(&self) -> bool {
        matches!(self, Advice::Compactable { .. })
    }
}

const NP_CONP: &str = "NP ⊆ coNP/poly (PH collapses to the third level)";
const NP_P: &str = "NP ⊆ P/poly (PH collapses to the second level)";

/// Look up the Table 1 / Table 2 verdict for `(op, profile)`.
pub fn advise(op: OperatorKind, profile: Profile) -> Advice {
    use Advice::{Compactable, NotCompactable};
    match op {
        OperatorKind::Widtio => Compactable {
            construction: "T *wid P is a subset of T plus P (widtio_compact)",
            reference: "§3",
        },
        OperatorKind::Gfuv => NotCompactable {
            reference: if profile.bounded_p {
                "Th.4.1"
            } else {
                "Th.3.1"
            },
            consequence: NP_CONP,
        },
        OperatorKind::ModelBased(mb) => {
            let global_query = matches!(mb, ModelBasedOp::Dalal | ModelBasedOp::Weber);
            match (
                profile.bounded_p,
                profile.allow_new_letters,
                profile.iterated,
            ) {
                // Bounded, single revision: everything is compactable,
                // even logically (Section 4).
                (true, _, false) => Compactable {
                    construction: bounded_construction(mb),
                    reference: bounded_reference(mb),
                },
                // Bounded, iterated: query equivalence only (Section 6).
                (true, true, true) => Compactable {
                    construction: iterated_construction(mb),
                    reference: iterated_reference(mb),
                },
                (true, false, true) => NotCompactable {
                    reference: "Th.6.5",
                    consequence: NP_P,
                },
                // Unbounded: only Dalal/Weber, only with new letters.
                (false, true, _) if global_query => Compactable {
                    construction: if mb == ModelBasedOp::Dalal {
                        if profile.iterated {
                            "Φₘ: chained T[X/Y] ∧ Pⁱ ∧ EXA(kᵢ) (dalal_iterated)"
                        } else {
                            "T[X/Y] ∧ P ∧ EXA(k,X,Y,W) (dalal_compact)"
                        }
                    } else if profile.iterated {
                        "chained T[Ωᵢ/Zᵢ] ∧ Pⁱ (weber_iterated)"
                    } else {
                        "T[Ω/Z] ∧ P (weber_compact)"
                    },
                    reference: if mb == ModelBasedOp::Dalal {
                        if profile.iterated {
                            "Th.5.1"
                        } else {
                            "Th.3.4"
                        }
                    } else if profile.iterated {
                        "Cor.5.2"
                    } else {
                        "Th.3.5"
                    },
                },
                (false, false, _) if global_query => NotCompactable {
                    reference: "Th.3.6",
                    consequence: NP_P,
                },
                (false, _, _) => NotCompactable {
                    reference: match mb {
                        ModelBasedOp::Forbus => "Th.3.3",
                        _ => "Th.3.2",
                    },
                    consequence: NP_CONP,
                },
            }
        }
    }
}

fn bounded_construction(mb: ModelBasedOp) -> &'static str {
    match mb {
        ModelBasedOp::Winslett => "formula (5) (winslett_bounded)",
        ModelBasedOp::Borgida => "T ∧ P or formula (5) (borgida_bounded)",
        ModelBasedOp::Forbus => "formula (6) (forbus_bounded)",
        ModelBasedOp::Satoh => "formula (7) (satoh_bounded)",
        ModelBasedOp::Dalal => "formula (8) (dalal_bounded)",
        ModelBasedOp::Weber => "formula (9) (weber_bounded)",
    }
}

fn bounded_reference(mb: ModelBasedOp) -> &'static str {
    match mb {
        ModelBasedOp::Winslett => "Prop.4.3",
        ModelBasedOp::Borgida => "Cor.4.4",
        ModelBasedOp::Forbus => "Th.4.5",
        _ => "Th.4.6",
    }
}

fn iterated_construction(mb: ModelBasedOp) -> &'static str {
    match mb {
        ModelBasedOp::Winslett => "expanded formula (16) (winslett_iterated)",
        ModelBasedOp::Borgida => "stepwise ∧ / formula (16) (borgida_iterated)",
        ModelBasedOp::Forbus => "expanded formula (14) per step (forbus_iterated)",
        ModelBasedOp::Satoh => "offline δᵢ selector per step (satoh_iterated)",
        ModelBasedOp::Dalal => "Φₘ (dalal_iterated)",
        ModelBasedOp::Weber => "chained T[Ωᵢ/Zᵢ] ∧ Pⁱ (weber_iterated)",
    }
}

fn iterated_reference(mb: ModelBasedOp) -> &'static str {
    match mb {
        ModelBasedOp::Dalal => "Th.5.1",
        ModelBasedOp::Weber => "Cor.5.2",
        _ => "Cor.6.4",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(bounded_p: bool, allow_new_letters: bool, iterated: bool) -> Profile {
        Profile {
            bounded_p,
            allow_new_letters,
            iterated,
        }
    }

    /// Reconstruct Table 1 from the advisor and compare cell by cell.
    #[test]
    fn table1_cells() {
        // (operator, gen/logical, gen/query, bnd/logical, bnd/query)
        let expected: Vec<(OperatorKind, [bool; 4])> = vec![
            (OperatorKind::Gfuv, [false, false, false, false]),
            (
                OperatorKind::ModelBased(ModelBasedOp::Winslett),
                [false, false, true, true],
            ),
            (
                OperatorKind::ModelBased(ModelBasedOp::Borgida),
                [false, false, true, true],
            ),
            (
                OperatorKind::ModelBased(ModelBasedOp::Forbus),
                [false, false, true, true],
            ),
            (
                OperatorKind::ModelBased(ModelBasedOp::Satoh),
                [false, false, true, true],
            ),
            (
                OperatorKind::ModelBased(ModelBasedOp::Dalal),
                [false, true, true, true],
            ),
            (
                OperatorKind::ModelBased(ModelBasedOp::Weber),
                [false, true, true, true],
            ),
            (OperatorKind::Widtio, [true, true, true, true]),
        ];
        for (op, cells) in expected {
            let got = [
                advise(op, profile(false, false, false)).is_compactable(),
                advise(op, profile(false, true, false)).is_compactable(),
                advise(op, profile(true, false, false)).is_compactable(),
                advise(op, profile(true, true, false)).is_compactable(),
            ];
            assert_eq!(got, cells, "Table 1 mismatch for {op:?}");
        }
    }

    /// Reconstruct Table 2 (iterated) from the advisor.
    #[test]
    fn table2_cells() {
        let expected: Vec<(OperatorKind, [bool; 4])> = vec![
            (OperatorKind::Gfuv, [false, false, false, false]),
            (
                OperatorKind::ModelBased(ModelBasedOp::Winslett),
                [false, false, false, true],
            ),
            (
                OperatorKind::ModelBased(ModelBasedOp::Forbus),
                [false, false, false, true],
            ),
            (
                OperatorKind::ModelBased(ModelBasedOp::Satoh),
                [false, false, false, true],
            ),
            (
                OperatorKind::ModelBased(ModelBasedOp::Dalal),
                [false, true, false, true],
            ),
            (
                OperatorKind::ModelBased(ModelBasedOp::Weber),
                [false, true, false, true],
            ),
            (OperatorKind::Widtio, [true, true, true, true]),
        ];
        for (op, cells) in expected {
            let got = [
                advise(op, profile(false, false, true)).is_compactable(),
                advise(op, profile(false, true, true)).is_compactable(),
                advise(op, profile(true, false, true)).is_compactable(),
                advise(op, profile(true, true, true)).is_compactable(),
            ];
            assert_eq!(got, cells, "Table 2 mismatch for {op:?}");
        }
    }

    /// The advice names a construction that actually exists for every
    /// compactable cell and a collapse consequence for every NO.
    #[test]
    fn advice_contents() {
        for mb in ModelBasedOp::ALL {
            for b in [false, true] {
                for q in [false, true] {
                    for it in [false, true] {
                        match advise(OperatorKind::ModelBased(mb), profile(b, q, it)) {
                            Advice::Compactable {
                                construction,
                                reference,
                            } => {
                                assert!(!construction.is_empty());
                                assert!(
                                    reference.starts_with("Th")
                                        || reference.starts_with("Cor")
                                        || reference.starts_with("Prop")
                                        || reference.starts_with("§")
                                );
                            }
                            Advice::NotCompactable { consequence, .. } => {
                                assert!(consequence.contains("poly"));
                            }
                        }
                    }
                }
            }
        }
    }
}
