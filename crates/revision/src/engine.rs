//! The paper's two-step query-answering pipeline, packaged.
//!
//! The introduction motivates splitting `T * P ⊨ Q` into (1) an
//! *offline* compilation producing a propositional `T'`, and (2)
//! ordinary entailment `T' ⊨ Q` answered with standard machinery
//! (here: the CDCL solver). [`RevisedKb::compile`] performs step 1
//! with the construction the compactability analysis recommends for
//! each operator; [`RevisedKb::entails`] is step 2.
//!
//! [`DelayedKb`] is the strategy the conclusions recommend for
//! iterated revision: store `T` and the update formulas `P¹…Pᵐ`
//! (keeping them even after incorporation) and compile only when a
//! query actually arrives.
//!
//! Step 2 is incremental: the first query opens a
//! [`revkb_sat::QuerySession`] that Tseitin-loads the compiled `T'`
//! into one CDCL solver; later queries reuse it (activation-literal
//! encoding, learned clauses kept, answers memoised). The session's
//! counters are available through [`RevisedKb::query_stats`] and
//! [`DelayedKb::query_stats`]. Two sharp edges are made loud rather
//! than silent: queries mentioning letters outside the revision
//! alphabet are rejected in every profile
//! ([`RevisedKb::try_entails`]), and revising a [`DelayedKb`] drops
//! its compilation — and with it the session and its stats — so
//! stale answers cannot survive a revision.

use crate::compact::{
    borgida_bounded, borgida_iterated, dalal_compact, dalal_iterated, forbus_bounded,
    forbus_iterated, satoh_bounded, satoh_iterated, weber_compact, weber_iterated,
    winslett_bounded, winslett_iterated, CompactRep,
};
use crate::semantic::ModelBasedOp;
use revkb_logic::Formula;
use revkb_sat::supply_above;
use std::fmt;

/// Why a compilation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The operator's construction needs `|V(P)|` bounded and the
    /// given `P` is too wide for the exponential-in-`|V(P)|` formula.
    UpdateAlphabetTooLarge {
        /// The operator requested.
        op: ModelBasedOp,
        /// `|V(P)|` encountered.
        got: usize,
        /// Maximum supported width.
        max: usize,
    },
    /// The *total* revision alphabet `V(T) ∪ V(P)` is too wide for an
    /// enumeration-based backend (e.g. the BDD pipeline, which builds
    /// the full model set first).
    AlphabetTooLarge {
        /// The operator requested.
        op: ModelBasedOp,
        /// `|V(T) ∪ V(P)|` encountered.
        got: usize,
        /// Maximum supported width.
        max: usize,
    },
    /// A minimal-difference enumeration exceeded its cap.
    DeltaEnumerationOverflow,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UpdateAlphabetTooLarge { op, got, max } => write!(
                f,
                "{} compilation needs |V(P)| ≤ {max}, got {got} \
                 (the operator is not compactable in the unbounded case)",
                op.name()
            ),
            CompileError::AlphabetTooLarge { op, got, max } => write!(
                f,
                "{} compilation via model enumeration needs a total alphabet \
                 |V(T) ∪ V(P)| ≤ {max}, got {got}",
                op.name()
            ),
            CompileError::DeltaEnumerationOverflow => {
                write!(f, "minimal-difference enumeration exceeded its cap")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Widest `V(P)` accepted by the bounded (exponential-in-`|V(P)|`)
/// constructions.
pub const MAX_BOUNDED_P_VARS: usize = 12;

/// Cap on minimal-difference set enumeration.
pub const DELTA_LIMIT: usize = 1 << 20;

/// A compiled revised knowledge base: step 1's output plus step 2's
/// query interface.
#[derive(Debug, Clone)]
pub struct RevisedKb {
    op: ModelBasedOp,
    rep: CompactRep,
}

impl RevisedKb {
    /// Compile `T * P` with the construction matching the operator's
    /// compactability entry in Table 1:
    ///
    /// - Dalal → Theorem 3.4 (query-equivalent, any `|P|`);
    /// - Weber → Theorem 3.5 (query-equivalent, any `|P|`);
    /// - Winslett/Borgida/Forbus/Satoh → the Section 4 bounded
    ///   constructions (logically equivalent; requires small `V(P)` —
    ///   Table 1 says these operators are *not* compactable
    ///   unbounded, so refusing wide `P` is the honest contract).
    ///
    /// ```
    /// use revkb_revision::{ModelBasedOp, RevisedKb};
    /// use revkb_logic::{Formula, Var};
    /// let t = Formula::var(Var(0)).or(Formula::var(Var(1)));  // g ∨ b
    /// let p = Formula::var(Var(0)).not();                     // ¬g
    /// let kb = RevisedKb::compile(ModelBasedOp::Dalal, &t, &p).unwrap();
    /// assert!(kb.entails(&Formula::var(Var(1))));             // the voice was Bill's
    /// ```
    pub fn compile(op: ModelBasedOp, t: &Formula, p: &Formula) -> Result<Self, CompileError> {
        let _span = revkb_obs::span("revision.compile");
        let _op_span = revkb_obs::span(op.name());
        let rep = match op {
            ModelBasedOp::Dalal => {
                let mut supply = supply_above([t, p]);
                dalal_compact(t, p, &mut supply)
            }
            ModelBasedOp::Weber => {
                let mut supply = supply_above([t, p]);
                weber_compact(t, p, DELTA_LIMIT, &mut supply)
                    .ok_or(CompileError::DeltaEnumerationOverflow)?
            }
            bounded_op => {
                let width = p.vars().len();
                if width > MAX_BOUNDED_P_VARS {
                    return Err(CompileError::UpdateAlphabetTooLarge {
                        op: bounded_op,
                        got: width,
                        max: MAX_BOUNDED_P_VARS,
                    });
                }
                match bounded_op {
                    ModelBasedOp::Winslett => winslett_bounded(t, p),
                    ModelBasedOp::Borgida => borgida_bounded(t, p),
                    ModelBasedOp::Forbus => forbus_bounded(t, p),
                    ModelBasedOp::Satoh => satoh_bounded(t, p),
                    _ => unreachable!(),
                }
            }
        };
        Ok(Self { op, rep })
    }

    /// Compile the iterated revision `T * P¹ * … * Pᵐ` with the
    /// Section 5/6 constructions (all query-equivalent).
    pub fn compile_iterated(
        op: ModelBasedOp,
        t: &Formula,
        ps: &[Formula],
    ) -> Result<Self, CompileError> {
        let _span = revkb_obs::span("revision.compile_iterated");
        let _op_span = revkb_obs::span(op.name());
        let mut supply = supply_above(std::iter::once(t).chain(ps));
        let rep = match op {
            ModelBasedOp::Dalal => dalal_iterated(t, ps, &mut supply),
            ModelBasedOp::Weber => weber_iterated(t, ps, DELTA_LIMIT, &mut supply)
                .ok_or(CompileError::DeltaEnumerationOverflow)?,
            bounded_op => {
                let width = ps.iter().map(|p| p.vars().len()).max().unwrap_or(0);
                if width > MAX_BOUNDED_P_VARS {
                    return Err(CompileError::UpdateAlphabetTooLarge {
                        op: bounded_op,
                        got: width,
                        max: MAX_BOUNDED_P_VARS,
                    });
                }
                match bounded_op {
                    ModelBasedOp::Winslett => winslett_iterated(t, ps, &mut supply),
                    ModelBasedOp::Borgida => borgida_iterated(t, ps, &mut supply),
                    ModelBasedOp::Forbus => forbus_iterated(t, ps, &mut supply),
                    ModelBasedOp::Satoh => satoh_iterated(t, ps, DELTA_LIMIT, &mut supply)
                        .ok_or(CompileError::DeltaEnumerationOverflow)?,
                    _ => unreachable!(),
                }
            }
        };
        Ok(Self { op, rep })
    }

    /// Compile via the BDD pipeline: semantic model set → ROBDD →
    /// definitional formula (one fresh letter per BDD node).
    ///
    /// Exact for any operator, but requires an enumerable alphabet
    /// (`|V(T) ∪ V(P)| ≤ 20`). The result is query-equivalent over the
    /// base alphabet and has size linear in the BDD — the Section 7
    /// data-structure view made into a compiler backend.
    pub fn compile_via_bdd(
        op: ModelBasedOp,
        t: &Formula,
        p: &Formula,
    ) -> Result<Self, CompileError> {
        let alpha = crate::model_set::revision_alphabet(t, p);
        if alpha.len() > 20 {
            // Not `UpdateAlphabetTooLarge`: that variant's message
            // talks about |V(P)|, but the enumeration bound here is on
            // the *whole* revision alphabet.
            return Err(CompileError::AlphabetTooLarge {
                op,
                got: alpha.len(),
                max: 20,
            });
        }
        let _span = revkb_obs::span("revision.compile_via_bdd");
        let _op_span = revkb_obs::span(op.name());
        let oracle = crate::semantic::revise_on(op, &alpha, t, p);
        let mut mgr = revkb_bdd::BddManager::with_order(alpha.vars().to_vec());
        let node = {
            let _bdd_span = revkb_obs::span("revision.phase.bdd_build");
            mgr.from_formula(&oracle.to_dnf())
        };
        let mut supply = supply_above([t, p]);
        let formula = revkb_bdd::to_formula_definitional(&mgr, node, &mut supply);
        Ok(Self {
            op,
            rep: CompactRep::query(formula, alpha.vars().to_vec()),
        })
    }

    /// The operator this base was compiled for.
    pub fn operator(&self) -> ModelBasedOp {
        self.op
    }

    /// The compiled representation.
    pub fn representation(&self) -> &CompactRep {
        &self.rep
    }

    /// Step 2: answer `T * P ⊨ Q` (for `Q` over the base alphabet).
    ///
    /// Queries are answered through the representation's incremental
    /// [`revkb_sat::QuerySession`]: the first query Tseitin-loads `T'`
    /// once, later queries reuse the solver and its learned clauses.
    ///
    /// # Panics
    ///
    /// If `q` mentions letters outside the base alphabet (see
    /// [`RevisedKb::try_entails`] for the fallible version).
    pub fn entails(&self, q: &Formula) -> bool {
        self.rep.entails(q)
    }

    /// Step 2, fallible: `Err` if `q` strays outside the base
    /// alphabet, where the compilation's guarantee is void.
    pub fn try_entails(&self, q: &Formula) -> Result<bool, crate::compact::QueryError> {
        self.rep.try_entails(q)
    }

    /// Step 2 for a whole batch: answers are sharded over a worker
    /// pool (one incremental session per `REVKB_THREADS` worker) and
    /// come back index-aligned with `queries`. Small batches run
    /// sequentially; answers are identical to query-by-query
    /// [`RevisedKb::entails`] either way.
    ///
    /// # Panics
    ///
    /// If any query strays outside the base alphabet (see
    /// [`RevisedKb::try_entails_batch`]).
    pub fn entails_batch(&self, queries: &[Formula]) -> Vec<bool> {
        self.rep.entails_batch(queries)
    }

    /// Batch step 2, fallible: `Err` (before any work) if some query
    /// strays outside the base alphabet.
    pub fn try_entails_batch(
        &self,
        queries: &[Formula],
    ) -> Result<Vec<bool>, crate::compact::QueryError> {
        self.rep.try_entails_batch(queries)
    }

    /// Statistics of the incremental query session, if any query has
    /// been answered yet.
    pub fn query_stats(&self) -> Option<revkb_sat::SolverStats> {
        self.rep.query_stats()
    }

    /// Statistics of the batch-query pool, if any batch has been
    /// answered yet.
    pub fn pool_stats(&self) -> Option<revkb_sat::PoolStats> {
        self.rep.pool_stats()
    }

    /// Combined statistics of both query engines, uniformly shaped as
    /// [`crate::compact::EngineStats`] (also available on
    /// [`crate::compact::CompactRep`] and [`DelayedKb`]).
    pub fn stats(&self) -> crate::compact::EngineStats {
        self.rep.stats()
    }

    /// Size of the compiled representation, `|T'|`.
    pub fn size(&self) -> usize {
        self.rep.size()
    }

    /// Configure the lazy batch pool (see
    /// [`crate::compact::CompactRep::set_pool_config`]).
    pub fn set_pool_config(&self, config: revkb_sat::PoolConfig) {
        self.rep.set_pool_config(config);
    }
}

/// The paper's delayed-incorporation strategy (§6.2 / Conclusions):
/// keep `T` and the revision formulas; compile lazily at query time
/// and cache the compilation.
#[derive(Debug, Clone)]
pub struct DelayedKb {
    op: ModelBasedOp,
    t: Formula,
    ps: Vec<Formula>,
    compiled: Option<RevisedKb>,
}

impl DelayedKb {
    /// Start from an initial knowledge base.
    pub fn new(op: ModelBasedOp, t: Formula) -> Self {
        Self {
            op,
            t,
            ps: Vec::new(),
            compiled: None,
        }
    }

    /// Record a revision (no computation happens yet).
    pub fn revise(&mut self, p: Formula) {
        self.ps.push(p);
        self.compiled = None;
    }

    /// The stored revision formulas (kept even after incorporation,
    /// as the paper recommends).
    pub fn pending(&self) -> &[Formula] {
        &self.ps
    }

    /// The operator every recorded revision will be compiled with.
    pub fn operator(&self) -> ModelBasedOp {
        self.op
    }

    /// The initial knowledge base `T`.
    pub fn base(&self) -> &Formula {
        &self.t
    }

    /// Compile now (if not already compiled) and return the cached
    /// compilation. [`DelayedKb::entails`] does this implicitly; the
    /// explicit form lets callers front-load the cost.
    pub fn force_compile(&mut self) -> Result<&RevisedKb, CompileError> {
        if self.compiled.is_none() {
            self.compiled = Some(RevisedKb::compile_iterated(self.op, &self.t, &self.ps)?);
        }
        Ok(self.compiled.as_ref().expect("just compiled"))
    }

    /// Answer a query, compiling (and caching) on demand. While no
    /// further revision arrives, every query reuses the cached
    /// compilation's incremental solver session.
    ///
    /// # Panics
    ///
    /// If `q` mentions letters outside the base alphabet of the
    /// compilation (see [`RevisedKb::entails`]).
    pub fn entails(&mut self, q: &Formula) -> Result<bool, CompileError> {
        Ok(self.force_compile()?.entails(q))
    }

    /// Answer a batch of queries, compiling (and caching) on demand;
    /// the batch is sharded over the compilation's worker pool.
    /// Answers come back index-aligned with `queries`.
    ///
    /// # Panics
    ///
    /// If any query mentions letters outside the base alphabet of the
    /// compilation (see [`RevisedKb::entails_batch`]).
    pub fn entails_batch(&mut self, queries: &[Formula]) -> Result<Vec<bool>, CompileError> {
        Ok(self.force_compile()?.entails_batch(queries))
    }

    /// Statistics of the cached compilation's query session, if a
    /// compilation exists and has answered at least one query. Reset
    /// by [`DelayedKb::revise`] together with the compilation cache.
    pub fn query_stats(&self) -> Option<revkb_sat::SolverStats> {
        self.compiled.as_ref().and_then(RevisedKb::query_stats)
    }

    /// Statistics of the cached compilation's batch pool, if any batch
    /// has been answered. Reset by [`DelayedKb::revise`] together with
    /// the compilation cache.
    pub fn pool_stats(&self) -> Option<revkb_sat::PoolStats> {
        self.compiled.as_ref().and_then(RevisedKb::pool_stats)
    }

    /// Combined statistics of the cached compilation's query engines,
    /// uniformly shaped as [`crate::compact::EngineStats`]; empty (not
    /// `None`) when no compilation exists, so callers can always read
    /// the same shape. Reset by [`DelayedKb::revise`] together with the
    /// compilation cache.
    pub fn stats(&self) -> crate::compact::EngineStats {
        self.compiled
            .as_ref()
            .map(RevisedKb::stats)
            .unwrap_or_default()
    }

    /// Size of the cached compilation, if any.
    pub fn compiled_size(&self) -> Option<usize> {
        self.compiled.as_ref().map(RevisedKb::size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalence::query_equivalent_enum;
    use crate::model_set::revision_alphabet_seq;
    use crate::semantic::{revise_iterated_on, revise_on};
    use revkb_logic::Var;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn compile_every_operator_single() {
        let t = v(0).and(v(1)).and(v(2));
        let p = v(0).not().or(v(1).not());
        for op in ModelBasedOp::ALL {
            let kb = RevisedKb::compile(op, &t, &p).unwrap();
            let alpha = revision_alphabet_seq(&t, std::slice::from_ref(&p));
            let oracle = revise_on(op, &alpha, &t, &p);
            assert!(
                query_equivalent_enum(
                    &kb.representation().formula,
                    &oracle.to_dnf(),
                    &kb.representation().base
                ),
                "{} compile wrong",
                op.name()
            );
            // Sample queries.
            assert_eq!(kb.entails(&v(2)), oracle.entails(&v(2)), "{}", op.name());
            assert_eq!(
                kb.entails(&v(0).or(v(1))),
                oracle.entails(&v(0).or(v(1))),
                "{}",
                op.name()
            );
        }
    }

    #[test]
    fn compile_every_operator_iterated() {
        let t = v(0).and(v(1)).and(v(2));
        let ps = vec![v(0).not().or(v(1).not()), v(2).not()];
        for op in ModelBasedOp::ALL {
            let kb = RevisedKb::compile_iterated(op, &t, &ps).unwrap();
            let alpha = revision_alphabet_seq(&t, &ps);
            let oracle = revise_iterated_on(op, &alpha, &t, &ps);
            assert!(
                query_equivalent_enum(
                    &kb.representation().formula,
                    &oracle.to_dnf(),
                    &kb.representation().base
                ),
                "iterated {} compile wrong",
                op.name()
            );
        }
    }

    #[test]
    fn bdd_pipeline_matches_constructions() {
        let t = v(0).and(v(1)).and(v(2));
        let p = v(0).not().or(v(1).not());
        for op in ModelBasedOp::ALL {
            let via_bdd = RevisedKb::compile_via_bdd(op, &t, &p).unwrap();
            let direct = RevisedKb::compile(op, &t, &p).unwrap();
            assert!(
                query_equivalent_enum(
                    &via_bdd.representation().formula,
                    &direct.representation().formula,
                    &via_bdd.representation().base
                ),
                "BDD pipeline diverges for {}",
                op.name()
            );
        }
    }

    #[test]
    fn bdd_pipeline_refuses_wide_alphabets() {
        let t = Formula::and_all((0..25u32).map(v));
        let p = v(0).not();
        let err = RevisedKb::compile_via_bdd(ModelBasedOp::Dalal, &t, &p).unwrap_err();
        // The refusal is about the total alphabet, not |V(P)| (which
        // is 1 here) — it must use the dedicated variant.
        assert_eq!(
            err,
            CompileError::AlphabetTooLarge {
                op: ModelBasedOp::Dalal,
                got: 25,
                max: 20,
            }
        );
    }

    #[test]
    fn bounded_ops_refuse_wide_p() {
        let t = v(0);
        let wide_p = Formula::or_all((0..20).map(v));
        let err = RevisedKb::compile(ModelBasedOp::Winslett, &t, &wide_p).unwrap_err();
        assert!(matches!(err, CompileError::UpdateAlphabetTooLarge { .. }));
        // Dalal and Weber accept it (query-compactable unbounded).
        assert!(RevisedKb::compile(ModelBasedOp::Dalal, &t, &wide_p).is_ok());
        assert!(RevisedKb::compile(ModelBasedOp::Weber, &t, &wide_p).is_ok());
    }

    #[test]
    fn delayed_kb_lazy_compilation() {
        let mut kb = DelayedKb::new(ModelBasedOp::Dalal, v(0).and(v(1)));
        assert!(kb.compiled_size().is_none());
        kb.revise(v(0).not().or(v(1).not()));
        kb.revise(v(0).not());
        assert!(kb.compiled_size().is_none());
        // After two Dalal revisions: first keeps exactly one of x0/x1,
        // then ¬x0 forces... check against the oracle.
        let ps: Vec<Formula> = kb.pending().to_vec();
        let t = v(0).and(v(1));
        let alpha = revision_alphabet_seq(&t, &ps);
        let oracle = revise_iterated_on(ModelBasedOp::Dalal, &alpha, &t, &ps);
        assert_eq!(kb.entails(&v(1)).unwrap(), oracle.entails(&v(1)));
        assert_eq!(
            kb.entails(&v(0).not()).unwrap(),
            oracle.entails(&v(0).not())
        );
        assert!(kb.compiled_size().is_some());
        // A further revision invalidates the cache.
        kb.revise(v(1).not());
        assert!(kb.compiled_size().is_none());
    }

    #[test]
    fn error_display() {
        let e = CompileError::UpdateAlphabetTooLarge {
            op: ModelBasedOp::Forbus,
            got: 30,
            max: 12,
        };
        let s = e.to_string();
        assert!(s.contains("Forbus"));
        assert!(s.contains("30"));
        assert!(
            s.contains("|V(P)|"),
            "update-width variant talks about |V(P)|"
        );

        let e = CompileError::AlphabetTooLarge {
            op: ModelBasedOp::Dalal,
            got: 25,
            max: 20,
        };
        let s = e.to_string();
        assert!(s.contains("Dalal"));
        assert!(s.contains("25"));
        assert!(
            s.contains("|V(T) ∪ V(P)|"),
            "total-alphabet variant talks about the whole alphabet, got: {s}"
        );
        assert!(
            !s.contains("|V(P)| ≤"),
            "must not claim an update-width bound"
        );
    }

    #[test]
    fn revised_kb_session_reuse_and_stats() {
        let t = v(0).and(v(1)).and(v(2));
        let p = v(0).not().or(v(1).not());
        let kb = RevisedKb::compile(ModelBasedOp::Dalal, &t, &p).unwrap();
        assert!(kb.query_stats().is_none());
        assert!(kb.entails(&v(2)));
        assert!(kb.entails(&v(2)));
        assert_eq!(
            kb.try_entails(&v(40)),
            Err(crate::compact::QueryError::OutOfAlphabet { var: Var(40) })
        );
        let stats = kb.query_stats().unwrap();
        assert_eq!(stats.base_loads, 1);
        assert_eq!(stats.solver_constructions, 1);
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn revised_kb_batch_matches_single_path() {
        let t = v(0).and(v(1)).and(v(2));
        let p = v(0).not().or(v(1).not());
        for op in ModelBasedOp::ALL {
            let kb = RevisedKb::compile(op, &t, &p).unwrap();
            let mut seed = 0xBA7C4u64;
            let queries: Vec<Formula> = (0..24)
                .map(|_| revkb_sat::pseudo_random_formula(&mut seed, 3, 3))
                .collect();
            let batch = kb.entails_batch(&queries);
            let single: Vec<bool> = queries.iter().map(|q| kb.entails(q)).collect();
            assert_eq!(batch, single, "{} batch diverges", op.name());
            let pool = kb.pool_stats().expect("batch pool ran");
            assert_eq!(pool.queries, 24);
            assert_eq!(pool.batches, 1);
        }
    }

    #[test]
    fn revised_kb_batch_rejects_out_of_alphabet() {
        let t = v(0).and(v(1));
        let p = v(0).not();
        let kb = RevisedKb::compile(ModelBasedOp::Dalal, &t, &p).unwrap();
        assert_eq!(
            kb.try_entails_batch(&[v(0), v(33)]),
            Err(crate::compact::QueryError::OutOfAlphabet { var: Var(33) })
        );
        assert!(kb.pool_stats().is_none());
    }

    #[test]
    fn delayed_kb_batch_compiles_and_resets() {
        let mut kb = DelayedKb::new(ModelBasedOp::Dalal, v(0).and(v(1)));
        kb.revise(v(0).not());
        let answers = kb.entails_batch(&[v(1), v(0)]).unwrap();
        assert_eq!(answers, vec![true, false]);
        assert_eq!(kb.pool_stats().unwrap().queries, 2);
        kb.revise(v(1).not());
        assert!(kb.pool_stats().is_none(), "revise drops the pool");
    }

    #[test]
    fn delayed_kb_stats_reset_on_revise() {
        let mut kb = DelayedKb::new(ModelBasedOp::Dalal, v(0).and(v(1)));
        kb.revise(v(0).not());
        assert!(kb.query_stats().is_none());
        kb.entails(&v(1)).unwrap();
        assert_eq!(kb.query_stats().unwrap().queries, 1);
        kb.revise(v(1).not());
        assert!(kb.query_stats().is_none(), "revise drops the session");
    }
}
