//! The workspace-wide error type.
//!
//! Before this module existed every layer had its own enum —
//! [`QueryError`] in the compact representations, [`CompileError`] in
//! the two-step engine, [`ParseError`] in the logic crate,
//! [`WorldBudgetExceeded`] in the formula-based engines — and callers
//! that drive the whole pipeline (the CLI, the server, the benches)
//! had to invent ad-hoc unions. [`Error`] is that union, made once:
//! every constituent converts in via `From`, and every variant maps to
//! a **stable machine-readable code** ([`Error::code`]) that the
//! `revkb-server` wire protocol reuses verbatim, so a client can match
//! on `"out_of_alphabet"` without parsing prose.

use crate::compact::QueryError;
use crate::engine::CompileError;
use crate::engine_formula_based::WorldBudgetExceeded;
use revkb_logic::ParseError;
use std::fmt;

/// Any error the revision pipeline can produce, from parsing input
/// text to compiling a revised base to answering a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The input text is not a well-formed formula.
    Parse(ParseError),
    /// A query was rejected by a compiled representation.
    Query(QueryError),
    /// A compilation was refused.
    Compile(CompileError),
    /// The GFUV possible-worlds budget was exhausted.
    WorldBudget(WorldBudgetExceeded),
    /// The requested (operator, profile) pair has no compact
    /// representation at all — Table 1 / Table 2 say compiling is
    /// hopeless, so the builder refuses up front instead of producing
    /// an exponential artefact.
    NotCompactable {
        /// The paper's reference for the impossibility.
        reference: &'static str,
        /// The complexity collapse a compact representation would
        /// imply.
        consequence: &'static str,
    },
}

impl Error {
    /// A stable, machine-readable code for the error. These strings
    /// are part of the `revkb-server` wire protocol (the `code` field
    /// of an error response) — do not rename them.
    pub fn code(&self) -> &'static str {
        match self {
            Error::Parse(_) => "parse",
            Error::Query(QueryError::OutOfAlphabet { .. }) => "out_of_alphabet",
            Error::Compile(CompileError::UpdateAlphabetTooLarge { .. }) => {
                "update_alphabet_too_large"
            }
            Error::Compile(CompileError::AlphabetTooLarge { .. }) => "alphabet_too_large",
            Error::Compile(CompileError::DeltaEnumerationOverflow) => "delta_overflow",
            Error::WorldBudget(_) => "world_budget_exceeded",
            Error::NotCompactable { .. } => "not_compactable",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "{e}"),
            Error::Query(e) => write!(f, "{e}"),
            Error::Compile(e) => write!(f, "{e}"),
            Error::WorldBudget(e) => write!(f, "{e}"),
            Error::NotCompactable {
                reference,
                consequence,
            } => write!(
                f,
                "no compact representation exists for this operator and \
                 profile ({reference}): one would imply {consequence}"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Parse(e) => Some(e),
            Error::Query(e) => Some(e),
            Error::Compile(e) => Some(e),
            Error::WorldBudget(e) => Some(e),
            Error::NotCompactable { .. } => None,
        }
    }
}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Parse(e)
    }
}

impl From<QueryError> for Error {
    fn from(e: QueryError) -> Self {
        Error::Query(e)
    }
}

impl From<CompileError> for Error {
    fn from(e: CompileError) -> Self {
        Error::Compile(e)
    }
}

impl From<WorldBudgetExceeded> for Error {
    fn from(e: WorldBudgetExceeded) -> Self {
        Error::WorldBudget(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantic::ModelBasedOp;
    use revkb_logic::Var;

    #[test]
    fn codes_are_stable() {
        let cases: Vec<(Error, &str)> = vec![
            (
                Error::Parse(ParseError {
                    position: 3,
                    message: "x".into(),
                }),
                "parse",
            ),
            (
                Error::Query(QueryError::OutOfAlphabet { var: Var(7) }),
                "out_of_alphabet",
            ),
            (
                Error::Compile(CompileError::UpdateAlphabetTooLarge {
                    op: ModelBasedOp::Forbus,
                    got: 30,
                    max: 12,
                }),
                "update_alphabet_too_large",
            ),
            (
                Error::Compile(CompileError::AlphabetTooLarge {
                    op: ModelBasedOp::Dalal,
                    got: 25,
                    max: 20,
                }),
                "alphabet_too_large",
            ),
            (
                Error::Compile(CompileError::DeltaEnumerationOverflow),
                "delta_overflow",
            ),
            (
                Error::WorldBudget(WorldBudgetExceeded { budget: 4 }),
                "world_budget_exceeded",
            ),
            (
                Error::NotCompactable {
                    reference: "Th.3.1",
                    consequence: "NP ⊆ coNP/poly",
                },
                "not_compactable",
            ),
        ];
        for (err, code) in cases {
            assert_eq!(err.code(), code, "{err}");
        }
    }

    #[test]
    fn from_impls_and_display() {
        let e: Error = QueryError::OutOfAlphabet { var: Var(3) }.into();
        assert!(e.to_string().contains("base alphabet"));
        let e: Error = CompileError::DeltaEnumerationOverflow.into();
        assert!(e.to_string().contains("enumeration"));
        let e: Error = ParseError {
            position: 0,
            message: "empty".into(),
        }
        .into();
        assert!(e.to_string().contains("parse error"));
        let e = Error::NotCompactable {
            reference: "Th.3.1",
            consequence: "NP ⊆ coNP/poly (PH collapses)",
        };
        assert!(e.to_string().contains("Th.3.1"));
        use std::error::Error as _;
        assert!(e.source().is_none());
    }
}
