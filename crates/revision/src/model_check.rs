//! Direct model checking `M ⊨ T * P` (§2.2.4 of the paper), without
//! materialising the revised base.
//!
//! The paper points to Liberatore–Schaerf for the complexity picture:
//! model checking is easier than inference for some operators and not
//! others. This module makes that concrete:
//!
//! - **Dalal**: two SAT-backed minimum-distance computations
//!   (`k_{T,P}` and `dist(M, T)`) — polynomial with an NP oracle, any
//!   `|P|`;
//! - **Weber**: `Ω` (offline) plus one SAT call, any `|P|`;
//! - **Satoh**: `δ(T,P)` (offline, capped) plus `|δ|` evaluations;
//! - **Winslett / Borgida / Forbus**: exact procedures exponential
//!   only in `|V(P)|` (via Proposition 2.1, all candidate witnesses
//!   differ from `M` inside `V(P)` only) — the bounded case again.
//!
//! All procedures are validated against the enumeration oracle in the
//! tests.

use crate::distance::{delta_sets_over, min_distance_over, omega_over, union_vars};
use crate::semantic::ModelBasedOp;
use revkb_circuits::exa;
use revkb_logic::{Formula, Interpretation, Var, VarSupply};

/// Why a model check could not be completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelCheckError {
    /// The operator needs bounded `|V(P)|` and the update is too wide.
    UpdateAlphabetTooLarge {
        /// `|V(P)|` encountered.
        got: usize,
        /// Maximum supported.
        max: usize,
    },
    /// The minimal-difference enumeration exceeded its cap.
    DeltaEnumerationOverflow,
}

/// Widest `V(P)` accepted by the pointwise model checkers.
pub const MAX_POINTWISE_P_VARS: usize = 16;

/// Cap on `δ(T,P)` enumeration for the Satoh checker.
pub const DELTA_LIMIT: usize = 1 << 20;

/// Restrict `m` to a complete assignment over `xs` as a mask-like
/// lookup.
fn truth(m: &Interpretation) -> impl Fn(Var) -> bool + '_ {
    move |v| m.contains(&v)
}

/// Minimum Hamming distance, over `xs`, from the fixed interpretation
/// `m` to the models of `f`. `None` if `f` is unsatisfiable.
fn distance_to(m: &Interpretation, f: &Formula, xs: &[Var]) -> Option<usize> {
    if !revkb_sat::satisfiable(f) {
        return None;
    }
    // Pin a fresh copy of xs to m's values and measure EXA against
    // f's xs. The watermark must clear xs as well as V(f): xs can
    // contain letters absent from f (e.g. letters of P).
    let watermark = f
        .vars()
        .iter()
        .chain(xs.iter())
        .map(|v| v.0 + 1)
        .max()
        .unwrap_or(0);
    let mut supply = revkb_logic::CountingSupply::new(watermark);
    let ys: Vec<Var> = xs.iter().map(|_| supply.fresh_var()).collect();
    let pin = Formula::and_all(
        ys.iter()
            .zip(xs)
            .map(|(&y, &x)| Formula::lit(y, m.contains(&x))),
    );
    for d in 0..=xs.len() {
        let probe = f.clone().and(pin.clone()).and(exa(d, xs, &ys, &mut supply));
        if revkb_sat::satisfiable(&probe) {
            return Some(d);
        }
    }
    unreachable!("distance bounded by |xs|")
}

/// All subsets of `vars` as vectors.
fn subsets(vars: &[Var]) -> impl Iterator<Item = Vec<Var>> + '_ {
    (0..1u64 << vars.len()).map(move |mask| {
        vars.iter()
            .enumerate()
            .filter(move |(i, _)| mask >> i & 1 == 1)
            .map(|(_, &v)| v)
            .collect()
    })
}

/// `M △ S` for a set of letters.
fn flip_interpretation(m: &Interpretation, s: &[Var]) -> Interpretation {
    let mut out = m.clone();
    for &v in s {
        if !out.remove(&v) {
            out.insert(v);
        }
    }
    out
}

/// Decide `M ⊨ T *op P`, where `M` is an interpretation of
/// `V(T) ∪ V(P)` (letters absent from `m` are false). Degenerate
/// conventions as in [`crate::semantic`].
///
/// ```
/// use revkb_revision::{model_check, ModelBasedOp};
/// use revkb_logic::{Formula, Interpretation, Var};
/// let t = Formula::var(Var(0)).and(Formula::var(Var(1)));
/// let p = Formula::var(Var(0)).not();
/// let m: Interpretation = [Var(1)].into_iter().collect();
/// assert!(model_check(ModelBasedOp::Winslett, &m, &t, &p).unwrap());
/// ```
pub fn model_check(
    op: ModelBasedOp,
    m: &Interpretation,
    t: &Formula,
    p: &Formula,
) -> Result<bool, ModelCheckError> {
    let xs = union_vars(t, p);
    // Degenerate cases first.
    if !revkb_sat::satisfiable(p) {
        return Ok(false);
    }
    if !revkb_sat::satisfiable(t) {
        return Ok(p.eval_fn(&truth(m)));
    }
    if !p.eval_fn(&truth(m)) {
        return Ok(false); // success postulate: every result model satisfies P
    }
    match op {
        ModelBasedOp::Dalal => {
            let k = min_distance_over(t, p, &xs).expect("both satisfiable");
            let d = distance_to(m, t, &xs).expect("t satisfiable");
            Ok(d == k)
        }
        ModelBasedOp::Weber => {
            let omega = omega_over(t, p, &xs, DELTA_LIMIT)
                .ok_or(ModelCheckError::DeltaEnumerationOverflow)?;
            // ∃ T-model agreeing with m outside Ω.
            let pinned = Formula::and_all(
                xs.iter()
                    .filter(|x| !omega.contains(x))
                    .map(|&x| Formula::lit(x, m.contains(&x))),
            )
            .and(t.clone());
            Ok(revkb_sat::satisfiable(&pinned))
        }
        ModelBasedOp::Satoh => {
            let delta = delta_sets_over(t, p, &xs, DELTA_LIMIT)
                .ok_or(ModelCheckError::DeltaEnumerationOverflow)?;
            Ok(delta.iter().any(|s| {
                let s_vec: Vec<Var> = s.iter().copied().collect();
                let witness = flip_interpretation(m, &s_vec);
                t.eval(&witness)
            }))
        }
        ModelBasedOp::Borgida => {
            if revkb_sat::satisfiable(&t.clone().and(p.clone())) {
                Ok(t.eval_fn(&truth(m)))
            } else {
                model_check(ModelBasedOp::Winslett, m, t, p)
            }
        }
        ModelBasedOp::Winslett => {
            let pvars: Vec<Var> = p.vars().into_iter().collect();
            if pvars.len() > MAX_POINTWISE_P_VARS {
                return Err(ModelCheckError::UpdateAlphabetTooLarge {
                    got: pvars.len(),
                    max: MAX_POINTWISE_P_VARS,
                });
            }
            // ∃S ⊆ V(P): M△S ⊨ T and no nonempty C ⊆ S with M△C ⊨ P
            // (Proposition 2.1: the witness T-model agrees with M
            // outside V(P)).
            for s in subsets(&pvars) {
                let witness = flip_interpretation(m, &s);
                if !t.eval(&witness) {
                    continue;
                }
                let closer_exists =
                    subsets(&s).any(|c| !c.is_empty() && p.eval(&flip_interpretation(m, &c)));
                if !closer_exists {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        ModelBasedOp::Forbus => {
            let pvars: Vec<Var> = p.vars().into_iter().collect();
            if pvars.len() > MAX_POINTWISE_P_VARS {
                return Err(ModelCheckError::UpdateAlphabetTooLarge {
                    got: pvars.len(),
                    max: MAX_POINTWISE_P_VARS,
                });
            }
            // ∃S ⊆ V(P): M△S ⊨ T and |S| = k_{M△S, P}, where the
            // pointwise minimum distance is attained inside V(P).
            for s in subsets(&pvars) {
                let witness = flip_interpretation(m, &s);
                if !t.eval(&witness) {
                    continue;
                }
                let k_witness = subsets(&pvars)
                    .filter(|c| {
                        // witness△C must be a P-model; C measured from
                        // the witness, i.e. candidate N' = witness△C.
                        p.eval(&flip_interpretation(&witness, c))
                    })
                    .map(|c| c.len())
                    .min();
                if k_witness == Some(s.len()) {
                    return Ok(true);
                }
            }
            Ok(false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantic::revise_on;
    use revkb_logic::Alphabet;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    /// Every operator's direct checker must agree with the enumeration
    /// oracle on every interpretation of the running example.
    #[test]
    fn agrees_with_oracle_on_paper_example() {
        let t = v(0).and(v(1)).and(v(2));
        let p = v(0)
            .not()
            .and(v(1).not())
            .and(v(3).not())
            .or(v(2).not().and(v(1)).and(v(0).xor(v(3))));
        check_all(&t, &p);
    }

    fn check_all(t: &Formula, p: &Formula) {
        let alpha = Alphabet::of_formulas([t, p]);
        for op in ModelBasedOp::ALL {
            let oracle = revise_on(op, &alpha, t, p);
            for mask in 0..alpha.interpretation_count() {
                let m = alpha.mask_to_interpretation(mask);
                let got = model_check(op, &m, t, p).expect("checkable");
                assert_eq!(
                    got,
                    oracle.contains(&m),
                    "{} disagrees at {m:?} for {t:?} * {p:?}",
                    op.name()
                );
            }
        }
    }

    #[test]
    fn agrees_with_oracle_on_random_instances() {
        let mut seed = 77u64;
        let mut rnd = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        fn build(rnd: &mut impl FnMut() -> u32, depth: u32, nv: u32) -> Formula {
            let r = rnd();
            if depth == 0 || r.is_multiple_of(6) {
                return Formula::lit(Var(r % nv), r & 1 == 0);
            }
            let a = build(rnd, depth - 1, nv);
            let b = build(rnd, depth - 1, nv);
            match r % 4 {
                0 => a.and(b),
                1 => a.or(b),
                2 => a.xor(b),
                _ => a.implies(b),
            }
        }
        for _ in 0..12 {
            let t = build(&mut rnd, 3, 4);
            let p = build(&mut rnd, 2, 3);
            check_all(&t, &p);
        }
    }

    #[test]
    fn degenerate_cases() {
        let unsat = v(0).and(v(0).not());
        let p = v(1);
        let m: Interpretation = [Var(1)].into_iter().collect();
        for op in ModelBasedOp::ALL {
            // P unsatisfiable: nothing is a model.
            assert!(!model_check(op, &m, &v(0), &unsat).unwrap());
            // T unsatisfiable: result is P.
            assert!(model_check(op, &m, &unsat, &p).unwrap());
            assert!(!model_check(op, &Interpretation::new(), &unsat, &p).unwrap());
        }
    }

    #[test]
    fn success_short_circuit() {
        // M ⊭ P is rejected without any further work.
        let t = v(0);
        let p = v(1);
        let m = Interpretation::new();
        for op in ModelBasedOp::ALL {
            assert!(!model_check(op, &m, &t, &p).unwrap());
        }
    }

    #[test]
    fn wide_p_rejected_for_pointwise_only() {
        let t = v(0);
        let p = Formula::or_all((0..20).map(v));
        let m: Interpretation = [Var(1)].into_iter().collect();
        assert!(model_check(ModelBasedOp::Winslett, &m, &t, &p).is_err());
        assert!(model_check(ModelBasedOp::Forbus, &m, &t, &p).is_err());
        // Global operators handle wide P fine.
        assert!(model_check(ModelBasedOp::Dalal, &m, &t, &p).is_ok());
        assert!(model_check(ModelBasedOp::Weber, &m, &t, &p).is_ok());
        assert!(model_check(ModelBasedOp::Satoh, &m, &t, &p).is_ok());
    }
}
