//! Figure 1: the containment lattice among the model sets selected by
//! the model-based operators.
//!
//! The paper's Figure 1 (arrows = set containment of the selected
//! model sets) induces these relations, all derivable from the
//! definitions:
//!
//! ```text
//! M(T*D P) ⊆ M(T*F P) ⊆ M(T*Win P)
//! M(T*D P) ⊆ M(T*S P) ⊆ M(T*Win P)
//!             M(T*S P) ⊆ M(T*Web P)
//!             M(T*S P) ⊆ M(T*B P)
//!             M(T*B P) ⊆ M(T*Win P)
//! ```
//!
//! (Forbus ⊄ Borgida in general: when `T ∧ P` is consistent Borgida
//! collapses to the conjunction while Forbus still performs a
//! pointwise update — the office example separates them.)
//!
//! [`check_containments`] verifies all of them on a concrete `(T, P)`
//! pair; the Figure 1 bench sweeps random instances and reports the
//! observed matrix (E1 in DESIGN.md).

use crate::model_set::ModelSet;
use crate::semantic::{revise_on, ModelBasedOp};
use revkb_logic::{Alphabet, Formula};

/// The claimed containments `(sub, sup)` of Figure 1.
pub const FIGURE1_EDGES: [(ModelBasedOp, ModelBasedOp); 7] = [
    (ModelBasedOp::Dalal, ModelBasedOp::Forbus),
    (ModelBasedOp::Dalal, ModelBasedOp::Satoh),
    (ModelBasedOp::Forbus, ModelBasedOp::Winslett),
    (ModelBasedOp::Satoh, ModelBasedOp::Winslett),
    (ModelBasedOp::Satoh, ModelBasedOp::Weber),
    (ModelBasedOp::Satoh, ModelBasedOp::Borgida),
    (ModelBasedOp::Borgida, ModelBasedOp::Winslett),
];

/// All model sets of the six operators on one `(T,P)` pair, over the
/// union alphabet.
pub fn all_operator_models(t: &Formula, p: &Formula) -> Vec<(ModelBasedOp, ModelSet)> {
    let alpha = Alphabet::of_formulas([t, p]);
    ModelBasedOp::ALL
        .iter()
        .map(|&op| (op, revise_on(op, &alpha, t, p)))
        .collect()
}

/// Check every Figure 1 edge on `(T,P)`. Returns the violated edges
/// (empty = lattice respected).
pub fn check_containments(t: &Formula, p: &Formula) -> Vec<(ModelBasedOp, ModelBasedOp)> {
    let sets = all_operator_models(t, p);
    let get = |op: ModelBasedOp| &sets.iter().find(|(o, _)| *o == op).unwrap().1;
    FIGURE1_EDGES
        .iter()
        .copied()
        .filter(|&(sub, sup)| !get(sub).is_subset_of(get(sup)))
        .collect()
}

/// The full observed containment matrix: `matrix[i][j]` is true when
/// `M(T *opᵢ P) ⊆ M(T *opⱼ P)` for this instance.
pub fn containment_matrix(t: &Formula, p: &Formula) -> [[bool; 6]; 6] {
    let sets = all_operator_models(t, p);
    let mut out = [[false; 6]; 6];
    for (i, (_, a)) in sets.iter().enumerate() {
        for (j, (_, b)) in sets.iter().enumerate() {
            out[i][j] = a.is_subset_of(b);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use revkb_logic::Var;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn paper_example_respects_lattice() {
        let t = v(0).and(v(1)).and(v(2));
        let p = v(0)
            .not()
            .and(v(1).not())
            .and(v(3).not())
            .or(v(2).not().and(v(1)).and(v(0).xor(v(3))));
        assert!(check_containments(&t, &p).is_empty());
    }

    #[test]
    fn random_instances_respect_lattice() {
        let mut seed = 17u64;
        let mut rnd = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        fn build(rnd: &mut impl FnMut() -> u32, depth: u32, nv: u32) -> Formula {
            let r = rnd();
            if depth == 0 || r.is_multiple_of(6) {
                return Formula::lit(Var(r % nv), r & 1 == 0);
            }
            let a = build(rnd, depth - 1, nv);
            let b = build(rnd, depth - 1, nv);
            match r % 4 {
                0 => a.and(b),
                1 => a.or(b),
                2 => a.xor(b),
                _ => a.implies(b),
            }
        }
        for _ in 0..200 {
            let t = build(&mut rnd, 3, 5);
            let p = build(&mut rnd, 3, 5);
            let violations = check_containments(&t, &p);
            assert!(
                violations.is_empty(),
                "Figure 1 violated on {t:?} * {p:?}: {violations:?}"
            );
        }
    }

    #[test]
    fn strictness_witnesses_exist() {
        // The paper's example separates Dalal ⊊ Forbus ⊊/= …: verify
        // at least that some instance makes each containment strict
        // somewhere (so the lattice is not an equality collapse).
        let t = v(0).and(v(1)).and(v(2));
        let p = v(0)
            .not()
            .and(v(1).not())
            .and(v(3).not())
            .or(v(2).not().and(v(1)).and(v(0).xor(v(3))));
        let sets = all_operator_models(&t, &p);
        let get = |op: ModelBasedOp| sets.iter().find(|(o, _)| *o == op).unwrap().1.len();
        assert!(get(ModelBasedOp::Dalal) < get(ModelBasedOp::Forbus));
        assert!(get(ModelBasedOp::Forbus) < get(ModelBasedOp::Winslett));
        assert!(get(ModelBasedOp::Satoh) < get(ModelBasedOp::Weber));
    }

    #[test]
    fn matrix_diagonal_is_true() {
        let t = v(0);
        let p = v(1);
        let m = containment_matrix(&t, &p);
        for (i, row) in m.iter().enumerate() {
            assert!(row[i]);
        }
    }
}
