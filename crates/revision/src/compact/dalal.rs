//! Theorem 3.4: Dalal's operator is query-compactable.
//!
//! With `X` the alphabet of `T` and `P`, `Y` a fresh copy of `X` and
//! `k = k_{T,P}` the minimum distance between models of `T` and models
//! of `P`:
//!
//! ```text
//! T' = T[X/Y] ∧ P ∧ EXA(k, X, Y, W)
//! ```
//!
//! is query-equivalent to `T *D P`: a model of `T'` holds a `P`-model
//! on `X`, a `T`-model on `Y`, and the `EXA` circuit pins their
//! distance to exactly `k` — so the `X`-projections of `M(T')` are
//! exactly the models of `T *D P`. The size is `O(|T| + |P| +
//! n log n)`, polynomial as Theorem 3.4 requires.

use crate::compact::rep::CompactRep;
use crate::distance::{min_distance_over, union_vars};
use revkb_circuits::exa;
use revkb_logic::{Formula, VarSupply};
use revkb_sat::supply_above;

/// Build Theorem 3.4's query-equivalent representation of `T *D P`.
///
/// Degenerate conventions (the paper sets these cases aside as
/// trivially compactable): unsatisfiable `P` yields `⊥`; unsatisfiable
/// `T` (with satisfiable `P`) yields `P`.
pub fn dalal_compact(t: &Formula, p: &Formula, supply: &mut impl VarSupply) -> CompactRep {
    let _span = revkb_obs::span("revision.phase.distance_circuit");
    let xs = union_vars(t, p);
    let k = match min_distance_over(t, p, &xs) {
        Some(k) => k,
        None => {
            let formula = if revkb_sat::satisfiable(p) {
                p.clone()
            } else {
                Formula::False
            };
            return CompactRep::query(formula, xs);
        }
    };
    let ys: Vec<_> = xs.iter().map(|_| supply.fresh_var()).collect();
    let t_on_y = t.rename(&xs, &ys);
    let exa_k = exa(k, &xs, &ys, supply);
    CompactRep::query(t_on_y.and(p.clone()).and(exa_k), xs)
}

/// Convenience wrapper choosing a fresh-variable watermark above both
/// formulas automatically.
///
/// ```
/// use revkb_revision::compact::dalal::dalal_compact_auto;
/// use revkb_logic::{Formula, Var};
/// let t = Formula::var(Var(0)).and(Formula::var(Var(1)));
/// let p = Formula::var(Var(0)).not().or(Formula::var(Var(1)).not());
/// let rep = dalal_compact_auto(&t, &p);   // T[X/Y] ∧ P ∧ EXA(1,X,Y,W)
/// assert!(rep.entails(&Formula::var(Var(0)).or(Formula::var(Var(1)))));
/// assert!(!rep.logical);                   // query equivalence only
/// ```
pub fn dalal_compact_auto(t: &Formula, p: &Formula) -> CompactRep {
    let mut supply = supply_above([t, p]);
    dalal_compact(t, p, &mut supply)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalence::query_equivalent_enum;
    use crate::semantic::{revise, ModelBasedOp};
    use revkb_logic::Var;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn paper_example_dalal_rep() {
        // §2.2.2 example: T *D P selects exactly N1 = {a,b}.
        let t = v(0).and(v(1)).and(v(2));
        let p = v(0)
            .not()
            .and(v(1).not())
            .and(v(3).not())
            .or(v(2).not().and(v(1)).and(v(0).xor(v(3))));
        let rep = dalal_compact_auto(&t, &p);
        // Query equivalence against the semantic oracle.
        let oracle = revise(ModelBasedOp::Dalal, &t, &p);
        assert!(query_equivalent_enum(
            &rep.formula,
            &oracle.to_dnf(),
            &rep.base
        ));
        // Spot queries: a ∧ b holds in N1; c does not.
        assert!(rep.entails(&v(0).and(v(1))));
        assert!(rep.entails(&v(2).not()));
    }

    #[test]
    fn consistent_case_reduces_to_conjunction() {
        let t = v(0).or(v(1));
        let p = v(0).not();
        let rep = dalal_compact_auto(&t, &p);
        // T ∧ P ≡ ¬g ∧ b: query-equivalent over {g, b}.
        assert!(query_equivalent_enum(
            &rep.formula,
            &t.clone().and(p.clone()),
            &rep.base
        ));
        assert!(rep.entails(&v(1)));
    }

    #[test]
    fn degenerate_cases() {
        let unsat = v(0).and(v(0).not());
        let p = v(1);
        let rep = dalal_compact_auto(&unsat, &p);
        assert!(revkb_sat::equivalent(&rep.formula, &p));
        let rep2 = dalal_compact_auto(&p, &unsat);
        assert!(!revkb_sat::satisfiable(&rep2.formula));
    }

    #[test]
    fn size_polynomial_in_inputs() {
        // |T'| should stay well under quadratic in n for a chain
        // family T = ⋀ xᵢ, P = ¬x₁ ∨ … (n growing).
        let mut sizes = Vec::new();
        for n in [4u32, 8, 16] {
            let t = Formula::and_all((0..n).map(v));
            let p = Formula::or_all((0..n).map(|i| v(i).not()));
            let rep = dalal_compact_auto(&t, &p);
            sizes.push(rep.size());
        }
        for w in sizes.windows(2) {
            assert!(
                (w[1] as f64) < 4.0 * w[0] as f64,
                "Dalal rep growth too steep: {sizes:?}"
            );
        }
    }

    #[test]
    fn rep_has_aux_letters_but_base_queries_work() {
        let t = v(0).and(v(1));
        let p = v(0).not().or(v(1).not());
        let rep = dalal_compact_auto(&t, &p);
        assert!(!rep.aux_vars().is_empty());
        assert!(!rep.logical);
        // k = 1: exactly one letter flips.
        assert!(rep.entails(&v(0).or(v(1))));
        assert!(rep.entails(&v(0).and(v(1)).not()));
    }
}
