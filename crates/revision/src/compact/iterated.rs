//! Sections 5–6: compact representations for *iterated* revision.
//!
//! **Unbounded case (Section 5):**
//! - [`dalal_iterated`] — Theorem 5.1's `Φₘ`: one fresh copy `Yᵢ` of
//!   the alphabet per step, chained `EXA(kᵢ, Yᵢ, Yᵢ₊₁, Wᵢ)` distance
//!   constraints, with each `kᵢ` computed offline against the running
//!   representation.
//! - [`weber_iterated`] — Corollary 5.2's formula (10): substitute the
//!   running `Ωᵢ` by fresh letters `Zᵢ`, conjoin `Pⁱ`.
//!
//! **Bounded case (Section 6):** formulas (12)–(16) express one
//! bounded revision step as a universally quantified condition over
//! the (constant-size) alphabet of `Pⁱ`, which [`revkb_qbf::Qbf::expand`]
//! turns into a propositional formula (Theorem 6.3):
//! - [`winslett_iterated_qbf`] / [`winslett_iterated`] — formulas
//!   (15)/(16); Borgida shares the construction (Cor 6.4).
//! - [`forbus_iterated`] — formula (14), with the `DIST < DIST`
//!   comparator realised by the gate-free bounded-alphabet circuits.
//! - [`satoh_iterated`] — **deviation from the paper**: formula (13)
//!   as printed quantifies the competing `T`-model only over `V(P)`
//!   while sharing the remaining letters with the outer model, which
//!   misses competitors that differ from the outer model outside
//!   `V(P)`; [`satoh_qbf_paper`] builds the printed formula and the
//!   test `paper_formula_13_counterexample` exhibits concrete `T`, `P`
//!   on which it is *not* query-equivalent to `T *S P`. We instead
//!   compute `δᵢ` offline (as Theorem 3.4 computes `k` offline) and
//!   encode Satoh's step as
//!   `Rᵢ₋₁[V(Pⁱ)/Yᵢ] ∧ Pⁱ ∧ ⋁_{S ∈ δᵢ} (differ(V(Pⁱ),Yᵢ) = S)`,
//!   which keeps one copy of the running representation per step and
//!   stays polynomial in `|T| + m`.

use crate::compact::rep::CompactRep;
use crate::distance::{delta_sets_over, min_distance_over, omega_over};
use revkb_circuits::{distance_less_direct, exa};
use revkb_logic::{Formula, Substitution, Var, VarSupply};
use revkb_qbf::Qbf;
use revkb_sat::supply_above;
use std::collections::BTreeSet;

/// `V(T) ∪ V(P¹) ∪ … ∪ V(Pᵐ)` in `Var` order.
pub fn base_vars(t: &Formula, ps: &[Formula]) -> Vec<Var> {
    let mut vars = t.vars();
    for p in ps {
        p.collect_vars(&mut vars);
    }
    vars.into_iter().collect()
}

/// The paper's `F_⊆(S₁,S₂,S₃,S₄) = ⋀ⱼ ((s₁ⱼ ≢ s₂ⱼ) → (s₃ⱼ ≢ s₄ⱼ))`:
/// the letters on which `S₁` and `S₂` differ are among those on which
/// `S₃` and `S₄` differ.
pub fn f_subset(s1: &[Var], s2: &[Var], s3: &[Var], s4: &[Var]) -> Formula {
    assert!(s1.len() == s2.len() && s2.len() == s3.len() && s3.len() == s4.len());
    Formula::and_all((0..s1.len()).map(|j| {
        Formula::var(s1[j])
            .xor(Formula::var(s2[j]))
            .implies(Formula::var(s3[j]).xor(Formula::var(s4[j])))
    }))
}

/// "The difference set between `xs` and `ys` is exactly `S`."
fn differ_exactly(xs: &[Var], ys: &[Var], s: &BTreeSet<Var>) -> Formula {
    Formula::and_all(xs.iter().zip(ys).map(|(&x, &y)| {
        if s.contains(&x) {
            Formula::var(x).xor(Formula::var(y))
        } else {
            Formula::var(x).iff(Formula::var(y))
        }
    }))
}

fn degenerate_step(cur: &Formula, p: &Formula) -> Option<Formula> {
    if !revkb_sat::satisfiable(p) {
        return Some(Formula::False);
    }
    if !revkb_sat::satisfiable(cur) {
        return Some(p.clone());
    }
    None
}

/// Theorem 5.1: `Φₘ`, the query-equivalent representation of
/// `T *D P¹ *D … *D Pᵐ`. Polynomial in `|T| + Σ|Pⁱ|`.
pub fn dalal_iterated(t: &Formula, ps: &[Formula], supply: &mut impl VarSupply) -> CompactRep {
    let xs = base_vars(t, ps);
    let mut cur = t.clone();
    for p in ps {
        if let Some(f) = degenerate_step(&cur, p) {
            cur = f;
            continue;
        }
        let k = min_distance_over(&cur, p, &xs).expect("both sides satisfiable");
        let ys: Vec<Var> = xs.iter().map(|_| supply.fresh_var()).collect();
        let prev = cur.rename(&xs, &ys);
        let exa_k = exa(k, &xs, &ys, supply);
        cur = prev.and(p.clone()).and(exa_k);
    }
    CompactRep::query(cur, xs)
}

/// Corollary 5.2 (formula 10): the query-equivalent representation of
/// `T *Web P¹ *Web … *Web Pᵐ`, size linear in `|T| + Σ|Pⁱ|`.
/// `delta_limit` caps each step's minimal-difference enumeration.
pub fn weber_iterated(
    t: &Formula,
    ps: &[Formula],
    delta_limit: usize,
    supply: &mut impl VarSupply,
) -> Option<CompactRep> {
    let xs = base_vars(t, ps);
    let mut cur = t.clone();
    for p in ps {
        if let Some(f) = degenerate_step(&cur, p) {
            cur = f;
            continue;
        }
        let omega: Vec<Var> = omega_over(&cur, p, &xs, delta_limit)?.into_iter().collect();
        let zs: Vec<Var> = omega.iter().map(|_| supply.fresh_var()).collect();
        cur = cur.rename(&omega, &zs).and(p.clone());
    }
    Some(CompactRep::query(cur, xs))
}

/// One Winslett step as a QBF (formulas 12/15/16): given the running
/// representation `prev` (over base + auxiliary letters), produce
/// `prev[V(P)/Y] ∧ P ∧ ∀Z.((F_P(Z) ∧ F_⊆(Z,Y,Y,V(P))) → F_⊆(V(P),Y,Y,Z))`.
fn winslett_step(prev: Qbf, p: &Formula, supply: &mut impl VarSupply) -> Qbf {
    let pvars: Vec<Var> = p.vars().into_iter().collect();
    let ys: Vec<Var> = pvars.iter().map(|_| supply.fresh_var()).collect();
    let zs: Vec<Var> = pvars.iter().map(|_| supply.fresh_var()).collect();
    let renamed = prev.substitute(&Substitution::renaming(&pvars, &ys));
    let f_p_z = p.rename(&pvars, &zs);
    let premise = f_p_z.and(f_subset(&zs, &ys, &ys, &pvars));
    let conclusion = f_subset(&pvars, &ys, &ys, &zs);
    renamed
        .and(Qbf::prop(p.clone()))
        .and(Qbf::forall(zs, Qbf::prop(premise.implies(conclusion))))
}

/// Formulas (15)/(16): the query-equivalent QBF for
/// `T *Win P¹ *Win … *Win Pᵐ` (also Borgida's upper bound, Cor 6.4).
pub fn winslett_iterated_qbf(t: &Formula, ps: &[Formula], supply: &mut impl VarSupply) -> Qbf {
    let mut cur = Qbf::prop(t.clone());
    for p in ps {
        cur = winslett_step(cur, p, supply);
    }
    cur
}

/// Theorem 6.1 + 6.3: the propositional expansion of
/// [`winslett_iterated_qbf`], polynomial in `|T| + m` for bounded
/// `|Pⁱ|`.
pub fn winslett_iterated(t: &Formula, ps: &[Formula], supply: &mut impl VarSupply) -> CompactRep {
    let q = winslett_iterated_qbf(t, ps, supply);
    CompactRep::query(q.expand(), base_vars(t, ps))
}

/// One Forbus step (formula 14 with gate-free bounded-alphabet
/// distance comparison):
/// `prev[V(P)/Y] ∧ P ∧ ∀Z.(F_P(Z) → ¬ DIST(Z,Y) < DIST(V(P),Y))`.
fn forbus_step(prev: Qbf, p: &Formula, supply: &mut impl VarSupply) -> Qbf {
    let pvars: Vec<Var> = p.vars().into_iter().collect();
    let ys: Vec<Var> = pvars.iter().map(|_| supply.fresh_var()).collect();
    let zs: Vec<Var> = pvars.iter().map(|_| supply.fresh_var()).collect();
    let renamed = prev.substitute(&Substitution::renaming(&pvars, &ys));
    let f_p_z = p.rename(&pvars, &zs);
    let closer = distance_less_direct(&zs, &pvars, &ys);
    renamed
        .and(Qbf::prop(p.clone()))
        .and(Qbf::forall(zs, Qbf::prop(f_p_z.implies(closer.not()))))
}

/// Theorem 6.2 (Forbus part): the query-equivalent propositional
/// representation of `T *F P¹ *F … *F Pᵐ`, polynomial in `|T| + m`
/// for bounded `|Pⁱ|`.
pub fn forbus_iterated(t: &Formula, ps: &[Formula], supply: &mut impl VarSupply) -> CompactRep {
    let mut cur = Qbf::prop(t.clone());
    for p in ps {
        cur = forbus_step(cur, p, supply);
    }
    CompactRep::query(cur.expand(), base_vars(t, ps))
}

/// The paper's formula (13), verbatim, for a *single* Satoh revision:
///
/// ```text
/// T[V(P)/Y] ∧ P ∧ ∀W.∀Z.((F_P(Z) ∧ T[V(P)/W] ∧ F_⊆(Z,W,Y,V(P)))
///                          → F_⊆(V(P),Y,W,Z))
/// ```
///
/// **Known issue (documented reproduction finding):** the universally
/// quantified competing `T`-model is only re-assigned on `V(P)` and
/// shares every other letter with the outer model, so competitors that
/// differ from the outer model outside `V(P)` are missed and the
/// formula can accept models Satoh rejects. See the test
/// `paper_formula_13_counterexample`.
pub fn satoh_qbf_paper(t: &Formula, p: &Formula, supply: &mut impl VarSupply) -> Qbf {
    let pvars: Vec<Var> = p.vars().into_iter().collect();
    let ys: Vec<Var> = pvars.iter().map(|_| supply.fresh_var()).collect();
    let ws: Vec<Var> = pvars.iter().map(|_| supply.fresh_var()).collect();
    let zs: Vec<Var> = pvars.iter().map(|_| supply.fresh_var()).collect();
    let t_y = t.rename(&pvars, &ys);
    let t_w = t.rename(&pvars, &ws);
    let f_p_z = p.rename(&pvars, &zs);
    let premise = f_p_z.and(t_w).and(f_subset(&zs, &ws, &ys, &pvars));
    let conclusion = f_subset(&pvars, &ys, &ws, &zs);
    Qbf::prop(t_y.and(p.clone())).and(Qbf::forall(
        ws,
        Qbf::forall(zs, Qbf::prop(premise.implies(conclusion))),
    ))
}

/// One Satoh step of our corrected construction: `δᵢ` (the ⊆-minimal
/// global difference sets between the running theory and `Pⁱ`,
/// computed offline with the SAT solver, all inside `V(Pⁱ)`) is baked
/// into the formula:
///
/// ```text
/// prev[V(P)/Y] ∧ P ∧ ⋁_{S ∈ δᵢ} differ(V(P), Y) = S
/// ```
fn satoh_step(
    prev: &Formula,
    p: &Formula,
    xs: &[Var],
    delta_limit: usize,
    supply: &mut impl VarSupply,
) -> Option<Formula> {
    if let Some(f) = degenerate_step(prev, p) {
        return Some(f);
    }
    let delta = delta_sets_over(prev, p, xs, delta_limit)?;
    let pvars: Vec<Var> = p.vars().into_iter().collect();
    let ys: Vec<Var> = pvars.iter().map(|_| supply.fresh_var()).collect();
    let renamed = prev.rename(&pvars, &ys);
    let selector = Formula::or_all(delta.iter().map(|s| differ_exactly(&pvars, &ys, s)));
    Some(renamed.and(p.clone()).and(selector))
}

/// Query-equivalent representation of `T *S P¹ *S … *S Pᵐ` for
/// bounded `|Pⁱ|` (Theorem 6.2, via the corrected construction
/// documented at module level). Polynomial in `|T| + m`: each step
/// adds `O(2^k · k + |Pⁱ|)` to the running formula.
pub fn satoh_iterated(
    t: &Formula,
    ps: &[Formula],
    delta_limit: usize,
    supply: &mut impl VarSupply,
) -> Option<CompactRep> {
    let xs = base_vars(t, ps);
    let mut cur = t.clone();
    for p in ps {
        cur = satoh_step(&cur, p, &xs, delta_limit, supply)?;
    }
    Some(CompactRep::query(cur, xs))
}

/// Iterated Borgida (Corollary 6.4's upper bound, stepwise): each step
/// is the conjunction when consistent with the running representation,
/// and a Winslett step (formula 16) otherwise. Query-equivalent,
/// polynomial in `|T| + m` for bounded `|Pⁱ|`.
pub fn borgida_iterated(t: &Formula, ps: &[Formula], supply: &mut impl VarSupply) -> CompactRep {
    let base = base_vars(t, ps);
    let mut cur = Qbf::prop(t.clone());
    for p in ps {
        let consistent = {
            let probe = cur.clone().and(Qbf::prop(p.clone()));
            revkb_sat::satisfiable(&probe.expand())
        };
        if consistent {
            cur = cur.and(Qbf::prop(p.clone()));
        } else {
            cur = winslett_step(cur, p, supply);
        }
    }
    CompactRep::query(cur.expand(), base)
}

/// Convenience: iterated Borgida with an automatic supply.
pub fn borgida_iterated_auto(t: &Formula, ps: &[Formula]) -> CompactRep {
    let mut supply = supply_above(std::iter::once(t).chain(ps));
    borgida_iterated(t, ps, &mut supply)
}

/// Convenience: iterated Dalal with an automatic supply.
pub fn dalal_iterated_auto(t: &Formula, ps: &[Formula]) -> CompactRep {
    let mut supply = supply_above(std::iter::once(t).chain(ps));
    dalal_iterated(t, ps, &mut supply)
}

/// Convenience: iterated Weber with an automatic supply.
pub fn weber_iterated_auto(t: &Formula, ps: &[Formula]) -> Option<CompactRep> {
    let mut supply = supply_above(std::iter::once(t).chain(ps));
    weber_iterated(t, ps, 100_000, &mut supply)
}

/// Convenience: iterated Winslett with an automatic supply.
pub fn winslett_iterated_auto(t: &Formula, ps: &[Formula]) -> CompactRep {
    let mut supply = supply_above(std::iter::once(t).chain(ps));
    winslett_iterated(t, ps, &mut supply)
}

/// Convenience: iterated Forbus with an automatic supply.
pub fn forbus_iterated_auto(t: &Formula, ps: &[Formula]) -> CompactRep {
    let mut supply = supply_above(std::iter::once(t).chain(ps));
    forbus_iterated(t, ps, &mut supply)
}

/// Convenience: iterated Satoh with an automatic supply.
pub fn satoh_iterated_auto(t: &Formula, ps: &[Formula]) -> Option<CompactRep> {
    let mut supply = supply_above(std::iter::once(t).chain(ps));
    satoh_iterated(t, ps, 100_000, &mut supply)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalence::query_equivalent_enum;
    use crate::semantic::{revise_iterated_on, ModelBasedOp};
    use revkb_logic::Alphabet;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    fn check_iterated(op: ModelBasedOp, rep: &CompactRep, t: &Formula, ps: &[Formula]) {
        let alpha = Alphabet::new(rep.base.clone());
        let oracle = revise_iterated_on(op, &alpha, t, ps);
        assert!(
            query_equivalent_enum(&rep.formula, &oracle.to_dnf(), &rep.base),
            "iterated {} mismatch for {t:?} * {ps:?}",
            op.name()
        );
    }

    #[test]
    fn paper_section_5_example_weber() {
        // §5 example: T = x1∧…∧x5, P¹ = ¬x1 ∨ ¬x2, P² = ¬x5.
        // T *Web P¹ *Web P² has models {x1,x3,x4},{x2,x3,x4},{x3,x4}.
        let t = Formula::and_all((0..5).map(v));
        let p1 = v(0).not().or(v(1).not());
        let p2 = v(4).not();
        let ps = vec![p1, p2];
        let rep = weber_iterated_auto(&t, &ps).unwrap();
        check_iterated(ModelBasedOp::Weber, &rep, &t, &ps);
        let alpha = Alphabet::new(rep.base.clone());
        let oracle = revise_iterated_on(ModelBasedOp::Weber, &alpha, &t, &ps);
        assert_eq!(oracle.len(), 3);
    }

    #[test]
    fn dalal_iterated_two_steps() {
        let t = Formula::and_all((0..4).map(v));
        let p1 = v(0).not().or(v(1).not());
        let p2 = v(3).not();
        let ps = vec![p1, p2];
        let rep = dalal_iterated_auto(&t, &ps);
        check_iterated(ModelBasedOp::Dalal, &rep, &t, &ps);
    }

    #[test]
    fn dalal_iterated_single_step_matches_thm_3_4() {
        let t = v(0).and(v(1));
        let p = v(0).not().or(v(1).not());
        let rep_seq = dalal_iterated_auto(&t, std::slice::from_ref(&p));
        let rep_one = crate::compact::dalal::dalal_compact_auto(&t, &p);
        assert!(query_equivalent_enum(
            &rep_seq.formula,
            &rep_one.formula,
            &rep_seq.base
        ));
    }

    #[test]
    fn winslett_iterated_section_6_example() {
        // §6 example: T = x1∧…∧x5, P = ¬x1: single model
        // {x2,x3,x4,x5}.
        let t = Formula::and_all((0..5).map(v));
        let p = v(0).not();
        let ps = vec![p];
        let rep = winslett_iterated_auto(&t, &ps);
        check_iterated(ModelBasedOp::Winslett, &rep, &t, &ps);
        assert!(rep.entails(&v(1).and(v(2)).and(v(3)).and(v(4))));
        assert!(rep.entails(&v(0).not()));
    }

    #[test]
    fn winslett_iterated_multi_step() {
        let t = Formula::and_all((0..4).map(v));
        let ps = vec![v(0).not(), v(1).not().or(v(0)), v(2).xor(v(3))];
        let rep = winslett_iterated_auto(&t, &ps);
        check_iterated(ModelBasedOp::Winslett, &rep, &t, &ps);
    }

    #[test]
    fn forbus_iterated_multi_step() {
        let t = Formula::and_all((0..4).map(v));
        let ps = vec![v(0).not().or(v(1).not()), v(2).not(), v(0).xor(v(1))];
        let rep = forbus_iterated_auto(&t, &ps);
        check_iterated(ModelBasedOp::Forbus, &rep, &t, &ps);
    }

    #[test]
    fn borgida_iterated_mixed_consistency() {
        // A sequence where some steps are consistent (conjunction) and
        // some are not (Winslett step): Borgida must switch per step.
        let t = Formula::and_all((0..3).map(v));
        let ps = vec![
            v(0).not(),          // inconsistent with T: update step
            v(1).not().or(v(2)), // consistent: conjunction step
            v(1).not(),          // inconsistent: update step
        ];
        let rep = borgida_iterated_auto(&t, &ps);
        check_iterated(ModelBasedOp::Borgida, &rep, &t, &ps);
    }

    #[test]
    fn borgida_iterated_matches_winslett_when_all_inconsistent() {
        let t = Formula::and_all((0..3).map(v));
        let ps = vec![v(0).not(), v(1).not()];
        let b = borgida_iterated_auto(&t, &ps);
        let w = winslett_iterated_auto(&t, &ps);
        assert!(query_equivalent_enum(&b.formula, &w.formula, &b.base));
    }

    #[test]
    fn satoh_iterated_multi_step() {
        let t = Formula::and_all((0..4).map(v));
        let ps = vec![v(0).not().or(v(1).not()), v(2).not().or(v(3).not())];
        let rep = satoh_iterated_auto(&t, &ps).unwrap();
        check_iterated(ModelBasedOp::Satoh, &rep, &t, &ps);
    }

    #[test]
    fn satoh_single_step_matches_semantic() {
        let t = v(0).iff(v(1)).and(v(2));
        let p = v(0).xor(v(2));
        let rep = satoh_iterated_auto(&t, std::slice::from_ref(&p)).unwrap();
        check_iterated(ModelBasedOp::Satoh, &rep, &t, std::slice::from_ref(&p));
    }

    /// Reproduction finding: the paper's formula (13) is not query-
    /// equivalent to `T *S P` in general. With
    /// `T = (q∧a∧b₁) ∨ (¬q∧¬a∧b₁∧b₂)` and `P = ¬b₁ ∧ ¬b₂`:
    /// `δ(T,P) = {{b₁}}`, so `T *S P` has the single model `{q,a}`;
    /// but formula (13) also accepts `∅` because the competing
    /// `T`-model `{q,a,b₁}` differs from `∅` on `q,a ∉ V(P)` and the
    /// `∀W` quantifier cannot reach it.
    #[test]
    fn paper_formula_13_counterexample() {
        let (q, a, b1, b2) = (v(0), v(1), v(2), v(3));
        let t = q.clone().and(a.clone()).and(b1.clone()).or(q
            .clone()
            .not()
            .and(a.clone().not())
            .and(b1.clone())
            .and(b2.clone()));
        let p = b1.clone().not().and(b2.clone().not());
        let base: Vec<Var> = vec![Var(0), Var(1), Var(2), Var(3)];

        // Ground truth: T *S P = {{q,a}}.
        let alpha = Alphabet::new(base.clone());
        let oracle = crate::semantic::revise_on(ModelBasedOp::Satoh, &alpha, &t, &p);
        assert_eq!(oracle.len(), 1);

        // The paper's formula (13).
        let mut supply = supply_above([&t, &p]);
        let qbf = satoh_qbf_paper(&t, &p, &mut supply);
        let expanded = qbf.expand();
        assert!(
            !query_equivalent_enum(&expanded, &oracle.to_dnf(), &base),
            "formula (13) unexpectedly agreed — counterexample no longer applies"
        );
        // Specifically: it accepts the empty model, which Satoh rejects.
        let projected =
            revkb_sat::models_projected(&expanded, &base, 1 << 16).expect("projection small");
        assert!(projected.iter().any(|m| m.is_empty()));
        assert!(!oracle.contains_mask(0));

        // Our corrected construction agrees with the oracle.
        let rep = satoh_iterated_auto(&t, std::slice::from_ref(&p)).unwrap();
        assert!(query_equivalent_enum(&rep.formula, &oracle.to_dnf(), &base));
    }

    #[test]
    fn iterated_growth_is_additive() {
        // Size of the iterated reps should grow roughly linearly in m
        // for bounded P.
        let t = Formula::and_all((0..6).map(v));
        let ps: Vec<Formula> = (0..4).map(|i| v(i % 6).not()).collect();
        let mut sizes = Vec::new();
        for m in 1..=4 {
            let rep = dalal_iterated_auto(&t, &ps[..m]);
            sizes.push(rep.size());
        }
        let increments: Vec<i64> = sizes
            .windows(2)
            .map(|w| w[1] as i64 - w[0] as i64)
            .collect();
        let max_inc = *increments.iter().max().unwrap();
        let min_inc = *increments.iter().min().unwrap();
        assert!(
            max_inc <= 3 * min_inc.max(1),
            "increments not roughly constant: {sizes:?}"
        );
        // Weber's per-step growth is tiny (just |Pⁱ|).
        let mut weber_sizes = Vec::new();
        for m in 1..=4 {
            let rep = weber_iterated_auto(&t, &ps[..m]).unwrap();
            weber_sizes.push(rep.size());
        }
        for w in weber_sizes.windows(2) {
            assert!(w[1] - w[0] <= 4, "Weber growth too steep: {weber_sizes:?}");
        }
    }

    #[test]
    fn empty_sequence_is_identity() {
        let t = v(0).and(v(1));
        let rep = dalal_iterated_auto(&t, &[]);
        assert!(revkb_sat::equivalent(&rep.formula, &t));
        let repw = weber_iterated_auto(&t, &[]).unwrap();
        assert!(revkb_sat::equivalent(&repw.formula, &t));
    }

    #[test]
    fn degenerate_steps() {
        let t = v(0);
        let unsat = v(1).and(v(1).not());
        let ps = vec![unsat, v(2)];
        // After an unsatisfiable revision the next step revises ⊥,
        // which by convention yields P.
        let rep = dalal_iterated_auto(&t, &ps);
        assert!(revkb_sat::equivalent(&rep.formula, &v(2)));
    }
}
