//! Theorem 3.5: Weber's operator is query-compactable.
//!
//! With `Ω = ⋃δ(T,P)` (every letter appearing in some minimal
//! difference) and `Z` a fresh copy of `Ω`:
//!
//! ```text
//! T' = T[Ω/Z] ∧ P
//! ```
//!
//! is query-equivalent to `T *Web P`. The representation only adds
//! `|P|` to the size of `T` — the paper notes it is even more compact
//! than Dalal's.

use crate::compact::rep::CompactRep;
use crate::distance::{omega_over, union_vars};
use revkb_logic::{Formula, VarSupply};
use revkb_sat::supply_above;

/// Build Theorem 3.5's query-equivalent representation of `T *Web P`.
///
/// `delta_limit` caps the enumeration of minimal difference sets used
/// to compute `Ω` (there can be exponentially many; their union is
/// what matters). Returns `None` if the cap is hit.
///
/// Degenerate conventions as for
/// [`crate::compact::dalal::dalal_compact`].
pub fn weber_compact(
    t: &Formula,
    p: &Formula,
    delta_limit: usize,
    supply: &mut impl VarSupply,
) -> Option<CompactRep> {
    let xs = union_vars(t, p);
    if !revkb_sat::satisfiable(p) {
        return Some(CompactRep::query(Formula::False, xs));
    }
    if !revkb_sat::satisfiable(t) {
        return Some(CompactRep::query(p.clone(), xs));
    }
    let omega: Vec<_> = omega_over(t, p, &xs, delta_limit)?.into_iter().collect();
    let zs: Vec<_> = omega.iter().map(|_| supply.fresh_var()).collect();
    let t_sub = t.rename(&omega, &zs);
    Some(CompactRep::query(t_sub.and(p.clone()), xs))
}

/// Convenience wrapper with an automatic fresh-variable watermark and
/// a generous enumeration cap.
pub fn weber_compact_auto(t: &Formula, p: &Formula) -> Option<CompactRep> {
    let mut supply = supply_above([t, p]);
    weber_compact(t, p, 100_000, &mut supply)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalence::query_equivalent_enum;
    use crate::semantic::{revise, ModelBasedOp};
    use revkb_logic::Var;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn paper_example_weber_rep() {
        // §2.2.2 example: Ω = {a,b,c} and T *Web P ≡ P.
        let t = v(0).and(v(1)).and(v(2));
        let p = v(0)
            .not()
            .and(v(1).not())
            .and(v(3).not())
            .or(v(2).not().and(v(1)).and(v(0).xor(v(3))));
        let rep = weber_compact_auto(&t, &p).unwrap();
        let oracle = revise(ModelBasedOp::Weber, &t, &p);
        assert!(query_equivalent_enum(
            &rep.formula,
            &oracle.to_dnf(),
            &rep.base
        ));
        // Here Weber's revision coincides with P.
        assert!(query_equivalent_enum(&rep.formula, &p, &rep.base));
    }

    #[test]
    fn consistent_case() {
        let t = v(0).or(v(1));
        let p = v(0).not();
        // Ω = ∅, so T' = T ∧ P.
        let rep = weber_compact_auto(&t, &p).unwrap();
        assert!(query_equivalent_enum(
            &rep.formula,
            &t.clone().and(p.clone()),
            &rep.base
        ));
    }

    #[test]
    fn size_linear_in_t() {
        // |T'| = |T| + |P|: substitution does not change size.
        for n in [4u32, 8, 16] {
            let t = Formula::and_all((0..n).map(v));
            let p = v(0).not();
            let rep = weber_compact_auto(&t, &p).unwrap();
            assert_eq!(rep.size(), t.size() + p.size());
        }
    }

    #[test]
    fn random_cross_check_with_oracle() {
        let mut seed = 99u64;
        let mut rnd = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        fn build(rnd: &mut impl FnMut() -> u32, depth: u32, nv: u32) -> Formula {
            let r = rnd();
            if depth == 0 || r.is_multiple_of(6) {
                return Formula::lit(Var(r % nv), r & 1 == 0);
            }
            let a = build(rnd, depth - 1, nv);
            let b = build(rnd, depth - 1, nv);
            match r % 4 {
                0 => a.and(b),
                1 => a.or(b),
                2 => a.xor(b),
                _ => a.implies(b),
            }
        }
        let mut checked = 0;
        for _ in 0..40 {
            let t = build(&mut rnd, 3, 4);
            let p = build(&mut rnd, 3, 4);
            if !revkb_sat::satisfiable(&t) || !revkb_sat::satisfiable(&p) {
                continue;
            }
            let rep = weber_compact_auto(&t, &p).unwrap();
            let oracle = revise(ModelBasedOp::Weber, &t, &p);
            assert!(
                query_equivalent_enum(&rep.formula, &oracle.to_dnf(), &rep.base),
                "Weber rep mismatch for {t:?} * {p:?}"
            );
            checked += 1;
        }
        assert!(checked >= 10, "too few satisfiable samples");
    }

    #[test]
    fn degenerate_cases() {
        let unsat = v(0).and(v(0).not());
        let p = v(1);
        let rep = weber_compact_auto(&unsat, &p).unwrap();
        assert!(revkb_sat::equivalent(&rep.formula, &p));
        let rep2 = weber_compact_auto(&p, &unsat).unwrap();
        assert!(!revkb_sat::satisfiable(&rep2.formula));
    }
}
