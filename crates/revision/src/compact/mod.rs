//! The paper's explicit compactability constructions.
//!
//! | Construction | Paper | Criterion | Case |
//! |---|---|---|---|
//! | [`dalal::dalal_compact`] | Thm 3.4 | query equivalence | general |
//! | [`weber::weber_compact`] | Thm 3.5 | query equivalence | general |
//! | [`bounded`] (formulas 5–9) | Prop 4.3, Cor 4.4, Thm 4.5, Thm 4.6 | logical equivalence | bounded `\|P\|` |
//! | [`iterated::dalal_iterated`] | Thm 5.1 (`Φₘ`) | query equivalence | iterated general |
//! | [`iterated::weber_iterated`] | Cor 5.2 (formula 10) | query equivalence | iterated general |
//! | [`iterated`] QBF forms (12)–(16) | Thm 6.1–6.3, Cor 6.4 | query equivalence | iterated bounded |
//! | [`widtio_compact`] | §3 opening remark | logical equivalence | always |

pub mod bounded;
pub mod dalal;
pub mod iterated;
pub mod rep;
pub mod weber;

pub use bounded::{
    borgida_bounded, dalal_bounded, forbus_bounded, prune_disjuncts, satoh_bounded, weber_bounded,
    winslett_bounded,
};
pub use dalal::{dalal_compact, dalal_compact_auto};
pub use iterated::{
    borgida_iterated, borgida_iterated_auto, dalal_iterated, dalal_iterated_auto, forbus_iterated,
    forbus_iterated_auto, satoh_iterated, satoh_iterated_auto, satoh_qbf_paper, weber_iterated,
    weber_iterated_auto, winslett_iterated, winslett_iterated_auto, winslett_iterated_qbf,
};
pub use rep::{CompactRep, EngineStats, QueryError};
pub use weber::{weber_compact, weber_compact_auto};

use crate::formula_based::{widtio, Theory};
use revkb_logic::Formula;

/// WIDTIO is trivially logically compactable: `|T *wid P| ≤ |T| + |P|`
/// by definition (it keeps a subset of `T`'s formulas plus `P`).
pub fn widtio_compact(t: &Theory, p: &Formula) -> Formula {
    widtio(t, p).conjunction()
}
