//! The result type of a compact construction.

use revkb_logic::{Formula, Var};

/// A compact representation `T'` of a revised knowledge base, together
/// with the base alphabet on which its guarantee holds.
///
/// For *query-equivalent* representations (criterion (1)), `T'` may
/// use letters outside `base`; its consequences restricted to `base`
/// formulas coincide with those of `T * P`. For *logically equivalent*
/// representations (criterion (2)), `formula` uses only `base` letters
/// and `T' ≡ T * P`.
#[derive(Debug, Clone)]
pub struct CompactRep {
    /// The representation formula `T'`.
    pub formula: Formula,
    /// The base alphabet `X = V(T) ∪ V(P…)`.
    pub base: Vec<Var>,
    /// Whether the construction guarantees logical equivalence
    /// (criterion (2)); otherwise only query equivalence (criterion
    /// (1)) is guaranteed.
    pub logical: bool,
}

impl CompactRep {
    /// A query-equivalent representation.
    pub fn query(formula: Formula, base: Vec<Var>) -> Self {
        Self {
            formula,
            base,
            logical: false,
        }
    }

    /// A logically equivalent representation.
    pub fn logical(formula: Formula, base: Vec<Var>) -> Self {
        Self {
            formula,
            base,
            logical: true,
        }
    }

    /// The paper's size measure `|T'|` (variable occurrences).
    pub fn size(&self) -> usize {
        self.formula.size()
    }

    /// Answer `T * P ⊨ Q` through the representation (step 2 of the
    /// paper's two-step query answering). `q` must be over the base
    /// alphabet.
    pub fn entails(&self, q: &Formula) -> bool {
        debug_assert!(
            q.vars().iter().all(|v| self.base.contains(v)),
            "query uses letters outside the base alphabet"
        );
        revkb_sat::entails(&self.formula, q)
    }

    /// The auxiliary letters used beyond the base alphabet.
    pub fn aux_vars(&self) -> Vec<Var> {
        self.formula
            .vars()
            .into_iter()
            .filter(|v| !self.base.contains(v))
            .collect()
    }
}
