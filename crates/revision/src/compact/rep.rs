//! The result type of a compact construction.

use revkb_logic::{Formula, Var};
use revkb_sat::{PoolConfig, PoolStats, QuerySession, SessionPool, SolverStats};
use std::cell::RefCell;

/// Error answering a query through a [`CompactRep`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query mentions a letter outside the representation's base
    /// alphabet: the compactness guarantee (query equivalence to
    /// `T * P`) says nothing about such formulas, so an answer would
    /// be silently meaningless — auxiliary letters of `T'` are
    /// implementation detail, not knowledge.
    OutOfAlphabet {
        /// The offending letter.
        var: Var,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::OutOfAlphabet { var } => write!(
                f,
                "query mentions {var:?}, which is outside the representation's \
                 base alphabet; answers are only guaranteed for queries over \
                 the base letters"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

/// Combined statistics of a representation's query engines: the
/// single-query [`QuerySession`] and the batch [`SessionPool`], both
/// lazily created, either possibly absent. Exposed uniformly as
/// `stats()` on [`CompactRep`], `RevisedKb`, and `DelayedKb`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Counters of the single-query session, if one has answered yet.
    pub session: Option<SolverStats>,
    /// Counters of the batch pool, if one has answered yet.
    pub pool: Option<PoolStats>,
}

impl EngineStats {
    /// Are both engines still unused?
    pub fn is_empty(&self) -> bool {
        self.session.is_none() && self.pool.is_none()
    }

    /// All counters folded into one [`SolverStats`] block. Its
    /// `total_query_micros` follows the CPU-time semantics of
    /// [`SolverStats::merge`] — do not read it as elapsed time when
    /// the pool ran in parallel.
    pub fn merged(&self) -> SolverStats {
        let mut merged = SolverStats::default();
        if let Some(session) = &self.session {
            merged.merge(session);
        }
        if let Some(pool) = &self.pool {
            merged.merge(&pool.merged());
        }
        merged
    }

    /// Render as a JSON object: `session` and `pool` (each an object
    /// or `null`) plus the `merged` fold.
    pub fn to_json(&self) -> String {
        let session = self
            .session
            .as_ref()
            .map_or_else(|| "null".to_string(), SolverStats::to_json);
        let pool = self
            .pool
            .as_ref()
            .map_or_else(|| "null".to_string(), PoolStats::to_json);
        format!(
            "{{\"session\":{session},\"pool\":{pool},\"merged\":{}}}",
            self.merged().to_json()
        )
    }
}

/// A compact representation `T'` of a revised knowledge base, together
/// with the base alphabet on which its guarantee holds.
///
/// For *query-equivalent* representations (criterion (1)), `T'` may
/// use letters outside `base`; its consequences restricted to `base`
/// formulas coincide with those of `T * P`. For *logically equivalent*
/// representations (criterion (2)), `formula` uses only `base` letters
/// and `T' ≡ T * P`.
///
/// Entailment queries go through a lazily-created incremental
/// [`QuerySession`]: the first call to [`CompactRep::entails`] /
/// [`CompactRep::try_entails`] Tseitin-loads `formula` into a solver
/// once, and every later query reuses that solver (and its learned
/// clauses). Mutating `formula` after the first query is a footgun —
/// the session keeps answering for the formula it loaded; construct a
/// fresh `CompactRep` instead.
#[derive(Debug)]
pub struct CompactRep {
    /// The representation formula `T'`.
    pub formula: Formula,
    /// The base alphabet `X = V(T) ∪ V(P…)`.
    pub base: Vec<Var>,
    /// Whether the construction guarantees logical equivalence
    /// (criterion (2)); otherwise only query equivalence (criterion
    /// (1)) is guaranteed.
    pub logical: bool,
    /// Lazily-created incremental query engine over `formula`.
    session: RefCell<Option<QuerySession>>,
    /// Lazily-created sharded pool for batch queries (independent of
    /// the single-query session so mixed workloads keep both warm).
    pool: RefCell<Option<SessionPool>>,
    /// Configuration the lazy pool is created with; `None` means
    /// [`PoolConfig::default`] (which honours `REVKB_THREADS`).
    pool_config: RefCell<Option<PoolConfig>>,
}

impl Clone for CompactRep {
    fn clone(&self) -> Self {
        // The clone starts with a fresh (unloaded) session rather than
        // a copy of the solver state: cloning is used to build derived
        // representations, not to share query workloads. The pool
        // configuration, being a tuning knob rather than state, does
        // carry over.
        let rep = Self::new(self.formula.clone(), self.base.clone(), self.logical);
        *rep.pool_config.borrow_mut() = self.pool_config.borrow().clone();
        rep
    }
}

impl CompactRep {
    /// A representation with the given equivalence guarantee.
    pub fn new(formula: Formula, base: Vec<Var>, logical: bool) -> Self {
        Self {
            formula,
            base,
            logical,
            session: RefCell::new(None),
            pool: RefCell::new(None),
            pool_config: RefCell::new(None),
        }
    }

    /// Configure the batch pool that [`CompactRep::entails_batch`]
    /// lazily creates (worker count, sequential threshold). A no-op on
    /// an already-created pool — call it before the first batch. The
    /// default (no call) honours `REVKB_THREADS` via
    /// [`PoolConfig::default`].
    pub fn set_pool_config(&self, config: PoolConfig) {
        *self.pool_config.borrow_mut() = Some(config);
    }

    /// A query-equivalent representation.
    pub fn query(formula: Formula, base: Vec<Var>) -> Self {
        Self::new(formula, base, false)
    }

    /// A logically equivalent representation.
    pub fn logical(formula: Formula, base: Vec<Var>) -> Self {
        Self::new(formula, base, true)
    }

    /// The paper's size measure `|T'|` (variable occurrences).
    pub fn size(&self) -> usize {
        self.formula.size()
    }

    /// Answer `T * P ⊨ Q` through the representation (step 2 of the
    /// paper's two-step query answering), or report why the query is
    /// not answerable.
    ///
    /// Queries must stay within the base alphabet: a query mentioning
    /// other letters — auxiliary letters of the construction, or
    /// letters the knowledge base has never heard of — yields
    /// [`QueryError::OutOfAlphabet`] instead of a silently meaningless
    /// boolean.
    pub fn try_entails(&self, q: &Formula) -> Result<bool, QueryError> {
        if let Some(&var) = q.vars().iter().find(|v| !self.base.contains(v)) {
            return Err(QueryError::OutOfAlphabet { var });
        }
        let mut slot = self.session.borrow_mut();
        let session = slot.get_or_insert_with(|| {
            // Reserve the whole base alphabet for queries, not just
            // V(formula): the construction may have simplified a base
            // letter away, yet queries over it remain legitimate.
            let num_query_vars = self.base.iter().map(|v| v.0 + 1).max().unwrap_or(0);
            QuerySession::with_query_alphabet(&self.formula, num_query_vars)
        });
        Ok(session.entails(q))
    }

    /// Answer `T * P ⊨ Q` through the representation.
    ///
    /// # Panics
    ///
    /// If `q` uses letters outside the base alphabet — in **every**
    /// build profile, not just with debug assertions: an out-of-
    /// alphabet query has no defined answer, and returning one anyway
    /// was a silent-wrong-answer path. Use [`CompactRep::try_entails`]
    /// to handle the condition gracefully.
    pub fn entails(&self, q: &Formula) -> bool {
        match self.try_entails(q) {
            Ok(answer) => answer,
            Err(e) => panic!("CompactRep::entails: {e}"),
        }
    }

    /// Answer a batch of queries `T * P ⊨ Qᵢ` through a sharded
    /// [`SessionPool`] (parallel above the pool's batch threshold,
    /// sequential below it), or report the first out-of-alphabet
    /// query. The answer at index `i` is for `queries[i]`.
    ///
    /// Every query is alphabet-checked **before** any is answered, so
    /// an `Err` means no work was done and no session state changed.
    pub fn try_entails_batch(&self, queries: &[Formula]) -> Result<Vec<bool>, QueryError> {
        for q in queries {
            if let Some(&var) = q.vars().iter().find(|v| !self.base.contains(v)) {
                return Err(QueryError::OutOfAlphabet { var });
            }
        }
        let mut slot = self.pool.borrow_mut();
        let pool = slot.get_or_insert_with(|| {
            let num_query_vars = self.base.iter().map(|v| v.0 + 1).max().unwrap_or(0);
            let config = self.pool_config.borrow().clone().unwrap_or_default();
            SessionPool::with_query_alphabet(&self.formula, num_query_vars, config)
        });
        Ok(pool.par_entails_batch(queries))
    }

    /// Answer a batch of queries through the sharded pool.
    ///
    /// # Panics
    ///
    /// If any query uses letters outside the base alphabet (see
    /// [`CompactRep::try_entails_batch`]).
    pub fn entails_batch(&self, queries: &[Formula]) -> Vec<bool> {
        match self.try_entails_batch(queries) {
            Ok(answers) => answers,
            Err(e) => panic!("CompactRep::entails_batch: {e}"),
        }
    }

    /// Statistics of the incremental query session, if any query has
    /// been answered yet.
    pub fn query_stats(&self) -> Option<SolverStats> {
        self.session.borrow().as_ref().map(|s| s.stats())
    }

    /// Statistics of the batch-query pool, if any batch has been
    /// answered yet.
    pub fn pool_stats(&self) -> Option<PoolStats> {
        self.pool.borrow().as_ref().map(SessionPool::stats)
    }

    /// Combined statistics of both query engines (the single-query
    /// session and the batch pool), uniformly shaped as
    /// [`EngineStats`].
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            session: self.query_stats(),
            pool: self.pool_stats(),
        }
    }

    /// The auxiliary letters used beyond the base alphabet.
    pub fn aux_vars(&self) -> Vec<Var> {
        self.formula
            .vars()
            .into_iter()
            .filter(|v| !self.base.contains(v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    #[test]
    fn entails_uses_incremental_session() {
        let rep = CompactRep::logical(v(0).and(v(1)), vec![Var(0), Var(1)]);
        assert!(rep.query_stats().is_none(), "session is lazy");
        assert!(rep.entails(&v(0)));
        assert!(!rep.entails(&v(0).not()));
        assert!(rep.entails(&v(0)));
        let stats = rep.query_stats().expect("session exists after queries");
        assert_eq!(stats.base_loads, 1);
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn try_entails_rejects_out_of_alphabet() {
        let rep = CompactRep::logical(v(0), vec![Var(0)]);
        assert_eq!(
            rep.try_entails(&v(7)),
            Err(QueryError::OutOfAlphabet { var: Var(7) })
        );
        // The error message names the guarantee, not just the letter.
        let msg = rep.try_entails(&v(7)).unwrap_err().to_string();
        assert!(msg.contains("base alphabet"));
    }

    #[test]
    #[should_panic(expected = "outside the representation's base alphabet")]
    fn entails_panics_out_of_alphabet() {
        let rep = CompactRep::logical(v(0), vec![Var(0)]);
        rep.entails(&v(7));
    }

    #[test]
    fn batch_matches_single_queries() {
        let rep = CompactRep::logical(v(0).and(v(1)), vec![Var(0), Var(1)]);
        let queries = vec![v(0), v(1).not(), v(0).and(v(1)), v(0).or(v(1)).not()];
        let batch = rep.entails_batch(&queries);
        let single: Vec<bool> = queries.iter().map(|q| rep.entails(q)).collect();
        assert_eq!(batch, single);
        let pool = rep.pool_stats().expect("pool ran");
        assert_eq!(pool.queries, 4);
        assert!(pool.threads >= 1);
    }

    #[test]
    fn batch_rejects_out_of_alphabet_before_answering() {
        let rep = CompactRep::logical(v(0), vec![Var(0)]);
        assert_eq!(
            rep.try_entails_batch(&[v(0), v(9)]),
            Err(QueryError::OutOfAlphabet { var: Var(9) })
        );
        assert!(rep.pool_stats().is_none(), "no pool built on rejection");
    }

    #[test]
    fn clone_resets_session() {
        let rep = CompactRep::query(v(0), vec![Var(0)]);
        assert!(rep.entails(&v(0)));
        let cloned = rep.clone();
        assert!(cloned.query_stats().is_none());
        assert!(cloned.entails(&v(0)));
    }
}
